"""Recovery policy: how hard to fight a failed reconfiguration.

The paper's central claim is *robustness*: over-clocking failures are
detected automatically (missing completion interrupt, read-back CRC
mismatch) so the system can safely run past spec.  The policy object
decides what to do once a failure is detected:

* how many attempts one logical reconfiguration may consume;
* the frequency backoff ladder — each retry after a hard failure runs
  the transfer slower, multiplicatively, until it lands back inside the
  silicon's true (temperature-dependent, unknown-to-the-firmware) fmax;
* per-failure-mode actions: a missing interrupt is a *control-path*
  violation and deterministic at a given operating point, so the only
  useful retry is a backed-off one; a CRC mismatch with the interrupt
  intact is a *data-path* violation whose corruption is re-drawn on
  every attempt, so a marginal violation is worth one same-frequency
  retry before backing off.

Policies are frozen plain-data objects so they can cross a process
boundary (the fault-injection campaign ships them to sweep workers) and
key the on-disk result cache.

The same policy object also governs **fleet-level request failover**
(:mod:`repro.fleet.health`), deliberately sharing one set of knobs so
board-local retries and fleet-level re-admission cannot drift apart:

* ``max_attempts`` caps the *service attempts* a fleet request may
  consume across boards (first placement + failovers), exactly as it
  caps the attempts one board spends on a single reconfiguration;
* ``failover_backoff_base_us`` seeds the exponential re-admission
  backoff (retry *i* waits ``base · 2**i`` before re-entering the
  scheduler) — the only failover-specific constant, and it lives here
  rather than in the fleet layer so there is exactly one place that
  defines how hard the platform fights a failure;
* ``quarantine_after`` is reused as the consecutive-bad-group threshold
  at which the fleet health detector quarantines a *board*, mirroring
  the governor's per-operating-point quarantine.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable

from ..timing import FailureMode

__all__ = ["RecoveryPolicy"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the detect→recover loop."""

    #: Total attempts per reconfiguration, including the first try.
    max_attempts: int = 4
    #: Multiplier applied to the frequency on every backoff step.
    backoff_factor: float = 0.9
    #: Never back off below this frequency (the PDR block's spec floor).
    freq_floor_mhz: float = 100.0
    #: A pure data-corrupt failure gets one same-frequency retry before
    #: the ladder engages (the salted fault injector re-draws the
    #: corruption, so a marginal violation can pass on the second try).
    retry_same_on_data_corrupt: bool = True
    #: Consecutive failures at one (region, frequency, temperature)
    #: operating point before the governor quarantines it.  The fleet
    #: health detector reuses the same threshold for consecutive bad
    #: dispatch groups before quarantining a board.
    quarantine_after: int = 2
    #: Fleet failover: delay (µs) before a failed request's *first*
    #: re-admission; each further retry doubles it (see
    #: :meth:`failover_delay_us` and :mod:`repro.fleet.health`).
    failover_backoff_base_us: float = 400.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("policy needs at least one attempt")
        if not 0.0 < self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be in (0, 1)")
        if self.freq_floor_mhz <= 0:
            raise ValueError("frequency floor must be positive")
        if self.quarantine_after < 1:
            raise ValueError("quarantine threshold must be >= 1")
        if self.failover_backoff_base_us <= 0:
            raise ValueError("failover backoff base must be positive")

    # -- actions ---------------------------------------------------------------
    def next_frequency(
        self, freq_mhz: float, retry_index: int, detected_modes: Iterable[str]
    ) -> float:
        """Frequency for the retry after a failure at ``freq_mhz``.

        ``retry_index`` counts retries of this reconfiguration (0 = the
        retry right after the first failure); ``detected_modes`` is what
        the firmware *observed* (missing interrupt, CRC mismatch), not
        the timing model's oracle.
        """
        modes = set(detected_modes)
        if (
            self.retry_same_on_data_corrupt
            and retry_index == 0
            and modes == {FailureMode.DATA_CORRUPT}
        ):
            return freq_mhz
        return max(self.freq_floor_mhz, freq_mhz * self.backoff_factor)

    def failover_delay_us(self, retry_index: int) -> float:
        """Fleet re-admission backoff before retry ``retry_index``.

        ``retry_index`` counts failovers of one request (0 = the first
        re-admission after the original placement failed).  Exponential:
        ``base · 2**i`` — the fleet-level analogue of the per-board
        frequency ladder, bounded by the shared ``max_attempts`` budget.
        """
        if retry_index < 0:
            raise ValueError("retry index cannot be negative")
        return self.failover_backoff_base_us * (2.0 ** retry_index)

    def ladder(self, freq_mhz: float) -> list:
        """The full backoff ladder from ``freq_mhz`` down to the floor."""
        rungs = []
        freq = freq_mhz
        for _ in range(self.max_attempts - 1):
            freq = max(self.freq_floor_mhz, freq * self.backoff_factor)
            rungs.append(freq)
            if freq <= self.freq_floor_mhz:
                break
        return rungs

    # -- plain-data round-trip ---------------------------------------------------
    def to_mapping(self) -> Dict[str, Any]:
        """Plain-data form for sweep-point parameters / cache keys."""
        return asdict(self)

    @classmethod
    def from_mapping(cls, mapping=None) -> "RecoveryPolicy":
        """Rebuild from :meth:`to_mapping` output (or ``None`` for defaults)."""
        if not mapping:
            return cls()
        return cls(**dict(mapping))
