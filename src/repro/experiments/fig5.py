"""Experiment E2 — Fig. 5: the throughput/frequency plane.

A denser frequency sweep than Table I, plotted as ASCII, with the knee
located by a two-segment change-point fit.  The paper: "the throughput
increases linearly until about 200 MHz when the curve flattens".

Regenerate with ``python -m repro.experiments.fig5``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis import Series, knee_frequency, render_plot
from ..core import PdrSystem
from ..exec import SweepRunner

from .calibration import PAPER_FIG5_KNEE_MHZ, PAPER_MAX_THROUGHPUT_MB_S, PAPER_TABLE1
from .points import asp_descriptor, reconfigure_point
from .report import ExperimentReport
from .table1 import WORKLOAD_ASP

__all__ = ["Fig5Data", "run_fig5", "format_report", "main"]

#: Default sweep: 20 MHz steps through the working range.
DEFAULT_SWEEP = [100.0 + 20.0 * i for i in range(11)]  # 100..300


@dataclass
class Fig5Data:
    measured: Series
    paper: Series
    knee_mhz: Optional[float]
    max_throughput_mb_s: float


def run_fig5(
    system: Optional[PdrSystem] = None,
    frequencies: Optional[List[float]] = None,
    region: str = "RP1",
    runner: Optional[SweepRunner] = None,
) -> Fig5Data:
    """Sweep the frequency range and collect the throughput series."""
    freqs = list(frequencies or DEFAULT_SWEEP)
    if system is not None:
        system.set_die_temperature(40.0)
        results = [system.reconfigure(region, WORKLOAD_ASP, freq) for freq in freqs]
    else:
        results = (runner or SweepRunner()).map(
            "fig5",
            reconfigure_point,
            [
                dict(
                    region=region,
                    freq_mhz=freq,
                    temp_c=40.0,
                    workload=asp_descriptor(WORKLOAD_ASP),
                )
                for freq in freqs
            ],
            labels=[f"fig5@{freq:g}MHz" for freq in freqs],
        )
    measured = Series("simulated")
    for result in results:
        if result.throughput_mb_s is not None:
            measured.append(result.freq_mhz, result.throughput_mb_s)
    paper = Series("paper")
    for freq, (_lat, throughput, _crc) in sorted(PAPER_TABLE1.items()):
        if throughput is not None:
            paper.append(freq, throughput)
    return Fig5Data(
        measured=measured,
        paper=paper,
        knee_mhz=knee_frequency(measured.x, measured.y),
        max_throughput_mb_s=max(measured.y) if measured.y else 0.0,
    )


def format_report(data: Fig5Data) -> str:
    """Render the Fig. 5 plot, knee analysis and CSV."""
    report = ExperimentReport("Fig. 5 — throughput vs. frequency")
    report.add(
        render_plot(
            [data.measured, data.paper],
            title="Throughput vs ICAP frequency",
            x_label="frequency [MHz]",
            y_label="throughput [MB/s]",
        )
    )
    knee = f"{data.knee_mhz:.0f} MHz" if data.knee_mhz else "not found"
    report.add(
        f"knee (two-segment fit): {knee}   "
        f"(paper: ~{PAPER_FIG5_KNEE_MHZ:.0f} MHz)\n"
        f"max throughput: {data.max_throughput_mb_s:.2f} MB/s   "
        f"(paper: {PAPER_MAX_THROUGHPUT_MB_S:.2f} MB/s)"
    )
    report.add("CSV (simulated):\n" + data.measured.to_csv("freq_mhz", "mb_per_s"))
    return report.render()


def main() -> None:
    """Regenerate Fig. 5 and print the report."""
    print(format_report(run_fig5()))


if __name__ == "__main__":
    main()
