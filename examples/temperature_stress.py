"""Temperature-stress campaign (the paper's §IV-A heat-gun experiment).

Sweeps the die from 40 °C to 100 °C in 10 °C steps while re-running the
over-clocked transfers, reproducing the paper's robustness frontier: the
*only* failing combination is 310 MHz at 100 °C.  Also demonstrates the
dynamic thermal model: the RC heating trajectory while the gun warms the
heat sink.

Run:  python examples/temperature_stress.py
"""

from repro.core import PdrSystem
from repro.fabric import FirFilterAsp


def stress_matrix(system: PdrSystem) -> None:
    frequencies = [200.0, 280.0, 310.0]
    temps = [40.0, 60.0, 80.0, 90.0, 100.0]
    asp = FirFilterAsp([2, 7, 1, 8])

    print("pass/fail matrix (read-back CRC after transfer):\n")
    print(f"{'MHz':>6} | " + "  ".join(f"{t:>5.0f}C" for t in temps))
    print("-" * (9 + 8 * len(temps)))
    for freq in frequencies:
        cells = []
        for temp in temps:
            system.set_die_temperature(temp)
            result = system.reconfigure("RP2", asp, freq)
            cells.append(" pass " if result.crc_valid else " FAIL ")
        print(f"{freq:>6.0f} | " + " ".join(cells))
    print(
        "\nThe paper: 'All the tests succeeded except the test done at "
        "310 MHz and 100 C which failed.'"
    )


def heating_trajectory(system: PdrSystem) -> None:
    """Watch the die heat up under the gun (first-order RC response)."""
    print("\ndynamic heating: gun on at t=0, +60 C forcing, tau = 12 s")
    thermal = system.thermal
    thermal.pin_temperature(40.0)  # back to the bench idle point
    thermal.unpin()
    thermal.set_forcing(60.0)

    def watch():
        for _ in range(7):
            yield system.sim.timeout(5e9)  # 5 s steps
            print(
                f"  t = {system.sim.now_s:5.1f} s   "
                f"die = {system.temp_sensor.read_celsius():5.1f} C"
            )

    system.sim.run_until(system.sim.process(watch()))
    print(f"  steady state would be {thermal.steady_state_c():.1f} C")


def main() -> None:
    system = PdrSystem()
    stress_matrix(system)
    heating_trajectory(system)


if __name__ == "__main__":
    main()
