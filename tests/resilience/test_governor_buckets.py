"""Regression tests for FrequencyGovernor bucket edges.

The governor buckets operating points at 5 MHz / 10 °C granularity with
``int(x // bucket)``.  Points landing *exactly* on a boundary must fall
deterministically into the upper bucket (floor division), and a
quarantine established at a boundary must not leak into either
neighbouring bucket along the frequency or temperature axis.
"""

import pytest

from repro.resilience.governor import FrequencyGovernor


def quarantine(gov, region, freq, temp):
    for _ in range(gov.quarantine_after):
        gov.record_failure(region, freq, temp, modes=["crc"])


# ------------------------------------------------------------- bucketing --
@pytest.mark.parametrize(
    "freq,bucket",
    [
        (319.99, 63),
        (320.0, 64),  # exactly on the 5 MHz edge: upper bucket
        (320.01, 64),
        (324.99, 64),
        (325.0, 65),
        (5.0, 1),
        (4.99, 0),
    ],
)
def test_frequency_boundary_lands_in_one_bucket(freq, bucket):
    gov = FrequencyGovernor()
    assert gov._key("RP1", freq, 40.0)[1] == bucket


@pytest.mark.parametrize(
    "temp,bucket",
    [
        (59.99, 5),
        (60.0, 6),  # exactly on the 10 °C edge: upper bucket
        (60.01, 6),
        (69.99, 6),
        (70.0, 7),
        (0.0, 0),
        (9.99, 0),
    ],
)
def test_temperature_boundary_lands_in_one_bucket(temp, bucket):
    gov = FrequencyGovernor()
    assert gov._key("RP1", 100.0, temp)[2] == bucket


def test_boundary_bucketing_is_deterministic_across_instances():
    keys = {FrequencyGovernor()._key("RP2", 320.0, 60.0) for _ in range(50)}
    assert keys == {("RP2", 64, 6)}


# ------------------------------------------------- quarantine containment --
def test_quarantine_at_frequency_boundary_does_not_leak():
    gov = FrequencyGovernor(quarantine_after=2)
    quarantine(gov, "RP1", 320.0, 60.0)

    # The whole [320, 325) x [60, 70) bucket is quarantined...
    assert gov.is_quarantined("RP1", 320.0, 60.0)
    assert gov.is_quarantined("RP1", 324.99, 69.99)
    # ...but neither frequency neighbour is.
    assert not gov.is_quarantined("RP1", 319.99, 60.0)
    assert not gov.is_quarantined("RP1", 325.0, 60.0)
    # ...and neither temperature neighbour is.
    assert not gov.is_quarantined("RP1", 320.0, 59.99)
    assert not gov.is_quarantined("RP1", 320.0, 70.0)


def test_failures_straddling_a_boundary_never_quarantine():
    """Two failures 0.02 MHz apart but in different buckets must not
    combine into a quarantine — each bucket keeps its own streak."""
    gov = FrequencyGovernor(quarantine_after=2)
    assert not gov.record_failure("RP1", 319.99, 40.0)
    assert not gov.record_failure("RP1", 320.0, 40.0)
    assert not gov.is_quarantined("RP1", 319.99, 40.0)
    assert not gov.is_quarantined("RP1", 320.0, 40.0)


def test_quarantine_containment_across_regions():
    gov = FrequencyGovernor(quarantine_after=2)
    quarantine(gov, "RP1", 320.0, 60.0)
    assert not gov.is_quarantined("RP2", 320.0, 60.0)


def test_authorise_clamp_applies_only_within_the_temp_bucket():
    gov = FrequencyGovernor(quarantine_after=2, clamp_step_mhz=10.0)
    quarantine(gov, "RP1", 320.0, 60.0)

    # In the quarantined temperature bucket requests at/above the line clamp.
    assert gov.authorise("RP1", 320.0, 60.0) == 310.0
    assert gov.authorise("RP1", 400.0, 69.99) == 310.0
    # Below the quarantine line: untouched, even in the same temp bucket.
    assert gov.authorise("RP1", 319.99, 60.0) == 319.99
    # Neighbouring temperature buckets: untouched.
    assert gov.authorise("RP1", 320.0, 59.99) == 320.0
    assert gov.authorise("RP1", 320.0, 70.0) == 320.0


def test_success_on_boundary_clears_only_its_own_streak():
    gov = FrequencyGovernor(quarantine_after=2)
    assert not gov.record_failure("RP1", 320.0, 60.0)
    # A success in the *lower* neighbouring bucket must not reset the
    # streak accumulating at 320.0.
    gov.record_success("RP1", 319.99, 60.0)
    assert gov.record_failure("RP1", 320.0, 60.0), "second failure quarantines"
    assert gov.is_quarantined("RP1", 320.0, 60.0)
