"""The AXI4-Stream ICAP controller (the block of refs [8]/[9]).

Consumes 32-bit words from an :class:`~repro.axi.stream.AxiStream` at one
word per clock cycle — the ICAPE2 primitive's rate, which over-clocking
raises — and feeds them to the :class:`~repro.icap.primitive.ConfigPort`.

Over-clocking failure injection happens here: an optional *word corruptor*
(installed by the PDR system from the timing model's verdict) mangles
words between the stream and the configuration engine, modelling the
data-path timing violations that make the paper's ≥320 MHz runs fail
their CRC.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..axi.stream import AxiStream
from ..fabric.config_memory import ConfigMemory
from ..obs import MetricsRegistry
from ..sim import ClockDomain, InterruptLine, Signal, Simulator

from .primitive import ConfigPort

__all__ = ["IcapController"]


class IcapController:
    """Timed stream-to-ICAP bridge."""

    def __init__(
        self,
        sim: Simulator,
        clock: ClockDomain,
        memory: ConfigMemory,
        stream: AxiStream,
        name: str = "icap",
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.clock = clock
        self.stream = stream
        self.name = name
        self.port = ConfigPort(memory)
        self.metrics = metrics if metrics is not None else MetricsRegistry(now_fn=lambda: sim.now)
        self._m_words = self.metrics.counter(f"{name}.words_consumed")
        self._m_bursts = self.metrics.counter(f"{name}.bursts_consumed")
        self._m_stall_cycles = self.metrics.counter(f"{name}.stall_cycles")
        self._m_corrupted = self.metrics.counter(f"{name}.corrupted_words")
        self._m_transfers = self.metrics.counter(f"{name}.transfers")
        self._m_aborts = self.metrics.counter(f"{name}.aborts")
        self._m_lockup_cycles = self.metrics.counter(f"{name}.lockup_cycles")
        #: High while a configuration stream is being consumed.
        self.busy = Signal(sim, initial=False, name=f"{name}.busy")
        #: Rises when the stream desyncs (configuration done).
        self.done = Signal(sim, initial=False, name=f"{name}.done")
        #: Asserted if the configuration engine latched an error.
        self.error_irq = InterruptLine(sim, name=f"{name}.error")
        #: Optional fault injector: words -> words (set by the PDR system
        #: when the timing model says the data path is past its fmax).
        self.word_corruptor: Optional[Callable[[List[int]], List[int]]] = None
        #: Optional fault hook (installed by :mod:`repro.chaos`):
        #: extra cycles the ICAPE2 holds busy before accepting the next
        #: burst (a transient busy lock-up).  Backpressure propagates to
        #: the DMA through the stream FIFO, so the transfer stretches but
        #: no words are lost.
        self.fault_lockup_cycles: Optional[Callable[[], int]] = None
        self.words_consumed = 0
        self.aborted_transfers = 0
        #: Latched at the *end* of :meth:`abort` (stale in-flight words are
        #: legitimately drained during the abort itself); cleared when
        #: :meth:`begin_transfer` re-arms.  While latched, any word reaching
        #: the configuration port is a protocol violation.
        self._aborted = False
        #: Optional :class:`~repro.verify.InvariantMonitor` checking the
        #: busy/done protocol on every consumed burst.
        self.monitor = None
        sim.process(self._consume(), name=f"{name}.consumer", daemon=True)

    @property
    def aborted(self) -> bool:
        """True between a completed abort and the next ``begin_transfer``."""
        return self._aborted

    def begin_transfer(self) -> None:
        """Arm the controller for a new configuration stream."""
        self.port.reset()
        self.done.set(False)
        self._aborted = False
        self._m_transfers.inc()

    #: Abort quiesce polls before giving up (a wedged producer bug, not a
    #: timing failure — the producer must be halted before aborting).
    ABORT_POLL_LIMIT = 100_000

    def abort(self):
        """Abort an in-flight transfer (process generator).

        The producer (DMA) must already be halted.  Whatever it pushed
        before dying is consumed and discarded at stream rate — the
        configuration port is reset *afterwards*, so stale words cannot
        leave a partially decoded packet state behind — then the busy and
        done flags are cleared so the scrubber's busy gate reopens.
        """
        polls = 0
        while self.stream.queued_bursts or self.stream.free_words < self.stream.fifo_words:
            polls += 1
            if polls > self.ABORT_POLL_LIMIT:
                raise RuntimeError(
                    f"{self.name}: abort cannot quiesce the stream "
                    f"(producer still running?)"
                )
            yield self.clock.wait_cycles(16)
        self.port.reset()
        self.busy.set(False)
        self.done.set(False)
        self.aborted_transfers += 1
        self._aborted = True
        self._m_aborts.inc()

    def _consume(self):
        while True:
            wait_started_ns = self.sim.now
            burst = yield self.stream.pop()
            if self.busy.value:
                # Mid-transfer wait for the next burst: the stream side
                # starved the ICAP — count it in over-clock cycles.
                self._m_stall_cycles.inc(
                    self.clock.ns_to_cycles(self.sim.now - wait_started_ns)
                )
            self.busy.set(True)
            # busy and done are mutually exclusive: an SG descriptor
            # chain starts its next bitstream without a begin_transfer,
            # so the previous segment's desync flag drops here.
            self.done.set(False)
            if self.fault_lockup_cycles is not None:
                lockup = max(0, int(self.fault_lockup_cycles()))
                if lockup:
                    self._m_lockup_cycles.inc(lockup)
                    yield self.clock.wait_cycles(lockup)
            words = burst.words
            # One word per clock cycle through the ICAP.
            yield self.clock.wait_cycles(len(words))
            if self.word_corruptor is not None:
                original = words
                words = self.word_corruptor(words)
                self._m_corrupted.inc(
                    sum(1 for a, b in zip(original, words) if a != b)
                )
            if self.monitor is not None:
                self.monitor.on_icap_words(self, len(words))
            self.port.feed_words(words)
            self.words_consumed += len(words)
            self._m_words.inc(len(words))
            self._m_bursts.inc()
            self.stream.release(len(burst.words))
            if burst.last:
                self.busy.set(False)
                if self.port.desynced:
                    self.done.set(True)
                if self.port.has_error:
                    self.error_irq.assert_()
