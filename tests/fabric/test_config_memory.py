"""Tests for the configuration memory."""

import pytest

from repro.bitstream import FRAME_WORDS, FrameAddress, make_z7020_layout
from repro.fabric import ConfigMemory


@pytest.fixture()
def memory():
    return ConfigMemory(make_z7020_layout())


def test_starts_blank(memory):
    assert memory.read_frame(0) == [0] * FRAME_WORDS
    assert memory.total_frame_writes == 0


def test_write_read_roundtrip(memory):
    frame = list(range(FRAME_WORDS))
    memory.write_frame(10, frame)
    assert memory.read_frame(10) == frame
    assert memory.generation(10) == 1


def test_read_returns_copy(memory):
    memory.write_frame(3, [1] * FRAME_WORDS)
    frame = memory.read_frame(3)
    frame[0] = 999
    assert memory.read_frame(3)[0] == 1


def test_words_masked_to_32_bits(memory):
    memory.write_frame(0, [1 << 40] + [0] * (FRAME_WORDS - 1))
    assert memory.read_frame(0)[0] == 0  # (1<<40) & 0xFFFFFFFF


def test_wrong_frame_size_rejected(memory):
    with pytest.raises(ValueError, match="words"):
        memory.write_frame(0, [0] * 10)


def test_out_of_range_rejected(memory):
    with pytest.raises(ValueError):
        memory.read_frame(memory.layout.total_frames)
    with pytest.raises(ValueError):
        memory.write_frame(-1, [0] * FRAME_WORDS)


def test_far_addressed_access(memory):
    far = FrameAddress(top=0, row=0, column=2, minor=5)
    frame = [0xA5] * FRAME_WORDS
    memory.write_frame_at(far, frame)
    assert memory.read_frame_at(far) == frame


def test_region_write_and_readback(memory):
    count = memory.layout.region_frame_count("RP1")
    frames = [[i] * FRAME_WORDS for i in range(count)]
    memory.write_region("RP1", frames)
    assert memory.region_frames("RP1") == frames
    words = memory.region_words("RP1")
    assert len(words) == count * FRAME_WORDS


def test_region_write_wrong_count_rejected(memory):
    with pytest.raises(ValueError):
        memory.write_region("RP1", [[0] * FRAME_WORDS])


def test_clear_region(memory):
    count = memory.layout.region_frame_count("RP2")
    memory.write_region("RP2", [[1] * FRAME_WORDS] * count)
    memory.clear_region("RP2")
    assert all(w == 0 for w in memory.region_words("RP2"))


def test_regions_do_not_alias(memory):
    count = memory.layout.region_frame_count("RP1")
    memory.write_region("RP1", [[7] * FRAME_WORDS] * count)
    assert all(w == 0 for w in memory.region_words("RP2"))
    assert all(w == 0 for w in memory.region_words("RP3"))


def test_corruption_does_not_bump_generation(memory):
    memory.write_frame(5, [1] * FRAME_WORDS)
    generation = memory.generation(5)
    memory.corrupt_word(5, 10, flip_mask=0x4)
    assert memory.generation(5) == generation
    assert memory.read_frame(5)[10] == 1 ^ 0x4


def test_corrupt_region_word(memory):
    count = memory.layout.region_frame_count("RP3")
    memory.write_region("RP3", [[0] * FRAME_WORDS] * count)
    memory.corrupt_region_word("RP3", FRAME_WORDS + 2, flip_mask=0xFF)
    frames = memory.region_frames("RP3")
    assert frames[1][2] == 0xFF


def test_corrupt_region_word_out_of_range(memory):
    with pytest.raises(ValueError):
        memory.corrupt_region_word("RP3", 10**9)


def test_write_watcher_fires(memory):
    seen = []
    memory.watch_writes(seen.append)
    memory.write_frame(42, [0] * FRAME_WORDS)
    assert seen == [42]
