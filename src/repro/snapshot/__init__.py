"""Copy-on-write system snapshots and template forking.

See :mod:`repro.snapshot.state` for the snapshot contract and
:mod:`repro.snapshot.templates` for the per-identity template registry
used by the campaign runners.
"""

from .state import SnapshotError, SystemSnapshot
from .templates import (
    fork_point_system,
    fork_system,
    point_template_snapshot,
    reset_templates,
    snapshots_enabled,
    template_count,
    template_key,
    template_snapshot,
)

__all__ = [
    "SnapshotError",
    "SystemSnapshot",
    "fork_point_system",
    "fork_system",
    "point_template_snapshot",
    "reset_templates",
    "snapshots_enabled",
    "template_count",
    "template_key",
    "template_snapshot",
]
