"""Tests for frame addressing and the device layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitstream import (
    FRAME_BYTES,
    ColumnType,
    DeviceLayout,
    FrameAddress,
    RegionSpec,
    make_z7020_layout,
)


def test_far_encode_decode_roundtrip_simple():
    far = FrameAddress(block_type=1, top=1, row=3, column=17, minor=9)
    assert FrameAddress.decode(far.encode()) == far


@settings(max_examples=100, deadline=None)
@given(
    block_type=st.integers(min_value=0, max_value=7),
    top=st.integers(min_value=0, max_value=1),
    row=st.integers(min_value=0, max_value=31),
    column=st.integers(min_value=0, max_value=1023),
    minor=st.integers(min_value=0, max_value=127),
)
def test_property_far_roundtrip(block_type, top, row, column, minor):
    far = FrameAddress(block_type, top, row, column, minor)
    assert FrameAddress.decode(far.encode()) == far


def test_far_field_validation():
    with pytest.raises(ValueError):
        FrameAddress(minor=128)
    with pytest.raises(ValueError):
        FrameAddress(row=32)


def test_far_ordering_matches_index_order():
    layout = make_z7020_layout()
    previous = -1
    for index in range(0, layout.total_frames, 997):
        far = layout.frame_address(index)
        assert layout.frame_index(far) == index
        assert index > previous
        previous = index


def test_layout_validation():
    with pytest.raises(ValueError):
        DeviceLayout(rows=0, columns=[ColumnType.CLB], regions={})
    with pytest.raises(ValueError):
        DeviceLayout(rows=1, columns=[], regions={})
    with pytest.raises(ValueError):
        DeviceLayout(rows=1, columns=["nonsense"], regions={})


def test_region_out_of_range_rejected():
    with pytest.raises(ValueError):
        DeviceLayout(
            rows=1,
            columns=[ColumnType.CLB] * 4,
            regions={"R": RegionSpec("R", row=5, col_start=0, col_end=1)},
        )
    with pytest.raises(ValueError):
        DeviceLayout(
            rows=1,
            columns=[ColumnType.CLB] * 4,
            regions={"R": RegionSpec("R", row=0, col_start=0, col_end=9)},
        )


def test_region_spec_validation():
    with pytest.raises(ValueError):
        RegionSpec("X", row=0, col_start=3, col_end=1)


def test_z7020_reference_floorplan():
    layout = make_z7020_layout()
    assert set(layout.regions) == {"RP1", "RP2", "RP3", "RP4"}
    # All four partitions are the same size (the paper reconfigures any of
    # RP1-4 with ~0.5 MB partials).
    counts = {name: layout.region_frame_count(name) for name in layout.regions}
    assert len(set(counts.values())) == 1
    assert counts["RP1"] == 1304
    assert layout.region_bytes("RP1") == 1304 * FRAME_BYTES


def test_region_frames_are_contiguous():
    layout = make_z7020_layout()
    for name in layout.regions:
        frames = layout.region_frames(name)
        indices = [layout.frame_index(far) for far in frames]
        assert indices == list(range(indices[0], indices[0] + len(indices)))


def test_next_address_walks_whole_device():
    layout = make_z7020_layout()
    far = layout.frame_address(0)
    for expected_index in range(1, 200):
        far = layout.next_address(far)
        assert layout.frame_index(far) == expected_index


def test_frame_index_bounds():
    layout = make_z7020_layout()
    with pytest.raises(ValueError):
        layout.frame_address(layout.total_frames)
    with pytest.raises(ValueError):
        layout.frame_address(-1)
    with pytest.raises(ValueError):
        layout.frame_index(FrameAddress(column=999))


def test_unknown_region_rejected():
    layout = make_z7020_layout()
    with pytest.raises(KeyError):
        layout.region("RP9")


def test_minor_out_of_range_for_column_type():
    layout = make_z7020_layout()
    # Column 5 is BRAM (28 minors); minor 35 is valid only for CLB columns.
    with pytest.raises(ValueError):
        layout.frame_index(FrameAddress(column=5, minor=35))
