"""Word-oriented bitstream compression (for the §VI decompressor).

Partial bitstreams are dominated by zero words and repeated configuration
words, so a simple run-length scheme achieves high ratios while keeping
the hardware decompressor (``repro.sram_pr.decompressor``) trivially
implementable at line rate.

Compressed format (all 32-bit words, big-endian when serialised):

====  =====================================================================
word  meaning
====  =====================================================================
0     magic ``0x52424331`` ("RBC1")
1     original word count
2     CRC-32C of the original words
3..   tokens
====  =====================================================================

Token control word: opcode in bits [31:24], run length in bits [23:0].

* ``0x00`` — literal run: the next *length* words are copied verbatim.
* ``0x01`` — zero run: emit *length* zero words.
* ``0x02`` — repeat run: the next word is emitted *length* times.
"""

from __future__ import annotations

from typing import List

from .crc import crc32c_words

__all__ = [
    "MAGIC",
    "compress_words",
    "decompress_words",
    "compression_ratio",
    "CompressedFormatError",
]

MAGIC = 0x52424331  # "RBC1"

_OP_LITERAL = 0x00
_OP_ZERO = 0x01
_OP_REPEAT = 0x02
_MAX_RUN = 0xFFFFFF

#: Minimum length of a repeated-word run worth a token (below this the
#: control-word overhead exceeds the saving).
_MIN_REPEAT = 3


class CompressedFormatError(ValueError):
    """The compressed stream is malformed or fails its integrity check."""


def _token(opcode: int, length: int) -> int:
    return (opcode << 24) | length


def compress_words(words: List[int]) -> List[int]:
    """Compress a word list; always decompressible to the exact input."""
    out: List[int] = [MAGIC, len(words), crc32c_words(words)]
    literals: List[int] = []

    def flush_literals() -> None:
        start = 0
        while start < len(literals):
            chunk = literals[start : start + _MAX_RUN]
            out.append(_token(_OP_LITERAL, len(chunk)))
            out.extend(chunk)
            start += len(chunk)
        literals.clear()

    index = 0
    total = len(words)
    while index < total:
        word = words[index]
        run = 1
        while index + run < total and words[index + run] == word and run < _MAX_RUN:
            run += 1
        if word == 0 and run >= 2:
            flush_literals()
            out.append(_token(_OP_ZERO, run))
            index += run
        elif run >= _MIN_REPEAT:
            flush_literals()
            out.append(_token(_OP_REPEAT, run))
            out.append(word)
            index += run
        else:
            literals.extend(words[index : index + run])
            index += run
    flush_literals()
    return out


def decompress_words(compressed: List[int]) -> List[int]:
    """Inverse of :func:`compress_words`; verifies count and CRC."""
    if len(compressed) < 3:
        raise CompressedFormatError("stream too short for header")
    if compressed[0] != MAGIC:
        raise CompressedFormatError(f"bad magic {compressed[0]:#010x}")
    expected_count = compressed[1]
    expected_crc = compressed[2]

    out: List[int] = []
    index = 3
    while index < len(compressed):
        control = compressed[index]
        index += 1
        opcode = (control >> 24) & 0xFF
        length = control & _MAX_RUN
        if opcode == _OP_ZERO:
            out.extend([0] * length)
        elif opcode == _OP_REPEAT:
            if index >= len(compressed):
                raise CompressedFormatError("repeat token missing its value word")
            out.extend([compressed[index]] * length)
            index += 1
        elif opcode == _OP_LITERAL:
            if index + length > len(compressed):
                raise CompressedFormatError("literal run overruns stream")
            out.extend(compressed[index : index + length])
            index += length
        else:
            raise CompressedFormatError(f"unknown token opcode {opcode:#x}")

    if len(out) != expected_count:
        raise CompressedFormatError(
            f"decompressed {len(out)} words, header says {expected_count}"
        )
    if crc32c_words(out) != expected_crc:
        raise CompressedFormatError("decompressed CRC mismatch")
    return out


def compression_ratio(words: List[int]) -> float:
    """original size / compressed size (>1 means the stream shrank)."""
    if not words:
        return 1.0
    return len(words) / len(compress_words(words))
