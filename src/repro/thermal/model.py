"""Lumped-RC die thermal model.

The die temperature follows a first-order RC response toward a target set
by ambient, self-heating (power × thermal resistance) and any external
forcing (the paper's heat gun):

    T_target = T_ambient + R_th · P + ΔT_forcing
    dT/dt    = (T_target − T) / τ

Experiments usually pin the temperature to a setpoint (as the paper does,
holding the die at 40…100 °C in 10 °C steps), but the dynamic model is
exercised by the heat-gun example and the thermal tests.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..sim import Simulator

__all__ = ["ThermalModel"]


class ThermalModel:
    """First-order thermal state of the Zynq die."""

    def __init__(
        self,
        sim: Simulator,
        ambient_c: float = 25.0,
        r_th_c_per_w: float = 8.0,
        tau_s: float = 12.0,
        power_source: Optional[Callable[[], float]] = None,
    ):
        if tau_s <= 0:
            raise ValueError("thermal time constant must be positive")
        self.sim = sim
        self.ambient_c = ambient_c
        self.r_th_c_per_w = r_th_c_per_w
        self.tau_s = tau_s
        #: Live power draw in watts (for self-heating); defaults to zero.
        self.power_source = power_source or (lambda: 0.0)
        #: External forcing in °C above ambient (heat gun contribution).
        self.forcing_c = 0.0
        self._pinned: Optional[float] = None
        self._temp_c = self._target()
        self._last_update_ns = sim.now

    # -- control ------------------------------------------------------------
    def pin_temperature(self, temp_c: float) -> None:
        """Clamp the die to an exact temperature (bench-controlled tests)."""
        self._pinned = temp_c
        self._temp_c = temp_c
        self._last_update_ns = self.sim.now

    def unpin(self) -> None:
        self._advance()
        self._pinned = None

    def set_forcing(self, delta_c: float) -> None:
        """External heating in °C above ambient (heat gun)."""
        self._advance()
        self.forcing_c = delta_c

    # -- state ----------------------------------------------------------------
    @property
    def temperature_c(self) -> float:
        """Current die temperature (advances the RC state lazily)."""
        self._advance()
        return self._temp_c

    def steady_state_c(self) -> float:
        """Temperature the die would settle at under current conditions."""
        return self._target()

    # -- internals ----------------------------------------------------------
    def _target(self) -> float:
        return (
            self.ambient_c
            + self.r_th_c_per_w * self.power_source()
            + self.forcing_c
        )

    def _advance(self) -> None:
        now = self.sim.now
        dt_s = (now - self._last_update_ns) / 1e9
        self._last_update_ns = now
        if self._pinned is not None:
            self._temp_c = self._pinned
            return
        if dt_s <= 0:
            return
        target = self._target()
        decay = math.exp(-dt_s / self.tau_s)
        self._temp_c = target + (self._temp_c - target) * decay
