"""Differential oracle: determinism is a checkable property, not a hope.

Two independent equivalences are asserted:

* **Replay identity** — running the same scenario twice (fresh system
  each time) must produce byte-identical result records.  The records
  are compared through :func:`~repro.exec.canonical_json`, so any
  nondeterminism in the simulation (wall-clock leakage, unordered dict
  iteration, cross-run RNG state) shows up as a byte diff.
* **Serial/parallel equivalence** — the same scenario batch executed by
  a serial :class:`~repro.exec.SweepRunner` and by a ``--jobs N``
  process-pool runner must merge to identical results, in identical
  order.  This is the property every sweep experiment in this repo
  relies on (reports are promised byte-identical regardless of N).

Fingerprints are CRC-32C over the canonical JSON — small enough to log
per scenario, strong enough to catch any drift.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from ..bitstream import crc32c_bytes
from ..exec import SweepRunner, canonical_json

from .fuzz import Scenario, run_scenario

__all__ = [
    "DifferentialMismatch",
    "assert_parallel_matches_serial",
    "assert_replay_identical",
    "record_fingerprint",
]


class DifferentialMismatch(AssertionError):
    """Two runs that must be byte-identical were not."""


def record_fingerprint(record: Any) -> int:
    """CRC-32C fingerprint of a result record's canonical JSON bytes."""
    return crc32c_bytes(canonical_json(record).encode("ascii"))


def assert_replay_identical(scenario: Scenario) -> int:
    """Run ``scenario`` twice; raise unless the records are byte-identical.

    Returns the common fingerprint on success.
    """
    first = canonical_json(run_scenario(scenario.to_mapping()))
    second = canonical_json(run_scenario(scenario.to_mapping()))
    if first != second:
        raise DifferentialMismatch(
            f"scenario {scenario.index} is nondeterministic: replay "
            f"fingerprints {crc32c_bytes(first.encode('ascii')):#010x} != "
            f"{crc32c_bytes(second.encode('ascii')):#010x}\n"
            f"repro: {scenario.replay_command()}"
        )
    return crc32c_bytes(first.encode("ascii"))


def assert_parallel_matches_serial(
    scenarios: Sequence[Scenario], jobs: int = 2
) -> int:
    """Run a batch serially and under ``--jobs N``; results must match.

    Uses the production :class:`~repro.exec.SweepRunner` (spec-order
    merge), so this exercises exactly the code path the CLI's ``--jobs``
    flag takes.  Returns the common batch fingerprint.
    """
    param_sets = [{"scenario": sc.to_mapping()} for sc in scenarios]
    labels = [f"fuzz:{sc.index}" for sc in scenarios]
    serial: List[Any] = SweepRunner(jobs=1).map(
        "verify.oracle", run_scenario, param_sets, labels
    )
    parallel: List[Any] = SweepRunner(jobs=jobs).map(
        "verify.oracle", run_scenario, param_sets, labels
    )
    serial_json = canonical_json(serial)
    parallel_json = canonical_json(parallel)
    if serial_json != parallel_json:
        detail = ""
        for index, (a, b) in enumerate(zip(serial, parallel)):
            if canonical_json(a) != canonical_json(b):
                detail = (
                    f"; first divergence at scenario index "
                    f"{scenarios[index].index}"
                )
                break
        raise DifferentialMismatch(
            f"serial and --jobs {jobs} runs of {len(scenarios)} scenario(s) "
            f"merged differently{detail}"
        )
    return crc32c_bytes(serial_json.encode("ascii"))
