"""Cross-module integration tests on the full system."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitstream import BitstreamFormatError, BitstreamParser
from repro.core import PdrSystem
from repro.fabric import Aes128Asp, FirFilterAsp
from repro.icap import ConfigPort


# ----------------------------------------------------- fault injection E2E --
def test_corrupted_staged_bitstream_detected_end_to_end():
    """A bitstream corrupted at rest in DRAM: the ICAP's streaming CRC
    flags it, the region content mismatches, the scrub says not-valid."""
    system = PdrSystem()
    good = system.make_bitstream("RP1", FirFilterAsp([6, 6, 6]))
    bad = good.corrupted(len(good.words) // 3, flip_mask=0x40)
    bad.meta["region_crc"] = good.meta["region_crc"]
    result = system.reconfigure("RP1", FirFilterAsp([6, 6, 6]), 200.0, bitstream=bad)
    assert result.interrupt_seen          # the DMA finished fine...
    assert not result.crc_valid           # ...but the content is wrong
    assert system.icap.port.crc_error     # and the ICAP noticed in-stream


def test_seu_between_transfers_detected_by_background_scrub():
    system = PdrSystem()
    result = system.reconfigure("RP2", Aes128Asp([3, 1, 4, 1]), 200.0)
    assert result.crc_valid
    system.scrubber.start()
    system.memory.corrupt_region_word("RP2", 42_000, flip_mask=0x8000)
    system.sim.run_until(system.scrubber.error_irq.wait_assert())
    assert system.scrubber.errors_detected >= 1
    assert system.gic.counts["crc_error"] >= 1
    system.scrubber.stop()


# ------------------------------------------------------------ PCAP vs ICAP --
def test_pcap_loads_but_much_slower_than_overclocked_icap():
    system = PdrSystem()
    bitstream = system.make_bitstream("RP3", FirFilterAsp([8, 8]))

    def pcap_load(sim):
        start = sim.now
        port = yield system.pcap.load(bitstream)
        return (sim.now - start) / 1e3, port

    pcap_us, port = system.sim.run_until(
        system.sim.process(pcap_load(system.sim))
    )
    assert port.desynced and not port.has_error
    assert system.run_asp("RP3", [1, 0]) == [8, 8]

    icap_result = system.reconfigure("RP4", FirFilterAsp([8, 8]), 200.0)
    # The paper's motivation: the over-clocked ICAP path is ~5x faster
    # than the stock PCAP driver path.
    assert pcap_us / icap_result.latency_us > 4.5


# -------------------------------------------------------------- determinism --
def test_simulation_is_deterministic():
    def run():
        system = PdrSystem()
        out = []
        for freq in (100.0, 240.0, 310.0):
            result = system.reconfigure("RP1", FirFilterAsp([1, 2]), freq)
            out.append((result.latency_us, result.crc_valid, result.pdr_power_w))
        return out

    assert run() == run()


# -------------------------------------------------------------- SD boot flow --
def test_boot_from_sd_and_reconfigure():
    system = PdrSystem()
    bitstream = system.make_bitstream("RP1", FirFilterAsp([7]))
    system.sdcard.store_file("partial.bin", bitstream.to_bytes())

    def boot(sim):
        data = yield system.sdcard.read_file("partial.bin")
        return data

    data = system.sim.run_until(system.sim.process(boot(system.sim)))
    assert data == bitstream.to_bytes()
    # Stage the SD payload and reconfigure with it.
    from repro.bitstream import Bitstream

    restored = Bitstream.from_bytes(data, region_name="RP1")
    restored.meta["region_crc"] = bitstream.meta["region_crc"]
    result = system.reconfigure("RP1", None, 180.0, bitstream=restored)
    assert result.succeeded
    assert system.run_asp("RP1", [1]) == [7]


# ---------------------------------------------------------------- fuzzing --
@settings(max_examples=60, deadline=None)
@given(
    words=st.lists(
        st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=1, max_size=200
    )
)
def test_property_parser_never_crashes(words):
    """Arbitrary word soup either parses or raises BitstreamFormatError."""
    parser = BitstreamParser()
    try:
        parser.parse_words(words)
    except BitstreamFormatError:
        pass


@settings(max_examples=60, deadline=None)
@given(
    words=st.lists(
        st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=1, max_size=500
    )
)
def test_property_config_port_never_crashes(words):
    """The device state machine must absorb any stream without raising —
    hardware does not throw exceptions; it latches error flags."""
    from repro.bitstream import make_z7020_layout
    from repro.fabric import ConfigMemory

    port = ConfigPort(ConfigMemory(make_z7020_layout()))
    port.feed_words(words)
    assert port.words_consumed == len(words)
