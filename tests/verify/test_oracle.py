"""Tests for the differential oracle."""

import pytest

import repro.verify.oracle as oracle_module
from repro.verify import (
    DifferentialMismatch,
    Scenario,
    assert_parallel_matches_serial,
    assert_replay_identical,
    record_fingerprint,
)


def test_record_fingerprint_is_stable_and_discriminating():
    record = {"a": 1, "b": [1.5, None, "x"]}
    assert record_fingerprint(record) == record_fingerprint(dict(record))
    assert record_fingerprint(record) != record_fingerprint({"a": 2})
    # Key order must not matter (canonical JSON sorts).
    assert record_fingerprint({"b": [1.5, None, "x"], "a": 1}) == record_fingerprint(
        record
    )


def test_replay_identity_on_real_scenario():
    fingerprint = assert_replay_identical(Scenario(index=0))
    assert isinstance(fingerprint, int)


def test_replay_mismatch_is_reported(monkeypatch):
    calls = {"n": 0}

    def flaky_run(scenario):
        calls["n"] += 1
        return {"run": calls["n"]}  # different every time: nondeterministic

    monkeypatch.setattr(oracle_module, "run_scenario", flaky_run)
    with pytest.raises(DifferentialMismatch, match="nondeterministic"):
        assert_replay_identical(Scenario(index=7))


def test_parallel_mismatch_names_divergent_scenario(monkeypatch):
    class FakeRunner:
        instances = []

        def __init__(self, jobs=1, cache=None):
            self.jobs = jobs
            FakeRunner.instances.append(self)

        def map(self, name, fn, param_sets, labels):
            if self.jobs == 1:
                return [{"value": i} for i in range(len(param_sets))]
            return [{"value": i + 100} for i in range(len(param_sets))]

    monkeypatch.setattr(oracle_module, "SweepRunner", FakeRunner)
    scenarios = [Scenario(index=0), Scenario(index=1)]
    with pytest.raises(DifferentialMismatch, match="first divergence at scenario index 0"):
        assert_parallel_matches_serial(scenarios, jobs=2)


def test_serial_vs_parallel_on_real_scenarios():
    """The production SweepRunner path: 2 workers must merge identically
    to a serial run of the same scenario batch."""
    scenarios = [Scenario(index=0), Scenario(index=1, region="RP2", freq_mhz=150.0)]
    fingerprint = assert_parallel_matches_serial(scenarios, jobs=2)
    assert isinstance(fingerprint, int)
