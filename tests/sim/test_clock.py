"""Tests for clock domains."""

import pytest

from repro.sim import ClockDomain, SimulationError, Simulator


def test_period_from_frequency():
    sim = Simulator()
    clk = ClockDomain(sim, freq_mhz=100.0)
    assert clk.period_ns == pytest.approx(10.0)
    assert clk.freq_hz == pytest.approx(100e6)


def test_invalid_frequency_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        ClockDomain(sim, freq_mhz=0.0)
    clk = ClockDomain(sim, freq_mhz=100.0)
    with pytest.raises(SimulationError):
        clk.set_frequency(-5.0)


def test_wait_cycles_duration():
    sim = Simulator()
    clk = ClockDomain(sim, freq_mhz=200.0)  # 5 ns period
    done = {}

    def proc(sim):
        yield clk.wait_cycles(10)
        done["t"] = sim.now

    sim.process(proc(sim))
    sim.run()
    assert done["t"] == pytest.approx(50.0)


def test_negative_cycles_rejected():
    sim = Simulator()
    clk = ClockDomain(sim, freq_mhz=100.0)
    with pytest.raises(SimulationError):
        clk.wait_cycles(-1)


def test_tick_is_one_cycle():
    sim = Simulator()
    clk = ClockDomain(sim, freq_mhz=250.0)
    done = {}

    def proc(sim):
        yield clk.tick()
        done["t"] = sim.now

    sim.process(proc(sim))
    sim.run()
    assert done["t"] == pytest.approx(4.0)


def test_frequency_change_affects_future_waits():
    sim = Simulator()
    clk = ClockDomain(sim, freq_mhz=100.0)
    marks = []

    def proc(sim):
        yield clk.wait_cycles(1)           # 10 ns
        marks.append(sim.now)
        clk.set_frequency(200.0)
        yield clk.wait_cycles(1)           # 5 ns
        marks.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert marks == [pytest.approx(10.0), pytest.approx(15.0)]


def test_elapsed_cycles_across_frequency_change():
    sim = Simulator()
    clk = ClockDomain(sim, freq_mhz=100.0)

    def proc(sim):
        yield sim.timeout(100.0)           # 10 cycles @ 100 MHz
        clk.set_frequency(400.0)
        yield sim.timeout(100.0)           # 40 cycles @ 400 MHz

    sim.process(proc(sim))
    sim.run()
    assert clk.elapsed_cycles == pytest.approx(50.0)


def test_cycle_time_conversions_are_inverse():
    sim = Simulator()
    clk = ClockDomain(sim, freq_mhz=313.0)
    assert clk.ns_to_cycles(clk.cycles_to_ns(1234.0)) == pytest.approx(1234.0)
