"""Tests for the over-clocking timing model and fault injectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing import (
    CriticalPath,
    FailureMode,
    PDR_CONTROL_PATH,
    PDR_DATA_PATH,
    TimingModel,
    corruption_rate,
    default_timing_model,
    make_word_corruptor,
)


@pytest.fixture()
def model():
    return default_timing_model()


def test_paper_frontier_at_40c(model):
    """Table I regimes at bench temperature."""
    for freq in (100, 140, 180, 200, 240, 280):
        assert model.ok(PDR_CONTROL_PATH, freq, 40.0)
        assert model.ok(PDR_DATA_PATH, freq, 40.0)
    # 310: control fails (no interrupt), data holds (CRC valid).
    assert not model.ok(PDR_CONTROL_PATH, 310, 40.0)
    assert model.ok(PDR_DATA_PATH, 310, 40.0)
    # 320+: data also fails (CRC not valid).
    assert not model.ok(PDR_DATA_PATH, 320, 40.0)
    assert not model.ok(PDR_DATA_PATH, 360, 40.0)


def test_paper_stress_frontier(model):
    """§IV-A: data path at 310 MHz passes up to 90 °C, fails at 100 °C."""
    for temp in (40, 50, 60, 70, 80, 90):
        assert model.ok(PDR_DATA_PATH, 310, temp)
    assert not model.ok(PDR_DATA_PATH, 310, 100)
    # Every Table I frequency <=280 passes at every stress temperature.
    for temp in range(40, 101, 10):
        for freq in (100, 140, 180, 200, 240, 280):
            assert model.ok(PDR_DATA_PATH, freq, temp)
            assert model.ok(PDR_CONTROL_PATH, freq, temp)


def test_fmax_decreases_with_temperature():
    path = CriticalPath("p", 300.0, FailureMode.DATA_CORRUPT)
    assert path.fmax_mhz(100.0) < path.fmax_mhz(40.0)
    assert path.fmax_mhz(40.0) == 300.0


def test_slack_sign(model):
    path = model.path(PDR_DATA_PATH)
    assert path.slack_ns(200.0, 40.0) > 0
    assert path.slack_ns(360.0, 40.0) < 0
    with pytest.raises(ValueError):
        path.slack_ns(0.0, 40.0)


def test_failures_sorted_worst_first(model):
    violated = model.failures(360.0, 40.0)
    assert [p.name for p in violated] == [PDR_CONTROL_PATH, PDR_DATA_PATH]


def test_max_safe_frequency(model):
    assert model.max_safe_frequency(40.0) == pytest.approx(305.0)
    with pytest.raises(ValueError):
        TimingModel().max_safe_frequency(40.0)


def test_duplicate_path_rejected(model):
    with pytest.raises(ValueError):
        model.add_path(CriticalPath(PDR_DATA_PATH, 100, FailureMode.DATA_CORRUPT))


def test_unknown_path_rejected(model):
    with pytest.raises(KeyError):
        model.ok("nonexistent", 100, 40)


# --------------------------------------------------------------- injectors --
def test_corruption_rate_zero_within_fmax():
    assert corruption_rate(300.0, 315.0) == 0.0
    assert corruption_rate(315.0, 315.0) == 0.0


def test_corruption_rate_grows_with_violation():
    small = corruption_rate(320.0, 315.0)
    large = corruption_rate(360.0, 315.0)
    assert 0 < small < large <= 1.0


def test_corruptor_identity_when_safe():
    corruptor = make_word_corruptor(280.0, 315.0, 40.0)
    words = [1, 2, 3]
    assert corruptor(words) is words


def test_corruptor_deterministic():
    a = make_word_corruptor(360.0, 315.0, 40.0)
    b = make_word_corruptor(360.0, 315.0, 40.0)
    words = list(range(10_000))
    assert a(words) == b(words)


def test_corruptor_differs_across_operating_points():
    words = list(range(10_000))
    a = make_word_corruptor(360.0, 315.0, 40.0)(words)
    b = make_word_corruptor(340.0, 315.0, 40.0)(words)
    assert a != b


def test_corruptor_density_tracks_rate():
    words = [0] * 100_000
    corrupted = make_word_corruptor(360.0, 315.0, 40.0)(words)
    flipped = sum(1 for w in corrupted if w)
    expected = corruption_rate(360.0, 315.0) * len(words)
    assert flipped == pytest.approx(expected, rel=0.2)


@settings(max_examples=50, deadline=None)
@given(
    freq=st.floats(min_value=50.0, max_value=600.0),
    temp=st.floats(min_value=0.0, max_value=125.0),
)
def test_property_pass_fail_frontier_monotone(freq, temp):
    """If a path passes at (f, T), it passes at any lower f and T."""
    model = default_timing_model()
    for name in model.path_names():
        if model.ok(name, freq, temp):
            assert model.ok(name, freq * 0.9, temp)
            assert model.ok(name, freq, max(temp - 10, 0.0))
