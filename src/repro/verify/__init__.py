"""Verification subsystem: runtime invariants + deterministic fuzzing.

The paper's robustness claim — over-clocking failures are *always
detected* and the platform stays correct at any operating point — is
only as strong as the simulator's own correctness.  This package is the
correctness backstop:

* :mod:`repro.verify.invariants` — an :class:`InvariantMonitor` of cheap
  always-on assertion probes wired into the DES kernel, the AXI stream,
  the DMA engine, the ICAP controller, the configuration memory and the
  resilience governor.  Attached to a :class:`~repro.core.PdrSystem` it
  checks conservation laws and protocol legality on every hot-path
  operation, for a few percent of simulation overhead.
* :mod:`repro.verify.fuzz` — a seeded, fully deterministic scenario
  generator that randomises frequency, temperature, bitstream size,
  region, FIFO depth, fault mix and IRQ-timeout budget, runs each
  scenario under the monitor, and *shrinks* any violating scenario to a
  minimal reproducer printed as a ready-to-paste CLI command.
* :mod:`repro.verify.oracle` — a differential oracle: every scenario
  replayed twice must produce byte-identical traces, and a sweep run
  serially must merge byte-identically to the same sweep under
  ``--jobs N``.

Entry point: ``repro-pdr fuzz --seed S --cases N``.
"""

from .invariants import InvariantMonitor, InvariantViolation
from .fuzz import (
    FuzzReport,
    Scenario,
    ScenarioGenerator,
    format_report,
    run_fuzz,
    run_scenario,
    shrink_scenario,
)
from .oracle import (
    DifferentialMismatch,
    assert_parallel_matches_serial,
    assert_replay_identical,
    record_fingerprint,
)

__all__ = [
    "DifferentialMismatch",
    "FuzzReport",
    "InvariantMonitor",
    "InvariantViolation",
    "Scenario",
    "ScenarioGenerator",
    "assert_parallel_matches_serial",
    "assert_replay_identical",
    "format_report",
    "record_fingerprint",
    "run_fuzz",
    "run_scenario",
    "shrink_scenario",
]
