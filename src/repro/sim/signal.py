"""Level-sensitive signals and interrupt lines.

:class:`Signal` models a named wire carrying an arbitrary value.  Processes
can wait for the signal to take a specific value (or satisfy a predicate),
and observers can register callbacks on every change.

:class:`InterruptLine` is a boolean signal with assert/deassert/pulse
semantics and an accounting of how many times it fired — the building block
for the CRC-error and DMA-done interrupts of the paper's Fig. 2.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from .kernel import Event, Simulator

__all__ = ["Signal", "InterruptLine"]


class Signal:
    """A wire with a current value, change callbacks, and waitable edges."""

    def __init__(self, sim: Simulator, initial: Any = None, name: str = "signal"):
        self.sim = sim
        self.name = name
        self._value = initial
        self._watchers: List[Callable[[Any, Any], None]] = []
        self._waiters: List[Tuple[Callable[[Any], bool], Event]] = []
        #: (time_ns, value) change history, capped to keep memory bounded.
        self.history: List[Tuple[float, Any]] = [(sim.now, initial)]
        self.history_limit = 10_000

    @property
    def value(self) -> Any:
        return self._value

    def set(self, value: Any) -> None:
        """Drive a new value; waiters and watchers fire only on change."""
        if value == self._value:
            return
        old, self._value = self._value, value
        if len(self.history) < self.history_limit:
            self.history.append((self.sim.now, value))
        for watcher in list(self._watchers):
            watcher(old, value)
        pending, self._waiters = self._waiters, []
        for predicate, event in pending:
            if predicate(value):
                event.succeed(value)
            else:
                self._waiters.append((predicate, event))

    def watch(self, callback: Callable[[Any, Any], None]) -> None:
        """Register ``callback(old, new)`` on every change."""
        self._watchers.append(callback)

    def unwatch(self, callback: Callable[[Any, Any], None]) -> None:
        self._watchers.remove(callback)

    def wait_for(self, target: Any) -> Event:
        """Event firing when the signal next equals ``target``.

        Fires immediately (same timestamp) if it already does.
        """
        return self.wait_until(lambda v: v == target)

    def wait_change(self) -> Event:
        """Event firing on the next change, whatever the new value."""
        event = self.sim.event(name=f"{self.name}.change")
        self._waiters.append((lambda _v: True, event))
        return event

    def wait_until(self, predicate: Callable[[Any], bool]) -> Event:
        """Event firing when ``predicate(value)`` next holds (or holds now)."""
        event = self.sim.event(name=f"{self.name}.until")
        if predicate(self._value):
            event.succeed(self._value)
        else:
            self._waiters.append((predicate, event))
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Signal {self.name}={self._value!r}>"


class InterruptLine(Signal):
    """A boolean signal with interrupt semantics.

    ``assert_()`` raises the line, ``deassert()`` lowers it, ``pulse()``
    raises then immediately lowers (edge-triggered consumers still see it
    through :meth:`wait_assert` because the rising edge fires waiters).
    """

    def __init__(self, sim: Simulator, name: str = "irq"):
        super().__init__(sim, initial=False, name=name)
        #: Number of rising edges ever driven.
        self.assert_count = 0
        #: Simulation time (ns) of the most recent rising edge, or ``None``.
        self.last_assert_ns: Optional[float] = None

    def assert_(self) -> None:
        if not self._value:
            self.assert_count += 1
            self.last_assert_ns = self.sim.now
        self.set(True)

    def deassert(self) -> None:
        self.set(False)

    def pulse(self) -> None:
        self.assert_()
        self.deassert()

    @property
    def asserted(self) -> bool:
        return bool(self._value)

    def wait_assert(self) -> Event:
        """Event firing on the next rising edge.

        Unlike :meth:`Signal.wait_for`, a currently-high level does *not*
        satisfy the wait — interrupt consumers are edge-triggered.
        """
        event = self.sim.event(name=f"{self.name}.rise")
        self._waiters.append((lambda v: bool(v), event))
        return event
