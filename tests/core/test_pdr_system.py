"""Integration tests for the Fig. 2 PDR system."""

import pytest

from repro.core import PdrSystem, PdrSystemConfig, TABLE1_BITSTREAM_BYTES
from repro.fabric import Aes128Asp, FirFilterAsp, MatMulAsp
from repro.timing import FailureMode


@pytest.fixture(scope="module")
def system(shared_system):
    """One shared system: transfers are independent, as on the bench."""
    return shared_system


def test_bitstream_padded_to_reference_size(system):
    bitstream = system.make_bitstream("RP1", FirFilterAsp([1]))
    assert bitstream.size_bytes == TABLE1_BITSTREAM_BYTES


def test_bitstream_cache_returns_same_object(system):
    a = system.make_bitstream("RP1", FirFilterAsp([1]))
    b = system.make_bitstream("RP1", FirFilterAsp([1]))
    c = system.make_bitstream("RP1", FirFilterAsp([2]))
    assert a is b
    assert c is not a


def test_nominal_reconfiguration(system):
    system.set_die_temperature(40.0)
    result = system.reconfigure("RP1", FirFilterAsp([2, 1]), 100.0)
    assert result.succeeded
    assert result.latency_us == pytest.approx(1325.6, rel=0.005)
    assert result.throughput_mb_s == pytest.approx(399.06, rel=0.005)
    assert result.failure_modes == []
    # The region now computes the FIR.
    assert system.run_asp("RP1", [1, 0, 0]) == [2, 1, 0]


def test_overclocked_reconfiguration_knee(system):
    r200 = system.reconfigure("RP1", FirFilterAsp([2, 1]), 200.0)
    r280 = system.reconfigure("RP1", FirFilterAsp([2, 1]), 280.0)
    assert r200.succeeded and r280.succeeded
    # Above the knee the gain is marginal (paper: saturation).
    assert r280.throughput_mb_s / r200.throughput_mb_s < 1.02
    assert r280.throughput_mb_s == pytest.approx(790.14, rel=0.005)


def test_310_no_interrupt_but_crc_valid(system):
    result = system.reconfigure("RP2", Aes128Asp([1, 2, 3, 4]), 310.0)
    assert not result.interrupt_seen
    assert result.latency_us is None
    assert result.throughput_mb_s is None
    assert result.crc_valid
    assert FailureMode.CONTROL_HANG in result.failure_modes
    # The configuration actually landed: the ASP works.
    out = system.run_asp("RP2", [0, 0, 0, 0])
    assert len(out) == 4


def test_320_corrupts_bitstream(system):
    result = system.reconfigure("RP3", MatMulAsp(2), 320.0)
    assert not result.crc_valid
    assert FailureMode.DATA_CORRUPT in result.failure_modes
    assert not result.succeeded


def test_swapping_asps_changes_function(system):
    system.reconfigure("RP4", FirFilterAsp([1, 1]), 200.0)
    assert system.run_asp("RP4", [1, 2, 3]) == [1, 3, 5]
    system.reconfigure("RP4", MatMulAsp(2), 200.0)
    identity_times_b = system.run_asp("RP4", [1, 0, 0, 1, 4, 3, 2, 1])
    assert identity_times_b == [4, 3, 2, 1]


def test_temperature_dependence_of_310(system):
    system.set_die_temperature(90.0)
    ok_at_90 = system.reconfigure("RP1", FirFilterAsp([5]), 310.0)
    system.set_die_temperature(100.0)
    fail_at_100 = system.reconfigure("RP1", FirFilterAsp([5]), 310.0)
    system.set_die_temperature(40.0)
    assert ok_at_90.crc_valid
    assert not fail_at_100.crc_valid


def test_power_sample_matches_model(system):
    result = system.reconfigure("RP1", FirFilterAsp([9]), 200.0)
    expected = system.power_model.pdr_power_w(200.0, 40.0)
    assert result.pdr_power_w == pytest.approx(expected, abs=0.01)
    assert result.board_power_w == pytest.approx(expected + 2.2, abs=0.01)
    assert result.energy_mj == pytest.approx(
        result.pdr_power_w * result.latency_us / 1e3, rel=1e-6
    )


def test_oled_reflects_last_run(system):
    result = system.reconfigure("RP1", FirFilterAsp([9]), 140.0)
    assert "140" in system.oled.line(0)
    assert f"{result.latency_us:8.1f}" in system.oled.line(2)
    assert "valid" in system.oled.line(3)


def test_unknown_region_rejected(system):
    with pytest.raises(KeyError):
        system.reconfigure("RP9", FirFilterAsp([1]), 100.0)


def test_results_log_accumulates():
    system = PdrSystem()
    assert system.results == []
    system.reconfigure("RP1", FirFilterAsp([1]), 100.0)
    system.reconfigure("RP1", FirFilterAsp([1]), 200.0)
    assert len(system.results) == 2
    assert system.results[0].freq_mhz == pytest.approx(100.0)


def test_config_customisation():
    config = PdrSystemConfig(pad_bitstreams_to=None, die_temp_c=55.0)
    system = PdrSystem(config=config)
    bitstream = system.make_bitstream("RP1", FirFilterAsp([1]))
    assert bitstream.size_bytes < TABLE1_BITSTREAM_BYTES  # unpadded
    assert system.die_temp_c == pytest.approx(55.0)


def test_summary_format(system):
    result = system.reconfigure("RP1", FirFilterAsp([1]), 180.0)
    text = result.summary()
    assert "RP1" in text
    assert "180" in text
    assert "CRC valid" in text


def test_firmware_trace_records_milestones():
    system = PdrSystem()
    system.reconfigure("RP1", FirFilterAsp([1]), 200.0)
    messages = [r.message for r in system.trace.records]
    assert any("clock locked at 200" in m for m in messages)
    assert any("completion interrupt received" in m for m in messages)
    assert any("CRC for RP1: valid" in m for m in messages)

    system.reconfigure("RP1", FirFilterAsp([1]), 320.0)
    messages = [r.message for r in system.trace.records]
    assert any("TIMEOUT" in m for m in messages)
    assert any("NOT VALID" in m for m in messages)
