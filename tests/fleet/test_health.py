"""Board health state machine + failover acceptance properties.

The tracker tests drive the deterministic failure detector directly
(no simulation): degradation and healing, the quarantine threshold, the
circuit breaker's open → half-open → closed rejoin path, and cooldown
doubling on failed probes.  The hypothesis property test runs whole
chaos fleets under randomized board-death schedules and checks the
ISSUE's conservation law: every admitted request gets exactly one
terminal outcome, whatever dies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import FleetSpec, run_fleet
from repro.fleet.health import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    DEAD,
    DEGRADED,
    HEALTHY,
    PROBE_COOLDOWN_US,
    QUARANTINED,
    FleetHealthTracker,
)
from repro.fleet.report import TERMINAL_EXHAUSTED, TERMINAL_SERVED
from repro.resilience import RecoveryPolicy


def make_tracker(boards=2, quarantine_after=2):
    policy = RecoveryPolicy(quarantine_after=quarantine_after)
    return FleetHealthTracker(policy, boards)


def test_single_bad_group_degrades_then_heals():
    tracker = make_tracker()
    tracker.observe_group(0, 100.0, ok=False, deadline_breached=False)
    assert tracker.boards[0].state == DEGRADED
    assert tracker.boards[0].breaker == BREAKER_CLOSED
    tracker.observe_group(0, 200.0, ok=True, deadline_breached=False)
    assert tracker.boards[0].state == HEALTHY
    reasons = [event.reason for event in tracker.boards[0].timeline]
    assert reasons == ["group_failed", "group_ok"]


def test_deadline_breach_counts_as_bad():
    tracker = make_tracker()
    tracker.observe_group(0, 100.0, ok=True, deadline_breached=True)
    assert tracker.boards[0].state == DEGRADED
    assert tracker.boards[0].timeline[-1].reason == "deadline_breached"


def test_consecutive_bad_groups_quarantine_and_open_breaker():
    tracker = make_tracker(quarantine_after=2)
    tracker.observe_group(0, 100.0, ok=False, deadline_breached=False)
    tracker.observe_group(0, 200.0, ok=False, deadline_breached=False)
    health = tracker.boards[0]
    assert health.state == QUARANTINED
    assert health.breaker == BREAKER_OPEN
    assert health.cooldown_us == PROBE_COOLDOWN_US
    assert health.opened_at_us == 200.0
    # A good group while quarantined does NOT heal: only a probe can.
    tracker.observe_group(0, 300.0, ok=True, deadline_breached=False)
    assert tracker.boards[0].state == QUARANTINED


def test_breaker_half_open_promotion_respects_cooldown():
    tracker = make_tracker(quarantine_after=1)
    tracker.observe_group(0, 100.0, ok=False, deadline_breached=False)
    # Before the cooldown elapses the board is not a candidate at all.
    closed, half_open = tracker.candidates(100.0 + PROBE_COOLDOWN_US / 2)
    assert 0 not in closed and 0 not in half_open
    assert 1 in closed
    # At/after the cooldown the breaker goes half-open: probe territory.
    closed, half_open = tracker.candidates(100.0 + PROBE_COOLDOWN_US)
    assert half_open == [0]
    assert tracker.boards[0].breaker == BREAKER_HALF_OPEN


def test_probe_success_rejoins_board():
    tracker = make_tracker(quarantine_after=1)
    tracker.observe_group(0, 100.0, ok=False, deadline_breached=False)
    tracker.candidates(100.0 + PROBE_COOLDOWN_US)
    tracker.mark_probe(0)
    tracker.probe_result(0, 5000.0, ok=True)
    health = tracker.boards[0]
    assert health.state == HEALTHY
    assert health.breaker == BREAKER_CLOSED
    assert health.cooldown_us == PROBE_COOLDOWN_US  # reset for next time
    assert "probe_ok_rejoined" in [e.reason for e in health.timeline]


def test_probe_failure_doubles_cooldown():
    tracker = make_tracker(quarantine_after=1)
    tracker.observe_group(0, 100.0, ok=False, deadline_breached=False)
    tracker.candidates(100.0 + PROBE_COOLDOWN_US)
    tracker.mark_probe(0)
    tracker.probe_result(0, 5000.0, ok=False)
    health = tracker.boards[0]
    assert health.state == QUARANTINED
    assert health.breaker == BREAKER_OPEN
    assert health.cooldown_us == 2 * PROBE_COOLDOWN_US
    assert health.opened_at_us == 5000.0


def test_one_probe_per_board_per_round():
    tracker = make_tracker(quarantine_after=1)
    tracker.observe_group(0, 100.0, ok=False, deadline_breached=False)
    arrival = 100.0 + PROBE_COOLDOWN_US
    tracker.candidates(arrival)
    tracker.mark_probe(0)
    _, half_open = tracker.candidates(arrival)
    assert half_open == []  # already probed this round
    tracker.start_round()
    _, half_open = tracker.candidates(arrival)
    assert half_open == [0]  # allowance resets with the round


def test_dead_board_never_returns():
    tracker = make_tracker()
    tracker.observe_kill(1, 4000.0)
    assert tracker.boards[1].state == DEAD
    closed, half_open = tracker.candidates(1e9)
    assert 1 not in closed and 1 not in half_open
    tracker.probe_result(1, 1e9, ok=True)  # cannot resurrect
    assert tracker.boards[1].state == DEAD


@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(min_value=1, max_value=200),
    kill_boards=st.integers(min_value=0, max_value=2),
)
def test_property_every_request_has_one_terminal_outcome(seed, kill_boards):
    """ISSUE acceptance: conservation under randomized board death."""
    spec = FleetSpec(
        boards=3,
        seed=seed,
        duration_ms=6.0,
        chaos=True,
        chaos_intensity=3,
        kill_boards=kill_boards,
    )
    report = run_fleet(spec)
    assert report.offered == report.admitted + report.rejected
    assert len(report.outcomes) == report.admitted
    indices = [outcome.index for outcome in report.outcomes]
    assert len(set(indices)) == len(indices)
    served = sum(
        1 for o in report.outcomes if o.terminal == TERMINAL_SERVED
    )
    exhausted = sum(
        1 for o in report.outcomes if o.terminal == TERMINAL_EXHAUSTED
    )
    assert served + exhausted == report.admitted
    for outcome in report.outcomes:
        assert outcome.terminal in (TERMINAL_SERVED, TERMINAL_EXHAUSTED)
        assert 1 <= outcome.attempts <= RecoveryPolicy().max_attempts
