"""AXI memory-mapped interconnect.

Routes master bursts to the DDR controller, adding the PS interconnect's
forward latency and arbitrating concurrent masters **round-robin** — so
when the Fig. 1 framework's four RP data channels and the ICAP DMA all
pull on the memory system at once, bandwidth is shared fairly instead of
first-come-starves-the-rest.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..dram import DramController
from ..obs import MetricsRegistry
from ..sim import Event, Simulator

__all__ = ["AxiInterconnect", "AxiSlaveError"]

_DEFAULT_MASTER = "m0"


class AxiSlaveError(RuntimeError):
    """An AXI error response (SLVERR/DECERR) on the memory-mapped bus.

    Raised *through the transaction's completion event* — the waiting
    master receives it where it yielded, exactly like a real error
    response lands on the issuing channel.
    """


class AxiInterconnect:
    """Master-side entry into the PS memory system (round-robin arbiter)."""

    def __init__(
        self,
        sim: Simulator,
        controller: DramController,
        forward_latency_ns: float = 160.0,
        name: str = "axi_ic",
        metrics: Optional[MetricsRegistry] = None,
    ):
        if forward_latency_ns < 0:
            raise ValueError("forward latency cannot be negative")
        self.sim = sim
        self.controller = controller
        self.forward_latency_ns = forward_latency_ns
        self.name = name
        self._queues: Dict[str, Deque[tuple]] = {}
        self._rr_order: List[str] = []
        self._rr_index = 0
        self._pending = 0
        self._wakeup: Event = sim.event(name=f"{name}.wake")
        self.transactions = 0
        self.per_master_transactions: Dict[str, int] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry(now_fn=lambda: sim.now)
        self._m_transactions = self.metrics.counter(f"{name}.transactions")
        self._m_bytes = self.metrics.counter(f"{name}.bytes")
        self._m_outstanding = self.metrics.gauge(f"{name}.outstanding_requests")
        self._m_queue_wait_us = self.metrics.histogram(f"{name}.queue_wait_us")
        self._m_error_responses = self.metrics.counter(f"{name}.error_responses")
        self._m_outstanding.set(0.0)
        #: Optional fault hooks (installed by :mod:`repro.chaos`).
        #: ``fault_stall_ns()`` adds forward-path latency to the next
        #: transaction (arbitration/register-slice stall);
        #: ``fault_error(kind, addr, size)`` may return an exception with
        #: which the transaction completes instead of reaching the DDR
        #: controller (an SLVERR response).
        self.fault_stall_ns: Optional[Callable[[], float]] = None
        self.fault_error: Optional[
            Callable[[str, int, int], Optional[Exception]]
        ] = None
        sim.process(self._arbiter(), name=f"{name}.arbiter", daemon=True)

    # -- master API ----------------------------------------------------------
    def read(self, addr: int, size: int, master: str = _DEFAULT_MASTER) -> Event:
        """Submit a read; the event value is the data bytes."""
        done = self.sim.event(name=f"{self.name}.read")
        self._submit(master, ("r", addr, size, None, done, self.sim.now))
        return done

    def write(self, addr: int, data: bytes, master: str = _DEFAULT_MASTER) -> Event:
        done = self.sim.event(name=f"{self.name}.write")
        self._submit(master, ("w", addr, len(data), data, done, self.sim.now))
        return done

    # -- internals ----------------------------------------------------------
    def _submit(self, master: str, request: tuple) -> None:
        if master not in self._queues:
            self._queues[master] = deque()
            self._rr_order.append(master)
            self.per_master_transactions[master] = 0
        self._queues[master].append(request)
        self._pending += 1
        self._m_outstanding.add(1)
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _next_request(self):
        """Round-robin pick: resume scanning after the last-served master."""
        count = len(self._rr_order)
        for offset in range(count):
            index = (self._rr_index + offset) % count
            master = self._rr_order[index]
            queue = self._queues[master]
            if queue:
                self._rr_index = (index + 1) % count
                self.per_master_transactions[master] += 1
                return queue.popleft()
        raise AssertionError("pending count out of sync with queues")

    def _arbiter(self):
        while True:
            if self._pending == 0:
                self._wakeup = self.sim.event(name=f"{self.name}.wake")
                yield self._wakeup
            kind, addr, size, data, done, submitted_ns = self._next_request()
            self._pending -= 1
            self.transactions += 1
            self._m_transactions.inc()
            self._m_bytes.inc(size)
            self._m_queue_wait_us.observe((self.sim.now - submitted_ns) / 1e3)
            # Forward path: address decode + arbitration + register slices.
            stall_ns = 0.0
            if self.fault_stall_ns is not None:
                stall_ns = max(0.0, self.fault_stall_ns())
            yield self.sim.timeout(self.forward_latency_ns + stall_ns)
            if self.fault_error is not None:
                error = self.fault_error(kind, addr, size)
                if error is not None:
                    self._m_error_responses.inc()
                    done.fail(error)
                    self._m_outstanding.add(-1)
                    continue
            if kind == "r":
                payload = yield self.controller.read(addr, size)
                done.succeed(payload)
            else:
                yield self.controller.write(addr, data)
                done.succeed(None)
            self._m_outstanding.add(-1)
