"""Benchmark E2: regenerate Fig. 5 and verify the knee."""

import pytest

from repro.experiments.fig5 import run_fig5

from conftest import run_once


def test_bench_fig5(benchmark, system):
    data = run_once(benchmark, run_fig5, system=system)

    # Linear region: throughput ~ 4 bytes x f below the knee.
    low = {x: y for x, y in zip(data.measured.x, data.measured.y) if x <= 180}
    for freq, throughput in low.items():
        assert throughput == pytest.approx(4.0 * freq, rel=0.02)

    # The knee falls where the paper says: about 200 MHz.
    assert data.knee_mhz is not None
    assert data.knee_mhz == pytest.approx(200.0, abs=25.0)

    # Saturation ceiling near 790 MB/s.
    assert data.max_throughput_mb_s == pytest.approx(790.14, rel=0.01)

    # Above the knee the curve is flat: <2 % gain from 240 to 300 MHz.
    by_freq = dict(zip(data.measured.x, data.measured.y))
    assert by_freq[300.0] / by_freq[240.0] < 1.02
