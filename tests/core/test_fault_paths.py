"""Regression tests for the firmware failure paths.

Covers the PR's bugfixes: the IRQ-timeout path must actually halt the
DMA and abort the ICAP transfer (previously the engines were left
running), and the measured PDR power can never go negative.
"""

import pytest

from repro.core import PdrSystem, PdrSystemConfig
from repro.fabric import FirFilterAsp
from repro.timing import FailureMode

WORKLOAD = FirFilterAsp([7, 2])


class TestIrqTimeoutAbort:
    def test_engines_quiescent_after_timeout(self):
        # 320 MHz at 40 C suppresses the completion interrupt.
        system = PdrSystem()
        result = system.reconfigure("RP2", WORKLOAD, 320.0)
        assert not result.interrupt_seen
        assert system.dma.idle
        assert not system.icap.busy.value
        assert system.dma.resets_issued == 1
        assert system.icap.aborted_transfers == 1

    def test_fault_abort_phase_recorded(self):
        system = PdrSystem()
        result = system.reconfigure("RP2", WORKLOAD, 320.0)
        assert "fault_abort" in result.phase_us
        assert result.phase_us["fault_abort"] >= 0.0
        ok = system.reconfigure("RP2", WORKLOAD, 100.0)
        assert "fault_abort" not in ok.phase_us

    def test_midflight_abort_with_short_timeout(self):
        # A timeout much shorter than the transfer kills the DMA while
        # words are genuinely in flight; the abort must still drain the
        # stream and leave both engines idle.
        config = PdrSystemConfig(irq_timeout_us=100.0)
        system = PdrSystem(config=config)
        result = system.reconfigure("RP2", WORKLOAD, 100.0)
        assert not result.interrupt_seen
        assert system.dma.idle
        assert not system.icap.busy.value

    def test_system_usable_after_timeout(self):
        # The whole point of the abort: the next transfer starts clean.
        system = PdrSystem()
        failed = system.reconfigure("RP2", WORKLOAD, 320.0)
        assert not failed.succeeded
        retried = system.reconfigure("RP2", WORKLOAD, 100.0)
        assert retried.succeeded
        assert system.run_asp("RP2", [1, 0]) == [7, 2]

    def test_back_to_back_timeouts_do_not_wedge(self):
        system = PdrSystem()
        for _ in range(3):
            result = system.reconfigure("RP2", WORKLOAD, 320.0)
            assert not result.interrupt_seen
            assert system.dma.idle
        assert system.dma.resets_issued == 3


class TestPdrPowerClamp:
    def test_reconfig_result_power_never_negative(self):
        system = PdrSystem()
        for freq in (100.0, 280.0, 320.0):
            result = system.reconfigure("RP2", WORKLOAD, freq)
            assert result.pdr_power_w >= 0.0

    def test_meter_quantisation_cannot_go_negative(self):
        # Banker's rounding can push the quantised board sample below
        # the P0 baseline: board = 2.25 W at 0.5 W resolution reads
        # round(4.5) = 4 ticks = 2.0 W, i.e. 0.2 W *below* P0 = 2.2 W.
        from repro.power import CurrentSense, PowerModel, PowerModelParams

        params = PowerModelParams(
            p_ps_active_w=0.05, p_leak_40c_w=0.0, k_dyn_w_per_mhz=0.0
        )
        sense = CurrentSense(
            PowerModel(params),
            freq_source=lambda: 100.0,
            temp_source=lambda: 40.0,
            resolution_w=0.5,
        )
        assert sense.read_board_power_w() == pytest.approx(2.0)
        assert sense.read_pdr_power_w() == 0.0
