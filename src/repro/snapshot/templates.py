"""Worker-local template registry: one system build per content identity.

Campaign runners (sweeps, fuzz, soak) construct thousands of systems
whose configurations repeat — a 48-point sweep over frequency and
temperature uses a handful of distinct ``PdrSystemConfig`` values.  This
module keeps one pristine :class:`~repro.snapshot.state.SystemSnapshot`
per configuration identity and hands out forks, so layout construction
and (for point templates) bitstream building and DRAM staging happen
once per identity instead of once per point.

Identity is the same content address the executor already uses for
result caching: :func:`repro.exec.spec.canonical_json` of the plain
config mapping (plus region and workload descriptor for point
templates).  The registry is plain module state, so each worker process
in a parallel campaign grows its own — no cross-process sharing, no
locks, and deterministic behaviour per worker.

The whole layer is a pure accelerator: forked and fresh-built systems
replay workloads byte-identically (enforced by tests and CI), and the
``REPRO_SNAPSHOTS`` environment variable turns it off globally for
differential runs.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Mapping, Optional, Tuple

from ..exec.spec import canonical_json
from .state import SystemSnapshot

__all__ = [
    "snapshots_enabled",
    "template_key",
    "template_snapshot",
    "fork_system",
    "point_template_snapshot",
    "fork_point_system",
    "reset_templates",
    "template_count",
]

_ENV_SWITCH = "REPRO_SNAPSHOTS"

#: Worker-local registries.  Keys are canonical-JSON identity strings.
_TEMPLATES: Dict[str, SystemSnapshot] = {}


def snapshots_enabled() -> bool:
    """Template forking is on unless ``REPRO_SNAPSHOTS`` disables it."""
    value = os.environ.get(_ENV_SWITCH, "1").strip().lower()
    return value not in ("0", "off", "no", "false")


def _config_mapping(config) -> Dict[str, Any]:
    """Normalise ``None`` / mapping / ``PdrSystemConfig`` to a dict."""
    if config is None:
        return {}
    if isinstance(config, Mapping):
        return dict(config)
    from ..core.pdr_system import PdrSystemConfig

    if isinstance(config, PdrSystemConfig):
        from dataclasses import asdict

        return asdict(config)
    raise TypeError(f"unsupported config type: {type(config).__name__}")


def _build_system(mapping: Dict[str, Any]):
    from ..core.pdr_system import PdrSystem, PdrSystemConfig

    return PdrSystem(config=PdrSystemConfig(**mapping))


def template_key(config, extra: Optional[Dict[str, Any]] = None) -> str:
    """Content-address identity of a template (canonical JSON)."""
    payload: Dict[str, Any] = {"config": _config_mapping(config)}
    if extra:
        payload.update(extra)
    return canonical_json(payload)


def template_snapshot(config=None) -> SystemSnapshot:
    """The pristine template snapshot for ``config`` (built on first use)."""
    key = template_key(config)
    snapshot = _TEMPLATES.get(key)
    if snapshot is None:
        snapshot = SystemSnapshot.capture(_build_system(_config_mapping(config)))
        _TEMPLATES[key] = snapshot
    return snapshot


def fork_system(config=None):
    """A live system for ``config``: template fork when enabled, else fresh.

    Only default timing/power systems go through templates — callers
    that pass custom models must build directly.
    """
    from ..core.pdr_system import PdrSystem

    if not snapshots_enabled():
        return _build_system(_config_mapping(config))
    return PdrSystem.fork(template_snapshot(config))


def point_template_snapshot(
    region: str, workload: Tuple[str, tuple], config=None
) -> SystemSnapshot:
    """Template with ``workload``'s bitstream already built and staged.

    ``workload`` is an ASP descriptor ``(kind, params)`` as produced by
    :func:`repro.experiments.points.asp_descriptor`.  Building and
    staging are untimed provisioning, so the capture stays fork-safe —
    the forked point skips straight to the timed reconfiguration.
    """
    kind, params = workload
    key = template_key(
        config, {"region": region, "workload": [kind, list(params)]}
    )
    snapshot = _TEMPLATES.get(key)
    if snapshot is None:
        from ..fabric.asp import instantiate_asp

        system = _build_system(_config_mapping(config))
        asp = instantiate_asp(kind, list(params))
        bitstream = system.make_bitstream(region, asp)
        system.stage_bitstream(bitstream)
        snapshot = SystemSnapshot.capture(system)
        _TEMPLATES[key] = snapshot
    return snapshot


def fork_point_system(region: str, workload: Tuple[str, tuple], config=None):
    """A live system with ``workload`` pre-staged for ``region``."""
    from ..core.pdr_system import PdrSystem

    if not snapshots_enabled():
        return _build_system(_config_mapping(config))
    return PdrSystem.fork(point_template_snapshot(region, workload, config))


def reset_templates() -> None:
    """Drop all cached templates (tests and differential harnesses)."""
    _TEMPLATES.clear()


def template_count() -> int:
    """How many templates this worker has built (telemetry/tests)."""
    return len(_TEMPLATES)
