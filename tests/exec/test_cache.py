"""ResultCache: content addressing, corruption tolerance, fingerprinting."""

import pytest

import repro.exec.cache as cache_module
from repro.exec import ResultCache, SweepPoint, code_fingerprint

from .points_for_tests import square


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "sweeps"))


def test_miss_then_hit_roundtrip(cache):
    point = SweepPoint.call(square, x=3)
    hit, _ = cache.get(point)
    assert not hit
    cache.put(point, 9)
    hit, value = cache.get(point)
    assert hit and value == 9
    assert cache.misses == 1 and cache.hits == 1 and cache.stores == 1


def test_distinct_params_get_distinct_keys(cache):
    a = SweepPoint.call(square, x=3)
    b = SweepPoint.call(square, x=4)
    assert cache.key(a) != cache.key(b)
    cache.put(a, 9)
    hit, _ = cache.get(b)
    assert not hit


def test_corrupt_entry_is_a_miss(cache):
    point = SweepPoint.call(square, x=3)
    cache.put(point, 9)
    path = cache._path(cache.key(point))
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    hit, _ = cache.get(point)
    assert not hit


def test_code_fingerprint_changes_key(cache, monkeypatch):
    point = SweepPoint.call(square, x=3)
    key_now = cache.key(point)
    monkeypatch.setattr(cache_module, "_CODE_FINGERPRINT", "different")
    assert cache.key(point) != key_now


def test_fingerprint_is_memoised_and_stable():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 64


def test_put_failure_is_non_fatal(tmp_path):
    # A plain file where the cache root should be: every mkdir fails with
    # OSError, which put() must swallow (the cache is best-effort).
    target = tmp_path / "not-a-directory"
    target.write_text("occupied")
    cache = ResultCache(str(target))
    cache.put(SweepPoint.call(square, x=1), 1)  # must not raise
    assert cache.stores == 0


def test_values_survive_pickle_of_result_records(cache):
    from repro.core.results import ReconfigResult

    result = ReconfigResult(
        region="RP1",
        requested_freq_mhz=200.0,
        freq_mhz=200.0,
        bitstream_bytes=4,
        temp_c=40.0,
        interrupt_seen=True,
        crc_valid=True,
        latency_us=1.0,
        pdr_power_w=0.1,
        board_power_w=1.0,
        failure_modes=[],
    )
    point = SweepPoint.call(square, x=99)
    cache.put(point, result)
    hit, loaded = cache.get(point)
    assert hit
    assert loaded.freq_mhz == 200.0 and loaded.crc_valid
