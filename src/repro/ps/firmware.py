"""The ZedBoard test application (the paper's C program, §IV).

"The application software used to test the system is loaded on an SD
memory card.  The ZedBoard is booted from the SD card.  The memory card
also contains two bitstreams ... We use the ZedBoard's switches to set
the over-clocking frequency.  Moreover, we use two push-buttons to start
the ICAP operations and load one of the two bitstreams.  The testing
results are displayed on the OLED screen."

:class:`ZedboardTestApp` wires exactly that flow onto a
:class:`~repro.core.pdr_system.PdrSystem`: boot stages the SD images into
DRAM (timed), the switch bank selects the frequency, the buttons trigger
loads, and every result lands on the OLED and in the result log.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..bitstream import Bitstream

__all__ = ["ZedboardTestApp"]

#: Buttons used by the paper's test setup: left loads image A, right B.
BUTTON_IMAGE_A = "BTNL"
BUTTON_IMAGE_B = "BTNR"


class ZedboardTestApp:
    """Boot-from-SD test firmware driving the over-clocked PDR system."""

    def __init__(self, system):
        self.system = system
        self._images: Dict[str, Bitstream] = {}
        self._staged: Dict[str, int] = {}
        self._button_map: Dict[str, str] = {}
        self.booted = False
        self.loads_performed = 0
        #: One entry per button-triggered load: which image went where and
        #: which device bottlenecked the reconfiguration (the OLED only
        #: shows the last result; campaign tooling reads this log).
        self.load_log: List[Dict[str, object]] = []

    # -- provisioning (before power-on) -----------------------------------
    def provision_image(self, name: str, region: str, asp) -> None:
        """Write an ASP image onto the SD card (bench preparation)."""
        bitstream = self.system.make_bitstream(region, asp, description=name)
        self.system.sdcard.store_file(f"{name}.bin", bitstream.to_bytes())
        self._images[name] = bitstream

    def bind_button(self, button: str, image_name: str) -> None:
        if image_name not in self._images:
            raise KeyError(f"no provisioned image {image_name!r}")
        self._button_map[button] = image_name
        self.system.buttons.on_press(
            button, lambda name=image_name: self.load_image(name)
        )

    # -- boot ---------------------------------------------------------------
    def boot(self) -> None:
        """Boot: read every image off the SD card and stage it in DRAM.

        Timed — SD reads at ~20 MB/s make boot take tens of milliseconds,
        which is why the images are staged once and reconfiguration then
        runs from DRAM.
        """
        if self.booted:
            raise RuntimeError("already booted")

        def sequence():
            for name, bitstream in sorted(self._images.items()):
                yield self.system.sdcard.read_file(f"{name}.bin")
                self._staged[name] = self.system.stage_bitstream(bitstream)
            return len(self._staged)

        process = self.system.sim.process(sequence(), name="fw.boot")
        self.system.sim.run_until(process)
        self.booted = True

    # -- operation -----------------------------------------------------------
    def selected_frequency_mhz(self) -> float:
        return self.system.switches.selected_frequency_mhz()

    def load_image(self, name: str):
        """One button press: reconfigure with ``name`` at the switch MHz."""
        if not self.booted:
            raise RuntimeError("press ignored: not booted yet")
        if name not in self._staged:
            raise KeyError(f"image {name!r} not staged (boot first)")
        bitstream = self._images[name]
        result = self.system.reconfigure(
            bitstream.region_name,
            asp=None,
            freq_mhz=self.selected_frequency_mhz(),
            bitstream=bitstream,
        )
        self.loads_performed += 1
        self.load_log.append(
            {
                "image": name,
                "region": result.region,
                "freq_mhz": result.freq_mhz,
                "latency_us": result.latency_us,
                "succeeded": result.succeeded,
                "critical_path": result.critical_path,
                "device_us": dict(result.device_us),
            }
        )
        return result

    def image_names(self) -> List[str]:
        return sorted(self._images)

    def oled_snapshot(self) -> List[str]:
        return self.system.oled.snapshot()
