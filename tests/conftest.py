"""Shared fixtures for the whole test tree.

Every suite that needs an assembled platform used to construct its own
``PdrSystem()`` fixture; they are centralised here.

* ``system`` — a fresh system per test (isolation; resilience/fault
  suites mutate governor state and config memory).
* ``shared_system`` — one system per test module (speed; transfers are
  independent, as on the bench, so read-mostly suites share it).
* ``make_system`` — factory for suites that need a custom
  :class:`~repro.core.PdrSystemConfig`.
* ``canned_bitstream`` — a prebuilt reference partial bitstream
  (passthrough ASP on RP1, Table I padding), session-scoped and
  read-only.
"""

import pytest

from repro.core import PdrSystem, PdrSystemConfig


@pytest.fixture()
def make_system():
    """Factory: ``make_system(**config_kwargs)`` -> fresh ``PdrSystem``."""

    def factory(**config_kwargs):
        config = PdrSystemConfig(**config_kwargs) if config_kwargs else None
        return PdrSystem(config)

    return factory


@pytest.fixture()
def system():
    """A fresh system per test."""
    return PdrSystem()


@pytest.fixture(scope="module")
def shared_system():
    """One system per test module: transfers are independent, as on the
    bench, so suites that only reconfigure/measure can share it."""
    return PdrSystem()


@pytest.fixture(scope="session")
def canned_bitstream():
    """A reference partial bitstream (passthrough on RP1), read-only."""
    from repro.fabric import PassthroughAsp

    return PdrSystem().make_bitstream("RP1", PassthroughAsp())
