"""Chaos injector: delivers a :class:`~repro.chaos.faults.FaultPlan`
against a live :class:`~repro.core.PdrSystem`.

The injector is the only component that touches the device models' fault
hooks (``fault_*`` attributes, ``None`` by default so the hot path stays
hook-free).  ``arm()`` installs one hook per subsystem plus one daemon
delivery process per *scheduled* fault; ``disarm()`` removes everything.

Delivery semantics per kind:

* ``dram_bitflip`` / ``axi_slverr`` / ``icap_lockup`` arm a consumable
  budget at their scheduled time; the next matching transactions absorb
  it (a bounded transient, recovered by the firmware's retry ladder).
* ``dram_latency`` / ``axi_stall`` open a degradation *window*; every
  transaction inside it pays the extra latency (service degrades, no
  data is lost).
* ``clock_loss_of_lock`` / ``brownout`` call the clocking / power models
  directly; both self-recover (MMCM re-lock, droop expiry).
* ``seu`` waits until the target region is loaded **and** the ICAP is
  idle (upsets during an active reconfiguration are indistinguishable
  from transfer corruption and are the firmware's own retry problem),
  then flips one configuration word — detection is the background
  scrubber's job, repair the resilience layer's.

Every delivery appends a plain-data event record to :attr:`events`,
increments ``chaos.*`` counters and emits a ``chaos`` trace span, so a
soak report can audit exactly what was injected when, and what recovered.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..axi import AxiSlaveError
from ..obs import SpanRecorder

from .faults import FaultPlan

__all__ = ["ChaosInjector"]


class ChaosInjector:
    """Arms a fault plan against one PDR system."""

    #: SEU gating poll period (ns) while the ICAP is busy or the target
    #: region has no golden CRC loaded yet.
    SEU_POLL_NS = 50_000.0

    def __init__(self, system, plan: FaultPlan):
        self.system = system
        self.plan = plan
        self.armed = False
        metrics = system.metrics
        self._m_total = metrics.counter("chaos.faults_injected")
        self._m_kind = {
            kind: metrics.counter(f"chaos.injected.{kind}")
            for kind in sorted({fault.kind for fault in plan.faults})
        }
        self._m_applications = metrics.counter("chaos.fault_applications")
        self._spans = SpanRecorder(
            now_fn=lambda: system.sim.now,
            tracer=system.trace,
            source="chaos",
            metrics=metrics,
            metrics_prefix="chaos.phase.",
        )
        #: One record per planned fault (same order as the plan).
        self.events: List[Dict] = []
        # Armed state the hooks consult (event dicts double as state).
        self._bitflips: List[Dict] = []
        self._latency_windows: List[Dict] = []
        self._stall_windows: List[Dict] = []
        self._slverrs: List[Dict] = []
        self._lockups: List[Dict] = []

    # -- lifecycle ----------------------------------------------------------
    def arm(self) -> None:
        """Install hooks and spawn one delivery daemon per fault."""
        if self.armed:
            raise RuntimeError("chaos injector already armed")
        system = self.system
        for name in ("fault_latency_ns", "fault_read_tamper"):
            if getattr(system.dram_controller, name) is not None:
                raise RuntimeError(f"dram {name} hook already installed")
        self.armed = True
        system.dram_controller.fault_latency_ns = self._dram_latency_hook
        system.dram_controller.fault_read_tamper = self._dram_tamper_hook
        system.interconnect.fault_stall_ns = self._axi_stall_hook
        system.interconnect.fault_error = self._axi_error_hook
        system.icap.fault_lockup_cycles = self._icap_lockup_hook
        for index, fault in enumerate(self.plan.faults):
            event = {
                "kind": fault.kind,
                "planned_us": fault.at_us,
                "params": dict(fault.params),
                "injected_ns": None,
                "recovered_ns": None,
                "applications": 0,
            }
            self.events.append(event)
            system.sim.process(
                self._deliver(fault, event),
                name=f"chaos.{fault.kind}@{fault.at_us}us#{index}",
                daemon=True,
            )

    def disarm(self) -> None:
        """Remove every installed hook (delivered state stays recorded)."""
        if not self.armed:
            return
        system = self.system
        system.dram_controller.fault_latency_ns = None
        system.dram_controller.fault_read_tamper = None
        system.interconnect.fault_stall_ns = None
        system.interconnect.fault_error = None
        system.icap.fault_lockup_cycles = None
        self.armed = False

    # -- summary ------------------------------------------------------------
    @property
    def injected_count(self) -> int:
        return sum(1 for e in self.events if e["injected_ns"] is not None)

    def injected_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            if event["injected_ns"] is not None:
                counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        return counts

    # -- delivery daemons ------------------------------------------------------
    def _mark_injected(self, fault, event) -> None:
        event["injected_ns"] = self.system.sim.now
        self._m_total.inc()
        self._m_kind[fault.kind].inc()
        with self._spans.span("inject", kind=fault.kind, at_us=fault.at_us):
            pass

    def _deliver(self, fault, event):
        sim = self.system.sim
        at_ns = fault.at_us * 1e3
        if at_ns > sim.now:
            yield sim.timeout(at_ns - sim.now)
        kind = fault.kind
        if kind == "dram_bitflip":
            event["remaining"] = fault.param("count", 1)
            event["flip_mask"] = fault.param("flip_mask", 1)
            self._bitflips.append(event)
            self._mark_injected(fault, event)
        elif kind == "dram_latency":
            event["end_ns"] = sim.now + fault.param("window_us", 0.0) * 1e3
            event["extra_ns"] = fault.param("extra_ns", 0.0)
            self._latency_windows.append(event)
            self._mark_injected(fault, event)
            yield sim.timeout(event["end_ns"] - sim.now)
            event["recovered_ns"] = sim.now
        elif kind == "axi_stall":
            event["end_ns"] = sim.now + fault.param("window_us", 0.0) * 1e3
            event["stall_ns"] = fault.param("stall_ns", 0.0)
            self._stall_windows.append(event)
            self._mark_injected(fault, event)
            yield sim.timeout(event["end_ns"] - sim.now)
            event["recovered_ns"] = sim.now
        elif kind == "axi_slverr":
            event["remaining"] = fault.param("count", 1)
            self._slverrs.append(event)
            self._mark_injected(fault, event)
        elif kind == "icap_lockup":
            event["remaining"] = fault.param("bursts", 1)
            event["cycles"] = fault.param("cycles", 0)
            self._lockups.append(event)
            self._mark_injected(fault, event)
        elif kind == "clock_loss_of_lock":
            relock = self.system.clock_wizard.lose_lock()
            self._mark_injected(fault, event)
            if relock is not None:
                yield relock
            event["recovered_ns"] = sim.now
        elif kind == "brownout":
            duration_ns = fault.param("duration_us", 0.0) * 1e3
            self.system.supply.brownout(
                fault.param("ceiling_mhz", 100.0), duration_ns
            )
            self._mark_injected(fault, event)
            yield sim.timeout(duration_ns)
            event["recovered_ns"] = sim.now
        elif kind == "seu":
            yield from self._deliver_seu(fault, event)
        else:  # pragma: no cover - plan builder rejects unknown kinds
            raise ValueError(f"unknown fault kind {kind!r}")

    def _deliver_seu(self, fault, event):
        """Gate, then flip one configuration word of a loaded region."""
        sim = self.system.sim
        region = fault.param("region")
        scrubber = self.system.scrubber
        # Outside active reconfigurations only: wait until no firmware
        # sequence is in flight (the ICAP busy flag flickers low between
        # bursts and the post-transfer scrub runs with idle engines, so
        # neither engine flag alone is enough) and the region holds
        # golden (CRC-tracked) content.
        while (
            self.system.firmware_active
            or self.system.icap.busy.value
            or not self.system.dma.idle
            or region not in scrubber.expected_regions()
        ):
            yield sim.timeout(self.SEU_POLL_NS)
        self.system.memory.corrupt_region_word(
            region,
            fault.param("offset_words", 0),
            flip_mask=fault.param("flip_mask", 1),
        )
        event["region"] = region
        self._mark_injected(fault, event)
        self.system.trace.emit(
            sim.now,
            "chaos",
            f"SEU: flipped word {fault.param('offset_words', 0)} of {region} "
            f"(mask {fault.param('flip_mask', 1):#x})",
        )

    # -- hooks (consulted on device hot paths once armed) ----------------------
    def _dram_latency_hook(self, request) -> float:
        now = self.system.sim.now
        extra = 0.0
        for window in self._latency_windows:
            if now <= window["end_ns"]:
                extra += window["extra_ns"]
                window["applications"] += 1
                self._m_applications.inc()
        return extra

    def _dram_tamper_hook(self, request, data: bytes) -> bytes:
        for flip in self._bitflips:
            if flip["remaining"] > 0 and len(data) >= 4:
                flip["remaining"] -= 1
                flip["applications"] += 1
                self._m_applications.inc()
                word = int.from_bytes(data[:4], "big") ^ flip["flip_mask"]
                data = word.to_bytes(4, "big") + data[4:]
                if flip["remaining"] == 0:
                    flip["recovered_ns"] = self.system.sim.now
        return data

    def _axi_stall_hook(self) -> float:
        now = self.system.sim.now
        stall = 0.0
        for window in self._stall_windows:
            if now <= window["end_ns"]:
                stall += window["stall_ns"]
                window["applications"] += 1
                self._m_applications.inc()
        return stall

    def _axi_error_hook(
        self, kind: str, addr: int, size: int
    ) -> Optional[Exception]:
        for slverr in self._slverrs:
            if slverr["remaining"] > 0:
                slverr["remaining"] -= 1
                slverr["applications"] += 1
                self._m_applications.inc()
                slverr["recovered_ns"] = self.system.sim.now
                return AxiSlaveError(
                    f"injected SLVERR on {kind} @{addr:#x} ({size} B)"
                )
        return None

    def _icap_lockup_hook(self) -> int:
        for lockup in self._lockups:
            if lockup["remaining"] > 0:
                lockup["remaining"] -= 1
                lockup["applications"] += 1
                self._m_applications.inc()
                if lockup["remaining"] == 0:
                    lockup["recovered_ns"] = self.system.sim.now
                return lockup["cycles"]
        return 0
