"""Tests for the recovery policy (attempt budget + backoff ladder)."""

import pytest

from repro.resilience import RecoveryPolicy
from repro.timing import FailureMode


def test_defaults_valid():
    policy = RecoveryPolicy()
    assert policy.max_attempts == 4
    assert 0.0 < policy.backoff_factor < 1.0


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(max_attempts=0),
        dict(backoff_factor=0.0),
        dict(backoff_factor=1.0),
        dict(backoff_factor=1.5),
        dict(freq_floor_mhz=0.0),
        dict(quarantine_after=0),
    ],
)
def test_invalid_knobs_rejected(kwargs):
    with pytest.raises(ValueError):
        RecoveryPolicy(**kwargs)


def test_control_hang_backs_off_immediately():
    policy = RecoveryPolicy()
    next_freq = policy.next_frequency(300.0, 0, [FailureMode.CONTROL_HANG])
    assert next_freq == pytest.approx(270.0)


def test_pure_data_corrupt_gets_one_same_frequency_retry():
    policy = RecoveryPolicy()
    assert policy.next_frequency(300.0, 0, [FailureMode.DATA_CORRUPT]) == 300.0
    # ...but only the first retry; after that the ladder engages.
    assert policy.next_frequency(300.0, 1, [FailureMode.DATA_CORRUPT]) == pytest.approx(270.0)


def test_mixed_modes_back_off():
    policy = RecoveryPolicy()
    modes = [FailureMode.DATA_CORRUPT, FailureMode.CONTROL_HANG]
    assert policy.next_frequency(300.0, 0, modes) == pytest.approx(270.0)


def test_same_frequency_retry_can_be_disabled():
    policy = RecoveryPolicy(retry_same_on_data_corrupt=False)
    assert policy.next_frequency(300.0, 0, [FailureMode.DATA_CORRUPT]) == pytest.approx(270.0)


def test_backoff_respects_floor():
    policy = RecoveryPolicy(freq_floor_mhz=100.0)
    assert policy.next_frequency(105.0, 0, [FailureMode.CONTROL_HANG]) == 100.0
    assert policy.next_frequency(100.0, 1, [FailureMode.CONTROL_HANG]) == 100.0


def test_ladder_covers_attempt_budget():
    policy = RecoveryPolicy(max_attempts=4, backoff_factor=0.9)
    rungs = policy.ladder(360.0)
    assert rungs == [pytest.approx(324.0), pytest.approx(291.6), pytest.approx(262.44)]


def test_ladder_stops_at_floor():
    policy = RecoveryPolicy(max_attempts=10, backoff_factor=0.5, freq_floor_mhz=100.0)
    rungs = policy.ladder(360.0)
    assert rungs[-1] == 100.0
    # No rungs below the floor, and no duplicates after hitting it.
    assert rungs == [180.0, 100.0]


def test_ladder_recovers_paper_grid():
    # The acceptance bound: from any grid frequency up to 360 MHz the
    # ladder must reach a rung below the worst-case (100 C) control-path
    # fmax of ~299.5 MHz within the default attempt budget.
    policy = RecoveryPolicy()
    worst_fmax = 299.5
    for freq in range(100, 361, 20):
        candidates = [float(freq)] + policy.ladder(float(freq))
        assert any(rung <= worst_fmax for rung in candidates), freq


def test_mapping_round_trip():
    policy = RecoveryPolicy(max_attempts=6, backoff_factor=0.8, freq_floor_mhz=50.0)
    mapping = policy.to_mapping()
    assert isinstance(mapping, dict)
    assert RecoveryPolicy.from_mapping(mapping) == policy
    assert RecoveryPolicy.from_mapping(None) == RecoveryPolicy()
