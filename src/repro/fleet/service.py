"""Fleet execution: boards simulate their schedules, SLOs are replayed.

:func:`run_fleet` is the service's main loop, split into three
deterministic phases:

1. **Plan** — :func:`~repro.fleet.workload.build_workload` +
   :func:`~repro.fleet.scheduler.plan_fleet` turn ``(seed, duration,
   rate, mode)`` into per-board dispatch schedules.  Pure data.
2. **Execute** — each board's schedule runs on a real
   :class:`~repro.core.PdrSystem` (forked from the snapshot template)
   through :class:`~repro.exec.SweepRunner`.  Boards are independent —
   the only cross-board coupling (placement) already happened in the
   plan — so this phase fans out over worker processes and the runner's
   merge-in-spec-order contract keeps ``--jobs N`` byte-identical to
   serial.
3. **Replay** — the *measured* per-group service times are replayed
   against the request arrival times to recover the fleet timeline: a
   group starts when the board is free and every member has arrived;
   every member completes when its group does.  Queue wait and
   end-to-end latency per request fall out, and with them the SLOs.

The split exists because a board's simulator only knows its own clock
(each board simulates its dispatch sequence back-to-back from t=0); the
queueing behaviour lives in the arrival process, which phase 3 owns.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..exec.runner import SweepRunner, note_events
from ..snapshot.templates import fork_system
from ..verify.fuzz import _make_asp
from .report import BoardUsage, FleetReport, RequestOutcome
from .scheduler import FleetPlan, plan_fleet
from .workload import ARRIVAL_MODES, build_workload

__all__ = ["FleetSpec", "board_point", "run_fleet"]


@dataclass(frozen=True)
class FleetSpec:
    """One fleet campaign, fully determined by its fields."""

    boards: int = 4
    seed: int = 1
    duration_ms: float = 20.0
    arrival: str = "poisson"
    #: Offered load: mean request arrivals per millisecond.
    rate_per_ms: float = 2.0
    #: Bounded per-board queue; arrivals beyond it are rejected.
    queue_depth: int = 6
    #: Same-bitstream coalescing + SG dispatch grouping.
    batching: bool = True
    #: Max jobs per scatter-gather dispatch group.
    batch_limit: int = 4
    #: PL clock for every load (the robust Table-I operating point).
    freq_mhz: float = 200.0
    #: Arm a per-board fault storm and execute through the resilience
    #: layer (see :mod:`repro.fleet.health`).
    chaos: bool = False
    #: Environmental faults per board in the storm round.
    chaos_intensity: int = 4
    #: Boards killed permanently mid-run (seed-deterministic schedule).
    kill_boards: int = 0
    #: Poisson SEU rate per board (chaos rounds only; 0 disables).
    seu_per_ms: float = 0.0
    #: Attach an InvariantMonitor to every board system.
    verify: bool = False

    def __post_init__(self) -> None:
        if self.boards < 1:
            raise ValueError("a fleet needs at least one board")
        if self.arrival not in ARRIVAL_MODES:
            raise ValueError(
                f"unknown arrival mode {self.arrival!r} "
                f"(expected one of {ARRIVAL_MODES})"
            )
        if self.chaos_intensity < 0:
            raise ValueError("chaos intensity cannot be negative")
        if not 0 <= self.kill_boards <= self.boards:
            raise ValueError("kill_boards must be within the fleet size")
        if self.kill_boards and not self.chaos:
            raise ValueError("kill_boards requires chaos mode")

    def to_mapping(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def board_point(board: int, groups: Sequence, freq_mhz: float) -> Dict[str, Any]:
    """Execute one board's dispatch schedule; returns measured timings.

    ``groups`` arrives in the runner's canonical form: a tuple of
    dispatch groups, each a tuple of ``(region, asp_kind, asp_param,
    pad_to)`` jobs (``pad_to == 0`` meaning content-sized).  The board is
    forked from the snapshot template — the fleet's cheap
    board-provisioning path — and runs its groups back-to-back; the
    queue timeline is reconstructed later from these service times plus
    the arrival process.
    """
    system = fork_system()
    executed: List[Dict[str, Any]] = []
    for group in groups:
        start_ns = system.sim.now
        if len(group) == 1:
            region, kind, param, pad = group[0]
            asp = _make_asp(kind, int(param))
            bitstream = system.make_bitstream(
                region, asp, pad_to=int(pad) or None
            )
            result = system.reconfigure(region, asp, freq_mhz, bitstream)
            ok = bool(result.crc_valid)
        else:
            jobs = [
                (region, _make_asp(kind, int(param)), int(pad) or None)
                for region, kind, param, pad in group
            ]
            batch = system.reconfigure_batch(jobs, freq_mhz)
            ok = all(batch.region_valid.values())
        executed.append(
            {
                "jobs": len(group),
                # Measured wall (sim) time of the whole dispatch: clock
                # lock, driver setup, transfer(s), post-load scrub.
                "service_us": round((system.sim.now - start_ns) / 1e3, 3),
                "ok": ok,
            }
        )
    note_events(system.sim.events_processed)
    return {
        "board": int(board),
        "groups": executed,
        # Dead simulation processes are findings, not noise: the fuzz
        # and chaos campaigns already fail on them, the fleet does too.
        "unhandled_failures": [
            process.name for process in system.sim.unhandled_failures
        ],
    }


def _replay_timeline(
    plan: FleetPlan,
    executed: Sequence[Dict[str, Any]],
    arrivals_us: Dict[int, float],
) -> Tuple[List[RequestOutcome], List[BoardUsage]]:
    """Phase 3: measured service times × arrival process → per-request SLOs."""
    outcomes: List[RequestOutcome] = []
    usages: List[BoardUsage] = []
    for board_plan, payload in zip(plan.boards, executed):
        free_us = 0.0
        busy_us = 0.0
        served = 0
        last_end_us = 0.0
        for group, measured in zip(board_plan.groups, payload["groups"]):
            ready_us = max(job.arrival_us for job in group)
            start_us = max(free_us, ready_us)
            service_us = float(measured["service_us"])
            end_us = start_us + service_us
            for job in group:
                for member in job.members:
                    arrival = arrivals_us[member]
                    outcomes.append(
                        RequestOutcome(
                            index=member,
                            board=board_plan.board,
                            wait_us=round(start_us - arrival, 3),
                            latency_us=round(end_us - arrival, 3),
                            batched=len(group) > 1 or len(job.members) > 1,
                            ok=bool(measured["ok"]),
                        )
                    )
                    served += 1
            free_us = end_us
            busy_us += service_us
            last_end_us = end_us
        usages.append(
            BoardUsage(
                board=board_plan.board,
                loads=len(board_plan.jobs),
                groups=len(board_plan.groups),
                requests=served,
                busy_us=round(busy_us, 3),
                span_us=round(last_end_us, 3),
            )
        )
    outcomes.sort(key=lambda outcome: outcome.index)
    return outcomes, usages


def run_fleet(
    spec: FleetSpec,
    jobs: int = 1,
    runner: Optional[SweepRunner] = None,
) -> FleetReport:
    """Run one fleet campaign end to end; pure function of ``spec``.

    Chaos-mode specs (``chaos=True``) route through the health/failover
    driver (:func:`repro.fleet.health.run_chaos_fleet`); the plain path
    below stays the no-faults fast path.
    """
    if spec.chaos or spec.verify:
        from .health import run_chaos_fleet

        return run_chaos_fleet(spec, jobs=jobs, runner=runner)
    requests = build_workload(
        spec.seed, spec.duration_ms, spec.arrival, spec.rate_per_ms
    )
    plan = plan_fleet(
        requests,
        boards=spec.boards,
        queue_depth=spec.queue_depth,
        batching=spec.batching,
        batch_limit=spec.batch_limit,
    )
    param_sets = [
        {
            "board": board_plan.board,
            "groups": board_plan.executable_groups(),
            "freq_mhz": spec.freq_mhz,
        }
        for board_plan in plan.boards
    ]
    labels = [f"board{board_plan.board}" for board_plan in plan.boards]
    runner = runner or SweepRunner(jobs=jobs)
    executed = runner.map(
        f"fleet-{spec.arrival}-s{spec.seed}", board_point, param_sets, labels
    )
    arrivals_us = {request.index: request.arrival_us for request in requests}
    outcomes, usages = _replay_timeline(plan, executed, arrivals_us)
    unhandled = [
        {
            "board": payload["board"],
            "processes": list(payload["unhandled_failures"]),
        }
        for payload in executed
        if payload.get("unhandled_failures")
    ]
    return FleetReport.build(
        spec=spec.to_mapping(),
        offered=len(requests),
        plan=plan,
        outcomes=outcomes,
        boards=usages,
        unhandled=unhandled,
    )
