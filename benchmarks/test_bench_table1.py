"""Benchmark E1: regenerate Table I and verify its shape."""

import pytest

from repro.experiments.calibration import PAPER_TABLE1
from repro.experiments.table1 import run_table1

from conftest import run_once


def test_bench_table1(benchmark, system):
    rows = run_once(benchmark, run_table1, system=system)

    assert len(rows) == len(PAPER_TABLE1)
    by_freq = {row.freq_mhz: row for row in rows}

    # Regimes: every row lands in the same measured/N-A + CRC class.
    for row in rows:
        assert row.matches_paper_shape, f"{row.freq_mhz} MHz regime mismatch"

    # Quantitative: successful rows within 1 % of the paper.
    for freq, (latency, throughput, _crc) in PAPER_TABLE1.items():
        if latency is None:
            continue
        result = by_freq[freq].result
        assert result.latency_us == pytest.approx(latency, rel=0.01)
        assert result.throughput_mb_s == pytest.approx(throughput, rel=0.01)

    # Headline numbers: ~400 MB/s nominal -> ~790 MB/s at 280 MHz.
    assert by_freq[100.0].result.throughput_mb_s == pytest.approx(399.06, rel=0.01)
    assert by_freq[280.0].result.throughput_mb_s == pytest.approx(790.14, rel=0.01)
