"""Copy-on-write system snapshots.

A :class:`SystemSnapshot` freezes the *provisioning* state of a
:class:`~repro.core.PdrSystem` — everything that exists before simulated
time starts moving: the configuration identity, the fabric's frame
content, the DRAM pages holding staged bitstreams, the staging cursor,
the instance bitstream cache and the scrubber's golden CRCs.  All of it
is plain data (bytes, ints, tuples), so a snapshot is immutable and
shareable.

``PdrSystem.fork(snapshot)`` rebuilds a live system from a snapshot:
the constructor still wires the device graph (processes, signals and
metrics are live objects and cannot be frozen), but the fork inherits
every built artifact — no ASP re-encode, no bitstream re-build, no DRAM
re-staging.  Because capture is restricted to untimed state (simulated
time zero, no events processed), a forked system replays a workload
**byte-identically** to a fresh-built one: the timed sequence starts
from the exact same inputs either way.  Campaign runners exploit this
via :mod:`repro.snapshot.templates`: one template system per content
identity, forked per point.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, Optional, Tuple

__all__ = ["SnapshotError", "SystemSnapshot"]


class SnapshotError(RuntimeError):
    """Capture or restore violated the snapshot contract."""


def _config_items(config) -> Tuple[Tuple[str, Any], ...]:
    """A ``PdrSystemConfig`` as sorted plain ``(field, value)`` pairs."""
    return tuple(
        (f.name, getattr(config, f.name))
        for f in sorted(dataclass_fields(config), key=lambda f: f.name)
    )


@dataclass(frozen=True)
class SystemSnapshot:
    """Immutable provisioning state of one system.

    Build with :meth:`capture`; consume with
    :meth:`repro.core.PdrSystem.fork` (which calls :meth:`restore_into`
    on the freshly constructed system).
    """

    #: Sorted ``(field, value)`` pairs of the ``PdrSystemConfig``.
    config: Tuple[Tuple[str, Any], ...]
    #: ``ConfigMemory.capture_state()`` result, or ``None`` for a blank
    #: fabric (the common template case — restoring a no-op is skipped).
    memory_state: Optional[tuple]
    #: ``DramDevice.capture_state()`` result, or ``None`` when empty.
    dram_state: Optional[tuple]
    #: Next free staging address.
    staging_cursor: int
    #: Instance bitstream cache: ``(cache_key, Bitstream)`` pairs.  The
    #: Bitstream objects are read-only by contract (mutations go through
    #: ``Bitstream.corrupted``, which copies), so sharing them across
    #: forks is safe.
    bitstreams: Tuple[Tuple[tuple, Any], ...]
    #: Staged DRAM addresses, keyed by position in :attr:`bitstreams`.
    staged: Tuple[Tuple[int, int], ...]
    #: Scrubber golden CRCs: ``(region, crc)`` pairs.
    expected_crcs: Tuple[Tuple[str, int], ...]
    #: Per-region reconfiguration counters.
    region_counts: Tuple[Tuple[str, int], ...]

    @classmethod
    def capture(cls, system) -> "SystemSnapshot":
        """Freeze ``system``'s provisioning state.

        Only an *untimed* system can be captured: building and staging
        bitstreams are bench provisioning (no simulation events), and
        restricting capture to that phase is what makes a fork's timed
        run byte-identical to a fresh system's.
        """
        if system.sim.now != 0 or system.sim.events_processed != 0:
            raise SnapshotError(
                "snapshots capture untimed provisioning state only; this "
                f"system already ran (now={system.sim.now}, "
                f"events={system.sim.events_processed})"
            )
        memory_state = system.memory.capture_state()
        slab, generations, writes = memory_state
        if writes == 0 and not any(generations) and slab.count(0) == len(slab):
            memory_state = None
        dram_state = system.dram.capture_state()
        if not dram_state[0] and not dram_state[1]:
            dram_state = None
        bitstreams = tuple(system._bitstream_cache.items())
        staged = tuple(
            (position, system._staged_addrs[id(bitstream)])
            for position, (_key, bitstream) in enumerate(bitstreams)
            if id(bitstream) in system._staged_addrs
        )
        return cls(
            config=_config_items(system.config),
            memory_state=memory_state,
            dram_state=dram_state,
            staging_cursor=system._staging_cursor,
            bitstreams=bitstreams,
            staged=staged,
            expected_crcs=tuple(
                sorted(system.scrubber._expected.items())
            ),
            region_counts=tuple(
                (name, region.reconfiguration_count)
                for name, region in sorted(system.regions.items())
            ),
        )

    def config_mapping(self) -> Dict[str, Any]:
        """The captured config as a keyword mapping."""
        return dict(self.config)

    def restore_into(self, system) -> None:
        """Load this snapshot's state into a freshly constructed system.

        ``system`` must have been built from :meth:`config_mapping` (the
        fork path does this) and not yet run.
        """
        if _config_items(system.config) != self.config:
            raise SnapshotError(
                "fork target was constructed with a different config "
                "than the snapshot captured"
            )
        if system.sim.now != 0 or system.sim.events_processed != 0:
            raise SnapshotError("fork target already ran")
        if self.memory_state is not None:
            system.memory.restore_state(self.memory_state)
        if self.dram_state is not None:
            system.dram.restore_state(self.dram_state)
        system._staging_cursor = self.staging_cursor
        system._bitstream_cache = dict(self.bitstreams)
        staged_addrs = {}
        for position, addr in self.staged:
            _key, bitstream = self.bitstreams[position]
            staged_addrs[id(bitstream)] = addr
        system._staged_addrs = staged_addrs
        for region, crc in self.expected_crcs:
            system.scrubber.set_expected_crc(region, crc)
        for name, count in self.region_counts:
            system.regions[name].reconfiguration_count = count
