"""Experiment E6 — Table III: comparison with related work.

Runs every baseline controller at its published operating point on the
reference bitstream and reproduces the comparison table, plus the §V
frequency-scaling narrative (E8): how each design behaves as the clock
rises, including VF-2012's fail/freeze thresholds and HP-2011's
active-feedback clamp.

Regenerate with ``python -m repro.experiments.table3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..baselines import (
    BaselineResult,
    Hkt2011Controller,
    Hp2011Controller,
    PcapBaselineController,
    ReconfigController,
    ThisWorkController,
    TransferOutcome,
    Vf2012Controller,
)
from ..core import TABLE1_BITSTREAM_BYTES

from .calibration import PAPER_TABLE3
from .report import ExperimentReport, fmt, fmt_err, format_table

__all__ = [
    "Table3Row",
    "default_controllers",
    "run_table3",
    "run_scaling_sweep",
    "format_report",
    "main",
]

#: HKT-2011 is quoted for FIFO-resident bitstreams ("up to 50 KB").
HKT_BITSTREAM_BYTES = 50 * 1024


@dataclass
class Table3Row:
    controller: ReconfigController
    result: BaselineResult
    paper_platform: str
    paper_freq_mhz: float
    paper_throughput_mb_s: float


def default_controllers(
    this_work: Optional[ThisWorkController] = None,
) -> List[ReconfigController]:
    """The four Table III comparison controllers."""
    return [
        Vf2012Controller(),
        Hp2011Controller(),
        Hkt2011Controller(),
        this_work or ThisWorkController(),
    ]


def run_table3(
    controllers: Optional[List[ReconfigController]] = None,
) -> List[Table3Row]:
    """Run every controller at its published operating point."""
    rows = []
    for controller in controllers or default_controllers():
        size = (
            HKT_BITSTREAM_BYTES
            if isinstance(controller, Hkt2011Controller)
            else TABLE1_BITSTREAM_BYTES
        )
        result = controller.transfer(size, controller.table3_operating_point())
        paper = PAPER_TABLE3.get(controller.design)
        if paper is None:
            paper = (controller.platform, controller.table3_operating_point(), 0.0)
        rows.append(
            Table3Row(
                controller=controller,
                result=result,
                paper_platform=paper[0],
                paper_freq_mhz=paper[1],
                paper_throughput_mb_s=paper[2],
            )
        )
    return rows


def run_scaling_sweep(
    controllers: Optional[List[ReconfigController]] = None,
    frequencies: Optional[List[float]] = None,
) -> Dict[str, List[BaselineResult]]:
    """E8: per-design frequency sweep (the §V scaling narrative)."""
    sweeps: Dict[str, List[BaselineResult]] = {}
    for controller in controllers or default_controllers():
        results = []
        for freq in frequencies or [100, 150, 210, 250, 280, 310, 350, 550]:
            results.append(controller.transfer(TABLE1_BITSTREAM_BYTES, freq))
        sweeps[controller.design] = results
    return sweeps


def format_report(
    rows: List[Table3Row],
    sweeps: Optional[Dict[str, List[BaselineResult]]] = None,
) -> str:
    """Render Table III plus the scaling sweeps."""
    report = ExperimentReport("Table III — comparison with related work")
    table_rows = []
    for row in rows:
        result = row.result
        table_rows.append(
            [
                row.controller.design,
                row.controller.platform,
                f"{result.effective_mhz:g}",
                fmt(result.throughput_mb_s, 0),
                "yes" if row.controller.has_crc_check else "no",
                fmt(row.paper_throughput_mb_s, 0),
                fmt_err(result.throughput_mb_s, row.paper_throughput_mb_s),
            ]
        )
    report.add(
        format_table(
            ["design", "platform", "MHz", "MB/s", "CRC", "paper MB/s", "err"],
            table_rows,
        )
    )
    ranked = sorted(
        (r for r in rows if r.result.throughput_mb_s),
        key=lambda r: r.result.throughput_mb_s,
        reverse=True,
    )
    order = " > ".join(f"{r.controller.design}" for r in ranked)
    report.add(f"ranking (burst throughput): {order}")
    if sweeps:
        lines = []
        for design, results in sweeps.items():
            cells = []
            for result in results:
                if result.outcome == TransferOutcome.FROZE:
                    cells.append(f"{result.requested_mhz:g}:FROZE")
                elif result.outcome == TransferOutcome.FAILED:
                    cells.append(f"{result.requested_mhz:g}:fail")
                elif result.outcome == TransferOutcome.CLAMPED:
                    cells.append(
                        f"{result.requested_mhz:g}:clamp@{result.effective_mhz:g}"
                    )
                else:
                    cells.append(
                        f"{result.requested_mhz:g}:{result.throughput_mb_s:.0f}"
                    )
            lines.append(f"{design:>10}: " + "  ".join(cells))
        report.add("frequency scaling (MHz:outcome):\n" + "\n".join(lines))
    return report.render()


def main() -> None:
    """Regenerate Table III and print the report."""
    rows = run_table3()
    sweeps = run_scaling_sweep(
        # Reuse the (already-built) DES system from the table run.
        controllers=[row.controller for row in rows]
    )
    print(format_report(rows, sweeps))


if __name__ == "__main__":
    main()
