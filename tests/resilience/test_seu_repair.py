"""Tests for the full SEU detect→isolate→repair→re-verify cycle."""

import pytest

from repro.fabric import FirFilterAsp, encode_asp_frames
from repro.resilience import ResilientReconfigurator

WORKLOAD = FirFilterAsp([3, 1, 4, 1, 5])


@pytest.fixture()
def reconfigurator(system):
    rec = ResilientReconfigurator(system)
    rec.attach_scrubber()
    return rec


def scrub_once(system, region):
    return system.sim.run_until(
        system.sim.process(system.scrubber.scrub_region_once(region))
    )


def test_seu_repair_cycle_restores_golden_content(system, reconfigurator):
    assert reconfigurator.reconfigure("RP1", WORKLOAD, 100.0).recovered

    # Single-event upset behind the firmware's back.
    system.memory.corrupt_region_word("RP1", 4_321, flip_mask=0x10)
    assert not scrub_once(system, "RP1").ok
    assert reconfigurator.pending_repairs == ["RP1"]
    assert system.metrics.get("resilience.seu_detected").value == 1

    outcomes = reconfigurator.repair_pending()
    assert len(outcomes) == 1 and outcomes[0].recovered
    assert reconfigurator.pending_repairs == []

    # The region holds the golden encoding again, bit for bit.
    golden = encode_asp_frames(
        system.layout.region_frame_count("RP1"), WORKLOAD
    )
    assert system.memory.region_equals("RP1", golden)
    assert scrub_once(system, "RP1").ok
    assert system.run_asp("RP1", [1, 0, 0, 0, 0]) == [3, 1, 4, 1, 5]

    # The verified-repair counter (the chaos layer's headline metric).
    assert system.metrics.get("resilience.repairs").value == 1
    assert system.metrics.get("resilience.repair_verify_failures").value == 0


def test_seu_repair_records_mttr(system, reconfigurator):
    assert reconfigurator.reconfigure("RP2", WORKLOAD, 100.0).recovered
    system.memory.corrupt_region_word("RP2", 99, flip_mask=0x1)
    detect = scrub_once(system, "RP2")
    assert not detect.ok

    reconfigurator.repair_pending()
    assert len(reconfigurator.repair_log) == 1
    entry = reconfigurator.repair_log[0]
    assert entry["region"] == "RP2"
    assert entry["verified"]
    # MTTR runs from first *detection*, not from when repair started.
    assert entry["detected_ns"] == detect.at_ns
    assert entry["mttr_us"] == pytest.approx(
        (entry["repaired_ns"] - detect.at_ns) / 1e3
    )
    assert entry["mttr_us"] > 0
    hist = system.metrics.get("resilience.mttr_us")
    assert hist.count == 1


def test_repair_isolates_region_during_cycle(system, reconfigurator):
    assert reconfigurator.reconfigure("RP3", WORKLOAD, 100.0).recovered
    system.memory.corrupt_region_word("RP3", 7, flip_mask=0x2)
    assert not scrub_once(system, "RP3").ok

    seen = {}
    original = reconfigurator.reconfigure

    def spy(region, asp, freq_mhz):
        seen["isolated"] = set(reconfigurator.isolated_regions)
        return original(region, asp, freq_mhz)

    reconfigurator.reconfigure = spy
    reconfigurator.repair_pending()
    assert seen["isolated"] == {"RP3"}
    # Isolation lifted once the cycle completes.
    assert reconfigurator.isolated_regions == set()


def test_mismatch_during_active_reconfigure_not_queued(system, reconfigurator):
    """The firmware's own post-transfer scrub of the region being
    reconfigured belongs to the retry loop, not the background queue."""
    # 360 MHz at 100 C corrupts the data path: every attempt's post-
    # transfer scrub fails until the ladder backs off — none of those
    # mismatches may leak into the SEU repair queue.
    system.set_die_temperature(100.0)
    outcome = reconfigurator.reconfigure("RP1", WORKLOAD, 360.0)
    assert outcome.injected_failure and outcome.recovered
    assert reconfigurator.pending_repairs == []
    assert system.metrics.get("resilience.seu_detected").value == 0


def test_repair_runs_at_learned_safe_frequency(system, reconfigurator):
    system.set_die_temperature(100.0)
    outcome = reconfigurator.reconfigure("RP2", WORKLOAD, 360.0)
    safe = reconfigurator.governor.safe_fmax_mhz("RP2")
    assert safe == pytest.approx(outcome.final_freq_mhz)

    system.memory.corrupt_region_word("RP2", 1, flip_mask=0x8)
    assert not scrub_once(system, "RP2").ok
    repairs = reconfigurator.repair_pending()
    # The repair reconfiguration asked for the learned safe frequency,
    # so it cannot re-trigger the over-clock failure: one clean attempt.
    assert repairs[0].attempts_used == 1
    assert repairs[0].requested_freq_mhz == pytest.approx(safe)
    assert reconfigurator.repair_log[-1]["verified"]
