"""Tests for the fault-recovery layer."""
