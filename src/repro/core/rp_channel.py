"""Per-partition data channel (paper Fig. 1).

Each reconfigurable partition owns an HP port and a DMA pair: an MM2S
engine streams job input from DRAM into the partition, the ASP datapath
consumes it at one word per RP-clock cycle, and an S2MM engine returns
the results to DRAM.  This is the PL plumbing that makes the Fig. 1
framework's job timing a measured quantity rather than an estimate: bus
contention between partitions, RP clock pacing and memory latency all
come out of the same discrete-event models as the reconfiguration path.

The channel is store-and-forward (the ASP sees its whole input before
producing output — a matmul or AES block has to anyway), so a job's
wall time decomposes exactly into data-in + compute + data-out.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ..axi.ports import AxiHpPort
from ..axi.stream import AxiStream, StreamBurst
from ..obs import MetricsRegistry
from ..dma import (
    AxiDmaEngine,
    DMACR_IOC_IRQ_EN,
    DMACR_RS,
    MM2S_DMACR,
    MM2S_LENGTH,
    MM2S_SA,
    S2mmDmaEngine,
)
from ..fabric.region import RpRegion
from ..sim import ClockDomain, Simulator

__all__ = ["RpDataChannel"]

#: Words per output burst pushed by the ASP datapath.
_OUT_BURST_WORDS = 256


class RpDataChannel:
    """DRAM → MM2S → ASP → S2MM → DRAM, all in the RP's clock domain."""

    #: Extra pipeline fill/drain cycles charged per compute phase.
    COMPUTE_FIXED_CYCLES = 64

    def __init__(
        self,
        sim: Simulator,
        hp_port: AxiHpPort,
        rp_clock: ClockDomain,
        region: RpRegion,
        name: str = "",
        control=None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.hp_port = hp_port
        self.rp_clock = rp_clock
        self.region = region
        self.name = name or f"rpchan.{region.name}"
        #: Optional :class:`~repro.core.rp_regs.RpControlInterface` that
        #: mirrors busy state and pulses data-ready on job completion.
        self.control = control
        self.in_stream = AxiStream(
            sim, fifo_words=512, name=f"{self.name}.in", metrics=metrics
        )
        self.out_stream = AxiStream(
            sim, fifo_words=512, name=f"{self.name}.out", metrics=metrics
        )
        self.mm2s = AxiDmaEngine(
            sim,
            rp_clock,
            hp_port,
            self.in_stream,
            name=f"{self.name}.mm2s",
            metrics=metrics,
        )
        self.s2mm = S2mmDmaEngine(
            sim,
            rp_clock,
            hp_port,
            self.out_stream,
            name=f"{self.name}.s2mm",
            metrics=metrics,
        )
        self.jobs_completed = 0

    def run_job(
        self, input_words: List[int], in_addr: int, out_addr: int
    ):
        """Execute one job (process generator).

        Stages ``input_words`` at ``in_addr``, streams them through the
        partition's ASP, lands the results at ``out_addr`` and returns
        ``(output_words, (data_in_us, compute_us, data_out_us))``.
        """
        if not input_words:
            raise ValueError("job needs at least one input word")
        dram = self.hp_port.interconnect.controller.device
        in_bytes = struct.pack(f">{len(input_words)}I", *input_words)
        dram.store(in_addr, in_bytes)
        if self.control is not None:
            self.control.set_busy(True)

        # ---- data in: DRAM -> RP input buffer -----------------------------
        t0 = self.sim.now
        collected: List[int] = []
        self.mm2s.reg_write(MM2S_DMACR, DMACR_RS | DMACR_IOC_IRQ_EN)
        self.mm2s.reg_write(MM2S_SA, in_addr)
        self.mm2s.reg_write(MM2S_LENGTH, len(in_bytes))
        while True:
            burst = yield self.in_stream.pop()
            # The ASP ingests one word per RP-clock cycle.
            yield self.rp_clock.wait_cycles(len(burst.words))
            collected.extend(burst.words)
            self.in_stream.release(len(burst.words))
            if burst.last:
                break
        data_in_us = (self.sim.now - t0) / 1e3

        # ---- compute: the configured ASP transforms the block --------------
        t1 = self.sim.now
        output = self.region.compute(collected[: len(input_words)])
        yield self.rp_clock.wait_cycles(self.COMPUTE_FIXED_CYCLES)
        compute_us = (self.sim.now - t1) / 1e3

        # ---- data out: RP -> S2MM -> DRAM ----------------------------------
        if not output:
            self.jobs_completed += 1
            self._signal_done()
            return [], (data_in_us, compute_us, 0.0)
        t2 = self.sim.now
        out_bytes_max = max(len(output) * 4, 4)
        self.s2mm.arm(out_addr, out_bytes_max)
        cursor = 0
        while cursor < len(output):
            chunk = output[cursor : cursor + _OUT_BURST_WORDS]
            yield self.out_stream.reserve(len(chunk))
            yield self.rp_clock.wait_cycles(len(chunk))
            cursor += len(chunk)
            self.out_stream.push(
                StreamBurst(words=chunk, last=cursor >= len(output))
            )
        yield self.s2mm.ioc_irq.wait_assert()
        data_out_us = (self.sim.now - t2) / 1e3

        # Results really are in DRAM now — read them back from there.
        landed = dram.load(out_addr, len(output) * 4)
        output_from_dram = list(struct.unpack(f">{len(output)}I", landed))
        self.jobs_completed += 1
        self._signal_done()
        return output_from_dram, (data_in_us, compute_us, data_out_us)

    def _signal_done(self) -> None:
        if self.control is not None:
            self.control.set_busy(False)
            self.control.signal_data_ready()
