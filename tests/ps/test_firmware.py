"""Tests for the ZedBoard test application firmware."""

import pytest

from repro.core import PdrSystem
from repro.fabric import Aes128Asp, FirFilterAsp
from repro.ps.firmware import BUTTON_IMAGE_A, BUTTON_IMAGE_B, ZedboardTestApp


@pytest.fixture()
def app():
    system = PdrSystem()
    app = ZedboardTestApp(system)
    app.provision_image("fir", "RP1", FirFilterAsp([1, 2, 3]))
    app.provision_image("aes", "RP1", Aes128Asp([4, 3, 2, 1]))
    return app


def test_provisioning_writes_sd(app):
    assert app.image_names() == ["aes", "fir"]
    assert "fir.bin" in app.system.sdcard.list_files()


def test_boot_stages_images_and_takes_time(app):
    before = app.system.sim.now
    app.boot()
    assert app.booted
    # Two ~529 kB images at ~20 MB/s: boot costs tens of milliseconds.
    assert app.system.sim.now - before > 40e6
    with pytest.raises(RuntimeError):
        app.boot()


def test_load_before_boot_rejected(app):
    with pytest.raises(RuntimeError, match="not booted"):
        app.load_image("fir")


def test_button_press_loads_selected_image(app):
    app.bind_button(BUTTON_IMAGE_A, "fir")
    app.bind_button(BUTTON_IMAGE_B, "aes")
    app.boot()
    app.system.switches.set_code(3)  # 200 MHz
    app.system.buttons.press(BUTTON_IMAGE_A)
    assert app.loads_performed == 1
    assert app.system.run_asp("RP1", [1, 0, 0]) == [1, 2, 3]
    assert "200" in app.system.oled.line(0)

    app.system.buttons.press(BUTTON_IMAGE_B)
    assert app.loads_performed == 2
    # The same region now computes AES instead.
    assert len(app.system.run_asp("RP1", [0, 0, 0, 0])) == 4


def test_switch_frequency_respected(app):
    app.boot()
    app.system.switches.set_code(5)  # 280 MHz
    result = app.load_image("fir")
    assert result.freq_mhz == pytest.approx(280.0)
    assert result.latency_us == pytest.approx(669.2, rel=0.01)


def test_bind_unknown_image_rejected(app):
    with pytest.raises(KeyError):
        app.bind_button(BUTTON_IMAGE_A, "ghost")
