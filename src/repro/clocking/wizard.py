"""Clock Wizard: an MMCM/PLL frequency synthesiser model.

The paper uses the Xilinx Clocking Wizard IP to generate the over-clock
from the 100 MHz PS fabric clock.  An MMCM can only produce frequencies
of the form

    f_out = f_in · M / (D · O)

with the VCO (f_in · M / D) constrained to a legal band, so arbitrary
requests are quantised to the nearest achievable setting.  Every paper
frequency (100…360 MHz) is exactly synthesisable; the model also charges
the MMCM's lock time on every reprogramming, which the firmware must wait
out before starting a transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..sim import ClockDomain, Event, Simulator

__all__ = ["MmcmConstraints", "MmcmSetting", "ClockWizard"]


@dataclass(frozen=True)
class MmcmConstraints:
    """Legal MMCM parameter ranges (Zynq-7000 speed grade -1)."""

    vco_min_mhz: float = 600.0
    vco_max_mhz: float = 1440.0
    mult_min: int = 2
    mult_max: int = 64
    div_min: int = 1
    div_max: int = 106
    outdiv_min: int = 1
    outdiv_max: int = 128
    lock_time_us: float = 50.0


@dataclass(frozen=True)
class MmcmSetting:
    """One chosen (M, D, O) triple."""

    mult: int
    div: int
    outdiv: int
    f_in_mhz: float

    @property
    def vco_mhz(self) -> float:
        return self.f_in_mhz * self.mult / self.div

    @property
    def f_out_mhz(self) -> float:
        return self.vco_mhz / self.outdiv


class ClockWizard:
    """Programs a :class:`~repro.sim.ClockDomain` through an MMCM model."""

    def __init__(
        self,
        sim: Simulator,
        domain: ClockDomain,
        f_in_mhz: float = 100.0,
        constraints: MmcmConstraints = MmcmConstraints(),
        name: str = "clk_wiz",
    ):
        self.sim = sim
        self.domain = domain
        self.f_in_mhz = f_in_mhz
        self.constraints = constraints
        self.name = name
        self.locked = True
        self.current_setting: Optional[MmcmSetting] = None
        self.reprogram_count = 0
        self.lock_losses = 0

    # -- synthesis ---------------------------------------------------------
    def best_setting(self, target_mhz: float) -> MmcmSetting:
        """The legal (M, D, O) whose output is closest to ``target_mhz``.

        Ties prefer the higher VCO (better jitter), as the wizard does.
        """
        if target_mhz <= 0:
            raise ValueError("target frequency must be positive")
        c = self.constraints
        best: Optional[Tuple[float, float, MmcmSetting]] = None
        for div in range(c.div_min, c.div_max + 1):
            pfd = self.f_in_mhz / div
            if pfd < 10.0:  # PFD floor: very large D is illegal
                break
            for mult in range(c.mult_min, c.mult_max + 1):
                vco = self.f_in_mhz * mult / div
                if vco < c.vco_min_mhz:
                    continue
                if vco > c.vco_max_mhz:
                    break
                outdiv = max(c.outdiv_min, min(c.outdiv_max, round(vco / target_mhz)))
                for o in (outdiv - 1, outdiv, outdiv + 1):
                    if not c.outdiv_min <= o <= c.outdiv_max:
                        continue
                    setting = MmcmSetting(mult=mult, div=div, outdiv=o, f_in_mhz=self.f_in_mhz)
                    error = abs(setting.f_out_mhz - target_mhz)
                    key = (error, -setting.vco_mhz)
                    if best is None or key < (best[0], best[1]):
                        best = (error, -setting.vco_mhz, setting)
        if best is None:
            raise ValueError(
                f"no legal MMCM setting near {target_mhz} MHz from "
                f"{self.f_in_mhz} MHz input"
            )
        return best[2]

    def achievable_mhz(self, target_mhz: float) -> float:
        return self.best_setting(target_mhz).f_out_mhz

    # -- programming ---------------------------------------------------------
    def program(self, target_mhz: float) -> Event:
        """Reprogram the output clock; fires when the MMCM relocks.

        The clock domain is updated to the *achieved* frequency (which may
        differ slightly from the request if it is not synthesisable).
        """
        setting = self.best_setting(target_mhz)
        self.locked = False
        self.reprogram_count += 1
        done = self.sim.event(name=f"{self.name}.lock")

        def relock():
            yield self.sim.timeout(self.constraints.lock_time_us * 1e3)
            self.domain.set_frequency(setting.f_out_mhz)
            self.current_setting = setting
            self.locked = True
            done.succeed(setting.f_out_mhz)

        self.sim.process(relock(), name=f"{self.name}.relock")
        return done

    def lose_lock(self) -> Optional[Event]:
        """Spontaneous loss of lock (input glitch / voltage droop).

        The MMCM drops lock and the output falls back to the input
        reference until it re-locks on its own after the lock time; the
        previously programmed setting is then restored.  If a
        :meth:`program` call supersedes the recovery (a newer
        reprogramming is itself waiting out the lock time), the stale
        recovery abandons — the reprogram's own relock wins.

        Returns the re-lock event, or ``None`` if the wizard was already
        unlocked (the in-flight relock subsumes the glitch).
        """
        if not self.locked:
            return None
        self.locked = False
        self.lock_losses += 1
        generation = self.reprogram_count
        setting = self.current_setting
        fallback_mhz = setting.f_out_mhz if setting is not None else None
        self.domain.set_frequency(self.f_in_mhz)
        done = self.sim.event(name=f"{self.name}.relock_after_loss")

        def recover():
            yield self.sim.timeout(self.constraints.lock_time_us * 1e3)
            if self.reprogram_count != generation:
                done.succeed(None)
                return
            if fallback_mhz is not None:
                self.domain.set_frequency(fallback_mhz)
            self.locked = True
            done.succeed(fallback_mhz)

        self.sim.process(recover(), name=f"{self.name}.loss_recovery")
        return done
