"""Fleet scheduling: admission control, bounded queues, batching.

The scheduler turns a request stream into one executable *plan* per
board, in a single deterministic pass over the requests in arrival
order.  It is the fleet's load balancer, and like a real one it acts on
what a front end can know at arrival time — queue depths and service
*estimates* — never on measured service times (those only exist after
the boards simulate).  That split is what keeps the plan a pure function
of the workload and lets board execution fan out over worker processes
byte-identically.

Per request:

1. **Coalescing** (``batching=True``) — if the request's bitstream is
   already queued (not yet started) on its affinity board, the request
   joins that pending job: one fabric load serves every member, the
   queue does not grow.  This exploits the shared build cache — the
   bitstream is built once per key per process — and is the fleet-level
   analogue of the PR controller's batch path.
2. **Placement** — otherwise route to the key's affinity board (cache
   locality) when its queue has room, else the least-loaded board
   (fewest outstanding jobs, then earliest estimated drain, then lowest
   index — a total order, so placement is deterministic).
3. **Admission** — if the chosen board's queue already holds
   ``queue_depth`` outstanding jobs, the request is rejected outright.
   Open-loop traffic keeps arriving regardless; bounding the queue is
   what converts overload into a *rejected-request rate* instead of
   unbounded latency.

A second pass forms **dispatch groups**: consecutive queued jobs for
distinct regions that are all waiting when the board frees up dispatch
as one scatter-gather batch through
:meth:`~repro.core.PdrSystem.reconfigure_batch`, paying the driver
setup and clock lock once per group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .workload import FleetRequest

__all__ = [
    "BoardPlan",
    "EST_FIXED_US",
    "EST_THROUGHPUT_MB_S",
    "FleetPlan",
    "PlannedJob",
    "estimate_service_us",
    "least_loaded_board",
    "plan_fleet",
]

#: Planner's service-time model: transfer at the robust 200 MHz
#: operating point's throughput (Table I) plus the fixed per-load
#: overhead (clock lock + driver setup + post-transfer scrub).  An
#: *estimate* — board placement uses it, SLO accounting never does.
EST_THROUGHPUT_MB_S = 780.0
EST_FIXED_US = 850.0
#: Estimated content-sized bitstream (1304 frames × 101 words + headers).
_CONTENT_BYTES_EST = 527_000


def estimate_service_us(pad_to: int) -> float:
    """Estimated µs one fabric load of a ``pad_to``-byte stream takes."""
    size_bytes = pad_to or _CONTENT_BYTES_EST
    return size_bytes / EST_THROUGHPUT_MB_S + EST_FIXED_US


@dataclass
class PlannedJob:
    """One fabric load on one board, serving one or more requests."""

    key: Tuple[str, str, int, int]
    #: Request indices served by this load (first member created it).
    members: List[int] = field(default_factory=list)
    #: Latest member arrival (µs) — the load cannot start before it.
    arrival_us: float = 0.0
    #: Planner-estimated start/end (µs); used only for queue-depth and
    #: grouping decisions, never for reported SLOs.
    est_start_us: float = 0.0
    est_end_us: float = 0.0

    @property
    def region(self) -> str:
        return self.key[0]

    def as_executable(self) -> List:
        """The plain-data shape a board point executes: region, ASP
        kind, ASP param, pad bytes (0 = content-sized)."""
        return [self.key[0], self.key[1], self.key[2], self.key[3]]


@dataclass
class BoardPlan:
    """Everything one board will execute, in dispatch order."""

    board: int
    #: Dispatch groups: each inner list is one scatter-gather batch
    #: (single-job groups dispatch through the plain reconfigure path).
    groups: List[List[PlannedJob]] = field(default_factory=list)

    @property
    def jobs(self) -> List[PlannedJob]:
        return [job for group in self.groups for job in group]

    def executable_groups(self) -> List[List[List]]:
        return [[job.as_executable() for job in group] for group in self.groups]


@dataclass
class FleetPlan:
    """The scheduler's full output for one campaign."""

    boards: List[BoardPlan]
    #: Indices of requests refused at admission.
    rejected: Tuple[int, ...] = ()
    #: Requests admitted (coalesced members count once each).
    admitted: int = 0
    #: Fabric loads planned (== admitted when nothing coalesced).
    loads: int = 0

    @property
    def coalesced(self) -> int:
        """Requests that piggybacked on an already-queued load."""
        return self.admitted - self.loads


class _BoardState:
    """Mutable per-board planning state (single pass, arrival order)."""

    def __init__(self, board: int):
        self.board = board
        self.jobs: List[PlannedJob] = []
        #: First job whose estimated completion is still in the future.
        self._head = 0

    def depth(self, now_us: float) -> int:
        while (
            self._head < len(self.jobs)
            and self.jobs[self._head].est_end_us <= now_us
        ):
            self._head += 1
        return len(self.jobs) - self._head

    def ready_us(self, now_us: float) -> float:
        if not self.jobs:
            return now_us
        return max(now_us, self.jobs[-1].est_end_us)

    def append(self, job: PlannedJob, now_us: float) -> None:
        job.est_start_us = max(self.ready_us(now_us), job.arrival_us)
        job.est_end_us = job.est_start_us + estimate_service_us(job.key[3])
        self.jobs.append(job)


def _form_groups(
    jobs: List[PlannedJob], batch_limit: int
) -> List[List[PlannedJob]]:
    """Greedy dispatch grouping over one board's job sequence.

    A group extends while the next job targets a region not already in
    the group, had already arrived when the group would start, and the
    group is under ``batch_limit`` — i.e. exactly the jobs a board
    picking up work from its queue could chain into one SG walk.
    """
    groups: List[List[PlannedJob]] = []
    end_est = 0.0
    index = 0
    while index < len(jobs):
        group = [jobs[index]]
        start_est = max(end_est, jobs[index].arrival_us)
        regions = {jobs[index].region}
        index += 1
        while (
            index < len(jobs)
            and len(group) < batch_limit
            and jobs[index].region not in regions
            and jobs[index].arrival_us <= start_est
        ):
            group.append(jobs[index])
            regions.add(jobs[index].region)
            index += 1
        end_est = start_est + sum(
            estimate_service_us(job.key[3]) for job in group
        )
        groups.append(group)
    return groups


def least_loaded_board(
    free_us: Dict[int, float], arrival_us: float, candidates
) -> Optional[int]:
    """Least-loaded placement over an explicit candidate set.

    The failover loop's version of the planner's placement rule:
    ``free_us`` maps board → time the board next comes free (measured,
    not estimated — failover runs *after* the replay, where measured
    times exist), and the winner is the candidate that could start the
    retry earliest, ties broken by lowest index so placement stays a
    total order.  Returns ``None`` when no candidate remains.
    """
    candidates = list(candidates)
    if not candidates:
        return None
    return min(
        candidates,
        key=lambda board: (max(free_us.get(board, 0.0), arrival_us), board),
    )


def plan_fleet(
    requests: Tuple[FleetRequest, ...],
    boards: int,
    queue_depth: int = 6,
    batching: bool = True,
    batch_limit: int = 4,
) -> FleetPlan:
    """Schedule ``requests`` over ``boards`` boards (pure, deterministic)."""
    if boards < 1:
        raise ValueError("a fleet needs at least one board")
    if queue_depth < 1:
        raise ValueError("queue depth must be at least 1")
    states = [_BoardState(board) for board in range(boards)]
    #: bitstream key -> board that most recently queued it (affinity).
    affinity: Dict[Tuple[str, str, int, int], int] = {}
    #: bitstream key -> its open (possibly coalescable) job + board.
    open_jobs: Dict[Tuple[str, str, int, int], Tuple[int, PlannedJob]] = {}
    rejected: List[int] = []
    admitted = 0

    for request in requests:
        now_us = request.arrival_us
        key = request.bitstream_key

        if batching:
            open_entry = open_jobs.get(key)
            if open_entry is not None:
                board, job = open_entry
                if job.est_start_us > now_us:
                    # The load has not started: this request rides along.
                    job.members.append(request.index)
                    job.arrival_us = max(job.arrival_us, now_us)
                    admitted += 1
                    continue
                del open_jobs[key]

        home = affinity.get(key)
        if home is not None and states[home].depth(now_us) < queue_depth:
            choice = states[home]
        else:
            choice = min(
                states,
                key=lambda s: (s.depth(now_us), s.ready_us(now_us), s.board),
            )
        if choice.depth(now_us) >= queue_depth:
            rejected.append(request.index)
            continue

        job = PlannedJob(key=key, members=[request.index], arrival_us=now_us)
        choice.append(job, now_us)
        affinity[key] = choice.board
        if batching:
            open_jobs[key] = (choice.board, job)
        admitted += 1

    plans = []
    loads = 0
    for state in states:
        limit = batch_limit if batching else 1
        plans.append(
            BoardPlan(board=state.board, groups=_form_groups(state.jobs, limit))
        )
        loads += len(state.jobs)
    return FleetPlan(
        boards=plans,
        rejected=tuple(rejected),
        admitted=admitted,
        loads=loads,
    )
