"""Benchmark E15: the bank-aware memory system under contention.

Runs a reduced contention campaign (tenant at 0 and 1000 MB/s, both
page policies, engine refresh) through the full bank-aware DDR path,
asserts the memory model's core shape (open-page keeps row locality
under contention and beats closed-page; contention costs throughput but
bounded), and records the summary figures to ``BENCH_dram.json`` at the
repo root — the fourth ``bench --check`` gate.
"""

import json
import os
import time

from repro.exec import SweepRunner
from repro.experiments.contention import run_contention

from conftest import run_once

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPORT_PATH = os.path.join(_REPO_ROOT, "BENCH_dram.json")

_CAMPAIGN = {
    "rates_mb_s": [0.0, 1000.0],
    "policies": ["open", "closed"],
    "region": "RP1",
    "freq_mhz": 200.0,
    "temp_c": 40.0,
}


def _run_campaign():
    t0 = time.perf_counter()
    records = run_contention(
        runner=SweepRunner(jobs=1),
        rates=_CAMPAIGN["rates_mb_s"],
        policies=_CAMPAIGN["policies"],
        region=_CAMPAIGN["region"],
        freq_mhz=_CAMPAIGN["freq_mhz"],
        temp_c=_CAMPAIGN["temp_c"],
    )
    wall_s = time.perf_counter() - t0
    return records, wall_s


def test_bench_dram_contention(benchmark):
    records, wall_s = run_once(benchmark, _run_campaign)

    by_key = {(r["page_policy"], r["tenant_rate_mb_s"]): r for r in records}
    open_base = by_key[("open", 0.0)]
    open_worst = by_key[("open", 1000.0)]
    closed_worst = by_key[("closed", 1000.0)]

    # The memory model's core shape, even at benchmark scale.
    assert all(r["succeeded"] for r in records)
    assert open_base["throughput_mb_s"] > open_worst["throughput_mb_s"]
    assert open_worst["throughput_mb_s"] > closed_worst["throughput_mb_s"]
    assert open_worst["row_hit_rate"] > 0.5  # sequential fetch keeps locality
    assert closed_worst["row_hit_rate"] == 0.0
    assert open_worst["refreshes_completed"] > 0
    assert open_worst["queue_wait_ns"] > open_base["queue_wait_ns"]

    summary = {
        "open_uncontended_mb_s": open_base["throughput_mb_s"],
        "open_contended_mb_s": open_worst["throughput_mb_s"],
        "closed_contended_mb_s": closed_worst["throughput_mb_s"],
        "open_row_hit_rate": open_worst["row_hit_rate"],
        "contention_slowdown": (
            open_base["throughput_mb_s"] / open_worst["throughput_mb_s"]
        ),
        "open_vs_closed_ratio": (
            open_worst["throughput_mb_s"] / closed_worst["throughput_mb_s"]
        ),
        "kernel_events": sum(r["events"] for r in records),
    }
    payload = {
        "generated_by": "benchmarks/test_bench_dram.py",
        "host_cpus": os.cpu_count(),
        "campaign": _CAMPAIGN,
        "dram_wall_s": round(wall_s, 3),
        "summary": summary,
        "points": records,
    }
    with open(_REPORT_PATH, "w") as handle:
        json.dump({**payload, "milestones": _MILESTONES}, handle, indent=2)
        handle.write("\n")


#: Measured once per tentpole change; kept here so the memory-system
#: history survives report regeneration.
_MILESTONES = [
    {
        "date": "2026-08-08",
        "change": "bank-aware DDR controller + multi-master crossbar",
        "host_cpus": 1,
        "note": (
            "open-page keeps ~0.8 row-hit rate on the sequential fetch "
            "under a 1000 MB/s reverse-walking tenant; default "
            "calibration (tRP=0, lazy refresh) stays byte-identical to "
            "the legacy flat model across the 6-point grid."
        ),
    }
]
