"""Descriptive statistics over result collections.

Summarises batches of :class:`~repro.core.results.ReconfigResult` (or any
numeric sequence) for reports and examples: success rates, latency and
throughput distributions, per-frequency grouping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "Summary",
    "group_results_by_frequency",
    "nearest_rank",
    "summarize",
    "summarize_results",
]


def nearest_rank(sample: Iterable[float], pct: float) -> Optional[float]:
    """Nearest-rank percentile: the ``ceil(pct/100 * n)``-th smallest value.

    This is the canonical percentile of every campaign rollup and SLO in
    the repo (soak MTTR, campaign p50/p99, fleet request latency).  Two
    properties matter:

    * **nearest-rank, not interpolated** — the result is an actually
      observed sample, so serial and ``--jobs N`` campaigns (which merge
      in spec order) stay byte-identical and replay-stable;
    * **ceil rank** — the textbook nearest-rank definition.  The previous
      per-module copies computed ``int(round(pct/100*n + 0.5))``, which
      banker's-rounds odd integer ranks upward (p50 of 6 samples returned
      rank 4, not ``ceil(3.0) = 3``), silently overstating every p50/p99.

    Accepts an unsorted sample; returns ``None`` when it is empty.
    """
    ordered = sorted(sample)
    if not ordered:
        return None
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a numeric sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} sd={self.stdev:.2f} "
            f"min={self.minimum:.2f} max={self.maximum:.2f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics; raises on an empty sample."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sample")
    count = len(data)
    minimum = min(data)
    maximum = max(data)
    # fsum keeps the accumulation exact; the final division can still
    # round the mean one ULP outside [min, max] (e.g. three identical
    # values), so clamp it back into the sample's range.
    mean = min(max(math.fsum(data) / count, minimum), maximum)
    variance = (
        math.fsum((x - mean) ** 2 for x in data) / count if count > 1 else 0.0
    )
    return Summary(
        count=count,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=minimum,
        maximum=maximum,
    )


def summarize_results(results: Iterable) -> Dict[str, object]:
    """Aggregate a collection of ReconfigResults.

    Returns success/interrupt/CRC rates plus latency, throughput and
    power summaries over the successful transfers.
    """
    results = list(results)
    if not results:
        raise ValueError("no results to summarize")
    successes = [r for r in results if r.succeeded]
    latencies = [r.latency_us for r in successes if r.latency_us is not None]
    throughputs = [
        r.throughput_mb_s for r in successes if r.throughput_mb_s is not None
    ]
    out: Dict[str, object] = {
        "total": len(results),
        "success_rate": len(successes) / len(results),
        "interrupt_rate": sum(1 for r in results if r.interrupt_seen) / len(results),
        "crc_valid_rate": sum(1 for r in results if r.crc_valid) / len(results),
    }
    out["latency_us"] = summarize(latencies) if latencies else None
    out["throughput_mb_s"] = summarize(throughputs) if throughputs else None
    powers = [r.pdr_power_w for r in results if r.pdr_power_w > 0]
    out["pdr_power_w"] = summarize(powers) if powers else None
    return out


def group_results_by_frequency(results: Iterable) -> Dict[float, List]:
    """Bucket results by their achieved frequency (Table-I-style views)."""
    grouped: Dict[float, List] = {}
    for result in results:
        grouped.setdefault(result.freq_mhz, []).append(result)
    return dict(sorted(grouped.items()))
