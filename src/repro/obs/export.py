"""Telemetry exporters: OpenMetrics text and Chrome trace-event JSON.

Two serialisations of the same recorded telemetry:

* :func:`to_openmetrics` renders one or many
  :class:`~repro.obs.metrics.MetricsRegistry` snapshots as the
  OpenMetrics text exposition format (the Prometheus scrape format):
  counters as ``_total`` samples, gauges as gauges, histograms as
  summaries with ``quantile`` labels, probes and series as gauges.
  Every sample carries a ``system`` label naming its registry, so a
  sweep's worth of systems scrapes into one page.

* :func:`to_chrome_trace` renders captured
  :class:`~repro.sim.trace.Tracer` ring buffers (plus registry series)
  as Chrome trace-event JSON, loadable in Perfetto / ``chrome://tracing``.
  Simulation time in µs is the ``ts`` axis; completed spans become
  balanced ``B``/``E`` duration events (one track per trace source),
  plain records become instant events, and series samples / counters
  become ``C`` counter events.

Both formats are deterministic: identical telemetry serialises to
byte-identical output (ordering is by registry, then sorted metric
name; trace events sort by timestamp with a nesting-stable tiebreak).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "dump_chrome_trace",
    "openmetrics_samples",
    "to_chrome_trace",
    "to_openmetrics",
    "trace_events",
]


# ---------------------------------------------------------------------------
# OpenMetrics
# ---------------------------------------------------------------------------

_NAME_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _metric_name(raw: str, prefix: str = "repro_") -> str:
    """An OpenMetrics-legal metric name for a dotted registry key."""
    cleaned = "".join(
        ch if ch in _NAME_SAFE else "_" for ch in raw.replace(".", "_")
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return prefix + cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_value(value: Any) -> Optional[str]:
    """A float rendering, or ``None`` for non-numeric/unset values."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return repr(float(value))


def _sample_line(name: str, labels: Mapping[str, str], value: str) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(str(val))}"' for key, val in labels.items()
        )
        return f"{name}{{{rendered}}} {value}"
    return f"{name} {value}"


#: Histogram quantiles exposed as summary samples.
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def openmetrics_samples(
    metric: str, data: Mapping[str, Any], labels: Mapping[str, str]
) -> Tuple[str, str, List[str]]:
    """(metric family name, OpenMetrics type, sample lines) for one metric.

    ``data`` is one entry of ``MetricsRegistry.to_dict()``.
    """
    kind = data.get("type", "gauge")
    name = _metric_name(metric)
    lines: List[str] = []
    if kind == "counter":
        value = _render_value(data.get("value"))
        if value is not None:
            lines.append(_sample_line(f"{name}_total", labels, value))
        return name, "counter", lines
    if kind == "histogram":
        for quantile, field in _QUANTILES:
            value = _render_value(data.get(field))
            if value is not None:
                lines.append(
                    _sample_line(name, {**labels, "quantile": quantile}, value)
                )
        count = _render_value(data.get("count"))
        total = _render_value(data.get("sum"))
        if count is not None:
            lines.append(_sample_line(f"{name}_count", labels, count))
        if total is not None:
            lines.append(_sample_line(f"{name}_sum", labels, total))
        return name, "summary", lines
    if kind == "series":
        value = _render_value(data.get("last"))
        if value is not None:
            lines.append(_sample_line(name, labels, value))
        count = _render_value(data.get("count"))
        if count is not None:
            lines.append(_sample_line(f"{name}_samples", labels, count))
        return name, "gauge", lines
    # gauge / probe / anything numeric
    value = _render_value(data.get("value"))
    if value is not None:
        lines.append(_sample_line(name, labels, value))
    if kind == "gauge":
        mean = _render_value(data.get("time_weighted_mean"))
        if mean is not None:
            lines.append(
                _sample_line(f"{name}_time_weighted_mean", labels, mean)
            )
    return name, "gauge", lines


def to_openmetrics(
    registries: Iterable[Tuple[str, Mapping[str, Mapping[str, Any]]]],
) -> str:
    """Serialise ``(label, registry_dict)`` pairs as OpenMetrics text.

    ``registry_dict`` is the output of ``MetricsRegistry.to_dict()``
    (already-snapshot plain data, so this also works on deserialised
    campaign artifacts).  Ends with the mandatory ``# EOF``.
    """
    lines: List[str] = []
    typed: Dict[str, str] = {}
    for label, registry in registries:
        labels = {"system": label}
        for metric in sorted(registry):
            family, om_type, samples = openmetrics_samples(
                metric, registry[metric], labels
            )
            if not samples:
                continue
            if family not in typed:
                typed[family] = om_type
                lines.append(f"# TYPE {family} {om_type}")
            lines.extend(samples)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Chrome trace events
# ---------------------------------------------------------------------------


class _SpanInterval:
    __slots__ = ("path", "begin_ns", "end_ns", "args")

    def __init__(self, path: str, begin_ns: float, end_ns: float, args: dict):
        self.path = path
        self.begin_ns = begin_ns
        self.end_ns = end_ns
        self.args = args

    @property
    def depth(self) -> int:
        return self.path.count("/")


def _contains(outer: "_SpanInterval", inner: "_SpanInterval") -> bool:
    """True when ``inner`` nests inside ``outer`` (interval + path)."""
    return (
        outer.begin_ns <= inner.begin_ns
        and inner.end_ns <= outer.end_ns
        and outer.depth < inner.depth
        and inner.path.startswith(outer.path + "/")
    )


def _span_events(
    records: Iterable, pid: int, tids: Dict[str, int]
) -> List[Dict[str, Any]]:
    """Balanced B/E duration events for every completed span record.

    Spans from one :class:`~repro.obs.spans.SpanRecorder` properly nest,
    so replaying them through an explicit stack — ordered by begin time,
    then depth — yields a B/E stream that is balanced and monotone in
    ``ts`` even for zero-duration spans and back-to-back siblings that
    share a boundary timestamp.
    """
    by_source: Dict[str, List[_SpanInterval]] = {}
    for record in records:
        fields = record.fields or {}
        if record.kind != "span" or "span" not in fields:
            continue
        path = str(fields["span"])
        args = {
            key: value
            for key, value in fields.items()
            if key not in ("span", "begin_ns", "end_ns", "duration_us")
        }
        by_source.setdefault(record.source, []).append(
            _SpanInterval(
                path,
                float(fields.get("begin_ns", record.time_ns)),
                float(fields.get("end_ns", record.time_ns)),
                args,
            )
        )

    events: List[Dict[str, Any]] = []

    def emit(span: _SpanInterval, phase: str, tid: int) -> None:
        ts = (span.begin_ns if phase == "B" else span.end_ns) / 1e3
        event: Dict[str, Any] = {
            "name": span.path.rsplit("/", 1)[-1],
            "cat": "span",
            "ph": phase,
            "ts": ts,
            "pid": pid,
            "tid": tid,
        }
        if phase == "B" and span.args:
            event["args"] = span.args
        events.append(event)

    for source in sorted(by_source):
        tid = tids.setdefault(source, len(tids))
        ordered = sorted(
            range(len(by_source[source])),
            key=lambda i: (
                by_source[source][i].begin_ns,
                by_source[source][i].depth,
                i,
            ),
        )
        stack: List[_SpanInterval] = []
        for index in ordered:
            span = by_source[source][index]
            while stack and not _contains(stack[-1], span):
                emit(stack.pop(), "E", tid)
            emit(span, "B", tid)
            stack.append(span)
        while stack:
            emit(stack.pop(), "E", tid)
    return events


def _instant_events(
    records: Iterable, pid: int, tids: Dict[str, int]
) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for record in records:
        if record.kind == "span":
            continue
        tid = tids.setdefault(record.source, len(tids))
        event: Dict[str, Any] = {
            "name": record.message,
            "cat": record.kind or "trace",
            "ph": "i",
            "s": "t",
            "ts": record.time_ns / 1e3,
            "pid": pid,
            "tid": tid,
        }
        if record.fields:
            event["args"] = dict(record.fields)
        events.append(event)
    return events


def _counter_events(
    label: str, registry: Mapping[str, Mapping[str, Any]], pid: int, end_ts: float
) -> List[Dict[str, Any]]:
    """Counter (``C``) events: series samples plus final counter values."""
    events: List[Dict[str, Any]] = []
    for metric in sorted(registry):
        data = registry[metric]
        kind = data.get("type")
        if kind == "series":
            for time_ns, value in data.get("samples", []):
                events.append(
                    {
                        "name": metric,
                        "cat": "series",
                        "ph": "C",
                        "ts": float(time_ns) / 1e3,
                        "pid": pid,
                        "tid": 0,
                        "args": {"value": value},
                    }
                )
        elif kind == "counter":
            value = data.get("value")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                events.append(
                    {
                        "name": metric,
                        "cat": "counter",
                        "ph": "C",
                        "ts": end_ts,
                        "pid": pid,
                        "tid": 0,
                        "args": {"value": value},
                    }
                )
    return events


def trace_events(
    tracers: Iterable[Tuple[str, Any]],
    registries: Iterable[Tuple[str, Mapping[str, Mapping[str, Any]]]] = (),
) -> List[Dict[str, Any]]:
    """The sorted Chrome trace-event list for captured tracers/registries.

    One ``pid`` per tracer (systems show up as separate processes), one
    ``tid`` per trace source within it.  Metadata events name both.
    """
    events: List[Dict[str, Any]] = []
    meta: List[Dict[str, Any]] = []
    for pid, (label, tracer) in enumerate(tracers):
        tids: Dict[str, int] = {}
        records = list(tracer.records)
        events.extend(_span_events(records, pid, tids))
        events.extend(_instant_events(records, pid, tids))
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        for source, tid in sorted(tids.items(), key=lambda item: item[1]):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": source},
                }
            )
    end_ts = max((event["ts"] for event in events), default=0.0)
    for pid, (label, registry) in enumerate(registries):
        events.extend(_counter_events(label, registry, pid, end_ts))
    # Stable sort: every per-tid stream above is already emitted in
    # balanced, time-monotone order, so sorting on ts alone (Python's
    # sort is stable) merges the streams without reordering ties.
    events.sort(key=lambda event: event["ts"])
    return meta + events


def to_chrome_trace(
    tracers: Iterable[Tuple[str, Any]],
    registries: Iterable[Tuple[str, Mapping[str, Mapping[str, Any]]]] = (),
) -> Dict[str, Any]:
    """The full Chrome trace JSON object (``traceEvents`` + clock unit)."""
    return {
        "traceEvents": trace_events(tracers, registries),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.export", "clock": "sim_us"},
    }


def dump_chrome_trace(
    path: str,
    tracers: Iterable[Tuple[str, Any]],
    registries: Iterable[Tuple[str, Mapping[str, Mapping[str, Any]]]] = (),
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(tracers, registries), handle, indent=1)
        handle.write("\n")
