"""PR Controller (§VI): arbiter between the SRAM and the ICAP.

"It monitors the reconfiguration timing and the ICAP interrupts."

On activation it drains the staged image from the SRAM read port, routes
it through the bitstream decompressor when the image is compressed, and
feeds an enhanced ICAP hard macro (HKT-2011-style, 550 MHz — 2 200 MB/s)
— so the end-to-end rate is

    min(SRAM read bandwidth x compression ratio, ICAP rate)

with the two stages pipelined burst by burst.  For uncompressed images
that is the paper's 1 237.5 MB/s estimate; with compression the ICAP
clock becomes the wall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..bitstream.compress import MAGIC, CompressedFormatError
from ..fabric.config_memory import ConfigMemory
from ..icap.primitive import ConfigPort
from ..sim import ClockDomain, InterruptLine, Simulator

from .decompressor import BitstreamDecompressor
from .memctrl import SramMemoryController

__all__ = ["ActivationResult", "PrController"]

#: SRAM read-port burst granularity used during activation (words).
_DRAIN_BURST_WORDS = 2048


@dataclass
class ActivationResult:
    """Timing + outcome of one SRAM-fed reconfiguration."""

    region: str
    latency_us: float
    bitstream_words: int        #: decompressed (as fed into the ICAP)
    sram_words: int             #: words actually read from the SRAM
    compressed: bool
    config_ok: bool             #: ICAP state machine finished cleanly

    @property
    def throughput_mb_s(self) -> float:
        """Effective configuration throughput over *decompressed* bytes."""
        if self.latency_us <= 0:
            return 0.0
        return self.bitstream_words * 4 / self.latency_us

    @property
    def compression_ratio(self) -> float:
        if self.sram_words == 0:
            return 1.0
        return self.bitstream_words / self.sram_words


class PrController:
    """Drains the staged SRAM image into the enhanced ICAP."""

    def __init__(
        self,
        sim: Simulator,
        memctrl: SramMemoryController,
        memory: ConfigMemory,
        icap_clock: Optional[ClockDomain] = None,
        name: str = "pr_ctrl",
    ):
        self.sim = sim
        self.memctrl = memctrl
        self.name = name
        #: Enhanced ICAP hard macro clock (HKT-2011 demonstrated 550 MHz).
        self.icap_clock = icap_clock or ClockDomain(sim, 550.0, name="icap550")
        self.port = ConfigPort(memory)
        self.decompressor = BitstreamDecompressor()
        self.done_irq = InterruptLine(sim, name=f"{name}.done")
        self.error_irq = InterruptLine(sim, name=f"{name}.err")
        self.activations = 0
        self.read_errors = 0
        self.decomp_stalls = 0
        #: Optional fault hook: extra decompressor pipeline stall (ns)
        #: charged once per compressed activation — the decoder wedges,
        #: then resumes; throughput drops but the stream stays intact.
        self.fault_decomp_stall_ns: Optional[Callable[[], float]] = None

    def activate(self):
        """Reconfigure from the staged slot (process generator).

        Returns an :class:`ActivationResult`.  The SRAM drain and the
        ICAP feed are pipelined: each burst's completion time is the max
        of the SRAM delivery and the ICAP consumption of the previous
        burst's expansion.
        """
        slot = self.memctrl.slot
        if slot is None or not self.memctrl.slot_valid:
            raise RuntimeError("activate() with no valid staged bitstream")
        self.port.reset()
        started = self.sim.now

        sram_words = slot.word_count
        icap_ns_per_word = self.icap_clock.period_ns  # 4 B/cycle

        # Drain the SRAM burst by burst (timed by the SRAM model) while
        # accounting the ICAP consumption as a pipelined second stage.
        try:
            raw = yield self.sim.process(
                self.memctrl.read_slot(burst_words=_DRAIN_BURST_WORDS),
                name=f"{self.name}.drain",
            )
        except Exception:
            # Read-port fault mid-drain: the partial stream never reached
            # a sync word, so the fabric is untouched — report the failed
            # activation instead of dying as an unhandled process.
            self.read_errors += 1
            self.error_irq.assert_()
            self.memctrl.invalidate()
            return ActivationResult(
                region=slot.region,
                latency_us=(self.sim.now - started) / 1e3,
                bitstream_words=0,
                sram_words=sram_words,
                compressed=slot.compressed,
                config_ok=False,
            )
        if slot.compressed:
            if self.fault_decomp_stall_ns is not None:
                stall_ns = max(0.0, self.fault_decomp_stall_ns())
                if stall_ns > 0:
                    self.decomp_stalls += 1
                    yield self.sim.timeout(stall_ns)
            if not raw or raw[0] != MAGIC:
                self.error_irq.assert_()
                return ActivationResult(
                    region=slot.region,
                    latency_us=(self.sim.now - started) / 1e3,
                    bitstream_words=0,
                    sram_words=sram_words,
                    compressed=True,
                    config_ok=False,
                )
            try:
                words = self.decompressor.decode(raw)
            except CompressedFormatError:
                # Magic was intact but the payload is torn: a corrupt
                # compressed stream is a failed activation, not a crash.
                self.error_irq.assert_()
                self.memctrl.invalidate()
                return ActivationResult(
                    region=slot.region,
                    latency_us=(self.sim.now - started) / 1e3,
                    bitstream_words=0,
                    sram_words=sram_words,
                    compressed=True,
                    config_ok=False,
                )
        else:
            words = raw

        # Second pipeline stage: the ICAP consumed bursts while the SRAM
        # was still reading.  The residual tail is whatever ICAP time
        # exceeds the (already elapsed) SRAM time.
        icap_total_ns = len(words) * icap_ns_per_word
        sram_elapsed_ns = self.sim.now - started
        tail_ns = icap_total_ns - (sram_elapsed_ns - self._first_burst_ns(slot))
        if tail_ns > 0:
            yield self.sim.timeout(tail_ns)

        self.port.feed_words(words)
        self.activations += 1
        ok = self.port.desynced and not self.port.has_error
        if ok:
            self.done_irq.pulse()
        else:
            self.error_irq.assert_()
        self.memctrl.invalidate()  # one-shot slot, as in the paper
        return ActivationResult(
            region=slot.region,
            latency_us=(self.sim.now - started) / 1e3,
            bitstream_words=len(words),
            sram_words=sram_words,
            compressed=slot.compressed,
            config_ok=ok,
        )

    def _first_burst_ns(self, slot) -> float:
        """Pipeline fill: the ICAP cannot start before the first burst."""
        first_burst = min(_DRAIN_BURST_WORDS, slot.word_count)
        return first_burst * 4 / self.memctrl.sram.PORT_BANDWIDTH
