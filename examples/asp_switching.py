"""ASP switching workload on the Fig. 1 acceleration framework.

The paper's motivation: with low reconfiguration latency "we can
seamlessly change the hardware (ASP), similarly to what happens with
dynamically loaded software routines".  This example runs a bursty
multi-tenant job mix — crypto, filtering, matrix math, checksumming —
through the four reconfigurable partitions, twice: with the ICAP at its
nominal 100 MHz and over-clocked to the 200 MHz power-efficiency knee.

The job mix deliberately touches more distinct ASPs than there are
partitions, so evictions (and therefore reconfigurations) keep happening;
the over-clocked run shrinks every miss penalty.

Run:  python examples/asp_switching.py
"""

from repro.core import AspRequest, HllFramework
from repro.fabric import Aes128Asp, Crc32Asp, FirFilterAsp, MatMulAsp


def build_workload():
    """A 20-job mix over 6 distinct ASPs (4 partitions -> misses)."""
    aes_a = Aes128Asp([1, 2, 3, 4])
    aes_b = Aes128Asp([5, 6, 7, 8])
    fir_lp = FirFilterAsp([1, 4, 6, 4, 1])      # low-pass
    fir_hp = FirFilterAsp([-1, 2, -1])          # high-pass
    matmul = MatMulAsp(4)
    crc = Crc32Asp()

    pattern = [
        ("encrypt-a", aes_a, [0x11111111] * 16),
        ("filter-lp", fir_lp, list(range(64))),
        ("checksum", crc, list(range(256))),
        ("encrypt-b", aes_b, [0x22222222] * 16),
        ("matmul", matmul, list(range(32))),
        ("filter-hp", fir_hp, list(range(64))),
        ("encrypt-a", aes_a, [0x33333333] * 16),
        ("checksum", crc, list(range(128))),
        ("filter-lp", fir_lp, list(range(32))),
        ("matmul", matmul, list(range(32))),
    ]
    return [
        AspRequest(asp=asp, input_words=words, label=f"{label}#{round_index}")
        for round_index in range(2)
        for label, asp, words in pattern
    ]


def run_campaign(icap_freq_mhz: float):
    framework = HllFramework(icap_freq_mhz=icap_freq_mhz)
    results = framework.run_jobs(build_workload())
    makespan_us = sum(result.total_us for result in results)
    return framework, results, makespan_us


def main() -> None:
    print("ASP-switching campaign: 20 jobs, 6 ASPs, 4 partitions\n")
    header = (
        f"{'ICAP clock':>12} {'makespan ms':>12} {'reconfig ms':>12} "
        f"{'misses':>7} {'hit rate':>9}"
    )
    print(header)
    print("-" * len(header))

    baseline_makespan = None
    for freq in (100.0, 200.0):
        framework, _results, makespan_us = run_campaign(freq)
        print(
            f"{freq:>9.0f} MHz {makespan_us / 1e3:>12.2f} "
            f"{framework.total_reconfig_us / 1e3:>12.2f} "
            f"{framework.misses:>7} {framework.hit_rate:>8.0%}"
        )
        if baseline_makespan is None:
            baseline_makespan = makespan_us
        else:
            saved = baseline_makespan - makespan_us
            print(
                f"\nOver-clocking the ICAP to 200 MHz saves "
                f"{saved / 1e3:.2f} ms on this workload "
                f"({saved / baseline_makespan:.0%} of the makespan) — "
                f"an ASP miss (transfer + CRC read-back verification) "
                f"now costs ~1.5 ms instead of ~2.9 ms."
            )

    # Show one job's anatomy for the curious.
    framework, results, _ = run_campaign(200.0)
    miss = next(r for r in results if not r.hit)
    print(
        f"\nanatomy of a miss ({miss.label} on {miss.region}): "
        f"reconfig {miss.reconfig_us:.0f} us + data-in {miss.data_in_us:.1f} us "
        f"+ compute {miss.compute_us:.1f} us + data-out {miss.data_out_us:.1f} us"
    )


if __name__ == "__main__":
    main()
