"""PCAP reference: the PS-driven configuration path.

Not in the paper's Table III, but the natural "do nothing clever"
baseline on Zynq: partial reconfiguration through the DevC/PCAP driver at
~145 MB/s effective.  It contextualises every PL-side controller's win.
"""

from __future__ import annotations

from ..ps.pcap import Pcap

from .base import BaselineResult, ReconfigController, TransferOutcome

__all__ = ["PcapBaselineController"]


class PcapBaselineController(ReconfigController):
    design = "PCAP"
    platform = "Zynq-7000"
    year = 2012
    has_crc_check = False
    nominal_mhz = 100.0  # the PCAP clock is fixed; requests are ignored

    EFFECTIVE_MB_S = Pcap.EFFECTIVE_RATE * 1e3
    SETUP_US = Pcap.SETUP_NS / 1e3

    def transfer(self, bitstream_bytes: int, freq_mhz: float) -> BaselineResult:
        if bitstream_bytes <= 0 or freq_mhz <= 0:
            raise ValueError("bitstream size and frequency must be positive")
        latency_us = self.SETUP_US + bitstream_bytes / self.EFFECTIVE_MB_S
        notes = []
        if freq_mhz != self.nominal_mhz:
            notes.append("PCAP clock is PS-fixed; frequency request ignored")
        return self._result(
            requested_mhz=freq_mhz,
            effective_mhz=self.nominal_mhz,
            bitstream_bytes=bitstream_bytes,
            outcome=TransferOutcome.OK,
            latency_us=latency_us,
            notes=notes,
        )

    def max_working_mhz(self) -> float:
        return self.nominal_mhz

    def table3_operating_point(self) -> float:
        return self.nominal_mhz
