"""Sweep execution engine: declarative specs, parallel runner, result cache.

Every paper artifact is a sweep of independent simulation points; this
package turns that shape into infrastructure:

* :class:`SweepSpec` / :class:`SweepPoint` — a sweep as *data* (a
  module-level point function reference + canonical parameters), so
  points can cross process boundaries and address an on-disk cache;
* :class:`SweepRunner` — executes a spec serially or across ``--jobs N``
  worker processes with a deterministic, order-preserving merge;
* :class:`ResultCache` — content-addressed by (code fingerprint, point
  identity): repeated runs skip every already-simulated point, and any
  source change invalidates the lot.
"""

from .cache import CACHE_DIR_ENV, ResultCache, code_fingerprint, default_cache_dir
from .runner import (
    PointStats,
    SweepResult,
    SweepRunner,
    default_jobs,
    note_events,
)
from .spec import SweepPoint, SweepSpec, canonical_json, canonical_params

__all__ = [
    "CACHE_DIR_ENV",
    "PointStats",
    "ResultCache",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "canonical_json",
    "canonical_params",
    "code_fingerprint",
    "default_cache_dir",
    "default_jobs",
    "note_events",
]
