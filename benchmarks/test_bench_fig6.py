"""Benchmark E3: regenerate Fig. 6 and verify its structure."""

import pytest

from repro.experiments.fig6 import run_fig6

from conftest import run_once


def test_bench_fig6(benchmark, system):
    data = run_once(benchmark, run_fig6, system=system)

    # Paper: "the dynamic power dissipation increases linearly with
    # frequency and the slope is constant at the different temperatures".
    assert data.slope_spread() < 0.02
    for slope, _intercept in data.fits.values():
        assert slope * 1e3 == pytest.approx(1.667, rel=0.05)  # mW/MHz

    # Paper: "more than linear increase of power with temperature".
    assert data.offsets_superlinear()
    offsets = data.static_offsets()
    assert offsets[-1] - offsets[0] == pytest.approx(0.47, abs=0.1)

    # Every curve stays within the figure's 1-2 W axis range.
    for series in data.curves.values():
        assert all(1.0 <= y <= 2.0 for y in series.y)
