"""The device configuration port state machine.

This is the logic behind both the ICAP and the PCAP: it consumes a
configuration word stream (after bus-width detection and sync), decodes
type-1/type-2 packets, executes register writes — including FDRI frame
writes into the configuration memory with FAR auto-increment — folds the
configuration CRC, and reports the error/done flags the rest of the
system reacts to.

Like the real silicon, the FDRI path holds one frame in a pipeline
register: frame *k* commits when frame *k+1* completes, so the trailing
pad frame that every bitstream carries is never written to the array.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..bitstream.crc import ConfigCrc
from ..bitstream.device import FRAME_BYTES, FRAME_WORDS
from ..bitstream.far import FrameAddress
from ..bitstream.packets import NOOP_WORD, SYNC_WORD, decode_header
from ..bitstream.registers import Command, ConfigRegister
from ..fabric.config_memory import ConfigMemory

__all__ = ["ConfigPort"]

_WORD_STRUCT = struct.Struct("<I")


class ConfigPort:
    """Word-at-a-time configuration engine bound to a config memory."""

    def __init__(self, memory: ConfigMemory):
        self.memory = memory
        self.layout = memory.layout
        self.crc = ConfigCrc()
        self.reset()

    def reset(self) -> None:
        """Return to the pre-sync state (as after PROG or power-up)."""
        self.synced = False
        self.desynced = False
        self.wcfg_active = False
        self.crc_error = False
        self.idcode_error = False
        self._last_register: Optional[int] = None
        self._payload_register: Optional[int] = None
        self._payload_remaining = 0
        self._far_index: Optional[int] = None
        # The FDRI pipeline moves packed little-endian frame bytes: one
        # partially-filled frame buffer plus the held (pipeline) frame.
        self._frame_buffer = bytearray()
        self._held_frame: Optional[bytes] = None
        self.frames_committed = 0
        self.words_consumed = 0
        self.crc.reset()

    # -- status ------------------------------------------------------------
    @property
    def has_error(self) -> bool:
        return self.crc_error or self.idcode_error

    # -- stream input -----------------------------------------------------------
    def feed_word(self, word: int) -> None:
        """Consume one 32-bit configuration word."""
        word &= 0xFFFFFFFF
        self.words_consumed += 1

        if not self.synced:
            if word == SYNC_WORD:
                self.synced = True
                self.desynced = False
            return

        if self._payload_remaining:
            self._payload_remaining -= 1
            self._handle_write(self._payload_register, word)
            return

        if word == NOOP_WORD:
            return
        try:
            header = decode_header(word)
        except ValueError:
            # Unknown packet type: a corrupted stream.  Hardware would
            # raise a status flag; we latch it as a CRC-class error.
            self.crc_error = True
            return
        if header.packet_type == 1:
            self._last_register = header.register_addr
            register = header.register_addr
        else:
            if self._last_register is None:
                self.crc_error = True
                return
            register = self._last_register
        if header.word_count and header.is_write:
            self._payload_register = register
            self._payload_remaining = header.word_count

    def feed_words(self, words) -> None:
        """Consume a word sequence, with a bulk fast path for FDRI data.

        Behaviour is identical to calling :meth:`feed_word` per word; the
        fast path only kicks in while a large FDRI payload is being
        streamed, which is >98 % of a partial bitstream.
        """
        index = 0
        total = len(words)
        fdri = int(ConfigRegister.FDRI)
        while index < total:
            if (
                self.synced
                and self._payload_remaining > 1
                and self._payload_register == fdri
            ):
                chunk_len = min(self._payload_remaining, total - index)
                chunk = words[index : index + chunk_len]
                try:
                    packed = struct.pack(f"<{chunk_len}I", *chunk)
                except struct.error:
                    chunk = [w & 0xFFFFFFFF for w in chunk]
                    packed = struct.pack(f"<{chunk_len}I", *chunk)
                self._payload_remaining -= chunk_len
                self.words_consumed += chunk_len
                self.crc.update_run(fdri, chunk, packed=packed)
                self._fdri_run(packed)
                index += chunk_len
                continue
            self.feed_word(words[index])
            index += 1

    def _fdri_run(self, packed: bytes) -> None:
        """Bulk equivalent of per-word :meth:`_fdri_word` on packed bytes."""
        if not self.wcfg_active or self.idcode_error:
            return
        buffer = self._frame_buffer
        buffer += packed
        while len(buffer) >= FRAME_BYTES:
            completed = bytes(buffer[:FRAME_BYTES])
            del buffer[:FRAME_BYTES]
            if self._held_frame is not None:
                self._commit_frame(self._held_frame)
            self._held_frame = completed

    # -- register semantics -------------------------------------------------
    def _handle_write(self, register: Optional[int], word: int) -> None:
        if register is None:  # pragma: no cover - guarded in feed_word
            return
        if register == int(ConfigRegister.CRC):
            if not self.crc.check(word):
                self.crc_error = True
            return

        self.crc.update(register, word)

        if register == int(ConfigRegister.IDCODE):
            if word != self.layout.idcode:
                self.idcode_error = True
        elif register == int(ConfigRegister.FAR):
            try:
                self._far_index = self.layout.frame_index(FrameAddress.decode(word))
            except ValueError:
                self.crc_error = True
        elif register == int(ConfigRegister.FDRI):
            self._fdri_word(word)
        elif register == int(ConfigRegister.CMD):
            self._command(word)

    def _fdri_word(self, word: int) -> None:
        if not self.wcfg_active or self.idcode_error:
            return  # writes are ignored until WCFG, or after an ID failure
        self._frame_buffer += _WORD_STRUCT.pack(word)
        if len(self._frame_buffer) < FRAME_BYTES:
            return
        completed = bytes(self._frame_buffer)
        self._frame_buffer = bytearray()
        if self._held_frame is not None:
            self._commit_frame(self._held_frame)
        self._held_frame = completed

    def _commit_frame(self, frame: bytes) -> None:
        if self._far_index is None:
            self.crc_error = True
            return
        if self._far_index >= self.layout.total_frames:
            self.crc_error = True  # ran off the end of the device
            return
        self.memory.write_frame_packed(self._far_index, frame)
        self._far_index += 1
        self.frames_committed += 1

    # -- read-back (FDRO) -----------------------------------------------------
    def read_frames(self, far_index: int, frame_count: int) -> list:
        """Execute an FDRO read-back: RCFG + FAR + type-1 FDRO read.

        Returns the words the FDRO would stream out.  As in hardware, the
        first frame of the output is a pipeline pad frame (dummy words) —
        the caller discards it — followed by ``frame_count`` real frames
        in auto-increment order.
        """
        if frame_count < 1:
            raise ValueError("must read at least one frame")
        if not 0 <= far_index < self.layout.total_frames:
            raise ValueError(f"read-back start frame {far_index} out of range")
        if far_index + frame_count > self.layout.total_frames:
            raise ValueError("read-back runs off the end of the device")
        words = [0] * FRAME_WORDS  # the FDRO pipeline pad frame
        for index in range(far_index, far_index + frame_count):
            words.extend(self.memory.read_frame(index))
        return words

    def read_frames_packed(self, far_index: int, frame_count: int) -> bytes:
        """Packed-bytes :meth:`read_frames`: pad frame + frame data as
        little-endian bytes (the scrubber's bulk read-back path)."""
        if frame_count < 1:
            raise ValueError("must read at least one frame")
        if not 0 <= far_index < self.layout.total_frames:
            raise ValueError(f"read-back start frame {far_index} out of range")
        if far_index + frame_count > self.layout.total_frames:
            raise ValueError("read-back runs off the end of the device")
        return bytes(FRAME_BYTES) + self.memory.read_frames_packed(
            far_index, frame_count
        )

    @staticmethod
    def strip_readback_pad(words: list) -> list:
        """Drop the FDRO pad frame from a read-back word stream."""
        if len(words) < FRAME_WORDS:
            raise ValueError("read-back stream shorter than the pad frame")
        return words[FRAME_WORDS:]

    @staticmethod
    def strip_readback_pad_packed(data: bytes) -> bytes:
        """Drop the FDRO pad frame from a packed read-back byte stream."""
        if len(data) < FRAME_BYTES:
            raise ValueError("read-back stream shorter than the pad frame")
        return data[FRAME_BYTES:]

    def _command(self, command: int) -> None:
        if command == int(Command.RCRC):
            self.crc.reset()
            self.crc_error = False
        elif command == int(Command.WCFG):
            self.wcfg_active = True
            self._frame_buffer = bytearray()
            self._held_frame = None
        elif command == int(Command.DGHIGH_LFRM):
            # End of frame data: the held (pad) frame is discarded.
            self.wcfg_active = False
            self._held_frame = None
            self._frame_buffer = bytearray()
        elif command == int(Command.DESYNC):
            self.synced = False
            self.desynced = True
            self.wcfg_active = False
            self._held_frame = None
            self._frame_buffer = bytearray()
