"""Over-clocking timing model and fault injection."""

from .failures import corruption_rate, make_word_corruptor
from .model import (
    PDR_CONTROL_PATH,
    PDR_DATA_PATH,
    CriticalPath,
    FailureMode,
    TimingModel,
    default_timing_model,
)

__all__ = [
    "CriticalPath",
    "FailureMode",
    "PDR_CONTROL_PATH",
    "PDR_DATA_PATH",
    "TimingModel",
    "corruption_rate",
    "default_timing_model",
    "make_word_corruptor",
]
