"""The over-clocked PDR system (paper Fig. 2) — the core contribution.

Assembles the full hardware/software stack:

* PS side: DRAM + controller, AXI interconnect, global timer, GIC,
  PCAP, the test firmware's control sequence;
* PL static part: Clock Wizard (over-clock domain), AXI DMA, AXI4-Stream
  link, ICAP controller, CRC read-back scrubber;
* PL dynamic part: four reconfigurable partitions on the Z-7020 layout;
* bench: thermal model + heat gun + XADC sensor, power model + board
  current sense, switches/buttons/OLED/SD card.

The public entry point is :meth:`PdrSystem.reconfigure` — build a partial
bitstream for an ASP, stage it in DRAM and run the paper's measurement
sequence, returning a :class:`~repro.core.results.ReconfigResult` with
the same observables as the paper's Table I rows.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..axi import AxiHpPort, AxiInterconnect, AxiStream
from ..bitstream import Bitstream, BitstreamBuilder, crc32c_packed, make_z7020_layout
from ..bitstream.device import FRAME_BYTES
from ..board import OledDisplay, PushButtons, SdCard, SwitchBank
from ..clocking import ClockWizard
from ..crccheck import CrcScrubber
from ..dma import (
    AxiDmaEngine,
    DMACR_IOC_IRQ_EN,
    DMACR_RESET,
    DMACR_RS,
    DMASR_IOC_IRQ,
    MM2S_DMACR,
    MM2S_DMASR,
    MM2S_LENGTH,
    MM2S_SA,
)
from ..dram import (
    BankDramController,
    BankTiming,
    DdrTiming,
    DramController,
    DramDevice,
    REFRESH_MODES,
)
from ..fabric import Asp, ConfigMemory, RpRegion, encode_asp_packed
from ..icap import IcapController
from ..obs import TELEMETRY_BOOK, MetricsRegistry, NullMetricsRegistry, SpanRecorder
from ..obs.profile import attribute_devices, critical_path as _critical_path
from ..power import CurrentSense, PowerModel, PowerModelParams, PowerSupply
from ..ps import GlobalTimer, InterruptController, Pcap
from ..sim import ClockDomain, Simulator, Tracer
from ..thermal import HeatGun, TemperatureSensor, ThermalModel
from ..timing import (
    FailureMode,
    PDR_CONTROL_PATH,
    PDR_DATA_PATH,
    TimingModel,
    default_timing_model,
    make_word_corruptor,
)

from .results import BatchReconfigResult, ReconfigResult

__all__ = ["PdrSystemConfig", "PdrSystem"]

#: Reference partial-bitstream size: the byte count consistent with every
#: row of the paper's Table I (size = throughput x latency); see DESIGN.md.
TABLE1_BITSTREAM_BYTES = 528_760

#: Sentinel: :meth:`PdrSystem.make_bitstream` pads to the system config's
#: ``pad_bitstreams_to`` unless the caller overrides per build (the fleet
#: layer serves mixed-size requests from one system).
_PAD_FROM_CONFIG = object()


@dataclass
class PdrSystemConfig:
    """Tunable parameters of the assembled system."""

    #: Die temperature pin for bench-style experiments (°C).
    die_temp_c: float = 40.0
    #: Stream FIFO depth between DMA and ICAP, in 32-bit words.
    stream_fifo_words: int = 1024
    #: Driver software overhead before the DMA starts (cache maintenance,
    #: descriptor setup) in microseconds.  Calibrated against Table I.
    firmware_setup_us: float = 1.9
    #: Firmware's give-up timeout waiting for the completion interrupt.
    irq_timeout_us: float = 20_000.0
    #: Where bitstreams are staged in DRAM.
    bitstream_base_addr: int = 0x1000_0000
    #: Pad generated bitstreams to the Table I reference size.
    pad_bitstreams_to: Optional[int] = TABLE1_BITSTREAM_BYTES
    #: Nominal PL clock out of reset (MHz).
    nominal_freq_mhz: float = 100.0
    #: DMA memory-side read burst size (bytes) — ablation A1 varies this.
    dma_burst_bytes: int = 1024
    #: DMA command-issue overhead per burst, in over-clock cycles.
    dma_cmd_overhead_cycles: int = 10
    #: Compile the telemetry probes out: metrics become shared no-ops and
    #: the tracer stops retaining records.  Phase spans (and therefore
    #: ``ReconfigResult.phase_us``/``critical_path``) survive — they are
    #: part of the result contract, not the instrumentation.  The
    #: probe-overhead benchmark (``benchmarks/test_bench_obs.py``)
    #: measures this flag's worth.
    telemetry: bool = True
    #: DDR controller model: ``"bank"`` (bank machines + command
    #: multiplexer, the default) or ``"flat"`` (legacy single-queue FIFO
    #: server).  The ``REPRO_DRAM`` environment variable overrides this
    #: at construction time — the kill switch back to the legacy model.
    dram_model: str = "bank"
    #: Row-buffer policy for the bank model: ``"open"`` keeps rows open
    #: (sequential streams hit), ``"closed"`` auto-precharges every access.
    dram_page_policy: str = "open"
    #: Refresh accounting: ``"lazy"`` (legacy-compatible: refreshes in
    #: idle gaps are free, at most one tRFC per busy period), ``"engine"``
    #: (deterministic tREFI/tRFC bus-stealing engine) or ``"off"``.  The
    #: ``REPRO_DRAM_REFRESH`` environment variable overrides this at
    #: construction time (refresh-jitter A/B runs over campaigns that
    #: build their config internally, e.g. the chaos soak).
    dram_refresh_mode: str = "lazy"
    #: Decomposed DDR command timings (ns).  Defaults reproduce the
    #: legacy lumped figures: hit = tCAS = 202, miss = tRCD + tCAS = 302,
    #: conflict adds tRP (0 by default — precharge folded into activate).
    dram_tcas_ns: float = 202.0
    dram_trcd_ns: float = 100.0
    dram_trp_ns: float = 0.0
    dram_trefi_ns: float = 7800.0
    dram_trfc_ns: float = 160.0


class PdrSystem:
    """The assembled Fig. 2 architecture."""

    #: Process-wide memo of built partial bitstreams, shared across system
    #: instances.  A build is a pure function of the key (the floorplan is
    #: the fixed Z-7020 layout) and the result is treated as read-only, so
    #: fresh-system-per-point sweeps need not rebuild identical bitstreams.
    #: Bounded LRU so unbounded workload sweeps cannot grow it forever.
    _BUILD_CACHE: "OrderedDict[tuple, Bitstream]" = OrderedDict()
    _BUILD_CACHE_MAX = 128

    def __init__(
        self,
        config: Optional[PdrSystemConfig] = None,
        timing_model: Optional[TimingModel] = None,
        power_params: Optional[PowerModelParams] = None,
    ):
        self.config = config or PdrSystemConfig()
        self.sim = Simulator()
        sim = self.sim

        #: Shared telemetry: every component namespaces its counters,
        #: gauges and histograms into this registry (``component.metric``).
        #: With ``config.telemetry=False`` the probes are compiled out —
        #: the same wiring lands on shared no-op metrics instead.
        if self.config.telemetry:
            self.metrics = MetricsRegistry(now_fn=lambda: sim.now, name="pdr_system")
        else:
            self.metrics = NullMetricsRegistry(name="pdr_system")

        # ---- fabric ---------------------------------------------------------
        self.layout = make_z7020_layout()
        self.memory = ConfigMemory(self.layout)
        self.regions: Dict[str, RpRegion] = {
            name: RpRegion(self.memory, name) for name in self.layout.regions
        }
        self.builder = BitstreamBuilder(self.layout)

        # ---- PS memory system ---------------------------------------------
        cfg = self.config
        dram_model = os.environ.get("REPRO_DRAM") or cfg.dram_model
        if dram_model not in ("bank", "flat"):
            raise ValueError(f"dram_model must be 'bank' or 'flat', got {dram_model!r}")
        self.dram_model = dram_model
        refresh_mode = (
            os.environ.get("REPRO_DRAM_REFRESH") or cfg.dram_refresh_mode
        )
        if refresh_mode not in REFRESH_MODES:
            raise ValueError(
                f"refresh mode must be one of {REFRESH_MODES}, got {refresh_mode!r}"
            )
        refresh_off = refresh_mode == "off"
        self.dram = DramDevice(
            timing=DdrTiming(
                row_hit_ns=cfg.dram_tcas_ns,
                row_miss_ns=cfg.dram_trcd_ns + cfg.dram_tcas_ns,
                refresh_interval_ns=math.inf if refresh_off else cfg.dram_trefi_ns,
                refresh_stall_ns=cfg.dram_trfc_ns,
            )
        )
        if dram_model == "flat":
            self.dram_controller = DramController(
                sim, self.dram, metrics=self.metrics
            )
        else:
            self.dram_controller = BankDramController(
                sim,
                self.dram,
                metrics=self.metrics,
                timing=BankTiming(
                    tcas_ns=cfg.dram_tcas_ns,
                    trcd_ns=cfg.dram_trcd_ns,
                    trp_ns=cfg.dram_trp_ns,
                    trefi_ns=cfg.dram_trefi_ns,
                    trfc_ns=cfg.dram_trfc_ns,
                ),
                page_policy=cfg.dram_page_policy,
                refresh_mode=refresh_mode,
            )
        self.interconnect = AxiInterconnect(
            sim, self.dram_controller, metrics=self.metrics
        )
        self.hp0 = AxiHpPort(sim, self.interconnect, name="hp0")

        # ---- over-clock domain + transfer path ------------------------------
        self.overclock = ClockDomain(
            sim, self.config.nominal_freq_mhz, name="overclock"
        )
        self.clock_wizard = ClockWizard(sim, self.overclock, name="clk_wiz")
        self.stream = AxiStream(
            sim,
            fifo_words=self.config.stream_fifo_words,
            name="dma2icap",
            metrics=self.metrics,
        )
        self.dma = AxiDmaEngine(
            sim,
            self.overclock,
            self.hp0,
            self.stream,
            max_burst_bytes=self.config.dma_burst_bytes,
            cmd_overhead_cycles=self.config.dma_cmd_overhead_cycles,
            metrics=self.metrics,
        )
        self.icap = IcapController(
            sim, self.overclock, self.memory, self.stream, metrics=self.metrics
        )
        self.scrubber = CrcScrubber(
            sim,
            self.overclock,
            self.memory,
            busy_gate=self.icap.busy,
            metrics=self.metrics,
        )

        # ---- PS software-visible blocks --------------------------------------
        self.timer = GlobalTimer(sim)
        self.gic = InterruptController(sim)
        self.gic.connect("dma_ioc", self.dma.ioc_irq)
        self.gic.connect("crc_error", self.scrubber.error_irq)
        self.gic.connect("icap_error", self.icap.error_irq)
        self.pcap = Pcap(sim, self.memory)

        # ---- bench: thermal + power ------------------------------------------
        self.power_model = PowerModel(power_params or PowerModelParams())
        self.thermal = ThermalModel(
            sim,
            power_source=lambda: self.power_model.pdr_power_w(
                self.overclock.freq_mhz, 40.0
            ),
        )
        self.heat_gun = HeatGun(self.thermal)
        self.temp_sensor = TemperatureSensor(self.thermal)
        self.current_sense = CurrentSense(
            self.power_model,
            freq_source=lambda: self.overclock.freq_mhz,
            temp_source=lambda: self.thermal.temperature_c,
        )
        #: Board supply state: brownouts clamp the usable over-clock.
        self.supply = PowerSupply(now_fn=lambda: sim.now)
        self.thermal.pin_temperature(self.config.die_temp_c)

        # ---- board I/O -------------------------------------------------------
        self.oled = OledDisplay()
        self.switches = SwitchBank()
        self.buttons = PushButtons()
        self.sdcard = SdCard(sim)

        # ---- timing / failure model -----------------------------------------
        self.timing = timing_model or default_timing_model()

        #: Firmware/system event trace (bounded ring buffer); retention
        #: follows the telemetry flag (emission is lazy, so a disabled
        #: tracer costs one boolean check per emit).
        self.trace = Tracer()
        self.trace.enabled = self.config.telemetry
        self._staging_cursor = self.config.bitstream_base_addr
        self._bitstream_cache: Dict[tuple, Bitstream] = {}
        self._staged_addrs: Dict[int, int] = {}
        self.results: List[ReconfigResult] = []
        #: Number of firmware reconfiguration sequences currently in
        #: flight (clock program → transfer → post-transfer scrub).  The
        #: chaos layer gates SEU delivery on this being zero: an upset
        #: during an active sequence is indistinguishable from transfer
        #: corruption and belongs to the retry ladder, not the scrubber.
        self.firmware_active = 0

        # ---- telemetry: probes, bench series, firmware counters -------------
        metrics = self.metrics
        metrics.probe("sim.events_processed", lambda: sim.events_processed)
        metrics.probe("sim.heap_high_water", lambda: sim.heap_high_water)
        metrics.probe("sim.processes_spawned", lambda: sim.processes_spawned)
        metrics.probe("overclock.freq_mhz", lambda: self.overclock.freq_mhz)
        metrics.probe("bench.die_temp_c", lambda: self.thermal.temperature_c)
        self._temp_series = metrics.series("bench.temp_c")
        self._power_series = metrics.series("bench.board_power_w")
        self._m_reconfigures = metrics.counter("fw.reconfigures")
        self._m_irq_timeouts = metrics.counter("fw.irq_timeouts")
        self._m_latency_us = metrics.histogram("fw.latency_us")
        self._m_brownout_clamps = metrics.counter("power.brownout_clamps")
        if self.config.telemetry:
            TELEMETRY_BOOK.register(metrics, "pdr_system")
            TELEMETRY_BOOK.register_tracer(self.trace, "pdr_system")

    # ---------------------------------------------------------------- snapshots --
    @classmethod
    def fork(
        cls,
        snapshot,
        timing_model: Optional[TimingModel] = None,
        power_params: Optional[PowerModelParams] = None,
    ) -> "PdrSystem":
        """Rebuild a live system from a :class:`~repro.snapshot.SystemSnapshot`.

        The constructor still wires the device graph (simulator,
        processes and metrics are live objects), but the fork inherits
        the snapshot's provisioning state — fabric frames, staged DRAM
        content, the instance bitstream cache and golden CRCs — so no
        layout decode, bitstream build or re-staging happens.  Timed
        behaviour is byte-identical to a fresh-built system because
        snapshots only ever capture untimed state.
        """
        from ..snapshot.state import SystemSnapshot

        if not isinstance(snapshot, SystemSnapshot):
            raise TypeError("fork() needs a SystemSnapshot")
        system = cls(
            config=PdrSystemConfig(**snapshot.config_mapping()),
            timing_model=timing_model,
            power_params=power_params,
        )
        snapshot.restore_into(system)
        return system

    def snapshot(self):
        """Capture this system's provisioning state (untimed systems only)."""
        from ..snapshot.state import SystemSnapshot

        return SystemSnapshot.capture(self)

    # ------------------------------------------------------------------ bench --
    def set_die_temperature(self, temp_c: float) -> None:
        """Pin the die temperature (the paper's stabilised heat-gun steps).

        Setpoints above the self-heating floor go through the heat-gun
        actuator (as on the bench); colder setpoints — unreachable with a
        heat gun — fall back to a direct pin for what-if experiments.
        """
        try:
            self.heat_gun.hold_die_at(temp_c)
        except ValueError:
            self.thermal.pin_temperature(temp_c)

    @property
    def die_temp_c(self) -> float:
        return self.thermal.temperature_c

    # --------------------------------------------------------------- bitstreams --
    def make_bitstream(
        self,
        region: str,
        asp: Asp,
        description: str = "",
        pad_to=_PAD_FROM_CONFIG,
    ) -> Bitstream:
        """Build a partial bitstream configuring ``region`` as ``asp``.

        Builds are deterministic and memoised per (region, ASP, padding);
        treat the returned object as read-only (use
        :meth:`Bitstream.corrupted` for fault-injection variants).
        ``pad_to`` overrides the config's ``pad_bitstreams_to`` for this
        build only (``None`` = content-sized) — request-level workloads
        mix bitstream sizes on one system this way.
        """
        if pad_to is _PAD_FROM_CONFIG:
            pad_to = self.config.pad_bitstreams_to
        cache_key = (
            region,
            asp.kind,
            tuple(asp.params()),
            pad_to,
            description,
        )
        cached = self._bitstream_cache.get(cache_key)
        if cached is not None:
            # Promote in the shared LRU too: a system whose instance cache
            # keeps answering must not let the shared entry age to the
            # cold end and evict while it is the hottest build in the
            # process (promote-on-hit previously only ran on the
            # shared-lookup path).
            if cache_key in PdrSystem._BUILD_CACHE:
                PdrSystem._BUILD_CACHE.move_to_end(cache_key)
            return cached
        shared = PdrSystem._BUILD_CACHE.get(cache_key)
        if shared is not None:
            PdrSystem._BUILD_CACHE.move_to_end(cache_key)
            # Pin in the instance cache too, so identity within this
            # system survives a later LRU eviction.
            self._bitstream_cache[cache_key] = shared
            return shared
        frame_count = self.layout.region_frame_count(region)
        packed_frames = encode_asp_packed(frame_count, asp)
        bitstream = self.builder.build_partial(
            region,
            pad_to_bytes=pad_to,
            description=description or f"{asp.name} for {region}",
            frame_data_packed=packed_frames,
        )
        # Golden CRC of the region content after a correct load, used by
        # the read-back scrubber.  Folded over the same 32-frame chunks
        # the scrubber's batched read-back produces, so the fold here
        # pre-warms the content cache the scrub pass will hit.
        chunk_bytes = 32 * FRAME_BYTES
        bitstream.meta["region_crc"] = crc32c_packed(
            packed_frames[offset : offset + chunk_bytes]
            for offset in range(0, len(packed_frames), chunk_bytes)
        )
        self._bitstream_cache[cache_key] = bitstream
        PdrSystem._BUILD_CACHE[cache_key] = bitstream
        PdrSystem._BUILD_CACHE.move_to_end(cache_key)
        while len(PdrSystem._BUILD_CACHE) > PdrSystem._BUILD_CACHE_MAX:
            PdrSystem._BUILD_CACHE.popitem(last=False)
        return bitstream

    def stage_bitstream(self, bitstream: Bitstream, addr: Optional[int] = None) -> int:
        """Place a bitstream in DRAM; returns its address.

        Untimed (bench provisioning).  The boot-from-SD example stages
        through the timed SD-card path instead.
        """
        if addr is None:
            staged = self._staged_addrs.get(id(bitstream))
            if staged is not None:
                return staged  # already resident in DRAM
            addr = self._staging_cursor
            self._staging_cursor += (bitstream.size_bytes + 0xFFF) & ~0xFFF
            self._staged_addrs[id(bitstream)] = addr
        self.dram.store(addr, bitstream.to_bytes())
        return addr

    # ------------------------------------------------------------- main entry --
    def reconfigure(
        self,
        region: str,
        asp: Asp,
        freq_mhz: float,
        bitstream: Optional[Bitstream] = None,
        attempt: int = 0,
    ) -> ReconfigResult:
        """Run one complete over-clocked PDR measurement.

        Blocks (in simulation time) until the firmware sequence finishes
        and returns the Table-I-style result record.  ``attempt`` is the
        retry index of a recovery loop (0 = first try); it salts the
        fault injector so a retry does not replay bit-identical
        corruption.
        """
        if region not in self.regions:
            raise KeyError(f"unknown region {region!r}")
        process = self.sim.process(
            self.reconfigure_process(region, asp, freq_mhz, bitstream, attempt),
            name=f"fw.reconfigure:{region}",
        )
        result: ReconfigResult = self.sim.run_until(process)
        self.results.append(result)
        return result

    def reconfigure_process(
        self,
        region: str,
        asp: Asp,
        freq_mhz: float,
        bitstream: Optional[Bitstream] = None,
        attempt: int = 0,
    ):
        """The reconfiguration sequence as a raw process generator.

        For callers that are themselves simulation processes (e.g. the
        HLL framework's job scheduler); :meth:`reconfigure` is the
        blocking convenience wrapper around the same sequence.
        """
        if bitstream is None:
            bitstream = self.make_bitstream(region, asp)
        addr = self.stage_bitstream(bitstream)
        return self._firmware_sequence(region, bitstream, addr, freq_mhz, attempt)

    # ------------------------------------------------------------ fault hooks --
    def abort_transfer(self):
        """Reset the DMA engine and abort the in-flight ICAP transfer.

        Process generator; the recovery path for a missing completion
        interrupt.  Returns once the engine is verifiably idle and the
        stream between DMA and ICAP is quiesced — raising instead of
        returning if the hardware will not settle, because retrying on
        top of a still-draining transfer corrupts the next load.
        """
        self.dma.reg_write(MM2S_DMACR, DMACR_RESET)
        # The reset interrupt lands on the next event tick; give the
        # engine a couple of cycles to unwind before quiescing the ICAP.
        yield self.overclock.wait_cycles(2)
        yield self.sim.process(self.icap.abort(), name="fw.icap_abort")
        if not self.dma.idle:
            raise RuntimeError("DMA engine not idle after abort")
        if self.icap.busy.value:
            raise RuntimeError("ICAP still busy after abort")
        self.trace.emit(self.sim.now, "fw", "DMA reset + ICAP abort complete")

    def run_asp(self, region: str, words: List[int]) -> List[int]:
        """Execute the currently configured ASP of ``region`` functionally."""
        return self.regions[region].compute(words)

    # ------------------------------------------------------ batch (SG) mode --
    def reconfigure_batch(
        self, jobs: List[tuple], freq_mhz: float
    ) -> "BatchReconfigResult":
        """Reconfigure several partitions back-to-back via SG descriptors.

        ``jobs`` is a list of ``(region, asp)`` pairs — or
        ``(region, asp, pad_to)`` triples to override the bitstream
        padding per job (the fleet layer batches mixed-size requests).
        A scatter-gather descriptor chain in DRAM points at each staged
        bitstream; the DMA walks the chain with no software between
        transfers, so the per-transfer driver overhead is paid once for
        the whole batch.
        """
        from ..dma.descriptors import SgDescriptor, SgDmaEngine, write_descriptor_chain

        if not jobs:
            raise ValueError("batch needs at least one (region, asp) job")
        bitstreams = []
        descriptors = []
        for job in jobs:
            region, asp = job[0], job[1]
            pad_to = job[2] if len(job) > 2 else _PAD_FROM_CONFIG
            if region not in self.regions:
                raise KeyError(f"unknown region {region!r}")
            bitstream = self.make_bitstream(region, asp, pad_to=pad_to)
            addr = self.stage_bitstream(bitstream)
            bitstreams.append((region, bitstream))
            descriptors.append(
                SgDescriptor(buffer_addr=addr, length=bitstream.size_bytes)
            )
        chain_base = 0x0F00_0000  # below the bitstream staging area
        head = write_descriptor_chain(self.dram, chain_base, descriptors)
        engine = SgDmaEngine(self.dma, name="sg")

        def sequence():
            self.firmware_active += 1
            try:
                result = yield from batch_body()
            finally:
                self.firmware_active -= 1
            return result

        def batch_body():
            achieved = yield self.clock_wizard.program(freq_mhz)
            temp_c = self.thermal.temperature_c
            control_ok = self.timing.ok(PDR_CONTROL_PATH, achieved, temp_c)
            data_ok = self.timing.ok(PDR_DATA_PATH, achieved, temp_c)
            self.dma.suppress_completion_irq = False  # SG needs per-buffer IOC
            if not data_ok:
                fmax = self.timing.path(PDR_DATA_PATH).fmax_mhz(temp_c)
                self.icap.word_corruptor = make_word_corruptor(achieved, fmax, temp_c)
            else:
                self.icap.word_corruptor = None

            start_ticks = self.timer.read_ticks()
            yield self.sim.timeout(self.config.firmware_setup_us * 1e3)
            self.icap.begin_transfer()
            walk = engine.start_chain(head)
            yield walk
            latency_us = self.timer.elapsed_us(start_ticks)

            region_valid = {}
            for region, bitstream in bitstreams:
                self.scrubber.set_expected_crc(region, bitstream.meta["region_crc"])
                scrub = yield self.sim.process(
                    self.scrubber.scrub_region_once(region)
                )
                region_valid[region] = scrub.ok
            return BatchReconfigResult(
                freq_mhz=achieved,
                latency_us=latency_us,
                total_bytes=sum(b.size_bytes for _r, b in bitstreams),
                region_valid=region_valid,
                control_path_ok=control_ok,
            )

        process = self.sim.process(sequence(), name="fw.batch")
        return self.sim.run_until(process)

    # ---------------------------------------------------------------- firmware --
    def _firmware_sequence(self, region, bitstream, addr, freq_mhz, attempt=0):
        """The paper's C test program, as a simulation process.

        Every firmware phase runs inside a :class:`SpanRecorder` span, so
        the returned :class:`ReconfigResult` carries a per-phase latency
        breakdown and the registry accumulates ``fw.phase.*_us``
        histograms across reconfigurations.
        """
        config = self.config
        spans = SpanRecorder(
            now_fn=lambda: self.sim.now,
            tracer=self.trace,
            source="fw",
            metrics=self.metrics,
            metrics_prefix="fw.phase.",
        )
        self._m_reconfigures.inc()
        self.firmware_active += 1
        try:
            result = yield from self._firmware_sequence_body(
                region, bitstream, addr, freq_mhz, attempt, spans
            )
        finally:
            self.firmware_active -= 1
        return result

    def _firmware_sequence_body(
        self, region, bitstream, addr, freq_mhz, attempt, spans
    ):
        config = self.config
        with spans.span("reconfigure", region=region, freq_mhz=freq_mhz):
            # 1. Program the Clock Wizard and wait for MMCM lock.  A
            #    browned-out rail cannot hold timing at the full
            #    over-clock, so firmware gates the request first.
            gated_mhz = self.supply.gate_mhz(freq_mhz)
            if gated_mhz < freq_mhz:
                self._m_brownout_clamps.inc()
                self.trace.emit(
                    self.sim.now,
                    "fw",
                    f"brownout: {freq_mhz:g} MHz request clamped to "
                    f"{gated_mhz:g} MHz for {region}",
                )
            with spans.span("clock_lock"):
                achieved = yield self.clock_wizard.program(gated_mhz)
            self.trace.emit(
                self.sim.now, "fw", f"clock locked at {achieved:g} MHz for {region}"
            )
            self._temp_series.sample(self.thermal.temperature_c)

            # 2. Ask the "silicon" what breaks at this operating point.
            temp_c = self.thermal.temperature_c
            failure_modes = []
            control_ok = self.timing.ok(PDR_CONTROL_PATH, achieved, temp_c)
            data_ok = self.timing.ok(PDR_DATA_PATH, achieved, temp_c)
            self.dma.suppress_completion_irq = not control_ok
            if not control_ok:
                failure_modes.append(FailureMode.CONTROL_HANG)
            if not data_ok:
                fmax = self.timing.path(PDR_DATA_PATH).fmax_mhz(temp_c)
                self.icap.word_corruptor = make_word_corruptor(
                    achieved, fmax, temp_c, region=region, attempt=attempt
                )
                failure_modes.append(FailureMode.DATA_CORRUPT)
            else:
                self.icap.word_corruptor = None

            # 3. Timestamp, then driver setup: the paper's C-timer wraps the
            #    whole transfer call, cache maintenance included.
            start_ticks = self.timer.read_ticks()
            with spans.span("driver_setup"):
                yield self.sim.timeout(config.firmware_setup_us * 1e3)

            # FIFO backpressure accumulated during the transfer window is
            # consumer-bound time (the ICAP draining slower than the DMA
            # fills); the critical-path extractor re-attributes it.
            stall_before_ns = self.stream.backpressure_ns
            with spans.span("dma_transfer"):
                # 4. Arm the ICAP and start the DMA.
                self.icap.begin_transfer()
                self.dma.reg_write(MM2S_DMACR, DMACR_RS | DMACR_IOC_IRQ_EN)
                self.dma.reg_write(MM2S_SA, addr)
                self.dma.reg_write(MM2S_LENGTH, bitstream.size_bytes)

                # 5. Wait for the completion interrupt (or give up).
                irq_event = self.dma.ioc_irq.wait_assert()
                timeout_event = self.sim.timeout(config.irq_timeout_us * 1e3)
                fired = yield self.sim.any_of([irq_event, timeout_event])
                interrupt_seen = irq_event in fired
                self.trace.emit(
                    self.sim.now,
                    "fw",
                    "completion interrupt received" if interrupt_seen
                    else "TIMEOUT waiting for completion interrupt",
                )
                latency_us: Optional[float] = None
                if interrupt_seen:
                    latency_us = self.timer.elapsed_us(start_ticks)
                    self.dma.reg_write(MM2S_DMASR, DMASR_IOC_IRQ)  # ack (W1C)
            if interrupt_seen:
                self._m_latency_us.observe(latency_us)
            else:
                self._m_irq_timeouts.inc()
                # A timed-out transfer may still be in flight: left alone
                # it keeps draining into the ICAP and can bleed into the
                # next reconfiguration.  Halt the engine and quiesce the
                # ICAP before touching the fabric again.
                with spans.span("fault_abort"):
                    yield from self.abort_transfer()

            # Let the ICAP finish draining whatever the DMA pushed.
            with spans.span("icap_drain"):
                yield self.icap.busy.wait_for(False)
                yield self.overclock.wait_cycles(16)

            # 6. Read-back CRC check of the freshly configured region.
            with spans.span("scrub"):
                self.scrubber.set_expected_crc(region, bitstream.meta["region_crc"])
                scrub = yield self.sim.process(
                    self.scrubber.scrub_region_once(region), name="fw.scrub"
                )
            crc_valid = scrub.ok
            self.trace.emit(
                self.sim.now,
                "fw",
                f"read-back CRC for {region}: {'valid' if crc_valid else 'NOT VALID'}",
            )

            # 7. Report on the OLED, sample power, return the record.
            # The sampled board power can quantise below the idle
            # baseline at low operating points; a transfer never has
            # negative power draw, so clamp at zero.
            board_power = self.current_sense.read_board_power_w()
            pdr_power = max(0.0, board_power - self.power_model.params.p0_board_w)
            self._power_series.sample(board_power)
            self._temp_series.sample(self.thermal.temperature_c)
        phase_us = spans.breakdown_us(parent="reconfigure")
        stall_us = max(0.0, self.stream.backpressure_ns - stall_before_ns) / 1e3
        device_us = attribute_devices(phase_us, stall_us)
        result = ReconfigResult(
            region=region,
            requested_freq_mhz=freq_mhz,
            freq_mhz=achieved,
            bitstream_bytes=bitstream.size_bytes,
            temp_c=temp_c,
            interrupt_seen=interrupt_seen,
            crc_valid=crc_valid,
            latency_us=latency_us,
            latency_unavailable_reason=(
                None if interrupt_seen else "no completion interrupt"
            ),
            pdr_power_w=pdr_power,
            board_power_w=board_power,
            failure_modes=failure_modes,
            phase_us=phase_us,
            critical_path=_critical_path(phase_us, stall_us),
            device_us={name: round(us, 3) for name, us in device_us.items()},
        )
        self._update_oled(result)
        return result

    def _update_oled(self, result: ReconfigResult) -> None:
        self.oled.write_line(0, f"FREQ {result.freq_mhz:6.1f} MHz")
        self.oled.write_line(1, f"TEMP {self.temp_sensor.read_celsius():5.1f} C")
        if result.latency_us is not None:
            self.oled.write_line(2, f"XFER {result.latency_us:8.1f} us")
        else:
            self.oled.write_line(2, "XFER   no interrupt")
        self.oled.write_line(3, f"CRC  {'valid' if result.crc_valid else 'NOT VALID'}")
