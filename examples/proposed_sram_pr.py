"""The §VI proposed SRAM-based PR environment, exercised end to end.

Shows the three mechanisms of the proposal:

1. activation streams from the QDR SRAM at the paper's theoretical
   1237.5 MB/s — almost double the Fig. 2 system's 790 MB/s ceiling;
2. the bitstream decompressor multiplies the effective rate further;
3. the PS scheduler pre-loads the *next* bitstream while the current
   accelerator computes, hiding the DRAM-bound staging entirely.

Run:  python examples/proposed_sram_pr.py
"""

from repro.fabric import Aes128Asp, FirFilterAsp, MatMulAsp
from repro.sram_pr import SramPrSystem, THEORETICAL_THROUGHPUT_MB_S


def basic_activation(system: SramPrSystem) -> None:
    print("1) plain activation from SRAM")
    result = system.reconfigure("RP1", Aes128Asp([1, 2, 3, 4]), compress=False)
    print(
        f"   preload {result.preload_us:7.1f} us, "
        f"activate {result.activation_latency_us:7.1f} us "
        f"-> {result.throughput_mb_s:7.1f} MB/s "
        f"(theory {THEORETICAL_THROUGHPUT_MB_S:.1f}), "
        f"CRC {'valid' if result.crc_valid else 'NOT VALID'}"
    )


def compressed_activation(system: SramPrSystem) -> None:
    print("\n2) compressed image through the hardware decompressor")
    result = system.reconfigure("RP2", FirFilterAsp([1, 2, 1]), compress=True)
    activation = result.activation
    print(
        f"   SRAM holds {activation.sram_words * 4 / 1024:.0f} KiB "
        f"(ratio {activation.compression_ratio:.2f}) -> effective "
        f"{result.throughput_mb_s:7.1f} MB/s (ICAP hard-macro bound: 2200)"
    )


def preload_hiding(system: SramPrSystem) -> None:
    print("\n3) PS-scheduler preloading hidden behind ASP compute")
    compute_ns = 700_000.0
    asps = [MatMulAsp(2), FirFilterAsp([5, 5]), Aes128Asp([4, 4, 4, 4])]
    pendings = [system.prepare_image("RP3", asp, compress=False) for asp in asps]

    timeline = []

    def driver():
        system.scheduler.enqueue(pendings[0])
        yield system.sim.process(system.scheduler.preload_next())
        for index in range(len(pendings)):
            t0 = system.sim.now
            activation = yield system.sim.process(system.pr_controller.activate())
            timeline.append((f"activate #{index}", t0, system.sim.now))
            compute = system.sim.timeout(compute_ns)
            if index + 1 < len(pendings):
                system.scheduler.enqueue(pendings[index + 1])
                t0 = system.sim.now
                preload = system.sim.process(system.scheduler.preload_next())
                yield system.sim.all_of([compute, preload])
                timeline.append((f"preload #{index + 1} (hidden)", t0, system.sim.now))
            else:
                yield compute
            assert activation.config_ok

    start = system.sim.now
    system.sim.run_until(system.sim.process(driver()))
    makespan_us = (system.sim.now - start) / 1e3

    for label, t0, t1 in timeline:
        print(f"   {label:<22} {(t0 - start) / 1e3:8.1f} -> {(t1 - start) / 1e3:8.1f} us")
    hidden_us = sum(
        (t1 - t0) / 1e3 for label, t0, t1 in timeline if "hidden" in label
    )
    print(
        f"   makespan {makespan_us:.1f} us; {hidden_us:.1f} us of staging "
        f"fully overlapped with compute"
    )


def main() -> None:
    system = SramPrSystem()
    basic_activation(system)
    compressed_activation(system)
    preload_hiding(system)


if __name__ == "__main__":
    main()
