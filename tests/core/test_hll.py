"""Tests for the Fig. 1 HLL acceleration framework."""

import pytest

from repro.core import AspRequest, HllFramework
from repro.fabric import Aes128Asp, Crc32Asp, FirFilterAsp, MatMulAsp


@pytest.fixture(scope="module")
def framework():
    return HllFramework(icap_freq_mhz=200.0)


def test_first_job_is_a_miss(framework):
    request = AspRequest(
        asp=FirFilterAsp([1, 2]), input_words=[1, 0, 0], label="fir-first"
    )
    result = framework.run_job(request)
    assert not result.hit
    assert result.reconfig is not None
    assert result.reconfig.succeeded
    assert result.reconfig_us > 600.0  # a real PDR happened
    assert result.output_words == [1, 2, 0]


def test_repeat_job_is_a_hit(framework):
    request = AspRequest(
        asp=FirFilterAsp([1, 2]), input_words=[2, 0, 0], label="fir-again"
    )
    result = framework.run_job(request)
    assert result.hit
    assert result.reconfig is None
    assert result.reconfig_us == 0.0
    assert result.output_words == [2, 4, 0]


def test_four_asps_fill_four_regions(framework):
    asps = [
        Aes128Asp([1, 1, 1, 1]),
        MatMulAsp(2),
        Crc32Asp(),
    ]
    for asp in asps:
        framework.run_job(AspRequest(asp=asp, input_words=[1, 2, 3, 4] * 2))
    resident = [key for key in framework.resident_asps().values() if key]
    assert len(resident) == 4  # FIR + the three above


def test_fifth_asp_evicts_lru(framework):
    before = framework.resident_asps()
    framework.run_job(
        AspRequest(asp=FirFilterAsp([9, 9]), input_words=[1], label="evictor")
    )
    after = framework.resident_asps()
    assert before != after
    # Still exactly four resident ASPs.
    assert len([k for k in after.values() if k]) == 4


def test_eviction_policy_is_lru(framework):
    framework_local = HllFramework(icap_freq_mhz=200.0)
    a = AspRequest(asp=FirFilterAsp([1]), input_words=[1], label="a")
    b = AspRequest(asp=FirFilterAsp([2]), input_words=[1], label="b")
    c = AspRequest(asp=FirFilterAsp([3]), input_words=[1], label="c")
    d = AspRequest(asp=FirFilterAsp([4]), input_words=[1], label="d")
    for request in (a, b, c, d):
        framework_local.run_job(request)
    framework_local.run_job(a)  # touch a: b is now LRU
    evictor = AspRequest(asp=FirFilterAsp([5]), input_words=[1], label="e")
    framework_local.run_job(evictor)
    resident = set(framework_local.resident_asps().values())
    assert b.asp_key() not in resident
    assert a.asp_key() in resident


def test_hit_rate_accounting(framework):
    assert framework.jobs_run == framework.hits + framework.misses
    assert 0.0 <= framework.hit_rate <= 1.0


def test_rp_clock_programming():
    framework = HllFramework(icap_freq_mhz=200.0)
    request = AspRequest(
        asp=Crc32Asp(), input_words=[1, 2, 3], rp_clock_mhz=250.0, label="fast-rp"
    )
    result = framework.run_job(request)
    clock = framework.clock_manager.domain_of(result.region)
    assert clock.freq_mhz == pytest.approx(250.0)


def test_job_timing_breakdown(framework):
    request = AspRequest(
        asp=Crc32Asp(), input_words=list(range(4096)), label="timed"
    )
    result = framework.run_job(request)
    assert result.total_us == pytest.approx(
        result.reconfig_us
        + result.data_in_us
        + result.compute_us
        + result.data_out_us
    )
    assert result.data_in_us > result.data_out_us  # 4096 words in, 1 out
    assert result.compute_us > 0


def test_reconfig_latency_depends_on_icap_clock():
    slow = HllFramework(icap_freq_mhz=100.0)
    fast = HllFramework(icap_freq_mhz=200.0)
    request = AspRequest(asp=MatMulAsp(3), input_words=[1] * 18)
    slow_result = slow.run_job(request)
    fast_result = fast.run_job(request)
    # Paper headline: ~1.33 ms at nominal vs ~0.68 ms over-clocked.
    assert slow_result.reconfig_us / fast_result.reconfig_us == pytest.approx(
        1325.6 / 676.3, rel=0.05
    )
