"""Chaos-fleet integration: determinism, board death, failover, rejoin.

Seed 17 is the repo's demonstration campaign (EXPERIMENTS E16): one of
four boards is killed permanently mid-run and another quarantines on
consecutive deadline breaches, then rejoins through a successful
half-open circuit-breaker probe.  Seed 19 exercises the crash path — a
chaos fault wedges a board's simulation, which the fleet treats as a
board death and fails over.  Reports are cached per spec because a
chaos campaign costs seconds, not milliseconds.
"""

import functools

from repro.fleet import FleetSpec, run_fleet
from repro.fleet.health import DEAD, QUARANTINED
from repro.fleet.report import TERMINAL_SERVED, render_json

REJOIN_SPEC = FleetSpec(
    boards=4,
    seed=17,
    duration_ms=14.0,
    chaos=True,
    chaos_intensity=6,
    kill_boards=1,
)
CRASH_SPEC = FleetSpec(
    boards=4,
    seed=19,
    duration_ms=12.0,
    chaos=True,
    chaos_intensity=4,
    kill_boards=1,
)


@functools.lru_cache(maxsize=None)
def cached_report(spec):
    return run_fleet(spec)


def test_chaos_serial_vs_jobs2_and_rerun_byte_identity():
    serial = render_json(run_fleet(REJOIN_SPEC, jobs=1))
    parallel = render_json(run_fleet(REJOIN_SPEC, jobs=2))
    assert serial == parallel
    assert serial == render_json(cached_report(REJOIN_SPEC))


def test_board_kill_loses_no_requests():
    report = cached_report(REJOIN_SPEC)
    assert report.offered == report.admitted + report.rejected
    assert len(report.outcomes) == report.admitted
    states = {entry["board"]: entry["state"] for entry in report.health}
    assert DEAD in states.values()  # the scheduled kill landed
    assert report.slos.failovers > 0
    assert report.rounds > 1
    # Retry budget absorbed the board loss entirely at this scale.
    assert report.slos.availability == 1.0
    assert report.slos.exhausted_rate == 0.0
    # Dead boards serve nothing after their death: the failed-over
    # requests all terminate served on surviving boards.
    assert all(
        outcome.terminal == TERMINAL_SERVED for outcome in report.outcomes
    )


def test_quarantined_board_rejoins_via_half_open_probe():
    report = cached_report(REJOIN_SPEC)
    rejoined = [
        entry
        for entry in report.health
        if "probe_ok_rejoined" in [e["reason"] for e in entry["events"]]
    ]
    assert rejoined
    # The rejoin follows a quarantine and a half-open promotion, in order.
    events = rejoined[0]["events"]
    reasons = [event["reason"] for event in events]
    assert reasons.index("breaker_half_open") < reasons.index(
        "probe_ok_rejoined"
    )
    states = [event["state"] for event in events]
    assert QUARANTINED in states
    # And the board ends the campaign back in service.
    assert rejoined[0]["state"] != QUARANTINED


def test_failover_latency_penalty_is_measured():
    report = cached_report(REJOIN_SPEC)
    retried = [o for o in report.outcomes if o.attempts > 1]
    assert retried
    assert report.slos.failover_latency_penalty_us is not None
    assert report.slos.failover_latency_penalty_us > 0


def test_crashed_board_counts_as_dead_and_fails_over():
    report = cached_report(CRASH_SPEC)
    crash_reasons = [
        event["reason"]
        for entry in report.health
        for event in entry["events"]
        if event["reason"].startswith("crash")
    ]
    assert crash_reasons  # a fault wedged the board's simulation
    assert report.offered == report.admitted + report.rejected
    assert len(report.outcomes) == report.admitted
    assert report.slos.availability == 1.0


def test_verify_attaches_invariant_monitor():
    spec = FleetSpec(
        boards=2, seed=1, duration_ms=8.0, chaos=True, chaos_intensity=2,
        verify=True,
    )
    report = cached_report(spec)
    assert report.verify is not None
    assert report.verify["checks"] > 0
    assert report.verify["violations"] == []


def test_plain_fleet_has_no_health_or_failover_fields():
    report = cached_report(FleetSpec(boards=2, seed=1, duration_ms=8.0))
    assert report.rounds == 1
    assert report.health == []
    assert report.verify is None
    assert report.slos.failovers == 0


def test_chaos_spec_validation():
    import pytest

    with pytest.raises(ValueError):
        FleetSpec(boards=2, kill_boards=1)  # kill requires chaos
    with pytest.raises(ValueError):
        FleetSpec(boards=2, chaos=True, kill_boards=3)  # beyond fleet
    with pytest.raises(ValueError):
        FleetSpec(boards=2, chaos=True, chaos_intensity=-1)
