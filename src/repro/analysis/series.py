"""Data series utilities for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["Series", "knee_frequency", "linear_fit"]


@dataclass
class Series:
    """A named (x, y) series with optional per-point labels."""

    name: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)

    def append(self, x: float, y: float, label: str = "") -> None:
        self.x.append(float(x))
        self.y.append(float(y))
        self.labels.append(label)

    def __len__(self) -> int:
        return len(self.x)

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self.x, self.y))

    def to_csv(self, x_name: str = "x", y_name: str = "y") -> str:
        lines = [f"{x_name},{y_name}"]
        lines.extend(f"{x:g},{y:g}" for x, y in zip(self.x, self.y))
        return "\n".join(lines) + "\n"


def linear_fit(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Least-squares (slope, intercept); raises on degenerate input."""
    if len(x) != len(y):
        raise ValueError("x and y must be the same length")
    n = len(x)
    if n < 2:
        raise ValueError("need at least two points to fit a line")
    mean_x = sum(x) / n
    mean_y = sum(y) / n
    sxx = sum((xi - mean_x) ** 2 for xi in x)
    if sxx == 0:
        raise ValueError("x values are all identical")
    sxy = sum((xi - mean_x) * (yi - mean_y) for xi, yi in zip(x, y))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x


def knee_frequency(
    x: Sequence[float], y: Sequence[float], min_points: int = 2
) -> Optional[float]:
    """The x where a rising curve bends into saturation (Fig. 5's knee).

    Tries every split point, fits lines to the left and right segments,
    and returns the split minimising total squared error — the classic
    two-segment change-point fit.  Returns ``None`` if the series is too
    short or never flattens (right slope not materially below left).
    """
    n = len(x)
    if n != len(y):
        raise ValueError("x and y must be the same length")
    if n < 2 * min_points + 1:
        return None
    pairs = sorted(zip(x, y))
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]

    def sse(lo: int, hi: int) -> float:
        slope, intercept = linear_fit(xs[lo:hi], ys[lo:hi])
        return sum(
            (ys[i] - (slope * xs[i] + intercept)) ** 2 for i in range(lo, hi)
        )

    best_split = None
    best_error = float("inf")
    for split in range(min_points, n - min_points + 1):
        try:
            error = sse(0, split) + sse(split - 1, n)
        except ValueError:
            continue
        if error < best_error:
            best_error = error
            best_split = split
    if best_split is None:
        return None
    left_slope, _ = linear_fit(xs[:best_split], ys[:best_split])
    right_slope, _ = linear_fit(xs[best_split - 1 :], ys[best_split - 1 :])
    if left_slope <= 0 or right_slope > 0.5 * left_slope:
        return None  # no saturation: the curve never bends
    return xs[best_split - 1]
