"""Tests for series utilities, knee detection and ASCII plotting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Series, knee_frequency, linear_fit, render_plot


# ------------------------------------------------------------------- series --
def test_series_append_and_points():
    series = Series("s")
    series.append(1, 10, "a")
    series.append(2, 20)
    assert len(series) == 2
    assert series.points() == [(1.0, 10.0), (2.0, 20.0)]


def test_series_csv():
    series = Series("s")
    series.append(100, 399.06)
    csv = series.to_csv("freq", "mbps")
    assert csv.splitlines() == ["freq,mbps", "100,399.06"]


# --------------------------------------------------------------- linear fit --
def test_linear_fit_exact_line():
    slope, intercept = linear_fit([0, 1, 2, 3], [5, 7, 9, 11])
    assert slope == pytest.approx(2.0)
    assert intercept == pytest.approx(5.0)


def test_linear_fit_validation():
    with pytest.raises(ValueError):
        linear_fit([1], [2])
    with pytest.raises(ValueError):
        linear_fit([1, 1], [2, 3])
    with pytest.raises(ValueError):
        linear_fit([1, 2], [3])


@settings(max_examples=50, deadline=None)
@given(
    slope=st.floats(min_value=-100, max_value=100),
    intercept=st.floats(min_value=-100, max_value=100),
)
def test_property_fit_recovers_exact_line(slope, intercept):
    x = [0.0, 1.0, 2.0, 5.0, 9.0]
    y = [slope * xi + intercept for xi in x]
    fit_slope, fit_intercept = linear_fit(x, y)
    assert fit_slope == pytest.approx(slope, abs=1e-6)
    assert fit_intercept == pytest.approx(intercept, abs=1e-6)


# ---------------------------------------------------------- knee detection --
def test_knee_found_on_table1_shape():
    """The paper's own Fig. 5 data must yield a ~200 MHz knee."""
    x = [100, 140, 180, 200, 240, 280]
    y = [399.06, 558.12, 716.96, 781.84, 786.96, 790.14]
    knee = knee_frequency(x, y)
    assert knee == pytest.approx(200.0)


def test_no_knee_on_straight_line():
    x = list(range(100, 320, 20))
    y = [4 * xi for xi in x]
    assert knee_frequency(x, y) is None


def test_knee_too_few_points():
    assert knee_frequency([1, 2, 3], [1, 2, 3]) is None


def test_knee_length_mismatch():
    with pytest.raises(ValueError):
        knee_frequency([1, 2], [1])


# --------------------------------------------------------------- ascii plot --
def test_render_plot_contains_series_and_axes():
    series = Series("demo")
    for x in range(10):
        series.append(x, x * x)
    text = render_plot([series], title="squares", x_label="x")
    assert "squares" in text
    assert "o demo" in text
    assert "0" in text and "9" in text


def test_render_plot_empty():
    assert "(no data)" in render_plot([Series("empty")], title="nothing")


def test_render_plot_multiple_series_distinct_markers():
    a = Series("a")
    b = Series("b")
    for x in range(5):
        a.append(x, x)
        b.append(x, 2 * x + 1)
    text = render_plot([a, b])
    assert "o a" in text
    assert "x b" in text


def test_render_plot_flat_series():
    flat = Series("flat")
    for x in range(5):
        flat.append(x, 7.0)
    text = render_plot([flat])
    assert "o" in text  # does not divide by zero
