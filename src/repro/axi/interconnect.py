"""AXI memory-mapped crossbar interconnect.

Routes master bursts to the DDR controller.  Each master gets its own
command lane: a private FIFO drained by a per-master process that pays
the forward-path latency (address decode + register slices) and then
issues the burst to the controller tagged with the master's name.  Lanes
run concurrently — so when the Fig. 1 framework's DMA bitstream fetch,
CPU traffic, and a second tenant's generator all pull on the memory
system at once, their forward paths overlap and the *DDR command
multiplexer* (round-robin, in :class:`repro.dram.BankDramController`)
becomes the genuine point of contention, with per-master bandwidth
accounting on both sides.

For a single master this times identically to the previous serialising
round-robin arbiter: one lane, FIFO order, forward latency then
controller service.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..dram import DramController
from ..obs import MetricsRegistry
from ..sim import Event, Simulator

__all__ = ["AxiInterconnect", "AxiSlaveError"]

_DEFAULT_MASTER = "m0"


class AxiSlaveError(RuntimeError):
    """An AXI error response (SLVERR/DECERR) on the memory-mapped bus.

    Raised *through the transaction's completion event* — the waiting
    master receives it where it yielded, exactly like a real error
    response lands on the issuing channel.
    """


class _Lane:
    """One master's command lane: FIFO queue + wake event."""

    __slots__ = ("queue", "wake")

    def __init__(self):
        self.queue: Deque[tuple] = deque()
        self.wake: Optional[Event] = None


class AxiInterconnect:
    """Master-side crossbar entry into the PS memory system."""

    def __init__(
        self,
        sim: Simulator,
        controller: DramController,
        forward_latency_ns: float = 160.0,
        name: str = "axi_ic",
        metrics: Optional[MetricsRegistry] = None,
    ):
        if forward_latency_ns < 0:
            raise ValueError("forward latency cannot be negative")
        self.sim = sim
        self.controller = controller
        self.forward_latency_ns = forward_latency_ns
        self.name = name
        self._lanes: Dict[str, _Lane] = {}
        self.transactions = 0
        self.per_master_transactions: Dict[str, int] = {}
        self.per_master_bytes: Dict[str, int] = {}
        self.per_master_wait_ns: Dict[str, float] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry(now_fn=lambda: sim.now)
        self._m_transactions = self.metrics.counter(f"{name}.transactions")
        self._m_bytes = self.metrics.counter(f"{name}.bytes")
        self._m_outstanding = self.metrics.gauge(f"{name}.outstanding_requests")
        self._m_queue_wait_us = self.metrics.histogram(f"{name}.queue_wait_us")
        self._m_error_responses = self.metrics.counter(f"{name}.error_responses")
        self._m_master_bytes: Dict[str, object] = {}
        self._m_master_wait: Dict[str, object] = {}
        self._m_outstanding.set(0.0)
        #: Optional fault hooks (installed by :mod:`repro.chaos`).
        #: ``fault_stall_ns()`` adds forward-path latency to the next
        #: transaction (arbitration/register-slice stall);
        #: ``fault_error(kind, addr, size)`` may return an exception with
        #: which the transaction completes instead of reaching the DDR
        #: controller (an SLVERR response).
        self.fault_stall_ns: Optional[Callable[[], float]] = None
        self.fault_error: Optional[
            Callable[[str, int, int], Optional[Exception]]
        ] = None

    # -- master API ----------------------------------------------------------
    def read(self, addr: int, size: int, master: str = _DEFAULT_MASTER) -> Event:
        """Submit a read; the event value is the data bytes."""
        done = self.sim.event(name=f"{self.name}.read")
        self._submit(master, ("r", addr, size, None, done, self.sim.now))
        return done

    def write(self, addr: int, data: bytes, master: str = _DEFAULT_MASTER) -> Event:
        done = self.sim.event(name=f"{self.name}.write")
        self._submit(master, ("w", addr, len(data), data, done, self.sim.now))
        return done

    # -- internals ----------------------------------------------------------
    def _submit(self, master: str, request: tuple) -> None:
        lane = self._lanes.get(master)
        if lane is None:
            lane = self._lanes[master] = _Lane()
            self.per_master_transactions[master] = 0
            self.per_master_bytes[master] = 0
            self.per_master_wait_ns[master] = 0.0
            self._m_master_bytes[master] = self.metrics.counter(
                f"{self.name}.master.{master}.bytes"
            )
            self._m_master_wait[master] = self.metrics.counter(
                f"{self.name}.master.{master}.wait_ns"
            )
            self.sim.process(
                self._lane_server(master, lane),
                name=f"{self.name}.lane.{master}",
                daemon=True,
            )
        lane.queue.append(request)
        self._m_outstanding.add(1)
        if lane.wake is not None and not lane.wake.triggered:
            lane.wake.succeed()

    def _lane_server(self, master: str, lane: _Lane):
        while True:
            if not lane.queue:
                lane.wake = self.sim.event(name=f"{self.name}.lane.{master}.wake")
                yield lane.wake
            kind, addr, size, data, done, submitted_ns = lane.queue.popleft()
            wait_ns = self.sim.now - submitted_ns
            self.transactions += 1
            self.per_master_transactions[master] += 1
            self.per_master_wait_ns[master] += wait_ns
            self._m_master_wait[master].inc(wait_ns)
            self._m_transactions.inc()
            self._m_bytes.inc(size)
            self._m_queue_wait_us.observe(wait_ns / 1e3)
            # Forward path: address decode + arbitration + register slices.
            stall_ns = 0.0
            if self.fault_stall_ns is not None:
                stall_ns = max(0.0, self.fault_stall_ns())
            yield self.sim.timeout(self.forward_latency_ns + stall_ns)
            if self.fault_error is not None:
                error = self.fault_error(kind, addr, size)
                if error is not None:
                    self._m_error_responses.inc()
                    done.fail(error)
                    self._m_outstanding.add(-1)
                    continue
            if kind == "r":
                payload = yield self.controller.read(addr, size, master=master)
                done.succeed(payload)
            else:
                yield self.controller.write(addr, data, master=master)
                done.succeed(None)
            self.per_master_bytes[master] += size
            self._m_master_bytes[master].inc(size)
            self._m_outstanding.add(-1)
