"""Die thermal model, heat-gun actuator and XADC temperature sensor."""

from .heatgun import HeatGun
from .model import ThermalModel
from .sensor import TemperatureSensor

__all__ = ["HeatGun", "TemperatureSensor", "ThermalModel"]
