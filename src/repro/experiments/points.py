"""Shared sweep point functions.

Every experiment harness decomposes into independent *points* — one
simulation per (frequency, temperature, workload, configuration) tuple —
executed through :class:`repro.exec.SweepRunner`.  A point function must
be a **module-level callable taking only plain-data kwargs** so it can
cross a process boundary and give the on-disk result cache a canonical
key.  The common case, one over-clocked reconfiguration on a fresh
:class:`~repro.core.PdrSystem`, lives here; experiment-specific points
(baseline controllers, campaigns, perturbed systems) live next to their
experiment module.

A fresh system per point is what makes the points independent (and thus
parallel/cacheable); results match the shared-system path to well within
the reproduction's 1 % tolerance — only the global-timer tick phase
differs, which shows up at most in the 5th significant digit.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core import PdrSystem, ReconfigResult
from ..exec import note_events
from ..fabric import Asp, instantiate_asp
from ..snapshot import fork_point_system, fork_system

__all__ = [
    "asp_descriptor",
    "campaign_point",
    "make_point_system",
    "make_system",
    "reconfigure_point",
]


def asp_descriptor(asp: Asp) -> Tuple[int, Tuple[int, ...]]:
    """Plain-data identity of an ASP: ``(kind, params)``.

    Rebuild the ASP with :func:`repro.fabric.instantiate_asp` — the same
    round-trip the configuration frames themselves use.
    """
    return (asp.kind, tuple(asp.params()))


def make_system(config=None) -> PdrSystem:
    """A live system from a plain-data config mapping (or ``None``).

    Forks a per-config template snapshot when snapshots are enabled
    (byte-identical to a fresh build; see :mod:`repro.snapshot`), else
    constructs fresh.
    """
    return fork_system(config)


def make_point_system(
    region: str, workload: Tuple[int, Tuple[int, ...]], config=None
) -> PdrSystem:
    """A live system with ``workload``'s bitstream pre-staged for ``region``.

    The sweep-point fast path: the template built and staged the
    bitstream once (untimed provisioning), so every point forked from it
    starts at the timed reconfiguration with warm caches.  Falls back to
    a fresh build when ``REPRO_SNAPSHOTS`` disables snapshots.
    """
    return fork_point_system(region, workload, config)


def reconfigure_point(
    region: str,
    freq_mhz: float,
    temp_c: float,
    workload: Tuple[int, Tuple[int, ...]],
    config=None,
) -> ReconfigResult:
    """One complete over-clocked PDR measurement on a fresh system.

    The point behind Table I, Table II, Fig. 5, Fig. 6 and the §IV-A
    stress matrix; ``workload`` is an :func:`asp_descriptor` tuple and
    ``config`` an optional mapping of ``PdrSystemConfig`` overrides.
    """
    system = make_point_system(region, workload, config)
    system.set_die_temperature(temp_c)
    asp = instantiate_asp(workload[0], list(workload[1]))
    result = system.reconfigure(region, asp, freq_mhz)
    note_events(system.sim.events_processed)
    return result


def campaign_point(
    region: str,
    freq_mhz: float,
    temp_c: float,
    workload: Tuple[int, Tuple[int, ...]],
    config=None,
) -> dict:
    """A :func:`reconfigure_point` flattened into a campaign record.

    Returns the plain-data shape :func:`repro.obs.campaign.aggregate_campaign`
    folds: the headline result fields, the per-phase/per-device breakdown,
    the named critical-path device, and a full metrics snapshot closed at
    the simulation's final timestamp (so time-weighted gauges integrate
    their tail segment).  Plain data end to end — it crosses the
    ``--jobs N`` process boundary and caches byte-identically.
    """
    system = make_point_system(region, workload, config)
    system.set_die_temperature(temp_c)
    asp = instantiate_asp(workload[0], list(workload[1]))
    result = system.reconfigure(region, asp, freq_mhz)
    note_events(system.sim.events_processed)
    return {
        "label": f"{region}@{freq_mhz:g}MHz/{temp_c:g}C",
        "region": region,
        "freq_mhz": result.freq_mhz,
        "requested_freq_mhz": freq_mhz,
        "temp_c": temp_c,
        "latency_us": result.latency_us,
        "latency_unavailable_reason": result.latency_unavailable_reason,
        "throughput_mb_s": result.throughput_mb_s,
        "pdr_power_w": result.pdr_power_w,
        "events": float(system.sim.events_processed),
        "availability": 1.0 if result.succeeded else 0.0,
        "succeeded": result.succeeded,
        "phase_us": dict(result.phase_us),
        "device_us": dict(result.device_us),
        "critical_path": result.critical_path,
        "metrics": system.metrics.to_dict(end_ns=system.sim.now),
    }
