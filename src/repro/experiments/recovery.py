"""Experiment E9 — fault-injection recovery campaign.

The paper stops at *detection*: a missing completion interrupt or a
read-back CRC error tells the firmware the over-clocked transfer failed.
This campaign exercises the other half of the robustness story — the
:mod:`repro.resilience` layer — by deliberately driving the ICAP across
the failure frontier (100–360 MHz × 40–100 °C) and letting the
:class:`~repro.resilience.ResilientReconfigurator` fight back: DMA
reset + ICAP abort on a hang, golden re-write with frequency backoff on
corruption.

Reported per grid cell: first-try success, recovery after N attempts
(``rec:N``), or attempt-budget exhaustion (``FAIL``).  The headline
numbers are the success-after-retry rate over all injected failures
(acceptance floor: 95 %) and the recovery-latency distribution.

Regenerate with ``python -m repro.experiments.recovery``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exec import SweepRunner, note_events
from ..fabric import instantiate_asp
from ..resilience import RecoveryOutcome, RecoveryPolicy, ResilientReconfigurator
from ..timing import FailureMode

from .points import asp_descriptor, make_system
from .report import ExperimentReport, format_table
from .table1 import WORKLOAD_ASP

__all__ = [
    "CAMPAIGN_FREQS_MHZ",
    "CAMPAIGN_TEMPS_C",
    "RecoveryCampaign",
    "format_report",
    "main",
    "recovery_point",
    "run_recovery",
]

#: Sweep grid: well inside spec (100 MHz) to far across the failure
#: frontier (360 MHz), at the §IV-A heat-gun temperatures.
CAMPAIGN_FREQS_MHZ = [float(f) for f in range(100, 361, 20)]
CAMPAIGN_TEMPS_C = [40.0, 60.0, 80.0, 100.0]


def recovery_point(
    region: str,
    freq_mhz: float,
    temp_c: float,
    workload: Tuple[int, Tuple[int, ...]],
    policy=None,
    config=None,
) -> RecoveryOutcome:
    """One recovered reconfiguration on a fresh system (sweep point).

    ``policy`` is a :meth:`RecoveryPolicy.to_mapping` mapping (or
    ``None`` for defaults) so the point stays plain-data for the worker
    pool and the result cache.
    """
    system = make_system(config)
    system.set_die_temperature(temp_c)
    reconfigurator = ResilientReconfigurator(
        system, policy=RecoveryPolicy.from_mapping(policy)
    )
    asp = instantiate_asp(workload[0], list(workload[1]))
    outcome = reconfigurator.reconfigure(region, asp, freq_mhz)
    note_events(system.sim.events_processed)
    return outcome


@dataclass
class RecoveryCampaign:
    """All outcomes of one fault-injection campaign."""

    freqs_mhz: List[float]
    temps_c: List[float]
    policy: RecoveryPolicy
    #: (freq, temp) -> outcome.
    cells: Dict[Tuple[float, float], RecoveryOutcome] = field(default_factory=dict)

    # -- headline statistics -----------------------------------------------
    def injected(self) -> List[RecoveryOutcome]:
        """Outcomes whose first attempt failed (a fault was injected)."""
        return [out for out in self.cells.values() if out.injected_failure]

    def recovered(self) -> List[RecoveryOutcome]:
        return [out for out in self.injected() if out.recovered]

    def unrecovered(self) -> List[Tuple[float, float]]:
        return sorted(
            key for key, out in self.cells.items()
            if out.injected_failure and not out.recovered
        )

    @property
    def recovery_rate(self) -> Optional[float]:
        """Fraction of injected failures recovered within the budget."""
        injected = self.injected()
        if not injected:
            return None
        return len(self.recovered()) / len(injected)

    def recovery_latencies_us(self) -> List[float]:
        return sorted(
            out.recovery_latency_us
            for out in self.recovered()
            if out.recovery_latency_us is not None
        )

    def mode_counts(self) -> Dict[str, int]:
        """Injected first-failure mode -> occurrence count."""
        counts: Dict[str, int] = {}
        for out in self.injected():
            for mode in out.first_failure_modes:
                counts[mode] = counts.get(mode, 0) + 1
        return counts


def run_recovery(
    freqs_mhz: Optional[List[float]] = None,
    temps_c: Optional[List[float]] = None,
    region: str = "RP2",
    policy: Optional[RecoveryPolicy] = None,
    runner: Optional[SweepRunner] = None,
) -> RecoveryCampaign:
    """Run the full fault-injection grid through the sweep engine."""
    freqs = [float(f) for f in (freqs_mhz or CAMPAIGN_FREQS_MHZ)]
    temps = [float(t) for t in (temps_c or CAMPAIGN_TEMPS_C)]
    policy = policy or RecoveryPolicy()
    campaign = RecoveryCampaign(freqs_mhz=freqs, temps_c=temps, policy=policy)
    grid = [(temp, freq) for temp in temps for freq in freqs]
    results = (runner or SweepRunner()).map(
        "recovery",
        recovery_point,
        [
            dict(
                region=region,
                freq_mhz=freq,
                temp_c=temp,
                workload=asp_descriptor(WORKLOAD_ASP),
                policy=policy.to_mapping(),
            )
            for temp, freq in grid
        ],
        labels=[f"recover@{freq:g}MHz/{temp:g}C" for temp, freq in grid],
    )
    for (temp, freq), outcome in zip(grid, results):
        campaign.cells[(freq, temp)] = outcome
    return campaign


def format_report(campaign: RecoveryCampaign) -> str:
    """Render the recovery matrix and its headline statistics."""
    report = ExperimentReport(
        "E9 — fault-injection recovery campaign "
        "(DMA reset + ICAP abort + frequency backoff)"
    )
    headers = ["MHz \\ C"] + [f"{t:g}" for t in campaign.temps_c]
    rows = []
    for freq in campaign.freqs_mhz:
        row = [f"{freq:g}"]
        for temp in campaign.temps_c:
            row.append(campaign.cells[(freq, temp)].summary())
        rows.append(row)
    report.add(format_table(headers, rows))
    report.add(
        "cells: ok = first-try success, rec:N@F = recovered on attempt N "
        "at F MHz, FAIL = attempt budget exhausted"
    )

    injected = campaign.injected()
    if injected:
        rate = campaign.recovery_rate
        modes = campaign.mode_counts()
        latencies = campaign.recovery_latencies_us()
        lines = [
            f"injected failures : {len(injected)} / {len(campaign.cells)} points",
            "detected modes    : "
            + ", ".join(f"{mode} x{count}" for mode, count in sorted(modes.items())),
            f"recovered         : {len(campaign.recovered())} / {len(injected)} "
            f"({100.0 * rate:.1f} %)  [acceptance floor: 95 %]",
        ]
        if latencies:
            mean = sum(latencies) / len(latencies)
            lines.append(
                f"recovery latency  : min {latencies[0]:.0f} us, "
                f"mean {mean:.0f} us, max {latencies[-1]:.0f} us"
            )
        if campaign.unrecovered():
            lines.append(f"NOT recovered     : {campaign.unrecovered()}")
        ladder = campaign.policy.ladder(max(campaign.freqs_mhz))
        lines.append(
            f"policy            : {campaign.policy.max_attempts} attempts, "
            f"x{campaign.policy.backoff_factor:g} backoff "
            f"(ladder from {max(campaign.freqs_mhz):g}: "
            + " -> ".join(f"{rung:.0f}" for rung in ladder)
            + ")"
        )
        report.add("\n".join(lines))
    else:
        report.add("no failures injected — grid never crossed the frontier")
    return report.render()


def main() -> None:
    """Regenerate the recovery campaign and print the report."""
    print(format_report(run_recovery()))


if __name__ == "__main__":
    main()
