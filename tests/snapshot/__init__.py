"""Snapshot/fork test suite."""
