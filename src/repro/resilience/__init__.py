"""Fault-recovery layer: close the detect→recover loop.

The firmware (``repro.core``) *detects* over-clocking failures; this
package *recovers* from them.  :class:`RecoveryPolicy` decides how hard
to fight (attempt budget, frequency backoff ladder, per-failure-mode
actions), :class:`ResilientReconfigurator` drives the retry/repair loop
around a :class:`~repro.core.PdrSystem`, and :class:`FrequencyGovernor`
learns which operating points to quarantine from observed outcomes only.
"""

from .governor import FrequencyGovernor
from .policy import RecoveryPolicy
from .reconfigurator import (
    AttemptRecord,
    BatchRecoveryOutcome,
    RecoveryOutcome,
    ResilientReconfigurator,
    detect_modes,
)

__all__ = [
    "AttemptRecord",
    "BatchRecoveryOutcome",
    "FrequencyGovernor",
    "RecoveryOutcome",
    "RecoveryPolicy",
    "ResilientReconfigurator",
    "detect_modes",
]
