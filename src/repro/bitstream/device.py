"""Device configuration layout (an XC7Z020-class programmable logic part).

The layout defines how many frames the device has, how frame addresses
increment, and which frame ranges belong to each reconfigurable-partition
(RP) rectangle.  Numbers are modelled on the Zynq Z-7020's Artix-7 fabric:
101-word frames, multiple clock rows, and per-column minor counts that
depend on the column resource type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from .far import BLOCK_TYPE_MAIN, FrameAddress

__all__ = [
    "FRAME_WORDS",
    "FRAME_BYTES",
    "ColumnType",
    "DeviceLayout",
    "RegionSpec",
    "Z7020_IDCODE",
    "make_z7020_layout",
]

#: Words per configuration frame (7-series constant).
FRAME_WORDS = 101
FRAME_BYTES = FRAME_WORDS * 4

#: JTAG/config IDCODE of the XC7Z020 (CLG484 speed-agnostic).
Z7020_IDCODE = 0x03727093


class ColumnType:
    """Resource type of a major column, which sets its minor-frame count."""

    CLB = "clb"
    BRAM = "bram"
    DSP = "dsp"
    IOB = "iob"
    CLOCK = "clock"

    #: Minor frames per column by type (7-series-representative values).
    MINORS = {CLB: 36, BRAM: 28, DSP: 28, IOB: 42, CLOCK: 30}


@dataclass(frozen=True)
class RegionSpec:
    """A reconfigurable-partition rectangle: one clock row, a column span."""

    name: str
    row: int
    col_start: int
    col_end: int  # inclusive

    def __post_init__(self) -> None:
        if self.col_end < self.col_start:
            raise ValueError(f"region {self.name}: col_end < col_start")


class DeviceLayout:
    """Frame-address geometry of a device plus its RP floorplan.

    Parameters
    ----------
    rows:
        Clock rows per half (the device has a top and a bottom half).
    columns:
        Ordered list of column types shared by every row.
    regions:
        RP rectangles (name -> :class:`RegionSpec`).
    idcode:
        Device IDCODE checked by the configuration logic.
    """

    def __init__(
        self,
        rows: int,
        columns: List[str],
        regions: Dict[str, RegionSpec],
        idcode: int = Z7020_IDCODE,
    ):
        if rows < 1:
            raise ValueError("device needs at least one row")
        if not columns:
            raise ValueError("device needs at least one column")
        unknown = [c for c in columns if c not in ColumnType.MINORS]
        if unknown:
            raise ValueError(f"unknown column types: {unknown}")
        self.rows = rows
        self.columns = list(columns)
        self.idcode = idcode
        self.regions = dict(regions)
        for region in self.regions.values():
            if region.row >= rows * 2:
                raise ValueError(f"region {region.name}: row {region.row} out of range")
            if region.col_end >= len(columns):
                raise ValueError(f"region {region.name}: column span out of range")
        # Precompute the global frame index of every (top,row,col,minor=0).
        self._column_minors = [ColumnType.MINORS[c] for c in self.columns]
        self._frames_per_row = sum(self._column_minors)
        self._col_base: List[int] = []
        base = 0
        for minors in self._column_minors:
            self._col_base.append(base)
            base += minors
        self._region_frames_cache: Dict[str, List[FrameAddress]] = {}
        self._region_span_cache: Dict[str, Tuple[int, int]] = {}

    # -- geometry ----------------------------------------------------------
    @property
    def frames_per_row(self) -> int:
        return self._frames_per_row

    @property
    def total_frames(self) -> int:
        return self.frames_per_row * self.rows * 2

    @property
    def total_config_bytes(self) -> int:
        return self.total_frames * FRAME_BYTES

    def minors_of_column(self, column: int) -> int:
        return self._column_minors[column]

    # -- address <-> index -------------------------------------------------
    def frame_index(self, far: FrameAddress) -> int:
        """Flat frame index of ``far`` (0 .. total_frames-1)."""
        if far.block_type != BLOCK_TYPE_MAIN:
            raise ValueError("only main-block frames are mapped in this model")
        if far.row >= self.rows:
            raise ValueError(f"{far}: row out of range (rows={self.rows})")
        if far.column >= len(self.columns):
            raise ValueError(f"{far}: column out of range")
        if far.minor >= self._column_minors[far.column]:
            raise ValueError(
                f"{far}: minor out of range for {self.columns[far.column]} column"
            )
        half_base = far.top * self.rows * self.frames_per_row
        return (
            half_base
            + far.row * self.frames_per_row
            + self._col_base[far.column]
            + far.minor
        )

    def frame_address(self, index: int) -> FrameAddress:
        """Inverse of :meth:`frame_index`."""
        if not 0 <= index < self.total_frames:
            raise ValueError(f"frame index {index} out of range")
        top, rest = divmod(index, self.rows * self.frames_per_row)
        row, offset = divmod(rest, self.frames_per_row)
        for column, base in enumerate(self._col_base):
            minors = self._column_minors[column]
            if base <= offset < base + minors:
                return FrameAddress(
                    block_type=BLOCK_TYPE_MAIN,
                    top=top,
                    row=row,
                    column=column,
                    minor=offset - base,
                )
        raise AssertionError("unreachable: offset not in any column")

    def next_address(self, far: FrameAddress) -> FrameAddress:
        """Auto-increment order used by FDRI writes (raises at the end)."""
        return self.frame_address(self.frame_index(far) + 1)

    # -- regions ------------------------------------------------------------
    def region(self, name: str) -> RegionSpec:
        if name not in self.regions:
            raise KeyError(f"unknown region {name!r}; have {sorted(self.regions)}")
        return self.regions[name]

    def region_frames(self, name: str) -> List[FrameAddress]:
        """All frame addresses of a region, in FDRI auto-increment order.

        Memoised (the layout is immutable after construction and every
        system construction walks each region); treat the result as
        read-only.
        """
        frames = self._region_frames_cache.get(name)
        if frames is not None:
            return frames
        spec = self.region(name)
        top, row = divmod(spec.row, self.rows)
        frames = []
        for column in range(spec.col_start, spec.col_end + 1):
            for minor in range(self._column_minors[column]):
                frames.append(
                    FrameAddress(top=top, row=row, column=column, minor=minor)
                )
        self._region_frames_cache[name] = frames
        return frames

    def region_span(self, name: str) -> Tuple[int, int]:
        """``(first_frame_index, frame_count)`` of a region.

        Region frames are contiguous in flat index order (one clock row,
        a contiguous column span), which the byte-slab configuration
        memory paths exploit.
        """
        span = self._region_span_cache.get(name)
        if span is None:
            # Computed straight from the geometry — contiguity holds by
            # construction (one clock row, contiguous columns, cumulative
            # column bases), so no FrameAddress list needs building.
            spec = self.region(name)
            top, row = divmod(spec.row, self.rows)
            first = (
                top * self.rows * self.frames_per_row
                + row * self.frames_per_row
                + self._col_base[spec.col_start]
            )
            count = sum(
                self._column_minors[c]
                for c in range(spec.col_start, spec.col_end + 1)
            )
            span = (first, count)
            self._region_span_cache[name] = span
        return span

    def region_frame_count(self, name: str) -> int:
        spec = self.region(name)
        return sum(
            self._column_minors[c] for c in range(spec.col_start, spec.col_end + 1)
        )

    def region_bytes(self, name: str) -> int:
        return self.region_frame_count(name) * FRAME_BYTES

    def iter_regions(self) -> Iterator[Tuple[str, RegionSpec]]:
        return iter(sorted(self.regions.items()))


_Z7020_LAYOUT: DeviceLayout = None


def make_z7020_layout() -> DeviceLayout:
    """The reference floorplan used throughout the reproduction.

    Four reconfigurable partitions (RP1–RP4, paper Fig. 1), each one clock
    row tall and 36 mostly-CLB columns wide, giving 1 296+ frames
    (~0.5 MB of frame data) per partition — matching the partial-bitstream
    size implied by Table I of the paper (see DESIGN.md §2).

    Returns a shared immutable singleton: the layout is pure geometry and
    every system construction needs one, so building it per system would
    dominate cold-start time.
    """
    global _Z7020_LAYOUT
    if _Z7020_LAYOUT is not None:
        return _Z7020_LAYOUT
    # A representative column mix: mostly CLB with sprinkled BRAM/DSP, IOB
    # flanks, and a central clock column.
    columns: List[str] = []
    for i in range(80):
        if i in (0, 79):
            columns.append(ColumnType.IOB)
        elif i == 40:
            columns.append(ColumnType.CLOCK)
        elif i % 10 == 5:
            columns.append(ColumnType.BRAM)
        elif i % 10 == 8:
            columns.append(ColumnType.DSP)
        else:
            columns.append(ColumnType.CLB)

    # Each RP spans 38 contiguous columns (30 CLB + 4 BRAM + 4 DSP) in one
    # clock row: 1 304 frames = 526.8 kB of frame data, so a generated
    # partial bitstream (frames + packet overhead + NOOP padding) matches
    # the 528 760-byte workload implied by Table I.
    regions = {
        "RP1": RegionSpec("RP1", row=0, col_start=2, col_end=39),
        "RP2": RegionSpec("RP2", row=1, col_start=2, col_end=39),
        "RP3": RegionSpec("RP3", row=2, col_start=41, col_end=78),
        "RP4": RegionSpec("RP4", row=3, col_start=41, col_end=78),
    }
    _Z7020_LAYOUT = DeviceLayout(rows=2, columns=columns, regions=regions)
    return _Z7020_LAYOUT
