"""Benchmark E4: regenerate Table II and verify the efficiency peak."""

import pytest

from repro.experiments.calibration import PAPER_TABLE2
from repro.experiments.table2 import best_operating_point, run_table2

from conftest import run_once


def test_bench_table2(benchmark, system):
    rows = run_once(benchmark, run_table2, system=system)

    # Every row within 3 % of the paper's MB/J column.
    for row in rows:
        assert row.result.power_efficiency_mb_per_j == pytest.approx(
            row.paper_efficiency_mb_j, rel=0.03
        )
        assert row.result.pdr_power_w == pytest.approx(row.paper_power_w, abs=0.03)

    # The paper's conclusion: 200 MHz is the most power-efficient point
    # (~600 MB/J), because throughput plateaus while power keeps rising.
    best = best_operating_point(rows)
    assert best.freq_mhz == 200.0
    assert best.result.power_efficiency_mb_per_j == pytest.approx(599.0, rel=0.02)

    # Efficiency rises to the knee and falls beyond it.
    efficiency = [r.result.power_efficiency_mb_per_j for r in rows]
    peak = efficiency.index(max(efficiency))
    assert all(a < b for a, b in zip(efficiency[:peak], efficiency[1 : peak + 1]))
    assert all(a > b for a, b in zip(efficiency[peak:], efficiency[peak + 1 :]))
    assert len(rows) == len(PAPER_TABLE2)
