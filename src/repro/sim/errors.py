"""Exception types raised by the simulation kernel.

The kernel distinguishes three failure classes:

* :class:`SimulationError` — programming errors in the way the kernel is
  driven (scheduling in the past, running a finished simulator, ...).
* :class:`Deadlock` — the event heap drained while processes were still
  waiting; nothing can ever wake them.
* :class:`Interrupt` — delivered *into* a process generator when another
  process calls :meth:`Process.interrupt`.  It is a control-flow signal,
  not an error in the simulation itself.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for kernel-level errors."""


class SchedulingError(SimulationError):
    """An event was scheduled incorrectly (negative delay, re-trigger, ...)."""


class Deadlock(SimulationError):
    """The event queue is empty but live processes are still waiting."""

    def __init__(self, waiting: int):
        super().__init__(
            f"simulation deadlocked: {waiting} process(es) waiting with an "
            f"empty event queue"
        )
        self.waiting = waiting


class Interrupt(Exception):
    """Thrown inside a process generator by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (for instance the hardware interrupt source).
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Raised by :func:`repro.sim.kernel.stop_process` helpers to end a
    process early with a return value."""

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value
