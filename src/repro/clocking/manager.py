"""Per-RP clock manager (paper Fig. 1, "Clock Manager", CLK 1–5).

Each reconfigurable partition can run at its own frequency "thanks to the
Clock Manager, allowing maximum flexibility and IP-block reuse".  The
manager owns one :class:`ClockWizard` per output and tracks which RP uses
which clock.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim import ClockDomain, Simulator

from .wizard import ClockWizard, MmcmConstraints

__all__ = ["ClockManager"]


class ClockManager:
    """A bank of programmable PL clocks (CLK1..CLKn)."""

    def __init__(
        self,
        sim: Simulator,
        outputs: int = 5,
        f_in_mhz: float = 100.0,
        default_mhz: float = 100.0,
        name: str = "clkmgr",
    ):
        if outputs < 1:
            raise ValueError("clock manager needs at least one output")
        self.sim = sim
        self.name = name
        self.domains: List[ClockDomain] = []
        self.wizards: List[ClockWizard] = []
        self._assignments: Dict[str, int] = {}
        for index in range(outputs):
            domain = ClockDomain(sim, default_mhz, name=f"{name}.clk{index + 1}")
            self.domains.append(domain)
            self.wizards.append(
                ClockWizard(
                    sim,
                    domain,
                    f_in_mhz=f_in_mhz,
                    constraints=MmcmConstraints(),
                    name=f"{name}.wiz{index + 1}",
                )
            )

    @property
    def outputs(self) -> int:
        return len(self.domains)

    def assign(self, consumer: str, clock_index: int) -> ClockDomain:
        """Bind a named consumer (e.g. ``"RP1"``) to clock ``clock_index``."""
        self._check(clock_index)
        self._assignments[consumer] = clock_index
        return self.domains[clock_index]

    def domain_of(self, consumer: str) -> ClockDomain:
        if consumer not in self._assignments:
            raise KeyError(f"{consumer!r} has no assigned clock")
        return self.domains[self._assignments[consumer]]

    def program(self, clock_index: int, target_mhz: float):
        """Reprogram one output; returns the wizard's relock event."""
        self._check(clock_index)
        return self.wizards[clock_index].program(target_mhz)

    def lose_lock(self, clock_index: int):
        """Inject a spontaneous loss of lock on one output.

        Returns the wizard's recovery event (or ``None`` if it was
        already unlocked) — see :meth:`ClockWizard.lose_lock`.
        """
        self._check(clock_index)
        return self.wizards[clock_index].lose_lock()

    def _check(self, clock_index: int) -> None:
        if not 0 <= clock_index < len(self.domains):
            raise IndexError(
                f"clock index {clock_index} out of range 0..{len(self.domains) - 1}"
            )
