"""Application-Specific Processors (ASPs) and their frame encoding.

The paper's motivation is swapping ASPs — crypto engines, filters, etc. —
into reconfigurable partitions on demand.  In this reproduction the ASPs
are *functional*: the frames written into a partition encode which ASP it
implements and its parameters, and :func:`decode_asp` +
:func:`instantiate_asp` turn the partition's configuration memory back
into an executable model.  Reconfiguring a region really changes what it
computes, which the integration tests verify end to end.

Frame encoding (region frame 0):

====  ===========================================
word  meaning
====  ===========================================
0     ``ASP_MAGIC`` (0x41535031, "ASP1")
1     ASP kind id (:class:`AspKind`)
2     parameter word count ``P``
3..   ``P`` parameter words (may spill into subsequent frames)
====  ===========================================

Remaining frame words carry deterministic pseudo-random "routing/LUT"
content derived from the parameters, so different ASPs produce genuinely
different (and realistically compressible) bitstreams.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..bitstream.crc import crc32c_words
from ..bitstream.device import FRAME_WORDS

__all__ = [
    "ASP_MAGIC",
    "AspKind",
    "Asp",
    "PassthroughAsp",
    "FirFilterAsp",
    "Aes128Asp",
    "MatMulAsp",
    "Crc32Asp",
    "encode_asp_frames",
    "decode_asp",
    "instantiate_asp",
    "AspDecodeError",
]

ASP_MAGIC = 0x41535031  # "ASP1"

_MASK32 = 0xFFFFFFFF


class AspDecodeError(ValueError):
    """The region's frames do not contain a well-formed ASP header."""


class AspKind:
    """ASP kind identifiers carried in the configuration frames."""

    PASSTHROUGH = 0
    FIR_FILTER = 1
    AES128 = 2
    MATMUL = 3
    CRC32 = 4
    SHA256 = 5
    VECTOR_SCALE = 6

    NAMES = {
        PASSTHROUGH: "passthrough",
        FIR_FILTER: "fir-filter",
        AES128: "aes-128",
        MATMUL: "matmul",
        CRC32: "crc32",
        SHA256: "sha-256",
        VECTOR_SCALE: "vector-scale",
    }


class Asp:
    """Base class: a functional model with a word-stream interface."""

    kind: int = -1

    def process(self, words: Sequence[int]) -> List[int]:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return AspKind.NAMES.get(self.kind, f"kind{self.kind}")

    def params(self) -> List[int]:
        """Parameter words as encoded into the configuration frames."""
        raise NotImplementedError


class PassthroughAsp(Asp):
    """Identity datapath (useful as a 'blank but valid' configuration)."""

    kind = AspKind.PASSTHROUGH

    def process(self, words: Sequence[int]) -> List[int]:
        return [w & _MASK32 for w in words]

    def params(self) -> List[int]:
        return []


class FirFilterAsp(Asp):
    """Integer FIR filter: y[n] = sum_k c[k] * x[n-k].

    Coefficients and samples are 32-bit two's-complement words; outputs are
    truncated back to 32 bits (as a fixed-point hardware datapath would).
    """

    kind = AspKind.FIR_FILTER

    def __init__(self, coefficients: Sequence[int]):
        if not coefficients:
            raise ValueError("FIR filter needs at least one coefficient")
        self.coefficients = [int(c) for c in coefficients]

    @staticmethod
    def _signed(word: int) -> int:
        word &= _MASK32
        return word - (1 << 32) if word & 0x80000000 else word

    def process(self, words: Sequence[int]) -> List[int]:
        samples = [self._signed(w) for w in words]
        out = []
        for n in range(len(samples)):
            acc = 0
            for k, coeff in enumerate(self.coefficients):
                if n - k < 0:
                    break
                acc += self._signed(coeff) * samples[n - k]
            out.append(acc & _MASK32)
        return out

    def params(self) -> List[int]:
        return [len(self.coefficients)] + [c & _MASK32 for c in self.coefficients]


class Aes128Asp(Asp):
    """AES-128 ECB encryption engine (the paper's 'crypto engine' ASP).

    The key is the four parameter words; :meth:`process` consumes multiples
    of four words (16-byte blocks) and returns the encrypted blocks.
    """

    kind = AspKind.AES128

    def __init__(self, key_words: Sequence[int]):
        if len(key_words) != 4:
            raise ValueError("AES-128 key must be exactly 4 words")
        self.key_words = [k & _MASK32 for k in key_words]
        key = b"".join(k.to_bytes(4, "big") for k in self.key_words)
        self._round_keys = _aes_key_schedule(key)

    def process(self, words: Sequence[int]) -> List[int]:
        if len(words) % 4:
            raise ValueError("AES input must be a multiple of 4 words")
        out: List[int] = []
        for i in range(0, len(words), 4):
            block = b"".join((w & _MASK32).to_bytes(4, "big") for w in words[i : i + 4])
            cipher = _aes_encrypt_block(block, self._round_keys)
            out.extend(
                int.from_bytes(cipher[j : j + 4], "big") for j in range(0, 16, 4)
            )
        return out

    def params(self) -> List[int]:
        return list(self.key_words)


class MatMulAsp(Asp):
    """n×n integer matrix multiply: input is A then B row-major, output A·B."""

    kind = AspKind.MATMUL

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("matrix dimension must be >= 1")
        self.n = int(n)

    def process(self, words: Sequence[int]) -> List[int]:
        n = self.n
        if len(words) != 2 * n * n:
            raise ValueError(f"matmul({n}) needs {2 * n * n} input words")
        a = [words[i * n : (i + 1) * n] for i in range(n)]
        b = [words[n * n + i * n : n * n + (i + 1) * n] for i in range(n)]
        out = []
        for i in range(n):
            for j in range(n):
                out.append(sum(a[i][k] * b[k][j] for k in range(n)) & _MASK32)
        return out

    def params(self) -> List[int]:
        return [self.n]


class Crc32Asp(Asp):
    """CRC-32C offload engine: digests the whole input into one word."""

    kind = AspKind.CRC32

    def process(self, words: Sequence[int]) -> List[int]:
        return [crc32c_words([w & _MASK32 for w in words])]

    def params(self) -> List[int]:
        return []


class Sha256Asp(Asp):
    """SHA-256 hash engine: digests the word stream into eight words.

    Words are hashed in big-endian byte order (the natural AXI-Stream
    framing for a hardware hash core).
    """

    kind = AspKind.SHA256

    def process(self, words: Sequence[int]) -> List[int]:
        import hashlib

        data = b"".join((w & _MASK32).to_bytes(4, "big") for w in words)
        digest = hashlib.sha256(data).digest()
        return [int.from_bytes(digest[i : i + 4], "big") for i in range(0, 32, 4)]

    def params(self) -> List[int]:
        return []


class VectorScaleAsp(Asp):
    """Fixed-point vector scale-and-offset: y = (a * x + b) mod 2^32.

    The simplest useful streaming datapath (gain + bias), configured by
    two parameter words.
    """

    kind = AspKind.VECTOR_SCALE

    def __init__(self, scale: int, offset: int = 0):
        self.scale = int(scale) & _MASK32
        self.offset = int(offset) & _MASK32

    def process(self, words: Sequence[int]) -> List[int]:
        return [((w & _MASK32) * self.scale + self.offset) & _MASK32 for w in words]

    def params(self) -> List[int]:
        return [self.scale, self.offset]


# --------------------------------------------------------------------------
# Frame encode / decode
# --------------------------------------------------------------------------
def _xorshift32(state: int) -> int:
    state &= _MASK32
    state ^= (state << 13) & _MASK32
    state ^= state >> 17
    state ^= (state << 5) & _MASK32
    return state & _MASK32


_ENCODE_CACHE: dict = {}


def encode_asp_frames(frame_count: int, asp: Asp) -> List[List[int]]:
    """Frames for a region of ``frame_count`` frames implementing ``asp``.

    Frame 0 carries the header and parameters; the rest is deterministic
    pseudo-random fill (~25 % non-zero) seeded by the parameters, standing
    in for LUT/routing configuration.

    Encoding is deterministic, so results are memoised; treat the returned
    frames as read-only.
    """
    params = asp.params()
    cache_key = (frame_count, asp.kind, tuple(params))
    cached = _ENCODE_CACHE.get(cache_key)
    if cached is not None:
        return cached
    header = [ASP_MAGIC, asp.kind, len(params)] + [p & _MASK32 for p in params]
    if len(header) > frame_count * FRAME_WORDS:
        raise ValueError("parameters do not fit in the region")

    words_total = frame_count * FRAME_WORDS
    words = header + [0] * (words_total - len(header))

    # Deterministic sparse fill after the header region.
    seed = crc32c_words([asp.kind] + params) or 0xDEADBEEF
    state = seed
    for i in range(len(header), words_total):
        state = _xorshift32(state)
        if state % 4 == 0:  # ~25 % of words configured
            state = _xorshift32(state)
            words[i] = state

    frames = [words[i : i + FRAME_WORDS] for i in range(0, words_total, FRAME_WORDS)]
    _ENCODE_CACHE[cache_key] = frames
    return frames


def decode_asp(frames: Sequence[Sequence[int]]) -> Optional[Tuple[int, List[int]]]:
    """Extract ``(kind, params)`` from region frames.

    Returns ``None`` for an all-blank (never configured) region and raises
    :class:`AspDecodeError` for frames that are non-blank but malformed —
    which is what a functional 'hang' after a corrupted reconfiguration
    looks like.
    """
    if not frames:
        return None
    flat: List[int] = []
    for frame in frames[:2]:  # header + possible parameter spill
        flat.extend(frame)
    if all(w == 0 for w in flat) and all(
        w == 0 for frame in frames for w in frame
    ):
        return None
    if flat[0] != ASP_MAGIC:
        raise AspDecodeError(
            f"region is configured but has no ASP header "
            f"(word0={flat[0]:#010x})"
        )
    kind = flat[1]
    count = flat[2]
    if kind not in AspKind.NAMES:
        raise AspDecodeError(f"unknown ASP kind {kind}")
    if count > len(flat) - 3:
        raise AspDecodeError(f"parameter count {count} overruns header frames")
    return kind, flat[3 : 3 + count]


def instantiate_asp(kind: int, params: Sequence[int]) -> Asp:
    """Build the functional model for a decoded ``(kind, params)`` pair."""
    if kind == AspKind.PASSTHROUGH:
        return PassthroughAsp()
    if kind == AspKind.FIR_FILTER:
        if not params or params[0] != len(params) - 1:
            raise AspDecodeError(f"bad FIR parameter block {params!r}")
        return FirFilterAsp(params[1:])
    if kind == AspKind.AES128:
        if len(params) != 4:
            raise AspDecodeError(f"AES key must be 4 words, got {len(params)}")
        return Aes128Asp(params)
    if kind == AspKind.MATMUL:
        if len(params) != 1:
            raise AspDecodeError(f"matmul takes 1 parameter, got {len(params)}")
        return MatMulAsp(params[0])
    if kind == AspKind.CRC32:
        return Crc32Asp()
    if kind == AspKind.SHA256:
        return Sha256Asp()
    if kind == AspKind.VECTOR_SCALE:
        if len(params) != 2:
            raise AspDecodeError(f"vector-scale takes 2 parameters, got {len(params)}")
        return VectorScaleAsp(params[0], params[1])
    raise AspDecodeError(f"unknown ASP kind {kind}")


# --------------------------------------------------------------------------
# AES-128 primitives (encryption only; tables derived, not hard-coded)
# --------------------------------------------------------------------------
def _gf_mul(a: int, b: int) -> int:
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> List[int]:
    # Multiplicative inverse in GF(2^8) followed by the AES affine transform.
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = []
    for x in range(256):
        b = inverse[x]
        value = 0x63
        for i in range(8):
            bit = (
                (b >> i)
                ^ (b >> ((i + 4) % 8))
                ^ (b >> ((i + 5) % 8))
                ^ (b >> ((i + 6) % 8))
                ^ (b >> ((i + 7) % 8))
            ) & 1
            value ^= bit << i
        sbox.append(value)
    # The affine constant 0x63 is already folded in via initialisation.
    return sbox


_SBOX = _build_sbox()
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _aes_key_schedule(key: bytes) -> List[bytes]:
    words = [key[i : i + 4] for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = words[i - 1]
        if i % 4 == 0:
            temp = bytes(
                _SBOX[temp[(j + 1) % 4]] ^ (_RCON[i // 4 - 1] if j == 0 else 0)
                for j in range(4)
            )
        words.append(bytes(a ^ b for a, b in zip(words[i - 4], temp)))
    return [b"".join(words[r * 4 : r * 4 + 4]) for r in range(11)]


def _aes_encrypt_block(block: bytes, round_keys: List[bytes]) -> bytes:
    # Row-major state: state[r*4 + c] = input byte r + 4c (FIPS-197 layout).
    state = [block[r + 4 * c] for r in range(4) for c in range(4)]
    state = _add_round_key(state, round_keys[0])
    for round_index in range(1, 10):
        state = _sub_bytes(state)
        state = _shift_rows(state)
        state = _mix_columns(state)
        state = _add_round_key(state, round_keys[round_index])
    state = _sub_bytes(state)
    state = _shift_rows(state)
    state = _add_round_key(state, round_keys[10])
    return bytes(state[r * 4 + c] for c in range(4) for r in range(4))


def _sub_bytes(state: List[int]) -> List[int]:
    return [_SBOX[b] for b in state]


def _shift_rows(state: List[int]) -> List[int]:
    out = list(state)
    for row in range(1, 4):
        cols = [state[row * 4 + ((c + row) % 4)] for c in range(4)]
        for c in range(4):
            out[row * 4 + c] = cols[c]
    return out


def _mix_columns(state: List[int]) -> List[int]:
    out = [0] * 16
    for c in range(4):
        col = [state[r * 4 + c] for r in range(4)]
        out[0 * 4 + c] = _gf_mul(col[0], 2) ^ _gf_mul(col[1], 3) ^ col[2] ^ col[3]
        out[1 * 4 + c] = col[0] ^ _gf_mul(col[1], 2) ^ _gf_mul(col[2], 3) ^ col[3]
        out[2 * 4 + c] = col[0] ^ col[1] ^ _gf_mul(col[2], 2) ^ _gf_mul(col[3], 3)
        out[3 * 4 + c] = _gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ _gf_mul(col[3], 2)
    return out


def _add_round_key(state: List[int], round_key: bytes) -> List[int]:
    # round_key is 16 bytes in column order (word i = column i).
    return [state[r * 4 + c] ^ round_key[c * 4 + r] for r in range(4) for c in range(4)]
