"""Adapter exposing *this work* (the Fig. 2 DES system) behind the
baseline-controller interface, so Table III and the §V scaling
comparison exercise identical code paths for every design."""

from __future__ import annotations

from typing import Optional

from ..core import PdrSystem
from ..fabric import FirFilterAsp

from .base import BaselineResult, ReconfigController, TransferOutcome

__all__ = ["ThisWorkController"]


class ThisWorkController(ReconfigController):
    design = "This work"
    platform = "Zynq-7000"
    year = 2017
    has_crc_check = True
    nominal_mhz = 100.0

    def __init__(self, system: Optional[PdrSystem] = None):
        #: The full discrete-event system; shared across transfers so the
        #: clock wizard, DRAM state etc. persist as on the real bench.
        self.system = system or PdrSystem()
        self._asp = FirFilterAsp([1, 2, 3, 4])

    def transfer(self, bitstream_bytes: int, freq_mhz: float) -> BaselineResult:
        if bitstream_bytes <= 0 or freq_mhz <= 0:
            raise ValueError("bitstream size and frequency must be positive")
        # The DES system transfers its reference-size bitstream; other
        # sizes scale the measured latency's transfer component.
        result = self.system.reconfigure("RP1", self._asp, freq_mhz)
        if not result.interrupt_seen:
            outcome = (
                TransferOutcome.OK if result.crc_valid else TransferOutcome.FAILED
            )
            if outcome is TransferOutcome.FAILED:
                return self._result(
                    requested_mhz=freq_mhz,
                    effective_mhz=result.freq_mhz,
                    bitstream_bytes=bitstream_bytes,
                    outcome=TransferOutcome.FAILED,
                    notes=["CRC read-back flagged the corrupted load"],
                )
            return self._result(
                requested_mhz=freq_mhz,
                effective_mhz=result.freq_mhz,
                bitstream_bytes=bitstream_bytes,
                outcome=TransferOutcome.FAILED,
                notes=["no completion interrupt (control path past fmax)"],
            )
        scale = bitstream_bytes / result.bitstream_bytes
        latency_us = result.latency_us * scale
        return self._result(
            requested_mhz=freq_mhz,
            effective_mhz=result.freq_mhz,
            bitstream_bytes=bitstream_bytes,
            outcome=TransferOutcome.OK,
            latency_us=latency_us,
        )

    def max_working_mhz(self) -> float:
        return 280.0  # highest Table I frequency with a completion interrupt

    def table3_operating_point(self) -> float:
        return 280.0
