"""Tests for signals and interrupt lines."""

from repro.sim import InterruptLine, Signal, Simulator


def test_signal_initial_value():
    sim = Simulator()
    signal = Signal(sim, initial=3)
    assert signal.value == 3


def test_set_same_value_is_noop():
    sim = Simulator()
    signal = Signal(sim, initial="a")
    changes = []
    signal.watch(lambda old, new: changes.append((old, new)))
    signal.set("a")
    assert changes == []
    signal.set("b")
    assert changes == [("a", "b")]


def test_wait_for_value():
    sim = Simulator()
    signal = Signal(sim, initial=0, name="state")
    seen = {}

    def waiter(sim):
        value = yield signal.wait_for(2)
        seen["t"] = sim.now
        seen["v"] = value

    def driver(sim):
        yield sim.timeout(5.0)
        signal.set(1)
        yield sim.timeout(5.0)
        signal.set(2)

    sim.process(waiter(sim))
    sim.process(driver(sim))
    sim.run()
    assert seen == {"t": 10.0, "v": 2}


def test_wait_for_already_satisfied():
    sim = Simulator()
    signal = Signal(sim, initial="ready")
    seen = {}

    def waiter(sim):
        yield signal.wait_for("ready")
        seen["t"] = sim.now

    sim.process(waiter(sim))
    sim.run()
    assert seen["t"] == 0.0


def test_wait_change_fires_once():
    sim = Simulator()
    signal = Signal(sim, initial=0)
    seen = []

    def waiter(sim):
        value = yield signal.wait_change()
        seen.append(value)

    def driver(sim):
        yield sim.timeout(1.0)
        signal.set(10)
        signal.set(20)

    sim.process(waiter(sim))
    sim.process(driver(sim))
    sim.run()
    assert seen == [10]


def test_wait_until_predicate():
    sim = Simulator()
    signal = Signal(sim, initial=0)
    seen = {}

    def waiter(sim):
        value = yield signal.wait_until(lambda v: v >= 5)
        seen["v"] = value

    def driver(sim):
        for v in (1, 3, 5):
            yield sim.timeout(1.0)
            signal.set(v)

    sim.process(waiter(sim))
    sim.process(driver(sim))
    sim.run()
    assert seen["v"] == 5


def test_watch_and_unwatch():
    sim = Simulator()
    signal = Signal(sim, initial=0)
    hits = []
    watcher = lambda old, new: hits.append(new)  # noqa: E731
    signal.watch(watcher)
    signal.set(1)
    signal.unwatch(watcher)
    signal.set(2)
    assert hits == [1]


def test_history_records_changes():
    sim = Simulator()
    signal = Signal(sim, initial=0)
    signal.set(1)
    signal.set(2)
    assert [v for _, v in signal.history] == [0, 1, 2]


def test_interrupt_line_assert_deassert():
    sim = Simulator()
    irq = InterruptLine(sim, name="crc_err")
    assert not irq.asserted
    irq.assert_()
    assert irq.asserted
    assert irq.assert_count == 1
    irq.assert_()  # already high: no new edge
    assert irq.assert_count == 1
    irq.deassert()
    irq.assert_()
    assert irq.assert_count == 2


def test_interrupt_wait_assert_is_edge_triggered():
    sim = Simulator()
    irq = InterruptLine(sim)
    irq.assert_()  # already high before the wait

    seen = {}

    def waiter(sim):
        yield irq.wait_assert()
        seen["t"] = sim.now

    def driver(sim):
        yield sim.timeout(3.0)
        irq.deassert()
        yield sim.timeout(3.0)
        irq.assert_()

    sim.process(waiter(sim))
    sim.process(driver(sim))
    sim.run()
    # The pre-existing high level must NOT satisfy the wait; only the new edge.
    assert seen["t"] == 6.0


def test_interrupt_pulse_wakes_waiter():
    sim = Simulator()
    irq = InterruptLine(sim)
    seen = {}

    def waiter(sim):
        yield irq.wait_assert()
        seen["t"] = sim.now

    def driver(sim):
        yield sim.timeout(2.0)
        irq.pulse()

    sim.process(waiter(sim))
    sim.process(driver(sim))
    sim.run()
    assert seen["t"] == 2.0
    assert not irq.asserted
    assert irq.last_assert_ns == 2.0
