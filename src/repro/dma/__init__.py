"""AXI DMA engine (direct register mode, MM2S path)."""

from .descriptors import SgDescriptor, SgDmaEngine, write_descriptor_chain
from .engine import AxiDmaEngine, S2mmDmaEngine
from .lite_frontend import DmaLiteFrontend
from .registers import (
    DMACR_IOC_IRQ_EN,
    S2MM_DA,
    S2MM_DMACR,
    S2MM_DMASR,
    S2MM_LENGTH,
    DMACR_RESET,
    DMACR_RS,
    DMASR_DMA_INT_ERR,
    DMASR_HALTED,
    DMASR_IDLE,
    DMASR_IOC_IRQ,
    MM2S_DMACR,
    MM2S_DMASR,
    MM2S_LENGTH,
    MM2S_SA,
)

__all__ = [
    "AxiDmaEngine",
    "S2mmDmaEngine",
    "SgDescriptor",
    "SgDmaEngine",
    "write_descriptor_chain",
    "S2MM_DA",
    "S2MM_DMACR",
    "S2MM_DMASR",
    "S2MM_LENGTH",
    "DmaLiteFrontend",
    "DMACR_IOC_IRQ_EN",
    "DMACR_RESET",
    "DMACR_RS",
    "DMASR_DMA_INT_ERR",
    "DMASR_HALTED",
    "DMASR_IDLE",
    "DMASR_IOC_IRQ",
    "MM2S_DMACR",
    "MM2S_DMASR",
    "MM2S_LENGTH",
    "MM2S_SA",
]
