"""Discrete-event simulation kernel.

Public surface::

    from repro.sim import Simulator, Channel, Signal, InterruptLine, ClockDomain

The kernel is generator-based: processes are Python generators that yield
:class:`~repro.sim.kernel.Event` objects (timeouts, channel operations,
signal edges, other processes) and are resumed when those events fire.
"""

from .channel import Channel
from .clock import MHZ, NS_PER_S, NS_PER_US, ClockDomain
from .errors import Deadlock, Interrupt, SchedulingError, SimulationError
from .kernel import AllOf, AnyOf, Condition, Event, Process, Simulator, Timeout
from .signal import InterruptLine, Signal
from .trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "ClockDomain",
    "Condition",
    "Deadlock",
    "Event",
    "Interrupt",
    "InterruptLine",
    "MHZ",
    "NS_PER_S",
    "NS_PER_US",
    "Process",
    "SchedulingError",
    "Signal",
    "SimulationError",
    "Simulator",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
