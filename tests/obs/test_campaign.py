"""Tests for the campaign aggregator behind ``repro-pdr report``."""

import json

import pytest

from repro.obs.campaign import (
    Rollup,
    aggregate_campaign,
    flatten_metrics,
    render_json,
    render_markdown,
    rollup_values,
)


def _record(index, latency, phase_scale=1.0, device="dma"):
    return {
        "label": f"p{index}",
        "latency_us": latency,
        "availability": 1.0,
        "phase_us": {
            "dma_transfer": 600.0 * phase_scale,
            "scrub": 300.0 * phase_scale,
        },
        "critical_path": device,
        "metrics": {
            "fw.latency_us": {
                "type": "histogram",
                "count": 1,
                "sum": latency,
                "mean": latency,
                "p50": latency,
                "p99": latency,
                "max": latency,
            },
            "dma.bytes": {"type": "counter", "value": 1000.0 * index},
        },
    }


# -- rollup math ---------------------------------------------------------------


def test_rollup_values_nearest_rank_percentiles():
    rolled = rollup_values(range(1, 101))
    assert rolled.count == 100
    assert rolled.min == 1.0 and rolled.max == 100.0
    assert rolled.mean == pytest.approx(50.5)
    # Nearest-rank (no interpolation): an actual observed sample, at the
    # ceil rank — p99 of 100 samples is rank ceil(99.0) = 99, not 100.
    assert rolled.p50 == 50.0
    assert rolled.p99 == 99.0


def test_rollup_values_rejects_non_numeric_and_empty():
    assert rollup_values([]) is None
    assert rollup_values([None, "x", True]) is None
    rolled = rollup_values([None, 2.0, 4.0])
    assert rolled.count == 2 and rolled.mean == 3.0


def test_flatten_metrics_selects_type_specific_fields():
    flat = flatten_metrics(_record(1, 100.0)["metrics"])
    assert flat["fw.latency_us.p99"] == 100.0
    assert flat["dma.bytes.value"] == 1000.0
    assert "fw.latency_us.type" not in flat


# -- aggregation ---------------------------------------------------------------


def test_aggregate_campaign_folds_results_phases_and_critical_paths():
    records = [
        _record(1, 100.0, device="dma"),
        _record(2, 200.0, device="dma"),
        _record(3, 300.0, phase_scale=2.0, device="scrubber"),
    ]
    report = aggregate_campaign("camp", records)
    assert report.points == 3
    assert report.results["latency_us"].p50 == 200.0
    assert report.phases["dma_transfer"].max == 1200.0
    assert report.critical_paths == {"dma": 2, "scrubber": 1}
    assert report.metrics["dma.bytes.value"].mean == pytest.approx(2000.0)
    assert [row["label"] for row in report.rows] == ["p1", "p2", "p3"]
    assert report.rows[2]["critical_path"] == "scrubber"


def test_aggregate_campaign_tolerates_sparse_records():
    report = aggregate_campaign(
        "sparse", [{"latency_us": 5.0}, {"availability": 0.5}, {}]
    )
    assert report.points == 3
    assert report.results["latency_us"].count == 1
    assert report.results["availability"].count == 1
    assert report.phases == {} and report.critical_paths == {}
    assert report.skipped == {}


def test_all_none_field_degrades_to_skipped_rollup_with_reason():
    """An all-hang grid (every latency None) must not raise or vanish."""
    records = [
        {
            "label": f"p{i}",
            "latency_us": None,
            "latency_unavailable_reason": "no completion interrupt",
            "availability": 0.0,
        }
        for i in range(3)
    ]
    report = aggregate_campaign("all-hang", records)
    assert "latency_us" not in report.results
    assert report.skipped["latency_us"] == (
        "no numeric values in 3/3 point(s): no completion interrupt"
    )
    assert report.results["availability"].count == 3
    # Both serialisations carry the skip (bench --check convention).
    doc = json.loads(render_json(report))
    assert doc["skipped"]["latency_us"].startswith("no numeric values")
    text = render_markdown(report)
    assert "skipped: latency_us (no numeric values in 3/3 point(s)" in text


def test_partially_numeric_field_rolls_up_without_skip():
    records = [
        {"latency_us": None, "latency_unavailable_reason": "no completion interrupt"},
        {"latency_us": 120.0},
    ]
    report = aggregate_campaign("mixed", records)
    assert report.results["latency_us"].count == 1
    assert report.skipped == {}


# -- serialisation determinism -------------------------------------------------


def test_render_json_is_canonical_and_order_independent():
    records = [_record(i, 100.0 * i) for i in range(1, 4)]
    report = aggregate_campaign("camp", records)
    text = render_json(report)
    assert text == render_json(aggregate_campaign("camp", records))
    doc = json.loads(text)
    assert doc["schema"] == "repro.obs.campaign/v1"
    assert doc["points"] == 3
    # Canonical form: sorted keys, trailing newline.
    assert text.endswith("\n")
    assert list(doc["results"]) == sorted(doc["results"])


def test_render_markdown_tables():
    records = [_record(i, 100.0 * i) for i in range(1, 4)]
    text = render_markdown(aggregate_campaign("camp", records))
    assert "# Campaign report — camp" in text
    assert "| latency_us |" in text
    assert "| dma_transfer |" in text
    assert "**dma** bottlenecked 3/3" in text


def test_soak_records_aggregate_through_same_fold():
    """Chaos soak case records fold without adaptation (shared shape)."""
    from repro.chaos.soak import SoakCase, soak_case

    record = soak_case(**SoakCase(index=0, fault_seed=7, ops=2,
                                  horizon_us=24_000.0).to_mapping())
    report = aggregate_campaign("chaos", [record])
    assert report.points == 1
    assert "availability" in report.results
    assert report.metrics  # the registry snapshot flattened into rollups
    if record["critical_path"] is not None:
        assert sum(report.critical_paths.values()) == 1
