"""Tests for the trace sink."""

from repro.sim import TraceRecord, Tracer


def test_emit_and_filter():
    tracer = Tracer()
    tracer.emit(100.0, "dma", "burst 0 issued")
    tracer.emit(200.0, "icap", "frame committed")
    tracer.emit(300.0, "dma", "burst 1 issued")
    assert len(tracer) == 3
    assert [r.message for r in tracer.filter(source="dma")] == [
        "burst 0 issued",
        "burst 1 issued",
    ]
    assert len(tracer.filter(contains="frame")) == 1
    assert list(tracer.sources()) == ["dma", "icap"]


def test_ring_buffer_drops_oldest():
    tracer = Tracer(limit=3)
    for i in range(5):
        tracer.emit(float(i), "s", f"m{i}")
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert [r.message for r in tracer.records] == ["m2", "m3", "m4"]


def test_disable_and_clear():
    tracer = Tracer()
    tracer.emit(1.0, "a", "kept")
    tracer.enabled = False
    tracer.emit(2.0, "a", "ignored")
    assert len(tracer) == 1
    tracer.clear()
    assert len(tracer) == 0


def test_echo_callback():
    echoed = []
    tracer = Tracer(echo=echoed.append)
    tracer.emit(5.0, "x", "hello")
    assert len(echoed) == 1
    assert isinstance(echoed[0], TraceRecord)


def test_record_rendering():
    record = TraceRecord(1500.0, "icap", "desync")
    text = str(record)
    assert "icap" in text
    assert "desync" in text
    assert "1.500us" in text.replace(" ", "")


def test_structured_record_kind_and_fields():
    tracer = Tracer()
    tracer.emit(10.0, "fw", "phase done", kind="span", fields={"duration_us": 5.0})
    record = tracer.records[-1]
    assert record.kind == "span"
    assert record.fields["duration_us"] == 5.0
    assert "<span>" in str(record)


def test_filter_by_kind_and_since_ns():
    tracer = Tracer()
    tracer.emit(100.0, "fw", "a", kind="span")
    tracer.emit(200.0, "fw", "b")
    tracer.emit(300.0, "fw", "c", kind="span")
    assert [r.message for r in tracer.filter(kind="span")] == ["a", "c"]
    # since_ns is an inclusive lower bound.
    assert [r.message for r in tracer.filter(since_ns=200.0)] == ["b", "c"]
    assert [r.message for r in tracer.filter(kind="span", since_ns=200.0)] == ["c"]


def test_filter_since_ns_boundary_is_inclusive_until_ns_exclusive():
    tracer = Tracer()
    tracer.emit(100.0, "fw", "before")
    tracer.emit(200.0, "fw", "at-cutoff")
    tracer.emit(300.0, "fw", "after")
    # A record stamped exactly at since_ns is returned...
    assert [r.message for r in tracer.filter(since_ns=200.0)] == [
        "at-cutoff",
        "after",
    ]
    # ...and one stamped exactly at until_ns is not, so adjacent
    # [since, until) windows partition the trace without double-counting.
    first = tracer.filter(since_ns=0.0, until_ns=200.0)
    second = tracer.filter(since_ns=200.0, until_ns=400.0)
    assert [r.message for r in first] == ["before"]
    assert [r.message for r in second] == ["at-cutoff", "after"]
    assert len(first) + len(second) == len(tracer)


def test_filter_time_window_composes_with_kind_and_source():
    tracer = Tracer()
    tracer.emit(100.0, "fw", "a", kind="span")
    tracer.emit(200.0, "dma", "b", kind="span")
    tracer.emit(200.0, "fw", "c")
    tracer.emit(300.0, "fw", "d", kind="span")
    got = tracer.filter(kind="span", source="fw", since_ns=200.0, until_ns=300.0)
    assert got == []
    got = tracer.filter(kind="span", source="fw", since_ns=200.0)
    assert [r.message for r in got] == ["d"]


def test_lazy_message_skipped_when_disabled():
    calls = []

    def expensive():
        calls.append(1)
        return "built"

    tracer = Tracer()
    tracer.enabled = False
    tracer.emit(1.0, "s", expensive)
    assert calls == []  # never constructed
    tracer.enabled = True
    tracer.emit(2.0, "s", expensive)
    assert calls == [1]
    assert tracer.records[-1].message == "built"


def test_echo_still_fires_when_retention_disabled():
    echoed = []
    tracer = Tracer(echo=echoed.append)
    tracer.enabled = False
    tracer.emit(1.0, "s", "live")
    assert len(tracer) == 0  # nothing retained
    assert echoed[0].message == "live"  # but the listener saw it
