"""Seed-deterministic open-loop workload generation.

A fleet workload is a stream of reconfiguration *requests* — "make
region R of some board an instance of ASP A" — arriving independently of
service progress (open loop: the generator never waits for the fleet, so
overload actually queues and rejects instead of self-throttling).

Arrival processes:

* ``poisson`` — memoryless arrivals at ``rate_per_ms`` via
  ``expovariate`` draws from a seeded ``random.Random``, the same
  discipline as :func:`repro.chaos.faults.build_fault_plan`;
* ``bursty`` — Poisson burst *starts* (rate scaled down by the mean
  burst size so the offered load matches the Poisson mode) with 2–6
  closely spaced requests per burst, modelling synchronised tenant
  redeploys.

Request content mixes regions, ASP kinds and bitstream size classes
(Table-I padded / 600 kB padded / content-sized) with a popularity skew:
a seeded hot set draws the majority of requests, which is what gives the
scheduler's same-bitstream batching something to coalesce — exactly the
regime of Nguyen & Hoe's time-shared vision pipelines, where a handful
of pipeline stages dominate the reconfiguration traffic.

Everything is a pure function of ``(seed, duration, rate, mode)``:
plain-data records, no wall clock, no global RNG.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Tuple

from ..core.pdr_system import TABLE1_BITSTREAM_BYTES

__all__ = [
    "ARRIVAL_MODES",
    "FLEET_ASP_KINDS",
    "FLEET_REGIONS",
    "PAD_CLASSES",
    "FleetRequest",
    "build_workload",
    "reissue",
]

#: Regions a request may target (every board has the full Z-7020 set).
FLEET_REGIONS = ("RP1", "RP2", "RP3", "RP4")
#: ASP kinds in the request mix (a subset of the fuzzer's palette keeps
#: the distinct-bitstream universe small enough for duplicates to occur).
FLEET_ASP_KINDS = ("passthrough", "fir", "crc32", "vecscale", "aes")
#: Bitstream size classes (bytes; 0 = content-sized, no padding).
PAD_CLASSES = (TABLE1_BITSTREAM_BYTES, 600_000, 0)
#: Supported arrival processes.
ARRIVAL_MODES = ("poisson", "bursty")

#: Fraction of requests drawn from the seeded hot set.
_HOT_FRACTION = 0.55
#: Distinct (region, kind, param, pad) combos in the hot set.
_HOT_SET_SIZE = 3
#: ASP parameter values per kind (small palette => duplicate bitstreams).
_PARAM_CHOICES = (0, 1, 2)
#: Bursty mode: requests per burst (uniform draw, inclusive).
_BURST_SIZE = (2, 6)
#: Bursty mode: spacing between requests inside one burst (µs).
_BURST_GAP_US = (20.0, 80.0)


@dataclass(frozen=True)
class FleetRequest:
    """One reconfiguration request as plain data."""

    index: int
    arrival_us: float
    region: str
    asp_kind: str
    asp_param: int
    #: Pad-to byte count; 0 means content-sized (no padding).
    pad_to: int

    @property
    def bitstream_key(self) -> Tuple[str, str, int, int]:
        """Identity of the bitstream this request needs — two requests
        with equal keys are served by one fabric load."""
        return (self.region, self.asp_kind, self.asp_param, self.pad_to)

    def to_mapping(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "FleetRequest":
        return cls(**dict(mapping))


def reissue(request: FleetRequest, arrival_us: float) -> FleetRequest:
    """The same logical request re-admitted at a later time.

    Failover (see :mod:`repro.fleet.health`) re-enters a failed request
    into the scheduler as if it arrived at ``arrival_us`` — same index,
    same content, so the terminal-outcome accounting stays keyed on the
    original request identity.
    """
    return dataclasses.replace(request, arrival_us=float(arrival_us))


def _draw_content(rng: random.Random, hot_set) -> Tuple[str, str, int, int]:
    if rng.random() < _HOT_FRACTION:
        return rng.choice(hot_set)
    return (
        rng.choice(FLEET_REGIONS),
        rng.choice(FLEET_ASP_KINDS),
        rng.choice(_PARAM_CHOICES),
        rng.choice(PAD_CLASSES),
    )


def _arrival_times(
    rng: random.Random, mode: str, duration_us: float, rate_per_ms: float
) -> List[float]:
    if rate_per_ms <= 0:
        raise ValueError("arrival rate must be positive")
    times: List[float] = []
    if mode == "poisson":
        at_ms = 0.0
        while True:
            at_ms += rng.expovariate(rate_per_ms)
            at_us = round(at_ms * 1e3, 1)
            if at_us > duration_us:
                break
            times.append(at_us)
    elif mode == "bursty":
        mean_burst = (_BURST_SIZE[0] + _BURST_SIZE[1]) / 2.0
        burst_rate = rate_per_ms / mean_burst
        at_ms = 0.0
        while True:
            at_ms += rng.expovariate(burst_rate)
            start_us = round(at_ms * 1e3, 1)
            if start_us > duration_us:
                break
            at_us = start_us
            for _ in range(rng.randint(*_BURST_SIZE)):
                if at_us > duration_us:
                    break
                times.append(round(at_us, 1))
                at_us += rng.uniform(*_BURST_GAP_US)
    else:
        raise ValueError(
            f"unknown arrival mode {mode!r} (expected one of {ARRIVAL_MODES})"
        )
    return times


def build_workload(
    seed: int,
    duration_ms: float,
    arrival: str = "poisson",
    rate_per_ms: float = 2.0,
) -> Tuple[FleetRequest, ...]:
    """The full request stream of one fleet campaign (pure in the seed)."""
    if duration_ms <= 0:
        raise ValueError("workload duration must be positive")
    rng = random.Random(int(seed) * 1_000_003 + 29)
    hot_set = tuple(
        (
            rng.choice(FLEET_REGIONS),
            rng.choice(FLEET_ASP_KINDS),
            rng.choice(_PARAM_CHOICES),
            rng.choice(PAD_CLASSES),
        )
        for _ in range(_HOT_SET_SIZE)
    )
    duration_us = float(duration_ms) * 1e3
    # Bursts can overlap the next burst's start; requests are indexed in
    # global arrival order regardless of which burst produced them.
    times = sorted(_arrival_times(rng, arrival, duration_us, rate_per_ms))
    requests: List[FleetRequest] = []
    for index, at_us in enumerate(times):
        region, kind, param, pad = _draw_content(rng, hot_set)
        requests.append(
            FleetRequest(
                index=index,
                arrival_us=at_us,
                region=region,
                asp_kind=kind,
                asp_param=param,
                pad_to=pad,
            )
        )
    return tuple(requests)
