"""Tests for the Clock Wizard (MMCM) and the per-RP clock manager."""

import pytest

from repro.clocking import ClockManager, ClockWizard, MmcmConstraints
from repro.sim import ClockDomain, Simulator


@pytest.fixture()
def wizard():
    sim = Simulator()
    domain = ClockDomain(sim, 100.0)
    return sim, domain, ClockWizard(sim, domain)


PAPER_FREQUENCIES = [100, 140, 180, 200, 240, 280, 310, 320, 360]


def test_paper_frequencies_exactly_synthesisable(wizard):
    _sim, _domain, wiz = wizard
    for freq in PAPER_FREQUENCIES:
        setting = wiz.best_setting(float(freq))
        assert setting.f_out_mhz == pytest.approx(freq, abs=1e-9), freq
        constraints = wiz.constraints
        assert constraints.vco_min_mhz <= setting.vco_mhz <= constraints.vco_max_mhz


def test_unsynthesisable_exact_request_quantised(wizard):
    _sim, _domain, wiz = wizard
    achieved = wiz.achievable_mhz(313.7)
    assert achieved == pytest.approx(313.7, rel=0.01)


def test_invalid_request_rejected(wizard):
    _sim, _domain, wiz = wizard
    with pytest.raises(ValueError):
        wiz.best_setting(0.0)


def test_program_waits_for_lock(wizard):
    sim, domain, wiz = wizard
    done = {}

    def driver(sim):
        achieved = yield wiz.program(200.0)
        done["f"] = achieved
        done["t"] = sim.now

    sim.process(driver(sim))
    sim.run()
    assert done["f"] == pytest.approx(200.0)
    assert done["t"] == pytest.approx(wiz.constraints.lock_time_us * 1e3)
    assert domain.freq_mhz == pytest.approx(200.0)
    assert wiz.locked
    assert wiz.reprogram_count == 1


def test_lock_deasserts_during_reprogram(wizard):
    sim, _domain, wiz = wizard
    wiz.program(150.0)
    assert not wiz.locked
    sim.run()
    assert wiz.locked


def test_vco_legality_enforced():
    sim = Simulator()
    domain = ClockDomain(sim, 100.0)
    tight = MmcmConstraints(vco_min_mhz=1000.0, vco_max_mhz=1100.0)
    wizard = ClockWizard(sim, domain, constraints=tight)
    setting = wizard.best_setting(100.0)
    assert 1000.0 <= setting.vco_mhz <= 1100.0


# ------------------------------------------------------------ clock manager --
def test_manager_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ClockManager(sim, outputs=0)


def test_manager_assignment_and_programming():
    sim = Simulator()
    manager = ClockManager(sim, outputs=5)
    domain = manager.assign("RP1", 0)
    assert manager.domain_of("RP1") is domain

    def driver(sim):
        yield manager.program(0, 250.0)

    sim.process(driver(sim))
    sim.run()
    assert manager.domain_of("RP1").freq_mhz == pytest.approx(250.0)


def test_manager_independent_outputs():
    sim = Simulator()
    manager = ClockManager(sim, outputs=2)
    manager.assign("A", 0)
    manager.assign("B", 1)

    def driver(sim):
        yield manager.program(0, 150.0)

    sim.process(driver(sim))
    sim.run()
    assert manager.domain_of("A").freq_mhz == pytest.approx(150.0)
    assert manager.domain_of("B").freq_mhz == pytest.approx(100.0)


def test_manager_unknown_consumer_and_index():
    sim = Simulator()
    manager = ClockManager(sim, outputs=2)
    with pytest.raises(KeyError):
        manager.domain_of("ghost")
    with pytest.raises(IndexError):
        manager.program(5, 100.0)
    with pytest.raises(IndexError):
        manager.assign("X", 9)
