"""Tests for the calibration sensitivity harness."""

import pytest

from repro.experiments.sensitivity import (
    SensitivityResult,
    format_report,
    run_sensitivity,
)


@pytest.fixture(scope="module")
def result() -> SensitivityResult:
    # Nominal + one downward perturbation keeps the module-scoped run fast
    # while still exercising every parameter's factory.
    return run_sensitivity(scales=[0.75, 1.0])


def test_all_parameters_covered(result):
    parameters = {p.parameter for p in result.points}
    assert parameters == {
        "dma_burst_bytes",
        "dma_cmd_gap_cycles",
        "interconnect_latency_ns",
        "driver_setup_us",
    }
    for parameter in parameters:
        assert len(result.for_parameter(parameter)) == 2


def test_shape_conclusions_are_robust(result):
    """The reproduction's structural claims survive the perturbations."""
    assert result.shape_always_saturates()
    assert result.efficiency_peak_is_stable()


def test_burst_size_moves_the_ceiling(result):
    points = {p.scale: p for p in result.for_parameter("dma_burst_bytes")}
    assert points[0.75].ceiling_mb_s < points[1.0].ceiling_mb_s


def test_interconnect_latency_moves_the_ceiling(result):
    points = {p.scale: p for p in result.for_parameter("interconnect_latency_ns")}
    assert points[0.75].ceiling_mb_s > points[1.0].ceiling_mb_s


def test_setup_time_is_second_order(result):
    """Driver setup shifts latency by microseconds — the ceiling barely
    moves (it is amortised over a ~670 us transfer)."""
    points = {p.scale: p for p in result.for_parameter("driver_setup_us")}
    assert points[0.75].ceiling_mb_s == pytest.approx(
        points[1.0].ceiling_mb_s, rel=0.005
    )


def test_report_renders(result):
    text = format_report(result)
    assert "sensitivity" in text.lower()
    assert "dma_burst_bytes" in text
