"""Clock synthesis: the MMCM Clock Wizard and the per-RP clock manager."""

from .manager import ClockManager
from .wizard import ClockWizard, MmcmConstraints, MmcmSetting

__all__ = ["ClockManager", "ClockWizard", "MmcmConstraints", "MmcmSetting"]
