"""Round-trip property: builder -> parser -> config memory == golden ASP.

For every reconfigurable region in the device library and a spread of
accelerator personalities, the partial bitstream produced by
:class:`BitstreamBuilder` must parse back with a good CRC, and writing
the parsed payload frames into a fresh :class:`ConfigMemory` must leave
the region byte-identical to the golden encoded ASP frames.
"""

import pytest

from repro.bitstream import BitstreamBuilder, make_z7020_layout
from repro.bitstream.parser import BitstreamParser
from repro.fabric.asp import (
    Aes128Asp,
    Crc32Asp,
    FirFilterAsp,
    MatMulAsp,
    PassthroughAsp,
    Sha256Asp,
    encode_asp_frames,
)
from repro.fabric.config_memory import ConfigMemory

LAYOUT = make_z7020_layout()
REGIONS = sorted(LAYOUT.regions)

ASPS = [
    PassthroughAsp(),
    FirFilterAsp([1, -2, 3, -4]),
    Aes128Asp([0xDEADBEEF, 0x01234567, 0x89ABCDEF, 0xF00DFACE]),
    MatMulAsp(8),
    Crc32Asp(),
    Sha256Asp(),
]


@pytest.mark.parametrize("region", REGIONS)
@pytest.mark.parametrize("asp", ASPS, ids=lambda a: type(a).__name__)
def test_builder_parser_memory_round_trip(region, asp):
    golden = encode_asp_frames(LAYOUT.region_frame_count(region), asp)

    bitstream = BitstreamBuilder(LAYOUT).build_partial(region, golden)
    parsed = BitstreamParser(LAYOUT).parse_bytes(bitstream.to_bytes())
    assert parsed.crc_ok, f"CRC must survive the round trip for {region}"

    payload = parsed.payload_frames()
    assert len(payload) == LAYOUT.region_frame_count(region)

    memory = ConfigMemory(LAYOUT)
    memory.write_region(region, payload)
    assert memory.region_equals(region, golden)


@pytest.mark.parametrize("region", REGIONS)
def test_round_trip_survives_noop_padding(region):
    asp = PassthroughAsp()
    golden = encode_asp_frames(LAYOUT.region_frame_count(region), asp)
    unpadded = BitstreamBuilder(LAYOUT).build_partial(region, golden)
    padded_len = len(unpadded.to_bytes()) + 64
    bitstream = BitstreamBuilder(LAYOUT).build_partial(
        region, golden, pad_to_bytes=padded_len
    )
    assert len(bitstream.to_bytes()) == padded_len

    parsed = BitstreamParser(LAYOUT).parse_bytes(bitstream.to_bytes())
    assert parsed.crc_ok
    memory = ConfigMemory(LAYOUT)
    memory.write_region(region, parsed.payload_frames())
    assert memory.region_equals(region, golden)


def test_corrupted_stream_fails_crc():
    region = REGIONS[0]
    golden = encode_asp_frames(LAYOUT.region_frame_count(region), PassthroughAsp())
    data = bytearray(BitstreamBuilder(LAYOUT).build_partial(region, golden).to_bytes())
    data[len(data) // 2] ^= 0x40  # flip one payload bit
    parsed = BitstreamParser(LAYOUT).parse_bytes(bytes(data))
    assert not parsed.crc_ok
