"""Configuration CRC.

Xilinx 7-series devices protect the configuration stream with a CRC-32C
(Castagnoli polynomial) computed over every ``(register address, data word)``
pair written through the configuration interface.  We implement the same
scheme: each 32-bit data word together with its 5-bit register address is
folded into a running CRC-32C.  The CRC register write at the end of a
bitstream must match the internally computed value, and the read-back
scrubber recomputes the same CRC over frame data to detect corruption.

The plain byte-stream CRC-32C is also exposed (:func:`crc32c_bytes`) for
the §VI decompressor integrity checks.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

try:  # vectorised cold-path folds; every result is bit-identical to the
    import numpy as _np  # scalar tables, so the fallback is purely a speed loss
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

__all__ = ["ConfigCrc", "crc32c_bytes", "crc32c_words", "crc32c_packed"]

# CRC-32C (Castagnoli), reflected representation.
_POLY = 0x82F63B78


def _build_tables(count: int = 4) -> List[List[int]]:
    """Slicing-by-``count`` lookup tables.

    ``tables[0]`` is the classic byte-at-a-time table; ``tables[k]``
    advances a byte ``k`` further through the register, so a 32-bit chunk
    folds with four lookups instead of four dependent shift-xor steps:
    ``T3[x&FF] ^ T2[x>>8&FF] ^ T1[x>>16&FF] ^ T0[x>>24]``.
    """
    tables = [[0] * 256 for _ in range(count)]
    first = tables[0]
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        first[byte] = crc
    for k in range(1, count):
        prev = tables[k - 1]
        for byte in range(256):
            value = prev[byte]
            tables[k][byte] = first[value & 0xFF] ^ (value >> 8)
    return tables


_TABLES = _build_tables()
_TABLE = _TABLES[0]

# Ten tables cover one 10-byte block of the FDRI run layout — two data
# words with their interleaved register-address bytes — so the bulk fold
# advances two (word, addr) writes per loop iteration.  Twenty tables
# double that to four writes per iteration for the main run loop.
_TABLES10 = _build_tables(10)
_TABLES20 = _build_tables(20)

#: _TABLES10 as uint32 ndarrays (built lazily, only if numpy is present).
_NP_TABLES10: Optional[list] = None


def _np_tables10():
    global _NP_TABLES10
    if _NP_TABLES10 is None:
        _NP_TABLES10 = [_np.array(t, dtype=_np.uint32) for t in _TABLES10]
    return _NP_TABLES10


# --------------------------------------------------------------------------
# Linear-operator fast path
#
# The byte step ``raw' = T[(raw ^ b) & 0xFF] ^ (raw >> 8)`` is GF(2)-linear
# in ``raw`` and ``b`` (CRC tables satisfy T[a ^ b] = T[a] ^ T[b]), so
# processing a fixed message M of L bytes factors into
#
#     raw_out = Z_L(raw_in) ^ C(M)
#
# where ``Z_L`` advances the register through L zero bytes (a 32x32 GF(2)
# matrix, applied here as four 256-entry lookup tables) and ``C(M)`` is a
# per-content constant.  Campaigns feed the same bitstream content through
# the ICAP and the scrubber over and over; caching ``C(M)`` per content
# chunk turns every repeat into four table lookups regardless of length.
# --------------------------------------------------------------------------
def _op_tables(imgs: List[int]) -> Tuple[List[int], ...]:
    """Compile a 32-basis-image operator into 4 byte-lookup tables."""
    tables = []
    for part in range(4):
        base = imgs[8 * part : 8 * part + 8]
        tab = [0] * 256
        for b in range(1, 256):
            lsb = b & -b
            tab[b] = tab[b ^ lsb] ^ base[lsb.bit_length() - 1]
        tables.append(tab)
    return tuple(tables)


def _op_compose(a_imgs: List[int], b_imgs: List[int]) -> List[int]:
    """Basis images of ``a`` applied after ``b``."""
    t0, t1, t2, t3 = _op_tables(a_imgs)
    return [
        t0[x & 0xFF] ^ t1[(x >> 8) & 0xFF] ^ t2[(x >> 16) & 0xFF] ^ t3[x >> 24]
        for x in b_imgs
    ]


#: Basis images of the 2^k-zero-byte advance operators (built on demand).
_ZERO_POWERS: List[List[int]] = []
#: Compiled zero-advance tables per byte length.
_ZERO_OPS: Dict[int, Tuple[List[int], ...]] = {}


def _zero_operator(length: int) -> Tuple[List[int], ...]:
    """Lookup tables advancing a raw CRC state through ``length`` zero bytes."""
    tables = _ZERO_OPS.get(length)
    if tables is not None:
        return tables
    if not _ZERO_POWERS:
        table = _TABLE
        _ZERO_POWERS.append(
            [table[(1 << i) & 0xFF] ^ ((1 << i) >> 8) for i in range(32)]
        )
    while (1 << len(_ZERO_POWERS)) <= length:
        last = _ZERO_POWERS[-1]
        _ZERO_POWERS.append(_op_compose(last, last))
    imgs = [1 << i for i in range(32)]  # identity
    remaining, k = length, 0
    while remaining:
        if remaining & 1:
            imgs = _op_compose(_ZERO_POWERS[k], imgs)
        remaining >>= 1
        k += 1
    tables = _op_tables(imgs)
    _ZERO_OPS[length] = tables
    return tables


def _fold_words_raw(raw: int, words) -> int:
    """Advance a raw (pre-inverted) CRC state over little-endian words.

    Slicing-by-8: two words per iteration, halving the loop overhead on
    the content-constant cold path (warm passes hit the caches instead).
    """
    s0, s1, s2, s3, s4, s5, s6, s7, _s8, _s9 = _TABLES10
    it = iter(words)
    for w0, w1 in zip(it, it):
        x = raw ^ w0
        raw = (
            s7[x & 0xFF]
            ^ s6[(x >> 8) & 0xFF]
            ^ s5[(x >> 16) & 0xFF]
            ^ s4[x >> 24]
            ^ s3[w1 & 0xFF]
            ^ s2[(w1 >> 8) & 0xFF]
            ^ s1[(w1 >> 16) & 0xFF]
            ^ s0[w1 >> 24]
        )
    if len(words) & 1:
        x = raw ^ words[-1]
        raw = s3[x & 0xFF] ^ s2[(x >> 8) & 0xFF] ^ s1[(x >> 16) & 0xFF] ^ s0[x >> 24]
    return raw


def _fold_run_raw(raw: int, register_addr: int, words) -> int:
    """Advance a raw CRC state over a run of ``(word, register_addr)``
    writes — byte-for-byte the order :meth:`ConfigCrc.update` folds them,
    four writes per iteration with the fixed address bytes precombined."""
    count = len(words)
    quads = count & ~3
    if quads:
        (
            u0, u1, u2, u3, u4, u5, u6, u7, u8, u9,
            u10, u11, u12, u13, u14, u15, u16, u17, u18, u19,
        ) = _TABLES20
        addr_k4 = (
            u15[register_addr]
            ^ u10[register_addr]
            ^ u5[register_addr]
            ^ u0[register_addr]
        )
        for i in range(0, quads, 4):
            w1 = words[i + 1]
            w2 = words[i + 2]
            w3 = words[i + 3]
            x = raw ^ words[i]
            raw = (
                u19[x & 0xFF]
                ^ u18[(x >> 8) & 0xFF]
                ^ u17[(x >> 16) & 0xFF]
                ^ u16[x >> 24]
                ^ u14[w1 & 0xFF]
                ^ u13[(w1 >> 8) & 0xFF]
                ^ u12[(w1 >> 16) & 0xFF]
                ^ u11[w1 >> 24]
                ^ u9[w2 & 0xFF]
                ^ u8[(w2 >> 8) & 0xFF]
                ^ u7[(w2 >> 16) & 0xFF]
                ^ u6[w2 >> 24]
                ^ u4[w3 & 0xFF]
                ^ u3[(w3 >> 8) & 0xFF]
                ^ u2[(w3 >> 16) & 0xFF]
                ^ u1[w3 >> 24]
                ^ addr_k4
            )
    t0, t1, t2, t3, t4, t5, t6, t7, t8, t9 = _TABLES10
    if count - quads >= 2:
        w0 = words[quads]
        w1 = words[quads + 1]
        x = raw ^ w0
        raw = (
            t9[x & 0xFF]
            ^ t8[(x >> 8) & 0xFF]
            ^ t7[(x >> 16) & 0xFF]
            ^ t6[x >> 24]
            ^ t4[w1 & 0xFF]
            ^ t3[(w1 >> 8) & 0xFF]
            ^ t2[(w1 >> 16) & 0xFF]
            ^ t1[w1 >> 24]
            ^ t5[register_addr]
            ^ t0[register_addr]
        )
    if count & 1:
        x = raw ^ words[-1]
        raw = (
            t4[x & 0xFF]
            ^ t3[(x >> 8) & 0xFF]
            ^ t2[(x >> 16) & 0xFF]
            ^ t1[x >> 24]
            ^ t0[register_addr]
        )
    return raw


def _run_constants_numpy(register_addr: int, blocks: List[bytes]) -> List[int]:
    """Content constants for many equal-sized packed run blocks at once.

    Every block folds independently from a zero state, so the folds
    vectorise across blocks: one lane per block, advancing two
    ``(word, addr)`` writes per iteration with the same tables the scalar
    :func:`_fold_run_raw` uses.  Results are bit-identical.
    """
    t = _np_tables10()
    words_per = len(blocks[0]) // 4  # callers pass equal, even-sized blocks
    arr = _np.frombuffer(b"".join(blocks), dtype="<u4").reshape(
        len(blocks), words_per
    )
    cols = _np.ascontiguousarray(arr.T)
    addr_k = _np.uint32(
        _TABLES10[5][register_addr] ^ _TABLES10[0][register_addr]
    )
    state = _np.zeros(len(blocks), dtype=_np.uint32)
    for j in range(0, words_per, 2):
        x = state ^ cols[j]
        w1 = cols[j + 1]
        state = (
            t[9][x & 0xFF]
            ^ t[8][(x >> 8) & 0xFF]
            ^ t[7][(x >> 16) & 0xFF]
            ^ t[6][x >> 24]
            ^ t[4][w1 & 0xFF]
            ^ t[3][(w1 >> 8) & 0xFF]
            ^ t[2][(w1 >> 16) & 0xFF]
            ^ t[1][w1 >> 24]
            ^ addr_k
        )
    return state.tolist()


def _chunk_constants_numpy(chunks: List[bytes]) -> List[int]:
    """Content constants for many equal-length packed word chunks at once.

    Each chunk splits into ``s`` contiguous segments folded in parallel
    (one lane per segment across all chunks); the per-segment partials
    then combine with the zero-advance operator for the segment length.
    Bit-identical to :func:`_fold_words_raw` from a zero state per chunk.
    """
    t = _np_tables10()
    k = len(chunks)
    n = len(chunks[0]) // 4
    s = 1
    while k * s * 2 <= 2048 and s * 2 <= n:
        s *= 2
    seg = n // s
    arr = _np.frombuffer(b"".join(chunks), dtype="<u4").reshape(k, n)
    cols = _np.ascontiguousarray(arr[:, : s * seg].reshape(k * s, seg).T)
    state = _np.zeros(k * s, dtype=_np.uint32)
    j = 0
    while j + 1 < seg:
        x = state ^ cols[j]
        w1 = cols[j + 1]
        state = (
            t[7][x & 0xFF]
            ^ t[6][(x >> 8) & 0xFF]
            ^ t[5][(x >> 16) & 0xFF]
            ^ t[4][x >> 24]
            ^ t[3][w1 & 0xFF]
            ^ t[2][(w1 >> 8) & 0xFF]
            ^ t[1][(w1 >> 16) & 0xFF]
            ^ t[0][w1 >> 24]
        )
        j += 2
    if j < seg:
        x = state ^ cols[j]
        state = (
            t[3][x & 0xFF]
            ^ t[2][(x >> 8) & 0xFF]
            ^ t[1][(x >> 16) & 0xFF]
            ^ t[0][x >> 24]
        )
    partials = state.reshape(k, s).tolist()
    z0, z1, z2, z3 = _zero_operator(4 * seg)
    constants = []
    for row_index, row in enumerate(partials):
        raw = 0
        for partial in row:
            raw = (
                z0[raw & 0xFF]
                ^ z1[(raw >> 8) & 0xFF]
                ^ z2[(raw >> 16) & 0xFF]
                ^ z3[raw >> 24]
            ) ^ partial
        if seg * s < n:
            raw = _fold_words_raw(raw, tuple(arr[row_index, s * seg :].tolist()))
        constants.append(raw)
    return constants


#: Batch the vectorised fold only when enough uncached content shows up —
#: below this the per-call numpy overhead loses to the scalar tables.
_NUMPY_MIN_MISSES = 8

#: Content-keyed constants for FDRI-style register runs: ``(addr, packed
#: little-endian words) -> C(M)``.  Bounded LRU; a miss just recomputes.
_RUN_CACHE: "OrderedDict[Tuple[int, bytes], int]" = OrderedDict()
_RUN_CACHE_MAX = 4096
#: Run content is folded in fixed blocks **aligned to the run start**, so
#: the cache keys depend only on (register, content) — the builder folding
#: a whole FDRI payload in one call and the ICAP re-folding the same
#: payload in DMA-burst-sized pieces populate and hit the same entries.
_RUN_BLOCK_BYTES = 1024
#: Below this the plain per-word loop wins over packing + hashing.
_RUN_FAST_MIN_WORDS = 16

#: Content-keyed constants for plain word streams carried as packed bytes
#: (the scrubber's read-back chunks): ``packed -> C(M)``.
_CHUNK_CACHE: "OrderedDict[bytes, int]" = OrderedDict()
_CHUNK_CACHE_MAX = 4096


def crc32c_packed(chunks: Iterable[bytes], crc: int = 0) -> int:
    """CRC-32C over 32-bit little-endian words carried as packed chunks.

    Exactly :func:`crc32c_words` over the concatenated word stream, but
    chunk constants are content-cached: re-checking unchanged data (the
    scrubber's steady state) costs four table lookups per chunk.  Chunk
    byte lengths must be word-aligned.
    """
    raw = crc ^ 0xFFFFFFFF
    cache = _CHUNK_CACHE
    chunks = [chunk for chunk in chunks if chunk]
    if _np is not None:
        missing = list(dict.fromkeys(c for c in chunks if c not in cache))
        if len(missing) >= _NUMPY_MIN_MISSES:
            by_length: Dict[int, List[bytes]] = {}
            for chunk in missing:
                by_length.setdefault(len(chunk), []).append(chunk)
            for group in by_length.values():
                if len(group) < _NUMPY_MIN_MISSES:
                    continue
                for chunk, constant in zip(group, _chunk_constants_numpy(group)):
                    cache[chunk] = constant
                    if len(cache) > _CHUNK_CACHE_MAX:
                        cache.popitem(last=False)
    for chunk in chunks:
        constant = cache.get(chunk)
        if constant is None:
            constant = _fold_words_raw(
                0, struct.unpack(f"<{len(chunk) // 4}I", chunk)
            )
            cache[chunk] = constant
            if len(cache) > _CHUNK_CACHE_MAX:
                cache.popitem(last=False)
        else:
            cache.move_to_end(chunk)
        z0, z1, z2, z3 = _zero_operator(len(chunk))
        raw = (
            z0[raw & 0xFF]
            ^ z1[(raw >> 8) & 0xFF]
            ^ z2[(raw >> 16) & 0xFF]
            ^ z3[raw >> 24]
        ) ^ constant
    return raw ^ 0xFFFFFFFF


def crc32c_bytes(data: bytes, crc: int = 0) -> int:
    """CRC-32C over a byte string (standard reflected, final xor)."""
    crc = crc ^ 0xFFFFFFFF
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def crc32c_words(words: Iterable[int], crc: int = 0) -> int:
    """CRC-32C over 32-bit words, little-endian byte order per word."""
    t0, t1, t2, t3 = _TABLES
    crc = crc ^ 0xFFFFFFFF
    for word in words:
        x = crc ^ word
        crc = t3[x & 0xFF] ^ t2[(x >> 8) & 0xFF] ^ t1[(x >> 16) & 0xFF] ^ t0[x >> 24]
    return crc ^ 0xFFFFFFFF


class ConfigCrc:
    """Running configuration CRC over (register, word) pairs.

    Mirrors the device-internal CRC logic: every configuration write feeds
    the 5-bit register address and the 32-bit data word into the CRC.
    Writing the expected value to the CRC register resets the accumulator
    when it matches (and flags an error when it does not); the RCRC command
    resets it unconditionally.
    """

    def __init__(self) -> None:
        self._crc = 0
        self.error = False
        #: (address, word) pairs folded since the last reset (for debugging).
        self.words_folded = 0
        # Pending run content: packed little-endian words written to
        # ``_run_addr`` but not yet folded.  Deferring the fold lets
        # consecutive :meth:`update_run` calls (the ICAP's burst-sized
        # pieces of one FDRI payload) realign on run-relative block
        # boundaries, so their content-cache keys match the builder's.
        self._run_addr: Optional[int] = None
        self._run_buf = bytearray()

    @property
    def value(self) -> int:
        self._flush_run()
        return self._crc

    def reset(self) -> None:
        # A reset discards the accumulator, so pending run content would
        # fold into a value nobody can observe — drop it.
        self._run_addr = None
        self._run_buf.clear()
        self._crc = 0
        self.error = False
        self.words_folded = 0

    def update(self, register_addr: int, word: int) -> None:
        """Fold one configuration write into the running CRC."""
        self._flush_run()
        if not 0 <= register_addr < 32:
            raise ValueError(f"register address {register_addr} out of range")
        if not 0 <= word <= 0xFFFFFFFF:
            raise ValueError(f"data word {word:#x} out of range")
        # Fold the 37-bit (addr, word) tuple byte-wise: 4 data bytes then
        # the address byte, matching the order used by the builder.
        t0, t1, t2, t3 = _TABLES
        crc = self._crc ^ 0xFFFFFFFF
        x = crc ^ word
        crc = t3[x & 0xFF] ^ t2[(x >> 8) & 0xFF] ^ t1[(x >> 16) & 0xFF] ^ t0[x >> 24]
        crc = t0[(crc ^ register_addr) & 0xFF] ^ (crc >> 8)
        self._crc = crc ^ 0xFFFFFFFF
        self.words_folded += 1

    def update_run(self, register_addr: int, words, packed: bytes = None) -> None:
        """Fold many words written to the *same* register (bulk FDRI path).

        Semantically identical to calling :meth:`update` per word, but
        with the per-word overhead hoisted out of the loop — FDRI carries
        >130 k words per partial bitstream.  Runs the caller already holds
        little-endian packed (``packed``) — or that pack cleanly — take
        the linear-operator path: the run constant is content-cached, so
        re-feeding an already-seen bitstream chunk is O(1) in its length.
        """
        if not 0 <= register_addr < 32:
            raise ValueError(f"register address {register_addr} out of range")
        count = len(words)
        if count == 0:
            return
        if count >= _RUN_FAST_MIN_WORDS:
            if packed is None:
                try:
                    packed = struct.pack(f"<{count}I", *words)
                except struct.error:
                    packed = None  # out-of-range word: per-word loop validates
            if packed is not None:
                if self._run_addr is not None and self._run_addr != register_addr:
                    self._flush_run()
                self._run_addr = register_addr
                buf = self._run_buf
                buf += packed
                if len(buf) >= _RUN_BLOCK_BYTES:
                    self._fold_full_blocks(register_addr)
                self.words_folded += count
                return
        self._flush_run()
        t0, t1, t2, t3 = _TABLES
        crc = self._crc ^ 0xFFFFFFFF
        for word in words:
            x = crc ^ word
            crc = t3[x & 0xFF] ^ t2[(x >> 8) & 0xFF] ^ t1[(x >> 16) & 0xFF] ^ t0[x >> 24]
            crc = t0[(crc ^ register_addr) & 0xFF] ^ (crc >> 8)
        self._crc = crc ^ 0xFFFFFFFF
        self.words_folded += count

    def _apply_run_block(self, raw: int, register_addr: int, block: bytes) -> int:
        """Fold one packed run block via its content-cached constant."""
        key = (register_addr, block)
        constant = _RUN_CACHE.get(key)
        if constant is None:
            constant = _fold_run_raw(
                0, register_addr, struct.unpack(f"<{len(block) // 4}I", block)
            )
            _RUN_CACHE[key] = constant
            if len(_RUN_CACHE) > _RUN_CACHE_MAX:
                _RUN_CACHE.popitem(last=False)
        else:
            _RUN_CACHE.move_to_end(key)
        z0, z1, z2, z3 = _zero_operator(5 * (len(block) // 4))
        return (
            z0[raw & 0xFF]
            ^ z1[(raw >> 8) & 0xFF]
            ^ z2[(raw >> 16) & 0xFF]
            ^ z3[raw >> 24]
        ) ^ constant

    def _fold_full_blocks(self, register_addr: int) -> None:
        buf = self._run_buf
        end = (len(buf) // _RUN_BLOCK_BYTES) * _RUN_BLOCK_BYTES
        blocks = [
            bytes(buf[offset : offset + _RUN_BLOCK_BYTES])
            for offset in range(0, end, _RUN_BLOCK_BYTES)
        ]
        del buf[:end]
        if _np is not None:
            missing = list(
                dict.fromkeys(
                    b for b in blocks if (register_addr, b) not in _RUN_CACHE
                )
            )
            if len(missing) >= _NUMPY_MIN_MISSES:
                for block, constant in zip(
                    missing, _run_constants_numpy(register_addr, missing)
                ):
                    _RUN_CACHE[(register_addr, block)] = constant
                    if len(_RUN_CACHE) > _RUN_CACHE_MAX:
                        _RUN_CACHE.popitem(last=False)
        raw = self._crc ^ 0xFFFFFFFF
        for block in blocks:
            raw = self._apply_run_block(raw, register_addr, block)
        self._crc = raw ^ 0xFFFFFFFF

    def _flush_run(self) -> None:
        """Fold any pending run tail (shorter than one block)."""
        if self._run_addr is None:
            return
        addr = self._run_addr
        buf = self._run_buf
        self._run_addr = None
        if buf:
            raw = self._apply_run_block(self._crc ^ 0xFFFFFFFF, addr, bytes(buf))
            buf.clear()
            self._crc = raw ^ 0xFFFFFFFF

    def check(self, expected: int) -> bool:
        """Compare against ``expected`` (a CRC-register write).

        On match the accumulator resets (as in hardware); on mismatch the
        ``error`` flag latches until :meth:`reset`.
        """
        self._flush_run()
        if expected == self._crc:
            self.reset()
            return True
        self.error = True
        return False

    def updated_many(self, pairs: Iterable[Tuple[int, int]]) -> "ConfigCrc":
        for register_addr, word in pairs:
            self.update(register_addr, word)
        return self
