"""SweepSpec / SweepPoint / canonicalisation unit tests."""

import pytest

from repro.exec import SweepPoint, SweepSpec, canonical_json, canonical_params

from .points_for_tests import describe, square


def test_point_roundtrip_resolve_and_call():
    point = SweepPoint.call(square, x=7)
    assert point.fn.endswith(":square")
    assert point.resolve()(**point.kwargs()) == 49


def test_canonical_params_sorted_and_tupled():
    params = canonical_params({"b": [1, 2], "a": {"y": 2.0, "x": 1}})
    assert params == (("a", (("x", 1), ("y", 2.0))), ("b", (1, 2)))


def test_canonical_json_is_deterministic():
    a = canonical_json({"k": [1, (2, 3)], "j": "s"})
    b = canonical_json({"j": "s", "k": (1, [2, 3])})
    assert a == b


def test_non_plain_data_params_rejected():
    with pytest.raises(TypeError):
        SweepPoint.call(square, x=object())


def test_lambda_and_nested_functions_rejected():
    with pytest.raises(TypeError):
        SweepPoint.call(lambda x: x, x=1)

    def nested(x):
        return x

    with pytest.raises(TypeError):
        SweepPoint.call(nested, x=1)


def test_identity_depends_on_fn_and_params():
    a = SweepPoint.call(square, x=1)
    b = SweepPoint.call(square, x=2)
    c = SweepPoint.call(describe, x=1)
    assert a.identity() != b.identity()
    assert a.identity() != c.identity()
    # Labels are presentation only — identity ignores them.
    assert SweepPoint.call(square, label="other", x=1).identity() == a.identity()


def test_spec_map_preserves_order_and_labels():
    spec = SweepSpec.map(
        "demo", square, [{"x": i} for i in range(4)], labels=["a", "b"]
    )
    assert len(spec) == 4
    assert [point.kwargs()["x"] for point in spec] == [0, 1, 2, 3]
    assert [point.label for point in spec] == ["a", "b", "", ""]


def test_malformed_reference_rejected():
    with pytest.raises(ValueError):
        SweepPoint(fn="no-colon").resolve()
    with pytest.raises(ValueError):
        SweepPoint(fn="tests.exec.points_for_tests:not_there").resolve()
