"""Tests for the per-partition data channel and the S2MM engine."""

import pytest

from repro.axi import AxiHpPort, AxiInterconnect, AxiStream, StreamBurst
from repro.core import PdrSystem, RpDataChannel
from repro.dma import S2mmDmaEngine
from repro.dram import DramController, DramDevice
from repro.fabric import Aes128Asp, Crc32Asp, FirFilterAsp
from repro.sim import ClockDomain, Simulator


# --------------------------------------------------------------------- S2MM --
def _s2mm_rig():
    sim = Simulator()
    device = DramDevice()
    interconnect = AxiInterconnect(sim, DramController(sim, device))
    port = AxiHpPort(sim, interconnect)
    clock = ClockDomain(sim, 150.0)
    stream = AxiStream(sim, fifo_words=512)
    engine = S2mmDmaEngine(sim, clock, port, stream)
    return sim, device, stream, engine


def test_s2mm_lands_stream_in_memory():
    sim, device, stream, engine = _s2mm_rig()
    engine.arm(0x8000, 64)

    def producer(sim):
        yield stream.reserve(16)
        stream.push(StreamBurst(words=list(range(16)), last=True))

    sim.process(producer(sim))
    sim.run_until(engine.ioc_irq.wait_assert())
    assert engine.bytes_received == 64
    landed = device.load(0x8000, 64)
    assert landed[:4] == b"\x00\x00\x00\x00"
    assert landed[4:8] == b"\x00\x00\x00\x01"


def test_s2mm_truncates_to_buffer():
    sim, _device, stream, engine = _s2mm_rig()
    engine.arm(0x8000, 8)  # two words of room

    def producer(sim):
        yield stream.reserve(4)
        stream.push(StreamBurst(words=[1, 2, 3, 4], last=True))

    sim.process(producer(sim))
    sim.run_until(engine.ioc_irq.wait_assert())
    assert engine.bytes_received == 8


def test_s2mm_records_metrics_like_mm2s():
    """The write engine carries the same instrument set as the read engine."""
    from repro.obs import MetricsRegistry

    sim = Simulator()
    device = DramDevice()
    interconnect = AxiInterconnect(sim, DramController(sim, device))
    port = AxiHpPort(sim, interconnect)
    clock = ClockDomain(sim, 150.0)
    metrics = MetricsRegistry(now_fn=lambda: sim.now)
    stream = AxiStream(sim, fifo_words=512, metrics=metrics)
    engine = S2mmDmaEngine(sim, clock, port, stream, metrics=metrics)
    engine.arm(0x8000, 64)

    def producer(sim):
        yield stream.reserve(16)
        stream.push(StreamBurst(words=list(range(16)), last=True))

    sim.process(producer(sim))
    sim.run_until(engine.ioc_irq.wait_assert())
    assert metrics.get("dma_s2mm.bursts_issued").value == 1
    assert metrics.get("dma_s2mm.bytes_moved").value == 64
    assert metrics.get("dma_s2mm.cmd_overhead_cycles").value == engine.cmd_overhead_cycles
    assert metrics.get("dma_s2mm.transfers_completed").value == 1
    assert metrics.get("dma_s2mm.transfer_us").count == 1
    assert metrics.get("dma_s2mm.transfer_us").sum > 0
    assert metrics.get("dma_s2mm.achieved_mb_s").count == 1


def test_s2mm_validation():
    sim, _device, _stream, engine = _s2mm_rig()
    with pytest.raises(ValueError):
        engine.arm(0, 2)
    engine.arm(0, 1024)
    with pytest.raises(RuntimeError):
        engine.arm(0, 1024)  # already armed


# ----------------------------------------------------------------- channel --
@pytest.fixture(scope="module")
def system_with_channel():
    system = PdrSystem()
    system.reconfigure("RP1", FirFilterAsp([2, 1]), 200.0)
    hp_port = AxiHpPort(system.sim, system.interconnect, name="hp_rp1")
    rp_clock = ClockDomain(system.sim, 100.0, name="rp1_clk")
    channel = RpDataChannel(
        system.sim,
        hp_port,
        rp_clock,
        system.regions["RP1"],
        metrics=system.metrics,
    )
    return system, channel


def test_channel_roundtrip_through_dram(system_with_channel):
    system, channel = system_with_channel
    process = system.sim.process(
        channel.run_job([1, 0, 0, 0], in_addr=0x1900_0000, out_addr=0x1910_0000)
    )
    output, (data_in_us, compute_us, data_out_us) = system.sim.run_until(process)
    assert output == [2, 1, 0, 0]
    assert data_in_us > 0 and compute_us > 0 and data_out_us > 0
    assert channel.jobs_completed == 1
    # The result really landed in DRAM.
    assert system.dram.load(0x1910_0000, 4) == (2).to_bytes(4, "big")


def test_channel_crc_asp_reduces_output(system_with_channel):
    system, channel = system_with_channel
    system.reconfigure("RP1", Crc32Asp(), 200.0)
    process = system.sim.process(
        channel.run_job(list(range(1024)), 0x1920_0000, 0x1930_0000)
    )
    output, (data_in_us, _c, data_out_us) = system.sim.run_until(process)
    assert len(output) == 1
    # 1024 words in, 1 word out: the in-phase dominates the out-phase.
    assert data_in_us > data_out_us


def test_channel_timing_scales_with_rp_clock(system_with_channel):
    system, channel = system_with_channel
    system.reconfigure("RP1", FirFilterAsp([1]), 200.0)

    def run_once():
        process = system.sim.process(
            channel.run_job(list(range(2048)), 0x1940_0000, 0x1950_0000)
        )
        _out, times = system.sim.run_until(process)
        return sum(times)

    channel.rp_clock.set_frequency(100.0)
    slow = run_once()
    channel.rp_clock.set_frequency(200.0)
    fast = run_once()
    assert fast < slow
    assert slow / fast == pytest.approx(2.0, rel=0.25)


def test_channel_rejects_empty_job(system_with_channel):
    system, channel = system_with_channel
    with pytest.raises(ValueError):
        # Generator: the error surfaces on first resume.
        system.sim.run_until(system.sim.process(channel.run_job([], 0, 0x1000)))


def test_channel_threads_system_registry_to_both_engines(system_with_channel):
    """After a job, the shared registry shows traffic on BOTH directions."""
    system, channel = system_with_channel
    metrics = channel.mm2s.metrics
    assert channel.s2mm.metrics is metrics
    for direction in ("mm2s", "s2mm"):
        prefix = f"{channel.name}.{direction}"
        assert metrics.get(f"{prefix}.bursts_issued").value > 0
        assert metrics.get(f"{prefix}.bytes_moved").value > 0
        assert metrics.get(f"{prefix}.transfer_us").count > 0


def test_hll_outputs_match_direct_asp_execution():
    """Functional invariant: routing a job through the full data channel
    must give byte-identical results to calling the ASP directly."""
    from repro.core import AspRequest, HllFramework

    framework = HllFramework(icap_freq_mhz=200.0)
    asp = Aes128Asp([7, 7, 7, 7])
    words = [0xCAFEBABE, 0x12345678, 0, 0xFFFFFFFF]
    result = framework.run_job(AspRequest(asp=asp, input_words=words))
    assert result.output_words == asp.process(words)
