"""Chaos engineering layer: environmental fault injection + soak SLOs.

``faults`` defines the typed taxonomy and seed-deterministic
:class:`FaultPlan`; ``injector`` delivers a plan against a live
:class:`~repro.core.PdrSystem` through the device models' fault hooks;
``soak`` runs long-horizon campaigns on :class:`~repro.exec.SweepRunner`
and grades availability / recovery-rate / MTTR against SLO floors.
"""

from .faults import ENVIRONMENT_KINDS, FAULT_KINDS, Fault, FaultPlan, build_fault_plan
from .injector import ChaosInjector
from .soak import (
    SoakCase,
    SoakCaseGenerator,
    SoakReport,
    SoakSlos,
    format_report,
    run_soak,
    soak_case,
)

__all__ = [
    "ENVIRONMENT_KINDS",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "ChaosInjector",
    "SoakCase",
    "SoakCaseGenerator",
    "SoakReport",
    "SoakSlos",
    "build_fault_plan",
    "format_report",
    "run_soak",
    "soak_case",
]
