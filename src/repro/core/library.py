"""Bitstream library: named ASP images with prefetch (ZyCAP-style API).

The ZyCAP work the paper builds on ([8]) pairs its ICAP controller with a
software API that manages partial bitstreams by name and keeps them
staged in memory.  This library provides that layer for the reproduction:
register ASPs once, prefetch their images (optionally through the timed
SD-card path, as on a real boot), then load by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bitstream import Bitstream
from ..fabric import Asp

from .pdr_system import PdrSystem
from .results import ReconfigResult

__all__ = ["LibraryEntry", "BitstreamLibrary"]


@dataclass
class LibraryEntry:
    """One registered ASP image."""

    name: str
    region: str
    asp: Asp
    bitstream: Bitstream
    dram_addr: Optional[int] = None   #: set once prefetched

    @property
    def prefetched(self) -> bool:
        return self.dram_addr is not None


class BitstreamLibrary:
    """Named image store bound to one :class:`PdrSystem`."""

    def __init__(self, system: PdrSystem):
        self.system = system
        self._entries: Dict[str, LibraryEntry] = {}
        self.loads = 0

    # -- registration ----------------------------------------------------------
    def register(self, name: str, region: str, asp: Asp) -> LibraryEntry:
        """Build and file the image for ``asp`` targeting ``region``."""
        if not name:
            raise ValueError("image name cannot be empty")
        if name in self._entries:
            raise ValueError(f"image {name!r} already registered")
        bitstream = self.system.make_bitstream(region, asp, description=name)
        entry = LibraryEntry(name=name, region=region, asp=asp, bitstream=bitstream)
        self._entries[name] = entry
        return entry

    def names(self) -> List[str]:
        return sorted(self._entries)

    def entry(self, name: str) -> LibraryEntry:
        if name not in self._entries:
            raise KeyError(f"no image {name!r}; have {self.names()}")
        return self._entries[name]

    # -- staging ------------------------------------------------------------------
    def prefetch(self, name: str) -> int:
        """Stage an image into DRAM (bench provisioning, untimed)."""
        entry = self.entry(name)
        if entry.dram_addr is None:
            entry.dram_addr = self.system.stage_bitstream(entry.bitstream)
        return entry.dram_addr

    def prefetch_all(self) -> None:
        for name in self.names():
            self.prefetch(name)

    def store_on_sd(self, name: str) -> str:
        """Write the image to the SD card (for timed boot flows)."""
        entry = self.entry(name)
        filename = f"{name}.bin"
        self.system.sdcard.store_file(filename, entry.bitstream.to_bytes())
        return filename

    # -- loading ---------------------------------------------------------------
    def load(self, name: str, freq_mhz: float) -> ReconfigResult:
        """Reconfigure the image's region with it at ``freq_mhz``."""
        entry = self.entry(name)
        self.prefetch(name)
        self.loads += 1
        return self.system.reconfigure(
            entry.region, entry.asp, freq_mhz, bitstream=entry.bitstream
        )
