"""Round-robin arbitration fairness tests."""

import pytest

from repro.axi import AxiHpPort, AxiInterconnect
from repro.dram import DramController, DramDevice
from repro.sim import Simulator


def _rig():
    sim = Simulator()
    device = DramDevice()
    interconnect = AxiInterconnect(sim, DramController(sim, device))
    return sim, interconnect


def test_round_robin_alternates_between_masters():
    sim, interconnect = _rig()
    service_order = []

    def flood(sim, master, count):
        for i in range(count):
            yield interconnect.read(0x1000 * i, 256, master=master)
            service_order.append(master)

    sim.process(flood(sim, "a", 6))
    sim.process(flood(sim, "b", 6))
    sim.run()
    # After warm-up, service strictly alternates: never two in a row from
    # the same master while both have work queued.
    middle = service_order[1:-1]
    runs = max(
        len(list(1 for _ in group))
        for group in _group_runs(middle)
    )
    assert runs <= 2
    assert interconnect.per_master_transactions == {"a": 6, "b": 6}


def _group_runs(sequence):
    current = []
    for item in sequence:
        if current and current[-1] != item:
            yield current
            current = []
        current.append(item)
    if current:
        yield current


def test_fair_bandwidth_split_under_contention():
    """Two saturating masters each get ~half the memory bandwidth."""
    sim, interconnect = _rig()
    finish = {}

    def flood(sim, master):
        for i in range(32):
            yield interconnect.read(i * 1024, 1024, master=master)
        finish[master] = sim.now

    sim.process(flood(sim, "hp0"))
    sim.process(flood(sim, "hp1"))
    sim.run()
    assert finish["hp0"] == pytest.approx(finish["hp1"], rel=0.05)


def test_single_master_unaffected_by_rr_machinery():
    """Solo traffic must still hit the calibrated ~816 MB/s rate."""
    sim, interconnect = _rig()
    port = AxiHpPort(sim, interconnect, name="hp0")
    state = {}

    def reader(sim):
        start = sim.now
        for i in range(64):
            yield port.read(i * 1024, 1024)
        state["rate"] = 64 * 1024 / (sim.now - start) * 1e3

    sim.process(reader(sim))
    sim.run()
    assert state["rate"] == pytest.approx(816.0, rel=0.03)


def test_late_joining_master_gets_service_promptly():
    sim, interconnect = _rig()
    times = {}

    def hog(sim):
        for i in range(64):
            yield interconnect.read(i * 1024, 1024, master="hog")

    def latecomer(sim):
        yield sim.timeout(20_000.0)
        start = sim.now
        yield interconnect.read(0, 256, master="late")
        times["wait"] = sim.now - start

    sim.process(hog(sim))
    sim.process(latecomer(sim))
    sim.run()
    # Bounded wait: at most ~two in-flight hog bursts, not the whole queue.
    assert times["wait"] < 5_000.0
