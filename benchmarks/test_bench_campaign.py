"""Benchmark: application-level ASP-swapping campaign (paper motivation).

Not a paper table, but the quantified version of the paper's intro
story: over-clocked PDR makes on-demand ASP swapping cheap.  The
assertions restate Table II's conclusion at application level.
"""

import pytest

from repro.experiments.workloads import WorkloadSpec, compare_icap_frequencies

from conftest import run_once


def test_bench_campaign(benchmark):
    spec = WorkloadSpec(n_jobs=24, pool_size=7, seed=2017)
    results = run_once(
        benchmark, compare_icap_frequencies, (100.0, 200.0, 280.0), spec
    )

    # Identical workload -> identical miss counts everywhere.
    assert len({r.misses for r in results.values()}) == 1
    # Makespan strictly improves with the ICAP clock...
    assert (
        results[280.0].makespan_ms
        < results[200.0].makespan_ms
        < results[100.0].makespan_ms
    )
    # ...over-clocking to the knee roughly halves it...
    assert results[100.0].makespan_ms / results[200.0].makespan_ms > 1.7
    # ...and 200 MHz minimises the energy per swap (Table II, restated).
    per_swap = {f: r.energy_per_swap_mj for f, r in results.items()}
    assert min(per_swap, key=per_swap.get) == 200.0
    assert per_swap[200.0] == pytest.approx(0.887, rel=0.05)
