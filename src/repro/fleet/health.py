"""Fleet health: failure detection, circuit breaking, request failover.

The fleet layer (PR 8) executed every board through bare batch loads —
one sick board silently poisoned request SLOs.  This module is the
fleet-level control plane a serving stack wraps around the per-board
resilience machinery:

* **Chaos under every board** — each board of a ``--chaos`` campaign
  arms its own seed-deterministic
  :class:`~repro.chaos.faults.FaultPlan` (salted by board index via
  :func:`~repro.chaos.faults.build_board_fault_plan`) and executes its
  dispatch schedule through
  :class:`~repro.resilience.ResilientReconfigurator`, so the per-board
  retry/backoff/governor loop is *inside* the measured service times.
* **Detection** — a deterministic failure detector drives a per-board
  state machine ``healthy → degraded → quarantined → dead`` from the
  *measured* group outcomes only: a failed group or a group whose
  service ran past :data:`DEADLINE_FACTOR` × its planner estimate is a
  bad signal; :attr:`RecoveryPolicy.quarantine_after` consecutive bad
  groups quarantine the board (the fleet mirror of the frequency
  governor's operating-point quarantine); the
  :data:`~repro.chaos.faults.BOARD_KILL_KIND` fault downs a board
  permanently mid-run.
* **Failover** — requests stranded on a dead board or left unserved
  after a board's local retries fail over: re-admitted with capped
  attempts (the shared ``RecoveryPolicy.max_attempts`` budget) and
  exponential backoff (``RecoveryPolicy.failover_delay_us``) to the
  least-loaded healthy board.  A per-board circuit breaker
  (closed/open/half-open) gates re-admission: quarantine opens the
  breaker, a deterministic cooldown (:data:`PROBE_COOLDOWN_US`,
  doubling per consecutive open) promotes it to half-open, one probe
  request per round tests the board, and a clean probe closes the
  breaker — the board rejoins.

Everything stays wall-clock-free and plain-data: fault plans, kill
schedules and backoff delays are pure functions of the campaign seed,
board execution fans out over :class:`~repro.exec.SweepRunner` (whose
merge-in-spec-order contract keeps ``--jobs N`` byte-identical to
serial), and the failover loop replays *measured* service times against
deterministic retry arrival times.

Round structure: round 0 executes the planner's schedule with the storm
armed; later rounds re-admit failed work onto fresh forked boards with
no chaos (post-storm — the paper's robustness story is that the
platform recovers once the environmental excursion passes).  Failover
re-admissions bypass the admission queue-depth check: the circuit
breaker is the gate for retry traffic, and re-rejecting an already
admitted request would break the terminal-outcome conservation law
(served + rejected + exhausted == offered) the tests enforce.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..chaos.faults import BOARD_KILL_KIND, FaultPlan, build_board_fault_plan
from ..chaos.injector import ChaosInjector
from ..exec.runner import SweepRunner, note_events
from ..resilience import RecoveryPolicy, ResilientReconfigurator
from ..snapshot.templates import fork_system
from ..verify.fuzz import _make_asp
from ..verify.invariants import InvariantMonitor
from .report import (
    BoardUsage,
    FleetReport,
    RequestOutcome,
    TERMINAL_EXHAUSTED,
    TERMINAL_SERVED,
)
from .scheduler import (
    PlannedJob,
    estimate_service_us,
    least_loaded_board,
    plan_fleet,
)
from .workload import build_workload

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BoardHealth",
    "DEAD",
    "DEADLINE_FACTOR",
    "DEGRADED",
    "FleetHealthTracker",
    "HEALTHY",
    "HealthEvent",
    "PROBE_COOLDOWN_US",
    "QUARANTINED",
    "chaos_board_point",
    "run_chaos_fleet",
]

# -- board health states ------------------------------------------------------
HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"
DEAD = "dead"

# -- circuit-breaker states ---------------------------------------------------
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: A group whose measured service exceeds this multiple of its summed
#: planner estimate counts as a latency-deadline breach.  1.4 sits above
#: the worst single recoverable excursion a healthy board absorbs
#: (a dram_latency window stretches one load ~1.5× but a *group* sums
#: several loads) while a brownout — which clamps the clock for 1–5 ms,
#: spanning consecutive groups — lands above it repeatedly, which is
#: exactly the sustained-sickness signal quarantine exists for.
DEADLINE_FACTOR = 1.4

#: Base circuit-breaker cooldown: how long (µs, fleet time) after the
#: breaker opens before a half-open probe may be attempted.  Doubles on
#: every consecutive open (probe failure or re-quarantine), the breaker
#: analogue of the request backoff ladder.
PROBE_COOLDOWN_US = 3000.0

#: The failover loop's kill schedule draws each victim's death point
#: uniformly from this fraction window of the campaign duration
#: (board-local busy time, µs) — mid-run by construction.
_KILL_WINDOW = (0.25, 0.60)
#: Salt for the kill-schedule RNG (distinct from workload/fault salts).
_KILL_SALT = 71


@dataclass(frozen=True)
class HealthEvent:
    """One state-machine transition of one board (plain data)."""

    t_us: float
    state: str
    reason: str

    def to_mapping(self) -> Dict[str, Any]:
        return {"t_us": self.t_us, "state": self.state, "reason": self.reason}


@dataclass
class BoardHealth:
    """Mutable health record of one board."""

    board: int
    state: str = HEALTHY
    breaker: str = BREAKER_CLOSED
    consecutive_bad: int = 0
    #: Times the breaker opened (drives the cooldown doubling).
    opens: int = 0
    cooldown_us: float = PROBE_COOLDOWN_US
    opened_at_us: Optional[float] = None
    timeline: List[HealthEvent] = field(default_factory=list)

    def to_mapping(self) -> Dict[str, Any]:
        return {
            "board": self.board,
            "state": self.state,
            "breaker": self.breaker,
            "opens": self.opens,
            "consecutive_bad": self.consecutive_bad,
            "events": [event.to_mapping() for event in self.timeline],
        }


class FleetHealthTracker:
    """The deterministic failure detector + circuit breaker, fleet-wide.

    Fed exclusively with *measured* group outcomes (in replay order, so
    the whole trajectory is a pure function of the campaign seed); never
    consults the timing model's oracle or the wall clock.
    """

    def __init__(self, policy: RecoveryPolicy, boards: int):
        self.policy = policy
        self.boards: Dict[int, BoardHealth] = {
            board: BoardHealth(board=board) for board in range(boards)
        }
        #: Boards already given their one half-open probe this round.
        self._probed: Set[int] = set()

    # -- transitions ---------------------------------------------------------
    def _transition(
        self, health: BoardHealth, t_us: float, state: str, reason: str
    ) -> None:
        health.state = state
        health.timeline.append(
            HealthEvent(t_us=round(t_us, 3), state=state, reason=reason)
        )

    def _open_breaker(self, health: BoardHealth, t_us: float) -> None:
        health.breaker = BREAKER_OPEN
        health.opened_at_us = t_us
        health.cooldown_us = PROBE_COOLDOWN_US * (2.0 ** health.opens)
        health.opens += 1

    def observe_group(
        self, board: int, t_us: float, ok: bool, deadline_breached: bool
    ) -> None:
        """Feed one measured dispatch-group outcome into the detector."""
        health = self.boards[board]
        if health.state == DEAD:
            return
        if not ok or deadline_breached:
            health.consecutive_bad += 1
            reason = "group_failed" if not ok else "deadline_breached"
            if health.state == HEALTHY:
                self._transition(health, t_us, DEGRADED, reason)
            if (
                health.consecutive_bad >= self.policy.quarantine_after
                and health.state != QUARANTINED
            ):
                self._transition(
                    health,
                    t_us,
                    QUARANTINED,
                    f"{health.consecutive_bad} consecutive bad groups",
                )
                self._open_breaker(health, t_us)
        else:
            health.consecutive_bad = 0
            if health.state == DEGRADED:
                self._transition(health, t_us, HEALTHY, "group_ok")
            # A quarantined board draining its queue does not rejoin on
            # good groups — only a half-open probe closes the breaker.

    def observe_kill(
        self, board: int, t_us: float, reason: str = BOARD_KILL_KIND
    ) -> None:
        """The board is permanently down (kill fault or wedged sim)."""
        health = self.boards[board]
        if health.state == DEAD:
            return
        self._transition(health, t_us, DEAD, reason)
        health.breaker = BREAKER_OPEN
        health.opened_at_us = t_us

    # -- failover-side queries ------------------------------------------------
    def start_round(self) -> None:
        """A new failover round begins: probe allowances reset."""
        self._probed.clear()

    def candidates(self, arrival_us: float) -> Tuple[List[int], List[int]]:
        """Boards usable for a retry arriving at ``arrival_us``.

        Returns ``(closed, half_open)``: boards whose breaker is closed
        (normal placement targets) and boards promoted to half-open
        (their cooldown elapsed and they have not been probed this
        round — each may take exactly one probe request).
        """
        closed: List[int] = []
        half_open: List[int] = []
        for board in sorted(self.boards):
            health = self.boards[board]
            if health.state == DEAD:
                continue
            if (
                health.breaker == BREAKER_OPEN
                and health.opened_at_us is not None
                and arrival_us >= health.opened_at_us + health.cooldown_us
            ):
                health.breaker = BREAKER_HALF_OPEN
                health.timeline.append(
                    HealthEvent(
                        t_us=round(arrival_us, 3),
                        state=health.state,
                        reason="breaker_half_open",
                    )
                )
            if health.breaker == BREAKER_CLOSED:
                closed.append(board)
            elif (
                health.breaker == BREAKER_HALF_OPEN
                and board not in self._probed
            ):
                half_open.append(board)
        return closed, half_open

    def mark_probe(self, board: int) -> None:
        self._probed.add(board)

    def probe_result(self, board: int, t_us: float, ok: bool) -> None:
        """Grade the half-open probe: close the breaker or re-open it."""
        health = self.boards[board]
        if health.state == DEAD:
            return
        if ok:
            health.breaker = BREAKER_CLOSED
            health.consecutive_bad = 0
            health.cooldown_us = PROBE_COOLDOWN_US
            health.opened_at_us = None
            self._transition(health, t_us, HEALTHY, "probe_ok_rejoined")
        else:
            self._transition(health, t_us, QUARANTINED, "probe_failed")
            self._open_breaker(health, t_us)

    def timelines(self) -> List[Dict[str, Any]]:
        return [
            self.boards[board].to_mapping() for board in sorted(self.boards)
        ]


# ---------------------------------------------------------------------------
# Board execution under chaos (runs in SweepRunner workers)
# ---------------------------------------------------------------------------

def chaos_board_point(
    board: int,
    groups: Sequence,
    freq_mhz: float,
    fault_seed: int,
    intensity: int,
    seu_per_ms: float,
    kill_at_us: Optional[float],
    verify: bool,
    policy: Dict[str, Any],
    round_index: int,
    arm_chaos: bool,
) -> Dict[str, Any]:
    """Execute one board's dispatch schedule under its own fault storm.

    Like :func:`repro.fleet.service.board_point` but every group runs
    through :class:`~repro.resilience.ResilientReconfigurator` (so
    retries, backoff and governor clamping are inside the measured
    service times), with this board's salted
    :class:`~repro.chaos.faults.FaultPlan` armed when ``arm_chaos`` is
    set (round 0 — the storm; failover rounds run post-storm).

    ``kill_at_us`` is in *board-local busy time*: once the board's own
    simulation clock reaches it, the board goes dark before its next
    group — executed groups stop, the payload flags ``killed`` and the
    fleet loop fails the stranded members over.  The injector never
    sees the kill (it would refuse the unknown kind by design); the
    fleet layer owns that fault end to end.
    """
    system = fork_system()
    monitor = None
    if verify:
        monitor = InvariantMonitor(raise_on_violation=False).attach(system)
    recoverer = ResilientReconfigurator(
        system, policy=RecoveryPolicy.from_mapping(policy)
    )
    if monitor is not None:
        monitor.attach_governor(recoverer.governor)
    recoverer.attach_scrubber()
    injector = None
    scrubbing = False
    if arm_chaos:
        horizon_us = sum(
            estimate_service_us(int(job[3]))
            for group in groups
            for job in group
        ) or 1.0
        plan = build_board_fault_plan(
            fault_seed, board, horizon_us, intensity, seu_per_ms
        )
        environmental = tuple(
            fault for fault in plan.faults if fault.kind != BOARD_KILL_KIND
        )
        injector = ChaosInjector(
            system,
            FaultPlan(
                fault_seed=plan.fault_seed,
                horizon_us=plan.horizon_us,
                faults=environmental,
            ),
        )
        injector.arm()
        scrubbing = seu_per_ms > 0
        if scrubbing:
            system.scrubber.start()

    metrics = system.metrics
    m_groups_ok = metrics.counter("fleet.health.groups_ok")
    m_groups_bad = metrics.counter("fleet.health.groups_failed")
    m_kills = metrics.counter("fleet.health.board_kills")
    m_crashes = metrics.counter("fleet.health.board_crashes")

    executed: List[Dict[str, Any]] = []
    killed = False
    crash = None
    try:
        for group in groups:
            if kill_at_us is not None and system.sim.now / 1e3 >= kill_at_us:
                killed = True
                m_kills.inc()
                break
            start_ns = system.sim.now
            try:
                if len(group) == 1:
                    region, kind, param, pad = group[0]
                    outcome = recoverer.reconfigure(
                        region,
                        _make_asp(kind, int(param)),
                        freq_mhz,
                        pad_to=int(pad) or None,
                    )
                    job_ok = [bool(outcome.recovered)]
                    attempts = outcome.attempts_used
                else:
                    jobs = [
                        (region, _make_asp(kind, int(param)), int(pad) or None)
                        for region, kind, param, pad in group
                    ]
                    batch = recoverer.reconfigure_batch(jobs, freq_mhz)
                    job_ok = [bool(batch.region_ok[job[0]]) for job in jobs]
                    attempts = batch.attempts_used
            except Exception as exc:
                # A fault that wedges or crashes the board simulation
                # (deadlocked transfer, unhandled bus error) is a *board
                # death*, not a campaign abort: record the group as
                # failed, stop this board, and let the fleet loop fail
                # its work over.  Deterministic for a given seed, so the
                # byte-identity contract is untouched.
                crash = f"{type(exc).__name__}: {exc}"
                m_crashes.inc()
                killed = True
                executed.append(
                    {
                        "jobs": len(group),
                        "service_us": round(
                            (system.sim.now - start_ns) / 1e3, 3
                        ),
                        "ok": False,
                        "job_ok": [False] * len(group),
                        "attempts": 1,
                    }
                )
                break
            ok = all(job_ok)
            (m_groups_ok if ok else m_groups_bad).inc()
            executed.append(
                {
                    "jobs": len(group),
                    "service_us": round((system.sim.now - start_ns) / 1e3, 3),
                    "ok": ok,
                    "job_ok": job_ok,
                    "attempts": attempts,
                }
            )
            if scrubbing:
                recoverer.repair_pending()
    finally:
        if scrubbing:
            system.scrubber.stop()
        if injector is not None:
            injector.disarm()
        if monitor is not None:
            monitor.detach()

    note_events(system.sim.events_processed)
    return {
        "board": int(board),
        "round": int(round_index),
        "groups": executed,
        "killed": killed,
        "crash": crash,
        "faults_planned": len(injector.plan.faults) if injector else 0,
        "faults_injected": injector.injected_count if injector else 0,
        "unhandled_failures": [
            process.name for process in system.sim.unhandled_failures
        ],
        "checks": monitor.checks if monitor else 0,
        "violations": list(monitor.violations) if monitor else [],
    }


# ---------------------------------------------------------------------------
# The chaos campaign driver (plan → storm round → failover rounds → report)
# ---------------------------------------------------------------------------

def _kill_schedule(
    seed: int, boards: int, kill_boards: int, duration_us: float
) -> Dict[int, float]:
    """Deterministic victim set + death points (board busy time, µs)."""
    if kill_boards <= 0:
        return {}
    rng = random.Random(int(seed) * 1_000_003 + _KILL_SALT)
    victims = sorted(rng.sample(range(boards), min(kill_boards, boards)))
    return {
        board: round(
            rng.uniform(*_KILL_WINDOW) * duration_us, 1
        )
        for board in victims
    }


def run_chaos_fleet(spec, jobs: int = 1, runner=None) -> FleetReport:
    """Run one chaos fleet campaign end to end (pure function of spec).

    ``spec`` is a :class:`~repro.fleet.service.FleetSpec` with the chaos
    knobs set.  Round 0 executes the planner's schedule with every
    board's storm armed; the replay then classifies each request's fate,
    and failed or stranded requests go through up to
    ``RecoveryPolicy.max_attempts - 1`` failover rounds (backoff,
    breaker-gated placement, half-open probes) on fresh post-storm
    boards.  Every admitted request ends in exactly one terminal state;
    the function enforces that conservation law and raises if it ever
    breaks (losing a request silently is the one unforgivable bug in a
    failover path).
    """
    policy = RecoveryPolicy()
    requests = build_workload(
        spec.seed, spec.duration_ms, spec.arrival, spec.rate_per_ms
    )
    by_index = {request.index: request for request in requests}
    plan = plan_fleet(
        requests,
        boards=spec.boards,
        queue_depth=spec.queue_depth,
        batching=spec.batching,
        batch_limit=spec.batch_limit,
    )
    duration_us = float(spec.duration_ms) * 1e3
    kill_at = _kill_schedule(
        spec.seed, spec.boards, spec.kill_boards, duration_us
    )
    tracker = FleetHealthTracker(policy, spec.boards)
    runner = runner or SweepRunner(jobs=jobs)

    arrivals_us = {request.index: request.arrival_us for request in requests}
    #: request index -> service attempts consumed so far.
    attempts: Dict[int, int] = {}
    for board_plan in plan.boards:
        for group in board_plan.groups:
            for job in group:
                for member in job.members:
                    attempts[member] = 1
    outcomes: Dict[int, RequestOutcome] = {}
    boards_range = range(spec.boards)
    free_us = {board: 0.0 for board in boards_range}
    busy_us = {board: 0.0 for board in boards_range}
    span_us = {board: 0.0 for board in boards_range}
    loads = {board: 0 for board in boards_range}
    group_count = {board: 0 for board in boards_range}
    served_count = {board: 0 for board in boards_range}
    unhandled: List[Dict[str, Any]] = []
    checks = 0
    violations: List[str] = []
    failovers = 0
    faults_planned = 0
    faults_injected = 0

    def execute_round(round_index, board_groups, arm_chaos, probes):
        """Fan one round's per-board schedules out over the runner."""
        nonlocal checks, faults_planned, faults_injected
        order = sorted(board for board in board_groups if board_groups[board])
        param_sets = []
        for board in order:
            kill = None
            if board in kill_at and tracker.boards[board].state != DEAD:
                # Carryover: the death point is cumulative busy time, so
                # a board that survived earlier rounds dies this far in.
                kill = max(0.0, kill_at[board] - busy_us[board])
            param_sets.append(
                {
                    "board": board,
                    "groups": [
                        [job.as_executable() for job in group]
                        for group in board_groups[board]
                    ],
                    "freq_mhz": spec.freq_mhz,
                    "fault_seed": spec.seed,
                    "intensity": spec.chaos_intensity,
                    "seu_per_ms": spec.seu_per_ms,
                    "kill_at_us": kill,
                    "verify": spec.verify,
                    "policy": policy.to_mapping(),
                    "round_index": round_index,
                    "arm_chaos": arm_chaos,
                }
            )
        labels = [f"board{board}r{round_index}" for board in order]
        payloads = runner.map(
            f"fleet-chaos-{spec.arrival}-s{spec.seed}-r{round_index}",
            chaos_board_point,
            param_sets,
            labels,
        )
        pending: List[Tuple[int, float, int]] = []
        for board, payload in zip(order, payloads):
            groups = board_groups[board]
            executed = payload["groups"]
            checks += int(payload["checks"])
            violations.extend(
                f"board{board}: {violation}"
                for violation in payload["violations"]
            )
            if payload["unhandled_failures"]:
                unhandled.append(
                    {
                        "board": board,
                        "processes": list(payload["unhandled_failures"]),
                    }
                )
            faults_planned += int(payload["faults_planned"])
            faults_injected += int(payload["faults_injected"])
            for index, group in enumerate(groups):
                if index >= len(executed):
                    # Stranded by the kill: the members fail over from
                    # the moment the board went dark.
                    for job in group:
                        for member in job.members:
                            pending.append((member, free_us[board], board))
                    continue
                record = executed[index]
                ready_us = max(job.arrival_us for job in group)
                start_us = max(free_us[board], ready_us)
                service_us = float(record["service_us"])
                end_us = start_us + service_us
                estimate = sum(
                    estimate_service_us(job.key[3]) for job in group
                )
                breached = service_us > DEADLINE_FACTOR * estimate
                if board in probes:
                    tracker.probe_result(
                        board, end_us, bool(record["ok"]) and not breached
                    )
                else:
                    tracker.observe_group(
                        board, end_us, bool(record["ok"]), breached
                    )
                for job, job_ok in zip(group, record["job_ok"]):
                    loads[board] += 1
                    for member in job.members:
                        if job_ok:
                            outcomes[member] = RequestOutcome(
                                index=member,
                                board=board,
                                wait_us=round(
                                    start_us - arrivals_us[member], 3
                                ),
                                latency_us=round(
                                    end_us - arrivals_us[member], 3
                                ),
                                batched=len(group) > 1
                                or len(job.members) > 1,
                                ok=True,
                                attempts=attempts[member],
                                terminal=TERMINAL_SERVED,
                            )
                            served_count[board] += 1
                        else:
                            pending.append((member, end_us, board))
                free_us[board] = end_us
                busy_us[board] += service_us
                span_us[board] = end_us
                group_count[board] += 1
            if payload["killed"]:
                reason = BOARD_KILL_KIND
                if payload["crash"]:
                    reason = f"crash: {payload['crash']}"
                tracker.observe_kill(board, free_us[board], reason)
        return pending

    def exhaust(member: int, board: int) -> None:
        outcomes[member] = RequestOutcome(
            index=member,
            board=board,
            wait_us=None,
            latency_us=None,
            batched=False,
            ok=False,
            attempts=attempts[member],
            terminal=TERMINAL_EXHAUSTED,
        )

    # -- round 0: the storm ---------------------------------------------------
    round_groups = {
        board_plan.board: board_plan.groups for board_plan in plan.boards
    }
    pending = execute_round(0, round_groups, arm_chaos=True, probes=set())
    rounds = 1

    # -- failover rounds (post-storm) -----------------------------------------
    # Each iteration consumes one attempt from every pending request
    # (executed or burned), so the loop terminates within the shared
    # max_attempts budget; the extra slack is a pure safety bound.
    while pending and rounds <= policy.max_attempts + 1:
        tracker.start_round()
        entries = sorted(
            (
                round(
                    fail_us + policy.failover_delay_us(attempts[member] - 1),
                    3,
                ),
                member,
                last_board,
            )
            for member, fail_us, last_board in pending
        )
        assignments: Dict[int, List[List[PlannedJob]]] = {
            board: [] for board in boards_range
        }
        probes: Set[int] = set()
        carried: List[Tuple[int, float, int]] = []
        plan_free = dict(free_us)
        for arrival_us, member, last_board in entries:
            if attempts[member] >= policy.max_attempts:
                exhaust(member, last_board)
                continue
            closed, half_open = tracker.candidates(arrival_us)
            choice = least_loaded_board(
                plan_free, arrival_us, closed + half_open
            )
            if choice is None:
                # Nowhere to go: the attempt burns against the budget —
                # unbounded re-queueing would just hide a dead fleet.
                attempts[member] += 1
                if attempts[member] >= policy.max_attempts:
                    exhaust(member, last_board)
                else:
                    carried.append((member, arrival_us, last_board))
                continue
            if choice in half_open:
                tracker.mark_probe(choice)
                probes.add(choice)
            attempts[member] += 1
            failovers += 1
            request = by_index[member]
            job = PlannedJob(
                key=request.bitstream_key,
                members=[member],
                arrival_us=arrival_us,
            )
            assignments[choice].append([job])
            plan_free[choice] = max(
                plan_free[choice], arrival_us
            ) + estimate_service_us(request.pad_to)
        if not any(assignments.values()):
            pending = carried
            continue
        pending = execute_round(
            rounds, assignments, arm_chaos=False, probes=probes
        )
        pending.extend(carried)
        rounds += 1

    for member, _fail_us, last_board in pending:
        exhaust(member, last_board)

    # -- conservation: every admitted request has exactly one terminal fate --
    if sorted(outcomes) != sorted(attempts):
        missing = sorted(set(attempts) - set(outcomes))
        raise RuntimeError(
            f"failover lost requests {missing[:10]} "
            f"({len(outcomes)} outcomes for {len(attempts)} admitted)"
        )

    usages = [
        BoardUsage(
            board=board,
            loads=loads[board],
            groups=group_count[board],
            requests=served_count[board],
            busy_us=round(busy_us[board], 3),
            span_us=round(span_us[board], 3),
        )
        for board in boards_range
    ]
    spec_mapping = spec.to_mapping()
    spec_mapping["faults_planned"] = faults_planned
    spec_mapping["faults_injected"] = faults_injected
    spec_mapping["kill_at_us"] = {
        str(board): kill_at[board] for board in sorted(kill_at)
    }
    return FleetReport.build(
        spec=spec_mapping,
        offered=len(requests),
        plan=plan,
        outcomes=[outcomes[index] for index in sorted(outcomes)],
        boards=usages,
        rounds=rounds,
        failovers=failovers,
        health=tracker.timelines(),
        unhandled=unhandled,
        verify=(
            {"checks": checks, "violations": violations}
            if spec.verify
            else None
        ),
    )
