"""CRC Bitstream Read-Back block (paper Fig. 2).

"The CRC Bitstream Read-Back block reads back continuously in the
background the whole bitstream to check the CRC of the configuration
memory content.  If a CRC error is detected an interrupt is asserted."

The scrubber owns a read-back port into the configuration memory and a
table of expected CRCs per region (loaded by the firmware after each
successful reconfiguration).  Each scrub pass reads a region frame by
frame at one word per clock cycle — the same over-clocked domain as the
ICAP — folds a CRC-32C and compares.  Mismatch asserts the error
interrupt that the paper wires to the PS.

Scrubbing pauses automatically while the ICAP is writing (the
configuration logic cannot read and write simultaneously).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..bitstream.crc import crc32c_packed
from ..bitstream.device import FRAME_BYTES, FRAME_WORDS
from ..fabric.config_memory import ConfigMemory
from ..icap.primitive import ConfigPort
from ..obs import MetricsRegistry
from ..sim import ClockDomain, InterruptLine, Signal, Simulator

__all__ = ["CrcScrubber", "ScrubResult"]


class ScrubResult:
    """Outcome of one full pass over one region."""

    def __init__(self, region: str, computed: int, expected: int, at_ns: float):
        self.region = region
        self.computed = computed
        self.expected = expected
        self.at_ns = at_ns

    @property
    def ok(self) -> bool:
        return self.computed == self.expected

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "ok" if self.ok else "MISMATCH"
        return f"<ScrubResult {self.region} {status} @{self.at_ns / 1e3:.1f}us>"


class CrcScrubber:
    """Continuous background read-back CRC checker."""

    #: Extra cycles per frame: FAR setup + FDRO pipeline flush.
    FRAME_OVERHEAD_CYCLES = 12

    def __init__(
        self,
        sim: Simulator,
        clock: ClockDomain,
        memory: ConfigMemory,
        busy_gate: Optional[Signal] = None,
        name: str = "crc_scrub",
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.clock = clock
        self.memory = memory
        self.name = name
        self.metrics = metrics if metrics is not None else MetricsRegistry(now_fn=lambda: sim.now)
        self._m_passes = self.metrics.counter(f"{name}.scrubs_run")
        self._m_mismatches = self.metrics.counter(f"{name}.mismatches")
        self._m_words = self.metrics.counter(f"{name}.words_read")
        self._m_pass_us = self.metrics.histogram(f"{name}.pass_us")
        #: The block's own read-back port into the configuration logic
        #: (Fig. 2: the CRC block reads the bitstream back itself).
        self.readback = ConfigPort(memory)
        #: When this external signal is True (ICAP busy), scrubbing waits.
        self.busy_gate = busy_gate
        self.error_irq = InterruptLine(sim, name=f"{name}.err")
        #: Pulses True at the end of every pass (pass result as last_result).
        self.pass_done = Signal(sim, initial=False, name=f"{name}.pass")
        #: Optional repair hook: called with the failing
        #: :class:`ScrubResult` whenever a pass detects a mismatch — the
        #: resilience layer registers here to queue a golden-bitstream
        #: re-write of the corrupted region.
        self.on_mismatch: Optional[Callable[["ScrubResult"], None]] = None
        self._expected: Dict[str, int] = {}
        self.enabled = False
        self.passes_completed = 0
        self.errors_detected = 0
        self.last_result: Optional[ScrubResult] = None
        self._process = None

    # -- firmware-facing API -----------------------------------------------
    def set_expected_crc(self, region: str, crc: int) -> None:
        """Load the golden CRC for a region (after a successful load)."""
        self.memory.layout.region(region)  # validate
        self._expected[region] = crc & 0xFFFFFFFF

    def expected_regions(self):
        return sorted(self._expected)

    def start(self) -> None:
        if self.enabled:
            return
        self.enabled = True
        self._process = self.sim.process(
            self._scrub_loop(), name=f"{self.name}.loop", daemon=True
        )

    def stop(self) -> None:
        self.enabled = False

    def scrub_region_once(self, region: str):
        """One synchronous pass over a region (process generator).

        Yields simulation time for the read-back and returns the
        :class:`ScrubResult`.  Used by the firmware for the post-transfer
        validity check of Table I.
        """
        if region not in self._expected:
            raise KeyError(f"no expected CRC loaded for region {region!r}")
        return self._scrub_one(region)

    def pass_time_ns(self, region: str) -> float:
        """Predicted duration of one pass at the current clock."""
        frames = self.memory.layout.region_frame_count(region)
        cycles = frames * (FRAME_WORDS + self.FRAME_OVERHEAD_CYCLES)
        return self.clock.cycles_to_ns(cycles)

    # -- internals ----------------------------------------------------------
    def _scrub_one(self, region: str):
        # The read-back goes through the configuration logic's FDRO path
        # (one pad frame per read command, then real frames), gated on the
        # ICAP being idle.  Frames are read in batches to bound the DES
        # event count; each batch costs read-back cycles at this clock.
        layout = self.memory.layout
        first_index, frame_count = layout.region_span(region)
        pass_started_ns = self.sim.now
        batch = 32
        read = 0
        words_read = 0
        chunks = []
        while read < frame_count:
            if self.busy_gate is not None and self.busy_gate.value:
                yield self.busy_gate.wait_for(False)
            chunk = min(batch, frame_count - read)
            yield self.clock.wait_cycles(
                chunk * (FRAME_WORDS + self.FRAME_OVERHEAD_CYCLES)
            )
            raw = self.readback.read_frames_packed(first_index + read, chunk)
            chunks.append(raw[FRAME_BYTES:])  # strip the FDRO pad frame
            words_read += chunk * FRAME_WORDS
            read += chunk
        computed = crc32c_packed(chunks)
        result = ScrubResult(
            region=region,
            computed=computed,
            expected=self._expected[region],
            at_ns=self.sim.now,
        )
        self.last_result = result
        self.passes_completed += 1
        self._m_passes.inc()
        self._m_words.inc(words_read)
        self._m_pass_us.observe((self.sim.now - pass_started_ns) / 1e3)
        if not result.ok:
            self.errors_detected += 1
            self._m_mismatches.inc()
            self.error_irq.assert_()
            if self.on_mismatch is not None:
                self.on_mismatch(result)
        self.pass_done.set(True)
        self.pass_done.set(False)
        return result

    def _scrub_loop(self):
        while self.enabled:
            regions = self.expected_regions()
            if not regions:
                yield self.clock.wait_cycles(1000)
                continue
            for region in regions:
                if not self.enabled:
                    return
                yield from self._scrub_one(region)
