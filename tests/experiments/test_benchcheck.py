"""Tests for the ``repro-pdr bench --check`` regression gate."""

import json

import pytest

from repro.experiments import benchcheck
from repro.experiments.benchcheck import (
    Check,
    DEFAULT_TOLERANCE,
    load_baseline,
    run_check,
)


# -- Check math ----------------------------------------------------------------


def test_check_delta_is_signed_fraction_in_worse_direction():
    worse_higher = Check("s", "latency", baseline=100.0, fresh=110.0,
                         tolerance=0.02, worse="higher")
    assert worse_higher.delta == pytest.approx(0.10)
    assert worse_higher.regressed

    improved = Check("s", "latency", baseline=100.0, fresh=90.0,
                     tolerance=0.02, worse="higher")
    assert improved.delta == pytest.approx(-0.10)
    assert not improved.regressed

    worse_lower = Check("c", "availability", baseline=0.9, fresh=0.8,
                        tolerance=0.02, worse="lower")
    assert worse_lower.delta == pytest.approx((0.9 - 0.8) / 0.9)
    assert worse_lower.regressed


def test_check_within_tolerance_passes():
    check = Check("s", "events", baseline=1000.0, fresh=1019.0, tolerance=0.02)
    assert check.delta == pytest.approx(0.019)
    assert not check.regressed
    assert "[ok]" in check.render()


def test_advisory_check_never_fails_the_gate():
    check = Check("s", "wall_s", baseline=1.0, fresh=50.0,
                  tolerance=0.02, advisory=True)
    assert check.delta == pytest.approx(49.0)
    assert not check.regressed
    assert "[advisory]" in check.render()


def test_zero_baseline_does_not_divide_by_zero():
    check = Check("s", "faults", baseline=0.0, fresh=1.0, tolerance=0.02)
    assert check.delta > 0  # huge, but finite
    assert check.regressed


def test_scaled_distorts_in_the_worse_direction():
    assert benchcheck._scaled(100.0, "higher", 2.0) == 200.0
    assert benchcheck._scaled(0.9, "lower", 2.0) == pytest.approx(0.45)
    assert benchcheck._scaled(100.0, "higher", 1.0) == 100.0


# -- run_check exit codes ------------------------------------------------------


def _write_sweeps_baseline(path, events=7297.0, latency=677.025, wall=1.0):
    doc = {
        "sweep": {"frequencies_mhz": [200.0]},
        "runs": {
            "serial": {
                "wall_s": wall,
                "points": [
                    {
                        "label": "bench@200MHz",
                        "events": events,
                        "latency_us": latency,
                    }
                ],
            }
        },
    }
    (path / "BENCH_sweeps.json").write_text(json.dumps(doc))


def _fake_probe_sweeps(events=7297.0, latency=677.025, wall=2.0):
    def probe(frequencies_mhz):
        return {
            "wall_s": wall,
            "points": {
                f"bench@{freq:g}MHz": {"events": events, "latency_us": latency}
                for freq in frequencies_mhz
            },
        }

    return probe


def test_run_check_passes_matching_baseline(tmp_path, monkeypatch):
    _write_sweeps_baseline(tmp_path)
    monkeypatch.setattr(benchcheck, "probe_sweeps", _fake_probe_sweeps())
    code, lines = run_check(suites=("sweeps",), baseline_dir=str(tmp_path))
    assert code == 0
    assert any("0 regression(s)" in line for line in lines)
    # Wall-clock doubled but stays advisory by default.
    assert any("wall_s" in line and "advisory" in line for line in lines)


def test_run_check_flags_real_regression(tmp_path, monkeypatch):
    _write_sweeps_baseline(tmp_path, latency=677.025)
    monkeypatch.setattr(
        benchcheck, "probe_sweeps", _fake_probe_sweeps(latency=800.0)
    )
    code, lines = run_check(suites=("sweeps",), baseline_dir=str(tmp_path))
    assert code == 1
    assert any("latency_us" in line and "REGRESSED" in line for line in lines)


def test_run_check_inject_scale_forces_failure(tmp_path, monkeypatch):
    _write_sweeps_baseline(tmp_path)
    monkeypatch.setattr(benchcheck, "probe_sweeps", _fake_probe_sweeps())
    code, lines = run_check(
        suites=("sweeps",), baseline_dir=str(tmp_path), inject_scale=2.0
    )
    assert code == 1
    assert any("inject-scale 2" in line for line in lines)


def test_run_check_wall_tolerance_opts_into_gating(tmp_path, monkeypatch):
    _write_sweeps_baseline(tmp_path, wall=1.0)
    monkeypatch.setattr(benchcheck, "probe_sweeps", _fake_probe_sweeps(wall=3.0))
    code, lines = run_check(
        suites=("sweeps",), baseline_dir=str(tmp_path), wall_tolerance=0.5
    )
    assert code == 1
    assert any("wall_s" in line and "REGRESSED" in line for line in lines)


def test_run_check_missing_baseline_exits_two(tmp_path):
    code, lines = run_check(suites=("sweeps",), baseline_dir=str(tmp_path))
    assert code == 2
    assert any("baseline unreadable" in line for line in lines)


def test_run_check_corrupt_baseline_exits_two(tmp_path):
    (tmp_path / "BENCH_sweeps.json").write_text("{not json")
    code, lines = run_check(suites=("sweeps",), baseline_dir=str(tmp_path))
    assert code == 2


def test_load_baseline_reads_committed_files():
    # The repo ships all four baselines; the default root resolves them.
    doc = load_baseline("sweeps")
    assert "runs" in doc
    doc = load_baseline("chaos")
    assert "availability" in doc
    doc = load_baseline("dram")
    assert "summary" in doc


def test_dram_baseline_gates_against_fresh_probe(tmp_path):
    """The dram suite end-to-end: a fresh reduced probe must match the
    committed summary within tolerance, and the inject-scale self-test
    must trip the gate."""
    code, lines = run_check(suites=("dram",))
    assert code == 0, lines
    assert any(line.startswith("dram.open_row_hit_rate") for line in lines)
    code, _ = run_check(suites=("dram",), inject_scale=2.0)
    assert code == 1


def test_probe_sweeps_matches_committed_baseline_shape():
    """One real (fast, single-point) probe: deterministic kernel figures."""
    fresh = benchcheck.probe_sweeps([200.0])
    point = fresh["points"]["bench@200MHz"]
    assert point["events"] > 0
    assert point["latency_us"] == pytest.approx(677.025, rel=0.05)
    assert fresh["wall_s"] > 0
