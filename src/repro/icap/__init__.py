"""ICAP: the Internal Configuration Access Port and its stream controller."""

from .controller import IcapController
from .primitive import ConfigPort

__all__ = ["ConfigPort", "IcapController"]
