"""Clock domains.

Hardware blocks in this repository are clocked: their costs are expressed in
*cycles* of some :class:`ClockDomain`.  A domain's frequency can be changed
at run time (that is exactly what the paper's Clock Wizard does when the
user over-clocks), and all subsequent waits use the new period.
"""

from __future__ import annotations

from typing import Optional

from .errors import SimulationError
from .kernel import Event, Simulator, Timeout

__all__ = ["ClockDomain", "MHZ", "NS_PER_US", "NS_PER_S"]

#: Nanoseconds per microsecond / second (the kernel counts nanoseconds).
NS_PER_US = 1e3
NS_PER_S = 1e9
#: Multiply a MHz figure by this to get cycles per nanosecond.
MHZ = 1e-3


class ClockDomain:
    """A named clock whose frequency may change during simulation.

    The domain tracks the total number of cycles elapsed across frequency
    changes so that cycle-accurate counters (e.g. the PS global timer)
    remain correct when the Clock Wizard reprograms the PL clock.
    """

    def __init__(self, sim: Simulator, freq_mhz: float, name: str = "clk"):
        self.sim = sim
        self.name = name
        self._freq_mhz = 0.0
        self._cycles_before = 0.0  # cycles accumulated before the last change
        self._changed_at_ns = sim.now
        self.set_frequency(freq_mhz)

    # -- frequency ----------------------------------------------------------
    @property
    def freq_mhz(self) -> float:
        return self._freq_mhz

    @property
    def freq_hz(self) -> float:
        return self._freq_mhz * 1e6

    @property
    def period_ns(self) -> float:
        return 1e3 / self._freq_mhz

    def set_frequency(self, freq_mhz: float) -> None:
        """Reprogram the clock; takes effect for all subsequent waits."""
        if freq_mhz <= 0:
            raise SimulationError(f"clock frequency must be positive, got {freq_mhz}")
        if self._freq_mhz:
            self._cycles_before = self.elapsed_cycles
        self._freq_mhz = float(freq_mhz)
        self._changed_at_ns = self.sim.now

    # -- cycle accounting ------------------------------------------------------
    @property
    def elapsed_cycles(self) -> float:
        """Total cycles elapsed since construction (across freq changes)."""
        dt_ns = self.sim.now - self._changed_at_ns
        return self._cycles_before + dt_ns * self._freq_mhz * MHZ

    def cycles_to_ns(self, cycles: float) -> float:
        """Duration of ``cycles`` at the *current* frequency, in ns."""
        return cycles * self.period_ns

    def ns_to_cycles(self, ns: float) -> float:
        return ns / self.period_ns

    # -- waiting -----------------------------------------------------------------
    def wait_cycles(self, cycles: float) -> Timeout:
        """Event firing after ``cycles`` clock cycles at the current rate."""
        if cycles < 0:
            raise SimulationError(f"cannot wait negative cycles ({cycles})")
        return self.sim.timeout(self.cycles_to_ns(cycles))

    def tick(self) -> Timeout:
        """Event firing after exactly one cycle."""
        return self.wait_cycles(1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClockDomain {self.name} @ {self._freq_mhz:g} MHz>"
