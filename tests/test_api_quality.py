"""Repository-wide API quality gates.

* every public module, class and function carries a docstring
  (deliverable (e): doc comments on every public item);
* every name in a package's ``__all__`` actually resolves;
* subpackages expose an ``__all__`` so the public surface is explicit.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro.sim",
    "repro.axi",
    "repro.dram",
    "repro.bitstream",
    "repro.fabric",
    "repro.icap",
    "repro.dma",
    "repro.crccheck",
    "repro.timing",
    "repro.power",
    "repro.thermal",
    "repro.clocking",
    "repro.board",
    "repro.ps",
    "repro.core",
    "repro.sram_pr",
    "repro.baselines",
    "repro.experiments",
    "repro.analysis",
    "repro.exec",
    "repro.snapshot",
]


def _iter_modules():
    for package_name in SUBPACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            yield importlib.import_module(f"{package_name}.{info.name}")


@pytest.mark.parametrize("package_name", SUBPACKAGES)
def test_package_imports_and_declares_all(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__, f"{package_name} lacks a module docstring"
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.__all__ lists missing {name}"


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _iter_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_documented():
    undocumented = []
    for module in _iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export: documented at its home
            if not inspect.getdoc(obj):
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_public_methods_documented_on_core_classes():
    """The classes a downstream user touches first must be fully doc'd."""
    from repro.core import HllFramework, PdrSystem
    from repro.sim import Channel, Simulator
    from repro.sram_pr import SramPrSystem

    for cls in (PdrSystem, HllFramework, SramPrSystem, Simulator, Channel):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"


def test_version_string():
    assert repro.__version__ == "1.0.0"
