"""Tests for the workload generator and campaign harness."""

import pytest

from repro.core import HllFramework
from repro.experiments.workloads import (
    CampaignResult,
    DeterministicRng,
    WorkloadSpec,
    compare_icap_frequencies,
    format_report,
    generate_requests,
    make_asp_pool,
    run_campaign,
)


# ---------------------------------------------------------------------- rng --
def test_rng_is_deterministic_and_varied():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    seq_a = [a.next_u32() for _ in range(10)]
    seq_b = [b.next_u32() for _ in range(10)]
    assert seq_a == seq_b
    assert len(set(seq_a)) == 10


def test_rng_zero_seed_still_works():
    rng = DeterministicRng(0)
    assert rng.next_u32() != 0


def test_rng_uniform_range():
    rng = DeterministicRng(7)
    samples = [rng.uniform() for _ in range(1000)]
    assert all(0.0 <= s < 1.0 for s in samples)
    assert 0.4 < sum(samples) / len(samples) < 0.6


def test_weighted_choice_respects_weights():
    rng = DeterministicRng(11)
    counts = [0, 0]
    for _ in range(2000):
        counts[rng.choice_weighted([9.0, 1.0])] += 1
    assert counts[0] > 6 * counts[1]


# --------------------------------------------------------------- generation --
def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(n_jobs=0)
    with pytest.raises(ValueError):
        WorkloadSpec(popularity="gaussian")


def test_pool_has_distinct_keys():
    pool = make_asp_pool(8)
    keys = {(asp.kind, tuple(asp.params())) for asp in pool}
    assert len(keys) == 8


def test_oversized_pool_rejected():
    with pytest.raises(ValueError, match="pool"):
        make_asp_pool(20)


def test_request_generation_is_deterministic():
    spec = WorkloadSpec(n_jobs=15, seed=99)
    a = generate_requests(spec)
    b = generate_requests(spec)
    assert [r.asp_key() for r in a] == [r.asp_key() for r in b]
    assert [list(r.input_words) for r in a] == [list(r.input_words) for r in b]


def test_zipf_skews_popularity():
    spec = WorkloadSpec(n_jobs=300, pool_size=6, popularity="zipf", zipf_s=1.5)
    requests = generate_requests(spec)
    counts = {}
    for request in requests:
        counts[request.asp_key()] = counts.get(request.asp_key(), 0) + 1
    ranked = sorted(counts.values(), reverse=True)
    # The hottest ASP dominates the coldest by a wide margin.
    assert ranked[0] > 4 * ranked[-1]


def test_payloads_respect_asp_interfaces():
    spec = WorkloadSpec(n_jobs=60, pool_size=8)
    for request in generate_requests(spec):
        if request.asp.name == "aes-128":
            assert len(request.input_words) % 4 == 0
        if request.asp.name == "matmul":
            n = request.asp.n
            assert len(request.input_words) == 2 * n * n


# ----------------------------------------------------------------- campaign --
def test_campaign_accounting():
    framework = HllFramework(icap_freq_mhz=200.0)
    spec = WorkloadSpec(n_jobs=10, pool_size=5, seed=3)
    result = run_campaign(framework, generate_requests(spec))
    assert isinstance(result, CampaignResult)
    assert result.jobs == 10
    assert 0 < result.misses <= 10
    assert result.hit_rate == pytest.approx(1 - result.misses / 10)
    assert result.reconfig_ms < result.makespan_ms
    assert result.reconfig_energy_mj > 0
    assert result.energy_per_swap_mj == pytest.approx(
        result.reconfig_energy_mj / result.misses
    )


def test_frequency_comparison_shape():
    spec = WorkloadSpec(n_jobs=12, pool_size=6, seed=5)
    results = compare_icap_frequencies((100.0, 200.0, 280.0), spec)
    # Same workload -> identical miss pattern at every frequency.
    misses = {r.misses for r in results.values()}
    assert len(misses) == 1
    # Faster ICAP -> shorter makespan; 200 MHz -> cheapest swaps.
    assert results[280.0].makespan_ms < results[200.0].makespan_ms
    assert results[200.0].makespan_ms < results[100.0].makespan_ms
    cheapest = min(results.values(), key=lambda r: r.energy_per_swap_mj)
    assert cheapest.icap_freq_mhz == 200.0
    text = format_report(results)
    assert "sweet spot" in text
