"""Tests for the active-feedback governor and the bitstream library."""

import pytest

from repro.core import ActiveFeedbackGovernor, BitstreamLibrary
from repro.fabric import Aes128Asp, FirFilterAsp


@pytest.fixture(scope="module")
def system(shared_system):
    return shared_system


# ----------------------------------------------------------------- governor --
@pytest.fixture()
def governor(system):
    return ActiveFeedbackGovernor(system.timing, system.temp_sensor)


def test_governor_margin_validation(system):
    with pytest.raises(ValueError):
        ActiveFeedbackGovernor(system.timing, system.temp_sensor, margin_mhz=-1)


def test_safe_limit_at_bench_temperature(system, governor):
    system.set_die_temperature(40.0)
    # Weakest path is the control path: 305 MHz at 40 C, minus 10 margin.
    assert governor.max_safe_mhz() == pytest.approx(295.0, abs=1.0)


def test_safe_limit_derates_with_temperature(system, governor):
    system.set_die_temperature(40.0)
    cool = governor.max_safe_mhz()
    system.set_die_temperature(100.0)
    hot = governor.max_safe_mhz()
    system.set_die_temperature(40.0)
    assert hot < cool


def test_requests_below_limit_pass_through(system, governor):
    assert governor.authorise(200.0) == 200.0
    assert governor.clamps_applied == 0


def test_requests_above_limit_clamped(system, governor):
    system.set_die_temperature(40.0)
    assert governor.authorise(360.0) == pytest.approx(295.0, abs=1.0)
    assert governor.clamps_applied == 1
    with pytest.raises(ValueError):
        governor.authorise(0.0)


def test_governed_reconfigure_never_fails(system, governor):
    """Even a 360 MHz request at 100 C succeeds under governance —
    the §IV-A failure cell is unreachable."""
    system.set_die_temperature(100.0)
    governed = governor.reconfigure(
        system, "RP1", FirFilterAsp([3, 3]), requested_mhz=360.0
    )
    system.set_die_temperature(40.0)
    assert governed.clamped
    assert governed.authorised_mhz < 300.0
    assert governed.result.succeeded
    assert governed.result.crc_valid


def test_ungoverned_equivalent_fails(system):
    """Control: the same request without the governor corrupts the load."""
    system.set_die_temperature(100.0)
    result = system.reconfigure("RP2", FirFilterAsp([3, 3]), 360.0)
    system.set_die_temperature(40.0)
    assert not result.crc_valid


# ------------------------------------------------------------------ library --
def test_library_register_and_load(system):
    library = BitstreamLibrary(system)
    library.register("fir-lowpass", "RP3", FirFilterAsp([1, 2, 1]))
    library.register("aes-main", "RP4", Aes128Asp([1, 2, 3, 4]))
    assert library.names() == ["aes-main", "fir-lowpass"]

    result = library.load("fir-lowpass", 200.0)
    assert result.succeeded
    assert system.run_asp("RP3", [1, 0, 0]) == [1, 2, 1]
    assert library.loads == 1


def test_library_duplicate_and_missing(system):
    library = BitstreamLibrary(system)
    library.register("x", "RP1", FirFilterAsp([1]))
    with pytest.raises(ValueError):
        library.register("x", "RP1", FirFilterAsp([1]))
    with pytest.raises(ValueError):
        library.register("", "RP1", FirFilterAsp([1]))
    with pytest.raises(KeyError):
        library.load("ghost", 100.0)


def test_library_prefetch_is_idempotent(system):
    library = BitstreamLibrary(system)
    library.register("img", "RP1", FirFilterAsp([9, 9]))
    addr1 = library.prefetch("img")
    addr2 = library.prefetch("img")
    assert addr1 == addr2
    assert library.entry("img").prefetched


def test_library_sd_export(system):
    library = BitstreamLibrary(system)
    library.register("boot-img", "RP2", FirFilterAsp([4]))
    filename = library.store_on_sd("boot-img")
    assert filename == "boot-img.bin"
    assert system.sdcard.file_size(filename) == library.entry(
        "boot-img"
    ).bitstream.size_bytes


def test_library_prefetch_all(system):
    library = BitstreamLibrary(system)
    library.register("a", "RP1", FirFilterAsp([1]))
    library.register("b", "RP2", FirFilterAsp([2]))
    library.prefetch_all()
    assert all(library.entry(n).prefetched for n in library.names())
