"""Benchmark E14/E16: the fleet-scale PDR service, calm and under chaos.

Runs a small seeded fleet campaign (4 boards, Poisson arrivals),
asserts the fleet layer's core guarantees (every request accounted for,
no scrub failures, batching active), then reruns the fleet under a
board-kill chaos storm (E16) and asserts the health/failover layer's
guarantees: request conservation, failover activity, and a quarantined
board rejoining through its half-open circuit-breaker probe.  Records
wall-clock plus both the calm and degraded-mode SLO figures to
``BENCH_fleet.json`` at the repo root so future PRs can see the perf,
service-quality and fault-tolerance curves together.
"""

import json
import os
import time

from repro.fleet import FleetSpec, run_fleet

from conftest import run_once

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPORT_PATH = os.path.join(_REPO_ROOT, "BENCH_fleet.json")

_SPEC = FleetSpec(boards=4, seed=1, duration_ms=20.0)

#: Seed 17 is the demonstration campaign from EXPERIMENTS E16: one board
#: dies permanently mid-run and another quarantines on consecutive
#: deadline breaches, then rejoins via a successful half-open probe.
_CHAOS_SPEC = FleetSpec(
    boards=4,
    seed=17,
    duration_ms=14.0,
    chaos=True,
    chaos_intensity=6,
    kill_boards=1,
)


def _run_campaign():
    t0 = time.perf_counter()
    report = run_fleet(_SPEC)
    wall_s = time.perf_counter() - t0
    return report, wall_s


def test_bench_fleet_service(benchmark):
    report, wall_s = run_once(benchmark, _run_campaign)

    # The fleet layer's core guarantees, even at benchmark scale.
    assert report.offered == report.admitted + report.rejected
    assert len(report.outcomes) == report.admitted
    assert report.slos.failed_rate == 0.0
    assert report.coalesced > 0  # the hot set actually coalesced
    assert report.slos.p99_latency_us is not None

    t0 = time.perf_counter()
    chaos_report = run_fleet(_CHAOS_SPEC)
    chaos_wall_s = time.perf_counter() - t0

    # The health/failover layer's guarantees: conservation under board
    # loss, actual failover traffic, and a breaker-probe rejoin.
    assert chaos_report.offered == chaos_report.admitted + chaos_report.rejected
    assert len(chaos_report.outcomes) == chaos_report.admitted
    assert chaos_report.slos.failovers > 0
    assert chaos_report.rounds > 1
    states = {entry["state"] for entry in chaos_report.health}
    assert "dead" in states  # the scheduled board kill landed
    reasons = {
        event["reason"]
        for entry in chaos_report.health
        for event in entry["events"]
    }
    assert "probe_ok_rejoined" in reasons  # quarantine → half-open → rejoin

    payload = {
        "generated_by": "benchmarks/test_bench_fleet.py",
        "host_cpus": os.cpu_count(),
        "campaign": _SPEC.to_mapping(),
        "fleet_wall_s": round(wall_s, 3),
        "requests_per_s": round(report.offered / wall_s, 3),
        "requests": {
            "offered": report.offered,
            "admitted": report.admitted,
            "rejected": report.rejected,
            "coalesced": report.coalesced,
            "loads": report.loads,
            "batches": report.batches,
        },
        "slos": report.slos.to_mapping(),
        "utilisation": {
            f"board{usage.board}": usage.utilisation(report.horizon_us)
            for usage in report.boards
        },
        "chaos_campaign": _CHAOS_SPEC.to_mapping(),
        "fleet_chaos_wall_s": round(chaos_wall_s, 3),
        "chaos_rounds": chaos_report.rounds,
        "chaos_slos": chaos_report.slos.to_mapping(),
        "chaos_board_states": {
            f"board{entry['board']}": entry["state"]
            for entry in chaos_report.health
        },
    }
    with open(_REPORT_PATH, "w") as handle:
        json.dump({**payload, "milestones": _MILESTONES}, handle, indent=2)
        handle.write("\n")


#: Measured once per tentpole change; kept here so the service-quality
#: history survives report regeneration.
_MILESTONES = [
    {
        "date": "2026-08-08",
        "change": "fleet-scale PDR service (open-loop traffic + batching)",
        "host_cpus": 1,
        "note": (
            "4-board seed-1 Poisson campaign via `repro-pdr fleet`; "
            "report byte-identical across reruns and --jobs 2; batching "
            "cuts mean queue wait ~4x vs --no-batching at 2 req/ms."
        ),
    },
    {
        "date": "2026-08-08",
        "change": "fleet health/failover layer (chaos, board kill, breaker)",
        "host_cpus": 1,
        "note": (
            "seed-17 board-kill campaign: 1 of 4 boards dies mid-run, "
            "one quarantines then rejoins via half-open probe; zero "
            "lost requests, availability held at 1.0 by the retry "
            "budget, degradation shows in p99/goodput/failover penalty."
        ),
    },
]
