"""Benchmark E7: regenerate the §VI proposed-system numbers."""

import pytest

from repro.experiments.calibration import PAPER_SEC6_THEORETICAL_MB_S
from repro.experiments.proposed import run_proposed

from conftest import run_once


def test_bench_proposed(benchmark, system):
    data = run_once(benchmark, run_proposed, pdr_system=system)

    # The simulated system achieves the paper's bandwidth arithmetic.
    assert data.plain_throughput_mb_s == pytest.approx(
        PAPER_SEC6_THEORETICAL_MB_S, rel=0.005
    )

    # Paper: "almost double the one measured by the current system".
    ratio = data.plain_throughput_mb_s / data.current_throughput_mb_s
    assert 1.4 < ratio < 1.8

    # Compression pushes past the SRAM rate, bounded by the 550 MHz ICAP.
    assert data.compressed_throughput_mb_s > data.plain_throughput_mb_s
    assert data.compressed_throughput_mb_s <= 2200.0 * 1.01

    # Preload (DRAM-bound) is the part worth hiding: slower than the
    # activation it feeds.
    assert data.plain_preload_us > data.plain_activation_us
