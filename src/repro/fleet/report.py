"""Fleet SLO reporting.

A fleet campaign is graded at the *request* level: what matters to a
tenant is not one board's reconfiguration latency but how long their
request sat in a queue plus how long the fabric load took, and whether
the request was admitted at all.  :class:`FleetReport` folds the
replayed per-request outcomes into the service-level objectives the
ROADMAP names — p50/p99 end-to-end latency, rejected-request rate,
per-board utilisation — using the same nearest-rank percentile helper
as every other campaign rollup in the repo
(:func:`repro.analysis.stats.nearest_rank`).

Serialisation follows the house convention: :func:`render_json` is
canonical (sorted keys, trailing newline) so byte-comparing two runs is
a meaningful determinism check, and :func:`format_report` renders the
human summary the CLI prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..analysis.stats import nearest_rank

__all__ = [
    "BoardUsage",
    "FleetReport",
    "FleetSlos",
    "RequestOutcome",
    "format_report",
    "render_json",
]

SCHEMA = "repro.fleet/v1"


@dataclass(frozen=True)
class RequestOutcome:
    """One admitted request's replayed fate."""

    index: int
    board: int
    #: Queue wait: admission to dispatch-group start (µs).
    wait_us: float
    #: End-to-end: arrival to group completion (µs).
    latency_us: float
    #: Served by a multi-job SG group or a coalesced load.
    batched: bool
    #: The serving load's post-load scrub verdict.
    ok: bool

    def to_mapping(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "board": self.board,
            "wait_us": self.wait_us,
            "latency_us": self.latency_us,
            "batched": self.batched,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class BoardUsage:
    """One board's share of the campaign."""

    board: int
    loads: int
    groups: int
    requests: int
    #: Time the fabric was actually loading/scrubbing (µs).
    busy_us: float
    #: When this board finished its last group (µs).
    span_us: float

    def utilisation(self, horizon_us: float) -> float:
        if horizon_us <= 0:
            return 0.0
        return round(self.busy_us / horizon_us, 4)

    def to_mapping(self, horizon_us: float) -> Dict[str, Any]:
        return {
            "board": self.board,
            "loads": self.loads,
            "groups": self.groups,
            "requests": self.requests,
            "busy_us": self.busy_us,
            "utilisation": self.utilisation(horizon_us),
        }


@dataclass(frozen=True)
class FleetSlos:
    """The headline service-level numbers."""

    p50_latency_us: Optional[float]
    p99_latency_us: Optional[float]
    p50_wait_us: Optional[float]
    p99_wait_us: Optional[float]
    mean_wait_us: Optional[float]
    rejected_rate: float
    #: Fraction of served requests whose load failed its scrub check.
    failed_rate: float

    def to_mapping(self) -> Dict[str, Any]:
        return {
            "p50_latency_us": self.p50_latency_us,
            "p99_latency_us": self.p99_latency_us,
            "p50_wait_us": self.p50_wait_us,
            "p99_wait_us": self.p99_wait_us,
            "mean_wait_us": self.mean_wait_us,
            "rejected_rate": self.rejected_rate,
            "failed_rate": self.failed_rate,
        }

    def breaches(
        self,
        p99_target_us: Optional[float] = None,
        reject_target: Optional[float] = None,
    ) -> List[str]:
        """Human-readable SLO violations against the given targets."""
        out = []
        if (
            p99_target_us is not None
            and self.p99_latency_us is not None
            and self.p99_latency_us > p99_target_us
        ):
            out.append(
                f"p99 latency {self.p99_latency_us:.1f}us exceeds "
                f"target {p99_target_us:.1f}us"
            )
        if reject_target is not None and self.rejected_rate > reject_target:
            out.append(
                f"rejected rate {self.rejected_rate:.4f} exceeds "
                f"target {reject_target:.4f}"
            )
        return out


def _round_opt(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 3)


@dataclass
class FleetReport:
    """The full graded outcome of one fleet campaign."""

    spec: Dict[str, Any]
    offered: int
    admitted: int
    rejected: int
    coalesced: int
    loads: int
    batches: int
    slos: FleetSlos
    boards: List[BoardUsage] = field(default_factory=list)
    outcomes: List[RequestOutcome] = field(default_factory=list)
    #: Shared denominator for utilisation: campaign duration or fleet
    #: makespan, whichever is longer (overload drains past the horizon).
    horizon_us: float = 0.0

    @classmethod
    def build(
        cls,
        spec: Mapping[str, Any],
        offered: int,
        plan,
        outcomes: Sequence[RequestOutcome],
        boards: Sequence[BoardUsage],
    ) -> "FleetReport":
        latencies = [outcome.latency_us for outcome in outcomes]
        waits = [outcome.wait_us for outcome in outcomes]
        failed = sum(1 for outcome in outcomes if not outcome.ok)
        slos = FleetSlos(
            p50_latency_us=_round_opt(nearest_rank(latencies, 50)),
            p99_latency_us=_round_opt(nearest_rank(latencies, 99)),
            p50_wait_us=_round_opt(nearest_rank(waits, 50)),
            p99_wait_us=_round_opt(nearest_rank(waits, 99)),
            mean_wait_us=(
                round(sum(waits) / len(waits), 3) if waits else None
            ),
            rejected_rate=(
                round(len(plan.rejected) / offered, 4) if offered else 0.0
            ),
            failed_rate=(
                round(failed / len(outcomes), 4) if outcomes else 0.0
            ),
        )
        duration_us = float(spec.get("duration_ms", 0.0)) * 1e3
        makespan_us = max((usage.span_us for usage in boards), default=0.0)
        return cls(
            spec=dict(spec),
            offered=offered,
            admitted=plan.admitted,
            rejected=len(plan.rejected),
            coalesced=plan.coalesced,
            loads=plan.loads,
            batches=sum(
                sum(1 for group in board_plan.groups if len(group) > 1)
                for board_plan in plan.boards
            ),
            slos=slos,
            boards=list(boards),
            outcomes=list(outcomes),
            horizon_us=round(max(duration_us, makespan_us), 3),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "spec": self.spec,
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "coalesced": self.coalesced,
            "loads": self.loads,
            "batches": self.batches,
            "horizon_us": self.horizon_us,
            "slos": self.slos.to_mapping(),
            "boards": [
                usage.to_mapping(self.horizon_us) for usage in self.boards
            ],
            "outcomes": [outcome.to_mapping() for outcome in self.outcomes],
        }


def render_json(report: FleetReport) -> str:
    """Canonical JSON: sorted keys, trailing newline — byte-comparable."""
    return json.dumps(report.to_dict(), sort_keys=True, indent=2) + "\n"


def _fmt(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.1f}"


def format_report(report: FleetReport) -> str:
    """The CLI's human summary of one fleet campaign."""
    spec = report.spec
    slos = report.slos
    lines = [
        f"# Fleet report — {spec.get('boards')} board(s), "
        f"seed {spec.get('seed')}, {spec.get('arrival')} arrivals "
        f"@ {spec.get('rate_per_ms')}/ms for {spec.get('duration_ms')} ms",
        "",
        f"requests: {report.offered} offered, {report.admitted} admitted, "
        f"{report.rejected} rejected ({slos.rejected_rate:.2%}), "
        f"{report.coalesced} coalesced",
        f"loads: {report.loads} fabric loads in "
        f"{report.batches} multi-job batch(es)",
        f"latency_us: p50 {_fmt(slos.p50_latency_us)} "
        f"p99 {_fmt(slos.p99_latency_us)}",
        f"queue_wait_us: p50 {_fmt(slos.p50_wait_us)} "
        f"p99 {_fmt(slos.p99_wait_us)} mean {_fmt(slos.mean_wait_us)}",
        f"failed_rate: {slos.failed_rate:.2%}",
        "",
        "| board | loads | groups | requests | busy_us | utilisation |",
        "|---|---|---|---|---|---|",
    ]
    for usage in report.boards:
        lines.append(
            f"| {usage.board} | {usage.loads} | {usage.groups} "
            f"| {usage.requests} | {usage.busy_us:.1f} "
            f"| {usage.utilisation(report.horizon_us):.1%} |"
        )
    return "\n".join(lines) + "\n"
