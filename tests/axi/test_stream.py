"""Tests for the AXI4-Stream link."""

import pytest

from repro.axi import AxiStream, StreamBurst
from repro.sim import Simulator


def test_fifo_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        AxiStream(sim, fifo_words=0)


def test_burst_size_accounting():
    burst = StreamBurst(words=[1, 2, 3], last=True)
    assert burst.size_bytes == 12


def test_reserve_rejects_oversized_burst():
    sim = Simulator()
    stream = AxiStream(sim, fifo_words=16)
    with pytest.raises(ValueError):
        stream.reserve(17)


def test_push_pop_roundtrip():
    sim = Simulator()
    stream = AxiStream(sim, fifo_words=64)
    got = []

    def producer(sim):
        for i in range(3):
            yield stream.reserve(4)
            stream.push(StreamBurst(words=[i] * 4, last=(i == 2)))

    def consumer(sim):
        while True:
            burst = yield stream.pop()
            got.append(burst.words)
            stream.release(len(burst.words))
            if burst.last:
                return

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert got == [[0] * 4, [1] * 4, [2] * 4]
    assert stream.total_words == 12
    assert stream.free_words == 64


def test_backpressure_blocks_producer():
    sim = Simulator()
    stream = AxiStream(sim, fifo_words=8)
    marks = {}

    def producer(sim):
        yield stream.reserve(8)
        stream.push(StreamBurst(words=[0] * 8))
        yield stream.reserve(8)  # must wait for the consumer
        marks["second_reserve"] = sim.now
        stream.push(StreamBurst(words=[1] * 8, last=True))

    def consumer(sim):
        burst = yield stream.pop()
        yield sim.timeout(100.0)
        stream.release(len(burst.words))
        burst = yield stream.pop()
        stream.release(len(burst.words))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert marks["second_reserve"] == 100.0


def test_release_overflow_detected():
    sim = Simulator()
    stream = AxiStream(sim, fifo_words=8)
    with pytest.raises(AssertionError):
        stream.release(9)


def test_single_release_drains_waiters_in_fifo_order():
    """One big release wakes every satisfiable waiter, oldest first.

    Regression test for the deque-based drain: the previous list.pop(0)
    implementation was O(n) per waiter; this pins the behaviour (arrival
    order, all drained in one release) the deque must preserve.
    """
    sim = Simulator()
    stream = AxiStream(sim, fifo_words=16)
    order = []

    def producer(sim, tag, words):
        yield stream.reserve(words)
        order.append(tag)
        stream.push(StreamBurst(words=[0] * words))

    def consumer(sim):
        # Absorb the first burst, wait, then release everything at once.
        burst = yield stream.pop()
        yield sim.timeout(50.0)
        stream.release(len(burst.words))
        for _ in range(4):
            burst = yield stream.pop()
            stream.release(len(burst.words))

    sim.process(producer(sim, "first", 16))  # fills the FIFO
    sim.process(producer(sim, "a", 4))
    sim.process(producer(sim, "b", 4))
    sim.process(producer(sim, "c", 4))
    sim.process(producer(sim, "d", 4))
    sim.process(consumer(sim))
    sim.run()
    assert order == ["first", "a", "b", "c", "d"]
    assert stream.free_words == 16


def test_head_of_line_waiter_blocks_smaller_followers():
    """Strict FIFO: a large waiter at the head is not bypassed by a small
    one behind it, even when the small request would fit."""
    sim = Simulator()
    stream = AxiStream(sim, fifo_words=8)
    order = []

    def producer(sim, tag, words):
        yield stream.reserve(words)
        order.append((tag, sim.now))
        stream.push(StreamBurst(words=[0] * words))

    def consumer(sim):
        burst = yield stream.pop()
        yield sim.timeout(10.0)
        stream.release(len(burst.words) // 2)  # 4 words free: not enough for "big"
        yield sim.timeout(10.0)
        stream.release(len(burst.words) - len(burst.words) // 2)
        burst = yield stream.pop()
        stream.release(len(burst.words))
        burst = yield stream.pop()
        stream.release(len(burst.words))

    sim.process(producer(sim, "filler", 8))
    sim.process(producer(sim, "big", 8))
    sim.process(producer(sim, "small", 2))
    sim.process(consumer(sim))
    sim.run()
    # "big" needed the full 8 words (free at t=20); "small" stayed queued
    # behind it despite fitting in the 4 words available at t=10.
    assert order == [("filler", 0.0), ("big", 20.0), ("small", 20.0)]


def test_reserve_fifo_fairness():
    """Space waiters are served in arrival order (no starvation)."""
    sim = Simulator()
    stream = AxiStream(sim, fifo_words=4)
    order = []

    def producer(sim, tag):
        yield stream.reserve(4)
        order.append(tag)
        stream.push(StreamBurst(words=[tag] * 4))

    def consumer(sim):
        for _ in range(3):
            burst = yield stream.pop()
            yield sim.timeout(10.0)
            stream.release(len(burst.words))

    sim.process(producer(sim, "a"))
    sim.process(producer(sim, "b"))
    sim.process(producer(sim, "c"))
    sim.process(consumer(sim))
    sim.run()
    assert order == ["a", "b", "c"]


def test_cancel_reserve_returns_granted_space():
    """Regression: tearing down a producer holding granted-but-unpushed
    space must return it, or the FIFO shrinks forever (the DMA-reset
    leak)."""
    sim = Simulator()
    stream = AxiStream(sim, fifo_words=8)
    grant = stream.reserve(8)
    assert grant.triggered
    assert stream.free_words == 0
    stream.cancel_reserve(grant, 8)
    assert stream.free_words == 8


def test_cancel_reserve_removes_queued_waiter():
    sim = Simulator()
    stream = AxiStream(sim, fifo_words=8)
    held = stream.reserve(8)
    assert held.triggered
    waiting = stream.reserve(4)
    assert not waiting.triggered
    stream.cancel_reserve(waiting, 4)
    # The dead waiter must not be woken (and must not eat the space).
    stream.release(8)
    assert not waiting.triggered
    assert stream.free_words == 8
