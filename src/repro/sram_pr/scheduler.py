"""PS Scheduler (§VI).

"The PS Scheduler ... manages all the partial bitstreams that are needed
by the whole architecture, and it pre-loads the next on the SRAM, whilst,
for example, the current partially configurable hardware accelerator is
performing its task."

The scheduler keeps a queue of pending reconfigurations.  ``preload``
moves the next image DRAM → SRAM through the write port (bottlenecked by
the DRAM path, ~816 MB/s effective); because the SRAM ports are
independent, a preload can fully overlap with fabric computation or even
with the previous activation's drain — that overlap is the latency-hiding
the proposal is about (ablation A5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..axi.ports import AxiHpPort
from ..sim import Simulator

from .memctrl import SramMemoryController, SramSlot

__all__ = ["PendingBitstream", "PreloadError", "PsScheduler"]


class PreloadError(RuntimeError):
    """A DRAM→SRAM staging transfer failed (bus error mid-preload).

    The half-filled slot is invalidated before this is raised, so a
    subsequent activation cannot stream the torn image; the caller may
    re-enqueue and retry the preload.
    """


@dataclass
class PendingBitstream:
    """One queued reconfiguration image, already resident in DRAM."""

    name: str
    region: str
    dram_addr: int
    word_count: int
    compressed: bool
    region_crc: int


class PsScheduler:
    """DRAM→SRAM staging queue."""

    #: DRAM read burst used while staging (bytes).
    STAGE_BURST_BYTES = 4096

    def __init__(
        self,
        sim: Simulator,
        memctrl: SramMemoryController,
        dram_port: AxiHpPort,
        name: str = "ps_sched",
    ):
        self.sim = sim
        self.memctrl = memctrl
        self.dram_port = dram_port
        self.name = name
        self._queue: Deque[PendingBitstream] = deque()
        self.preloads_completed = 0
        #: Names of images whose staging failed, in failure order.
        self.failed_preloads: List[str] = []

    # -- queue ------------------------------------------------------------
    def enqueue(self, pending: PendingBitstream) -> None:
        self._queue.append(pending)

    def pending(self) -> List[str]:
        return [p.name for p in self._queue]

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- staging ------------------------------------------------------------
    def preload_next(self):
        """Stage the head-of-queue image into the SRAM (process generator).

        Reads the image out of DRAM in bursts and writes it through the
        SRAM write port; both stages are pipelined (the slower DRAM path
        dominates).  Returns the staged :class:`SramSlot`.
        """
        if not self._queue:
            raise RuntimeError("preload_next() with an empty queue")
        pending = self._queue.popleft()
        slot = SramSlot(
            name=pending.name,
            word_count=pending.word_count,
            compressed=pending.compressed,
            region=pending.region,
            region_crc=pending.region_crc,
        )
        self.memctrl.begin_fill(slot)
        cursor = pending.dram_addr
        remaining = pending.word_count * 4
        last_write = None
        while remaining:
            chunk = min(self.STAGE_BURST_BYTES, remaining)
            try:
                data = yield self.dram_port.read(cursor, chunk)
            except Exception as exc:
                # Bus error mid-stage: let in-flight SRAM writes land,
                # then invalidate the torn slot and report the failure
                # cleanly instead of leaving the caller deadlocked on a
                # fill that will never finish.
                if last_write is not None:
                    yield last_write
                self.memctrl.invalidate()
                self.failed_preloads.append(pending.name)
                raise PreloadError(
                    f"preload of {pending.name!r} failed at DRAM "
                    f"{cursor:#x}: {exc}"
                ) from exc
            words = [
                int.from_bytes(data[i : i + 4], "big")
                for i in range(0, len(data), 4)
            ]
            # Fire the SRAM write without awaiting it: the write port is
            # ~1.5x faster than the DRAM path and serialises internally,
            # so the next DRAM read overlaps this write (pipelining).
            last_write = self.memctrl.write_chunk(words)
            cursor += chunk
            remaining -= chunk
        if last_write is not None:
            yield last_write
        self.memctrl.finish_fill()
        self.preloads_completed += 1
        return slot
