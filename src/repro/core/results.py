"""Result records returned by the PDR systems."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["BatchReconfigResult", "ReconfigResult"]


@dataclass
class ReconfigResult:
    """Outcome of one partial-reconfiguration attempt.

    Mirrors what the paper's test firmware can observe: the C-timer
    latency (absent when the completion interrupt never fires), the
    off-line computed throughput, the read-back CRC verdict, and the
    power/temperature operating point.
    """

    region: str
    requested_freq_mhz: float
    freq_mhz: float                     #: actually synthesised clock
    bitstream_bytes: int
    temp_c: float
    interrupt_seen: bool
    crc_valid: bool
    latency_us: Optional[float] = None  #: None when no completion interrupt
    pdr_power_w: float = 0.0
    board_power_w: float = 0.0
    failure_modes: List[str] = field(default_factory=list)

    @property
    def throughput_mb_s(self) -> Optional[float]:
        """Off-line throughput: size / latency (the paper's method)."""
        if self.latency_us is None or self.latency_us <= 0:
            return None
        return self.bitstream_bytes / self.latency_us  # B/us == MB/s

    @property
    def energy_mj(self) -> Optional[float]:
        """PDR energy of the transfer in millijoules."""
        if self.latency_us is None:
            return None
        return self.pdr_power_w * self.latency_us / 1e3

    @property
    def power_efficiency_mb_per_j(self) -> Optional[float]:
        """Table II's performance-per-watt figure."""
        throughput = self.throughput_mb_s
        if throughput is None or self.pdr_power_w <= 0:
            return None
        return throughput / self.pdr_power_w

    @property
    def succeeded(self) -> bool:
        """Full success: interrupt arrived and read-back CRC matches."""
        return self.interrupt_seen and self.crc_valid

    def summary(self) -> str:
        latency = (
            f"{self.latency_us:9.1f} us" if self.latency_us is not None
            else "  N/A (no interrupt)"
        )
        throughput = (
            f"{self.throughput_mb_s:7.2f} MB/s" if self.throughput_mb_s is not None
            else "    N/A"
        )
        crc = "valid" if self.crc_valid else "NOT VALID"
        return (
            f"{self.region} @ {self.freq_mhz:6.1f} MHz, {self.temp_c:5.1f} C: "
            f"latency {latency}, throughput {throughput}, CRC {crc}"
        )


@dataclass
class BatchReconfigResult:
    """Outcome of a scatter-gather batch of reconfigurations."""

    freq_mhz: float
    latency_us: float
    total_bytes: int
    #: region -> read-back CRC verdict after the whole chain completed.
    region_valid: dict = field(default_factory=dict)
    control_path_ok: bool = True

    @property
    def throughput_mb_s(self) -> float:
        if self.latency_us <= 0:
            return 0.0
        return self.total_bytes / self.latency_us

    @property
    def all_valid(self) -> bool:
        return bool(self.region_valid) and all(self.region_valid.values())

    @property
    def regions(self) -> List[str]:
        return sorted(self.region_valid)
