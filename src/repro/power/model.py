"""Power model of the Zynq SoC during PDR (paper §IV-B, Fig. 6, Table II).

The paper measures board power with current-sense headers and reports

    P_PDR = P(f, T) − P0,     P0 = 2.2 W (board idle, PL unprogrammed, 40 °C)

and observes (Fig. 6) that the dynamic component is linear in frequency
with a temperature-independent slope, while the static component grows
super-linearly with temperature.  We model exactly that structure:

    P_PDR(f, T) = P_PS + P_leak(40 °C) · e^{β (T − 40)} + k_dyn · f

Coefficients are calibrated once against Table II (40 °C column):
slope k_dyn = 1.667 mW/MHz from the 100→280 MHz span, intercept
P_PS + P_leak(40) = 0.973 W split into the active-PS share and the PL
design's leakage.  β = 0.019/°C reproduces Fig. 6's upward fan
(≈ +0.47 W of leakage from 40 °C to 100 °C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Tuple

__all__ = ["PowerModelParams", "PowerModel", "PowerSupply"]


@dataclass(frozen=True)
class PowerModelParams:
    """Calibrated coefficients (see module docstring)."""

    #: Whole-board idle power at 40 °C, PS idle, PL unprogrammed [W].
    p0_board_w: float = 2.2
    #: PS running the control program (CPU active, OCM/DDR traffic) [W].
    p_ps_active_w: float = 0.75
    #: PL design static/leakage power at 40 °C [W].
    p_leak_40c_w: float = 0.223
    #: Exponential leakage growth per °C.
    beta_per_c: float = 0.019
    #: Dynamic power slope [W per MHz] of the over-clocked PDR logic.
    k_dyn_w_per_mhz: float = 1.667e-3


class PowerModel:
    """Evaluates P_PDR, board power and power efficiency."""

    def __init__(self, params: PowerModelParams = PowerModelParams()):
        self.params = params

    # -- components ----------------------------------------------------------
    def dynamic_power_w(self, freq_mhz: float) -> float:
        """CV²f switching power of the PDR clock domain."""
        if freq_mhz < 0:
            raise ValueError("frequency cannot be negative")
        return self.params.k_dyn_w_per_mhz * freq_mhz

    def static_power_w(self, temp_c: float) -> float:
        """PL leakage: exponential in die temperature."""
        return self.params.p_leak_40c_w * math.exp(
            self.params.beta_per_c * (temp_c - 40.0)
        )

    # -- paper quantities ------------------------------------------------------
    def pdr_power_w(self, freq_mhz: float, temp_c: float) -> float:
        """P_PDR = P(f,T) − P0: the Zynq-only PDR power of Fig. 6."""
        return (
            self.params.p_ps_active_w
            + self.static_power_w(temp_c)
            + self.dynamic_power_w(freq_mhz)
        )

    def board_power_w(self, freq_mhz: float, temp_c: float) -> float:
        """What the current-sense headers read during a PDR run."""
        return self.params.p0_board_w + self.pdr_power_w(freq_mhz, temp_c)

    def power_efficiency_mb_per_j(
        self, throughput_mb_s: float, freq_mhz: float, temp_c: float
    ) -> float:
        """Performance-per-watt: throughput / P_PDR  [MB/J] (Table II)."""
        if throughput_mb_s < 0:
            raise ValueError("throughput cannot be negative")
        return throughput_mb_s / self.pdr_power_w(freq_mhz, temp_c)


class PowerSupply:
    """Board supply state: brownouts clamp the usable over-clock.

    A voltage droop does not stop the design, but the timing margin at a
    reduced rail no longer supports the full over-clock — firmware must
    gate any requested ICAP frequency to the brownout ceiling while the
    droop lasts.  Time comes from an injected ``now_fn`` (the simulator
    clock) so the supply stays a plain-data model.
    """

    def __init__(self, now_fn: Callable[[], float]):
        self._now_fn = now_fn
        #: (ceiling_mhz, expires_ns) windows, most recent last.
        self._windows: List[Tuple[float, float]] = []
        self.brownouts = 0

    def brownout(self, ceiling_mhz: float, duration_ns: float) -> None:
        """Start a droop limiting the over-clock to ``ceiling_mhz``."""
        if ceiling_mhz <= 0:
            raise ValueError("brownout ceiling must be positive")
        if duration_ns <= 0:
            raise ValueError("brownout duration must be positive")
        self._windows.append((ceiling_mhz, self._now_fn() + duration_ns))
        self.brownouts += 1

    @property
    def browned_out(self) -> bool:
        now = self._now_fn()
        return any(expires > now for _, expires in self._windows)

    def ceiling_mhz(self) -> float:
        """The tightest active ceiling, or +inf when the rail is healthy."""
        now = self._now_fn()
        self._windows = [w for w in self._windows if w[1] > now]
        if not self._windows:
            return math.inf
        return min(ceiling for ceiling, _ in self._windows)

    def gate_mhz(self, requested_mhz: float) -> float:
        """Clamp a requested frequency to the active brownout ceiling."""
        return min(requested_mhz, self.ceiling_mhz())
