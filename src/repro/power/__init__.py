"""Power model and board current-sense measurement."""

from .model import PowerModel, PowerModelParams
from .sense import CurrentSense

__all__ = ["CurrentSense", "PowerModel", "PowerModelParams"]
