"""Property: template forking never changes a single output byte.

Runs a seeded corpus of ≥50 generated cases — fuzz scenarios (random
configs, operation mixes, corruption, recovery) plus chaos soak cases
(full fault plans with SEU injection and scrub-and-repair) — once with
snapshot templates enabled and once with them disabled, and requires the
canonical-JSON serialisations of the resulting records to be
**byte-identical**.  This is the acceptance property of the snapshot
layer: it is a pure accelerator, invisible in every output.
"""

import json

from repro.chaos.soak import SoakCaseGenerator, soak_case
from repro.snapshot import reset_templates
from repro.verify.fuzz import ScenarioGenerator, run_scenario

FUZZ_SEED = 20260808
FUZZ_CASES = 46
SOAK_SEED = 808
SOAK_CASES = 4


def _canonical(records):
    return json.dumps(records, sort_keys=True, separators=(",", ":"))


def _fuzz_corpus():
    generator = ScenarioGenerator(seed=FUZZ_SEED)
    return [generator.generate(i).to_mapping() for i in range(FUZZ_CASES)]


def _soak_corpus():
    generator = SoakCaseGenerator(seed=SOAK_SEED)
    return [generator.generate(i).to_mapping() for i in range(SOAK_CASES)]


def test_fork_vs_fresh_byte_identity(monkeypatch):
    fuzz_cases = _fuzz_corpus()
    soak_cases = _soak_corpus()
    assert len(fuzz_cases) + len(soak_cases) >= 50

    outputs = {}
    for enabled in ("1", "0"):
        monkeypatch.setenv("REPRO_SNAPSHOTS", enabled)
        reset_templates()
        records = [run_scenario(case) for case in fuzz_cases]
        records += [soak_case(**case) for case in soak_cases]
        outputs[enabled] = _canonical(records)
    reset_templates()

    assert outputs["1"] == outputs["0"], (
        "snapshot forking changed campaign output bytes"
    )
    # Sanity: the corpus actually exercised simulations (non-trivial
    # payload), not 50 empty records.
    assert len(outputs["1"]) > 10_000
