"""SRAM memory controller (§VI "Memory Controller").

Owns the address map of the staging SRAM: one bitstream slot at a time
(the paper: "The SRAM memory can store one partial bitstream a time"),
generates write addresses for the PS-side fill and read addresses for the
PR-side drain, and tracks slot validity so the arbiter never streams a
half-written image into the ICAP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim import Simulator

from .sram import QdrSram

__all__ = ["SramSlot", "SramMemoryController"]


@dataclass
class SramSlot:
    """Metadata of the staged bitstream."""

    name: str
    word_count: int
    compressed: bool
    region: str
    region_crc: int


class SramMemoryController:
    """Write/read address generation + slot bookkeeping."""

    #: Fill burst size (words) per write-port transaction.
    FILL_BURST_WORDS = 2048

    def __init__(self, sim: Simulator, sram: Optional[QdrSram] = None):
        self.sim = sim
        self.sram = sram or QdrSram(sim)
        self._slot: Optional[SramSlot] = None
        self._valid = False
        self._fill_cursor = 0
        self.fills_completed = 0

    # -- status ------------------------------------------------------------
    @property
    def slot(self) -> Optional[SramSlot]:
        return self._slot

    @property
    def slot_valid(self) -> bool:
        return self._valid and self._slot is not None

    def invalidate(self) -> None:
        self._valid = False

    # -- PS-side fill, streaming interface ------------------------------------
    def begin_fill(self, slot: SramSlot) -> None:
        """Open the slot for a streaming fill (marks it invalid)."""
        if slot.word_count > self.sram.capacity_words:
            raise ValueError(
                f"bitstream of {slot.word_count} words exceeds SRAM capacity "
                f"({self.sram.capacity_words} words) — compress it first"
            )
        self._slot = slot
        self._valid = False
        self._fill_cursor = 0

    def write_chunk(self, words: List[int]):
        """Write the next chunk through the write port (returns the event).

        Chunks may be issued back to back without awaiting each one — the
        SRAM write port serialises them internally — which lets the PS
        scheduler pipeline DRAM reads against SRAM writes.
        """
        if self._slot is None:
            raise RuntimeError("write_chunk() before begin_fill()")
        event = self.sram.write_burst(self._fill_cursor, words)
        self._fill_cursor += len(words)
        return event

    def finish_fill(self) -> SramSlot:
        """Validate the slot once every chunk has been written."""
        if self._slot is None:
            raise RuntimeError("finish_fill() before begin_fill()")
        if self._fill_cursor != self._slot.word_count:
            raise RuntimeError(
                f"fill incomplete: {self._fill_cursor}/{self._slot.word_count} words"
            )
        self._valid = True
        self.fills_completed += 1
        return self._slot

    # -- PS-side fill, one-shot convenience --------------------------------------
    def fill(self, slot: SramSlot, words: List[int]):
        """Write a bitstream image into the slot (process generator).

        Marks the slot invalid during the fill so a concurrent activation
        cannot race with a half-written image.
        """
        if len(words) != slot.word_count:
            raise ValueError(
                f"slot says {slot.word_count} words, got {len(words)}"
            )
        self.begin_fill(slot)
        last_event = None
        cursor = 0
        while cursor < len(words):
            chunk = words[cursor : cursor + self.FILL_BURST_WORDS]
            last_event = self.write_chunk(chunk)
            cursor += len(chunk)
        if last_event is not None:
            yield last_event
        return self.finish_fill()

    # -- PR-side drain ------------------------------------------------------------
    def read_slot(self, burst_words: int = 2048):
        """Stream the staged image out of the read port (process generator).

        Returns the full word list; timing is charged per read burst at
        the SRAM's port bandwidth.
        """
        if not self.slot_valid:
            raise RuntimeError("no valid bitstream staged in the SRAM slot")
        slot = self._slot
        words: List[int] = []
        cursor = 0
        while cursor < slot.word_count:
            chunk = min(burst_words, slot.word_count - cursor)
            data = yield self.sram.read_burst(cursor, chunk)
            words.extend(data)
            cursor += chunk
        return words
