"""Experiment harnesses: one module per paper table/figure.

==========  ===============================================  =================
module      paper artifact                                   bench target
==========  ===============================================  =================
table1      Table I  (throughput vs. frequency)              test_bench_table1
fig5        Fig. 5   (throughput/frequency plane + knee)     test_bench_fig5
fig6        Fig. 6   (power vs. frequency x temperature)     test_bench_fig6
table2      Table II (power efficiency, MB/J)                test_bench_table2
temp_stress §IV-A    (heat-gun stress matrix)                test_bench_temp_stress
table3      Table III(related-work comparison) + §V scaling  test_bench_table3
proposed    §VI      (SRAM PR environment, 1237.5 MB/s)      test_bench_proposed
==========  ===============================================  =================
"""

from . import (
    calibration,
    fig5,
    fig6,
    methodology,
    proposed,
    recovery,
    sensitivity,
    table1,
    table2,
    table3,
    temp_stress,
    workloads,
)

__all__ = [
    "calibration",
    "methodology",
    "fig5",
    "fig6",
    "proposed",
    "recovery",
    "sensitivity",
    "table1",
    "table2",
    "table3",
    "temp_stress",
    "workloads",
]
