"""Result records returned by the PDR systems."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["BatchReconfigResult", "PHASES", "ReconfigResult", "TIMED_PHASES"]

#: Canonical firmware phase order (matches the spans recorded by
#: :meth:`repro.core.pdr_system.PdrSystem._firmware_sequence`).
#: ``fault_abort`` only appears when the completion interrupt timed out
#: and the firmware had to reset the DMA and abort the ICAP transfer.
PHASES = (
    "clock_lock",
    "driver_setup",
    "dma_transfer",
    "fault_abort",
    "icap_drain",
    "scrub",
)

#: Phases inside the paper's C-timer window: the timer starts right
#: before driver setup and stops when the completion interrupt arrives,
#: so these (and only these) must sum to ``latency_us``.
TIMED_PHASES = ("driver_setup", "dma_transfer")


@dataclass
class ReconfigResult:
    """Outcome of one partial-reconfiguration attempt.

    Mirrors what the paper's test firmware can observe: the C-timer
    latency (absent when the completion interrupt never fires), the
    off-line computed throughput, the read-back CRC verdict, and the
    power/temperature operating point.
    """

    region: str
    requested_freq_mhz: float
    freq_mhz: float                     #: actually synthesised clock
    bitstream_bytes: int
    temp_c: float
    interrupt_seen: bool
    crc_valid: bool
    latency_us: Optional[float] = None  #: None when no completion interrupt
    #: Why ``latency_us`` is ``None`` (e.g. ``"no completion interrupt"``):
    #: the C-timer window never closed, so there is no number to report —
    #: a reason, not a zero.  ``None`` whenever ``latency_us`` is set.
    latency_unavailable_reason: Optional[str] = None
    pdr_power_w: float = 0.0
    board_power_w: float = 0.0
    failure_modes: List[str] = field(default_factory=list)
    #: Per-phase latency breakdown (phase name -> µs), recorded as spans
    #: by the firmware sequence.  See :data:`PHASES` for the order and
    #: :data:`TIMED_PHASES` for the subset covered by ``latency_us``.
    phase_us: Dict[str, float] = field(default_factory=dict)
    #: The device that owned the largest share of this reconfiguration's
    #: simulation time (``clock_wizard``/``cpu``/``dma``/``icap``/
    #: ``scrubber``), extracted by
    #: :func:`repro.obs.profile.critical_path` from the phase spans plus
    #: the DMA→ICAP FIFO backpressure accounting.
    critical_path: Optional[str] = None
    #: Per-device share of the reconfiguration (device -> µs); the
    #: breakdown :attr:`critical_path` is the argmax of.
    device_us: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_mb_s(self) -> Optional[float]:
        """Off-line throughput: size / latency (the paper's method)."""
        if self.latency_us is None or self.latency_us <= 0:
            return None
        return self.bitstream_bytes / self.latency_us  # B/us == MB/s

    @property
    def energy_mj(self) -> Optional[float]:
        """PDR energy of the transfer in millijoules."""
        if self.latency_us is None:
            return None
        return self.pdr_power_w * self.latency_us / 1e3

    @property
    def power_efficiency_mb_per_j(self) -> Optional[float]:
        """Table II's performance-per-watt figure."""
        throughput = self.throughput_mb_s
        if throughput is None or self.pdr_power_w <= 0:
            return None
        return throughput / self.pdr_power_w

    @property
    def succeeded(self) -> bool:
        """Full success: interrupt arrived and read-back CRC matches."""
        return self.interrupt_seen and self.crc_valid

    @property
    def timed_phase_sum_us(self) -> Optional[float]:
        """Sum of the phases inside the C-timer window.

        Equals ``latency_us`` (to float rounding) when the transfer
        completed — the invariant the observability tests assert.
        """
        if not any(name in self.phase_us for name in TIMED_PHASES):
            return None
        return sum(self.phase_us.get(name, 0.0) for name in TIMED_PHASES)

    def phase_breakdown(self) -> str:
        """One-line human-readable rendering of the phase spans."""
        if not self.phase_us:
            return "no phase data"
        ordered = [name for name in PHASES if name in self.phase_us]
        ordered += [name for name in self.phase_us if name not in PHASES]
        return ", ".join(f"{name} {self.phase_us[name]:.1f}us" for name in ordered)

    def summary(self) -> str:
        latency = (
            f"{self.latency_us:9.1f} us" if self.latency_us is not None
            else "  N/A (no interrupt)"
        )
        throughput = (
            f"{self.throughput_mb_s:7.2f} MB/s" if self.throughput_mb_s is not None
            else "    N/A"
        )
        crc = "valid" if self.crc_valid else "NOT VALID"
        return (
            f"{self.region} @ {self.freq_mhz:6.1f} MHz, {self.temp_c:5.1f} C: "
            f"latency {latency}, throughput {throughput}, CRC {crc}"
        )


@dataclass
class BatchReconfigResult:
    """Outcome of a scatter-gather batch of reconfigurations."""

    freq_mhz: float
    latency_us: float
    total_bytes: int
    #: region -> read-back CRC verdict after the whole chain completed.
    region_valid: dict = field(default_factory=dict)
    control_path_ok: bool = True

    @property
    def throughput_mb_s(self) -> float:
        if self.latency_us <= 0:
            return 0.0
        return self.total_bytes / self.latency_us

    @property
    def all_valid(self) -> bool:
        return bool(self.region_valid) and all(self.region_valid.values())

    @property
    def regions(self) -> List[str]:
        return sorted(self.region_valid)
