"""Tests for the multi-master AXI crossbar.

The interconnect used to serialise all masters through one arbiter
process; it is now a crossbar — per-master command lanes whose forward
paths overlap, pushing the genuine contention point down into the DDR
command multiplexer.  These tests pin the per-master accounting, the
lane overlap, backward compatibility for single-master timing, and the
fault hooks.
"""

import pytest

from repro.axi import AxiInterconnect, AxiSlaveError, AxiTrafficGenerator
from repro.dram import BankDramController, DramDevice
from repro.sim import Simulator


def _fabric(forward_latency_ns=160.0):
    sim = Simulator()
    controller = BankDramController(sim, DramDevice(), refresh_mode="off")
    interconnect = AxiInterconnect(
        sim, controller, forward_latency_ns=forward_latency_ns
    )
    return sim, controller, interconnect


def test_single_master_times_like_a_serial_arbiter():
    sim, controller, interconnect = _fabric()
    done_at = {}

    def driver(sim):
        yield interconnect.read(0, 64)
        done_at["ns"] = sim.now

    sim.process(driver(sim))
    sim.run()
    expected = (
        interconnect.forward_latency_ns
        + controller.timing.miss_ns
        + controller.device.transfer_ns(64)
    )
    assert done_at["ns"] == pytest.approx(expected)


def test_forward_paths_overlap_across_masters():
    """Two masters submitting at t=0 must both clear their forward path
    concurrently: total completion < 2x the serialised time."""
    sim, controller, interconnect = _fabric(forward_latency_ns=1000.0)
    finished = {}

    def driver(sim, name):
        yield interconnect.read(0, 64, master=name)
        finished[name] = sim.now

    sim.process(driver(sim, "a"))
    sim.process(driver(sim, "b"))
    sim.run()
    service = controller.timing.miss_ns + controller.device.transfer_ns(64)
    hit_service = controller.timing.hit_ns + controller.device.transfer_ns(64)
    # First completion: one forward latency + one service.
    assert min(finished.values()) == pytest.approx(1000.0 + service)
    # Second: its forward path overlapped the first's entirely; it only
    # queued behind the first *service* (same row by then: a hit).
    assert max(finished.values()) == pytest.approx(1000.0 + service + hit_service)


def test_per_master_accounting_totals():
    sim, controller, interconnect = _fabric()

    def driver(sim, name, count, size):
        for index in range(count):
            yield interconnect.read(index * size, size, master=name)

    sim.process(driver(sim, "hp0", 4, 1024))
    sim.process(driver(sim, "cpu", 2, 64))
    sim.run()
    assert interconnect.per_master_transactions == {"hp0": 4, "cpu": 2}
    assert interconnect.per_master_bytes == {"hp0": 4096, "cpu": 128}
    assert interconnect.transactions == 6
    snapshot = interconnect.metrics.to_dict()
    assert snapshot["axi_ic.master.hp0.bytes"]["value"] == 4096
    assert snapshot["axi_ic.master.cpu.bytes"]["value"] == 128
    # The crossbar lanes never queue a solo-stream master; the DDR
    # multiplexer's ledger shows where the real waiting happened.
    assert interconnect.per_master_wait_ns["hp0"] == 0.0
    assert controller.masters["hp0"].bytes == 4096
    assert controller.masters["cpu"].bytes == 128


def test_fault_error_fails_only_the_faulted_master():
    sim, controller, interconnect = _fabric()
    interconnect.fault_error = (
        lambda kind, addr, size: AxiSlaveError("slverr") if addr >= 0x1000 else None
    )
    outcomes = {}

    def driver(sim, name, addr):
        try:
            yield interconnect.read(addr, 64, master=name)
            outcomes[name] = "ok"
        except AxiSlaveError:
            outcomes[name] = "slverr"

    sim.process(driver(sim, "good", 0x0))
    sim.process(driver(sim, "bad", 0x2000))
    sim.run()
    assert outcomes == {"good": "ok", "bad": "slverr"}
    assert interconnect.metrics.to_dict()["axi_ic.error_responses"]["value"] == 1
    # The faulted transaction never reached the DDR controller.
    assert "bad" not in controller.masters


def test_fault_stall_delays_transaction():
    sim, controller, interconnect = _fabric()
    interconnect.fault_stall_ns = lambda: 5000.0
    done_at = {}

    def driver(sim):
        yield interconnect.read(0, 64)
        done_at["ns"] = sim.now

    sim.process(driver(sim))
    sim.run()
    base = (
        interconnect.forward_latency_ns
        + controller.timing.miss_ns
        + controller.device.transfer_ns(64)
    )
    assert done_at["ns"] == pytest.approx(base + 5000.0)


# ---------------------------------------------------------------- traffic --
def test_traffic_generator_is_deterministic():
    def run():
        sim, controller, interconnect = _fabric()
        generator = AxiTrafficGenerator(
            sim, interconnect, rate_mb_s=800.0, pattern="random", seed=9
        )
        generator.start()

        def horizon(sim):
            yield sim.timeout(200_000.0)
            generator.stop()

        sim.process(horizon(sim))
        sim.run()
        return generator.bursts_issued, generator.bytes_moved, sim.now

    assert run() == run()


@pytest.mark.parametrize("pattern", ["sequential", "reverse", "strided", "random"])
def test_traffic_patterns_stay_in_window(pattern):
    sim, controller, interconnect = _fabric()
    base, span = 0x1800_0000, 4 * 1024 * 1024
    generator = AxiTrafficGenerator(
        sim, interconnect, rate_mb_s=2000.0, pattern=pattern,
        base_addr=base, span_bytes=span,
    )
    for _ in range(1000):
        addr = generator._next_addr()
        assert base <= addr <= base + span - generator.burst_bytes
        generator.bursts_issued += 1


def test_traffic_generator_achieves_offered_rate_when_uncontended():
    sim, controller, interconnect = _fabric()
    generator = AxiTrafficGenerator(
        sim, interconnect, rate_mb_s=500.0, pattern="sequential"
    )
    generator.start()

    def horizon(sim):
        yield sim.timeout(1_000_000.0)  # 1 ms
        generator.stop()

    sim.process(horizon(sim))
    sim.run()
    achieved_mb_s = generator.bytes_moved / 1_000_000.0 * 1e3
    assert achieved_mb_s == pytest.approx(500.0, rel=0.05)


def test_traffic_generator_validates_arguments():
    sim, controller, interconnect = _fabric()
    with pytest.raises(ValueError):
        AxiTrafficGenerator(sim, interconnect, pattern="brownian")
    with pytest.raises(ValueError):
        AxiTrafficGenerator(sim, interconnect, rate_mb_s=-1.0)
    with pytest.raises(ValueError):
        AxiTrafficGenerator(sim, interconnect, write_fraction=1.5)
