"""Runtime invariant monitor for the simulated PDR platform.

Every hardware model in this repository exposes an optional ``monitor``
attribute (``None`` by default — a single identity check on the hot
path).  :meth:`InvariantMonitor.attach` wires one monitor into every
component of a :class:`~repro.core.PdrSystem`; from then on each kernel
step, stream operation, DMA transition and ICAP word batch is checked
against the invariants below, and the check/violation totals are
published as ``verify.*`` metrics in the system's registry.

Invariants checked
------------------

kernel
    Event time is monotonically non-decreasing; a processed event never
    fires twice; the heap never drains while non-daemon processes still
    wait (no lost wakeups — checked at quiescence).
stream (:class:`~repro.axi.stream.AxiStream`)
    Word conservation: every word pushed is either still queued or was
    consumed; reservation accounting is exact
    (``granted - released == occupancy``) and never negative; the FIFO
    occupancy stays within ``[0, fifo_words]``; burst conservation on
    the underlying channel (``put == got + level``).
dma (:class:`~repro.dma.engine.AxiDmaEngine`)
    Legal state-machine transitions only (start from idle, reset lands
    in ``HALTED|IDLE`` with no reservation and the IRQ deasserted); on
    completion the bytes pushed onto the stream equal the programmed
    transfer length exactly.
icap (:class:`~repro.icap.controller.IcapController`)
    Words are only consumed while ``busy`` is high; ``busy`` and
    ``done`` are never high simultaneously; no configuration words are
    fed after an abort until the next ``begin_transfer`` re-arms.
config memory
    After a *successful* reconfiguration the region's frames are
    bit-identical to the golden ASP encoding, and the firmware's timed
    phase spans sum to ``latency_us`` within 1 µs.
governor (:class:`~repro.resilience.FrequencyGovernor`)
    ``authorise`` never grants more than requested (and never a
    non-positive frequency); the per-(region, temperature-bucket)
    quarantine floor is monotonically non-increasing — learning can
    only tighten the clamp, never relax it.

Violations raise :class:`InvariantViolation` by default; the fuzzer runs
with ``raise_on_violation=False`` and collects them instead, so a broken
scenario can still be shrunk to a minimal reproducer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["InvariantMonitor", "InvariantViolation"]


class InvariantViolation(AssertionError):
    """A runtime invariant of the simulated platform was violated."""


class InvariantMonitor:
    """Cheap always-on assertion probes over a running simulation.

    One monitor instance watches one system (or one hand-assembled set
    of components).  ``checks`` counts every probe evaluated;
    ``violations`` keeps the human-readable record of each failure in
    detection order.
    """

    def __init__(self, raise_on_violation: bool = True):
        self.raise_on_violation = raise_on_violation
        self.checks = 0
        self.violations: List[str] = []
        self.system = None
        self._metrics_checks = None
        self._metrics_violations = None
        #: (region, temp_bucket) -> lowest quarantine floor ever seen.
        self._clamp_floor: Dict[Tuple[str, int], float] = {}
        self._attached: List[object] = []

    # -- lifecycle ----------------------------------------------------------
    def attach(self, system) -> "InvariantMonitor":
        """Wire this monitor into every component of a ``PdrSystem``."""
        self.system = system
        metrics = system.metrics
        self._metrics_checks = metrics.counter("verify.checks")
        self._metrics_violations = metrics.counter("verify.violations")
        for component in (system.sim, system.stream, system.dma, system.icap):
            component.monitor = self
            self._attached.append(component)
        return self

    def attach_governor(self, governor) -> "InvariantMonitor":
        """Additionally watch a resilience frequency governor."""
        governor.monitor = self
        self._attached.append(governor)
        return self

    def detach(self) -> None:
        for component in self._attached:
            component.monitor = None
        self._attached.clear()

    @property
    def ok(self) -> bool:
        return not self.violations

    # -- bookkeeping ---------------------------------------------------------
    def _count(self, probes: int = 1) -> None:
        self.checks += probes
        if self._metrics_checks is not None:
            self._metrics_checks.inc(probes)

    def violate(self, invariant: str, message: str) -> None:
        """Record (and by default raise) one invariant violation."""
        record = f"{invariant}: {message}"
        self.violations.append(record)
        if self._metrics_violations is not None:
            self._metrics_violations.inc()
        if self.raise_on_violation:
            raise InvariantViolation(record)

    # -- kernel -----------------------------------------------------------------
    def on_kernel_event(self, sim, when: float, event) -> None:
        """Called by ``Simulator.step`` for every popped heap entry."""
        self._count(2)
        if when < sim.now:
            self.violate(
                "kernel.time_monotonic",
                f"event scheduled at {when}ns fires at now={sim.now}ns",
            )
        if getattr(event, "_processed", False):
            self.violate(
                "kernel.single_fire",
                f"already-processed event {event!r} fired again",
            )

    def check_kernel_quiescent(self, sim) -> None:
        """No lost wakeups: an empty heap must mean no waiting processes."""
        self._count()
        if sim._live_processes > 0 and not sim._heap:
            self.violate(
                "kernel.no_lost_wakeups",
                f"heap drained with {sim._live_processes} non-daemon "
                f"process(es) still waiting",
            )

    # -- AXI stream ---------------------------------------------------------------
    def on_stream_op(self, stream) -> None:
        """Called by ``AxiStream`` after every accounting mutation."""
        self._count(5)
        occupancy = stream.fifo_words - stream.free_words
        if not 0 <= occupancy <= stream.fifo_words:
            self.violate(
                "stream.occupancy_bounds",
                f"{stream.name}: occupancy {occupancy} outside "
                f"[0, {stream.fifo_words}]",
            )
        granted = stream.stat_granted_words
        released = stream.stat_released_words
        if granted - released != occupancy:
            self.violate(
                "stream.reservation_accounting",
                f"{stream.name}: granted {granted} - released {released} "
                f"!= occupancy {occupancy}",
            )
        if released > granted:
            self.violate(
                "stream.reservation_negative",
                f"{stream.name}: released {released} words but only "
                f"{granted} were ever granted",
            )
        if stream.total_words != stream.stat_consumed_words + stream.stat_queued_words:
            self.violate(
                "stream.word_conservation",
                f"{stream.name}: produced {stream.total_words} != consumed "
                f"{stream.stat_consumed_words} + queued "
                f"{stream.stat_queued_words}",
            )
        channel = stream._bursts
        if channel.total_put != channel.total_got + channel.level:
            self.violate(
                "stream.burst_conservation",
                f"{stream.name}: bursts put {channel.total_put} != got "
                f"{channel.total_got} + queued {channel.level}",
            )

    # -- DMA engine ----------------------------------------------------------------
    def on_dma_start(self, engine) -> None:
        self._count()
        if engine.idle or engine._active is None:
            self.violate(
                "dma.start_transition",
                f"{engine.name}: transfer started but engine reads idle",
            )

    def on_dma_complete(self, engine, length: int, pushed_bytes: int) -> None:
        self._count(2)
        if pushed_bytes != length:
            self.violate(
                "dma.descriptor_bytes",
                f"{engine.name}: programmed {length} bytes but pushed "
                f"{pushed_bytes} onto the stream",
            )
        if not engine.idle:
            self.violate(
                "dma.complete_transition",
                f"{engine.name}: transfer completed but engine not idle",
            )

    def on_dma_reset(self, engine) -> None:
        self._count()
        if (
            not engine.idle
            or engine.running
            or engine._reservation is not None
            or engine.ioc_irq.asserted
        ):
            self.violate(
                "dma.reset_transition",
                f"{engine.name}: soft reset did not land in HALTED|IDLE "
                f"with reservation and IRQ cleared",
            )

    # -- ICAP ----------------------------------------------------------------------
    def on_icap_words(self, controller, words: int) -> None:
        self._count(3)
        if not controller.busy.value:
            self.violate(
                "icap.busy_protocol",
                f"{controller.name}: consumed {words} words while not busy",
            )
        if controller.aborted:
            self.violate(
                "icap.no_write_while_aborted",
                f"{controller.name}: {words} words fed after abort without "
                f"begin_transfer re-arming",
            )
        if controller.busy.value and controller.done.value:
            self.violate(
                "icap.busy_done_exclusive",
                f"{controller.name}: busy and done asserted simultaneously",
            )

    # -- system-level post-conditions ---------------------------------------------
    def check_result(self, system, region: str, asp, result) -> None:
        """Post-conditions of one completed reconfiguration attempt."""
        self._count(2)
        if result.succeeded:
            from ..fabric import encode_asp_frames

            golden = encode_asp_frames(
                system.layout.region_frame_count(region), asp
            )
            if not system.memory.region_equals(region, golden):
                self.violate(
                    "memory.golden_frames",
                    f"{region}: CRC read-back passed but frame contents "
                    f"differ from the golden {asp.name} encoding",
                )
        if result.latency_us is not None:
            timed = result.timed_phase_sum_us
            if timed is None or abs(timed - result.latency_us) > 1.0:
                self.violate(
                    "fw.phase_sum",
                    f"{region}: timed phases sum to {timed} µs but "
                    f"latency_us is {result.latency_us} µs (tolerance 1 µs)",
                )

    def check_quiescent(self, system) -> None:
        """Between transfers the engines must be verifiably idle."""
        self._count(3)
        if not system.dma.idle:
            self.violate("dma.quiescent", "DMA engine busy between transfers")
        if system.icap.busy.value:
            self.violate("icap.quiescent", "ICAP busy between transfers")
        stream = system.stream
        if stream.queued_bursts or stream.free_words != stream.fifo_words:
            self.violate(
                "stream.quiescent",
                f"{stream.name}: {stream.queued_bursts} burst(s) / "
                f"{stream.fifo_words - stream.free_words} word(s) left "
                f"in the FIFO between transfers",
            )
        self.check_kernel_quiescent(system.sim)

    # -- resilience governor ---------------------------------------------------------
    def on_governor_authorise(
        self, governor, region: str, requested: float, temp_c: float, granted: float
    ) -> None:
        self._count(2)
        if granted > requested:
            self.violate(
                "governor.authorise_clamp",
                f"{region}: authorised {granted} MHz above the requested "
                f"{requested} MHz",
            )
        if granted <= 0:
            self.violate(
                "governor.authorise_positive",
                f"{region}: authorised non-positive frequency {granted} MHz",
            )

    def on_governor_quarantine(
        self, governor, region: str, temp_bucket: int, floor_mhz: float
    ) -> None:
        self._count()
        key = (region, temp_bucket)
        previous = self._clamp_floor.get(key)
        if previous is not None and floor_mhz > previous:
            self.violate(
                "governor.clamp_monotonic",
                f"{region} tbucket {temp_bucket}: quarantine floor rose "
                f"from {previous} to {floor_mhz} MHz",
            )
        if previous is None or floor_mhz < previous:
            self._clamp_floor[key] = floor_mhz
