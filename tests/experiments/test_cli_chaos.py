"""Tests for the ``repro-pdr chaos`` subcommand."""

import contextlib
import io
import json

import pytest

from repro.chaos import SoakCaseGenerator
from repro.experiments.cli import main


def run_cli(argv):
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def test_chaos_campaign_exits_zero_and_reports():
    code, out = run_cli(["chaos", "--seed", "1", "--cases", "1"])
    assert code == 0
    assert "seed 1" in out
    assert "1 episode(s)" in out
    assert "SLO breaches: 0" in out
    assert "violations: 0" in out


def test_chaos_campaign_output_is_byte_identical():
    first = run_cli(["chaos", "--seed", "1", "--cases", "1"])
    second = run_cli(["chaos", "--seed", "1", "--cases", "1"])
    assert first == second


def test_chaos_replay_prints_episode_record():
    case = SoakCaseGenerator(1).generate(0)
    payload = json.dumps(case.to_mapping())
    code, out = run_cli(["chaos", "--replay", payload])
    assert code == 0
    record = json.loads(out)
    assert record["case"]["fault_seed"] == case.fault_seed
    assert record["faults"]["injected"] == record["faults"]["planned"]
    assert record["violations"] == []
    # Replays are deterministic down to the byte.
    assert run_cli(["chaos", "--replay", payload]) == (code, out)


def test_chaos_slo_breach_exits_one():
    code, out = run_cli(
        ["chaos", "--seed", "1", "--cases", "1", "--min-availability", "1.0"]
    )
    assert code == 1
    assert "SLO BREACHES" in out


def test_chaos_accepts_no_fail_on_unhandled():
    code, _ = run_cli(
        ["chaos", "--seed", "1", "--cases", "1", "--no-fail-on-unhandled"]
    )
    assert code == 0


def test_chaos_cannot_combine_with_experiments():
    with pytest.raises(SystemExit):
        main(["chaos", "table2"])


def test_fuzz_replay_record_lists_unhandled_failures():
    """The fuzz record schema now carries the dead-process list."""
    from repro.verify.fuzz import ScenarioGenerator

    scenario = ScenarioGenerator(1).generate(0)
    code, out = run_cli(["fuzz", "--replay", json.dumps(scenario.to_mapping())])
    assert code == 0
    record = json.loads(out)
    assert record["unhandled_failures"] == []
