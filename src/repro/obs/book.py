"""Process-wide telemetry capture for the CLI export path.

The experiment runners construct their own systems internally (often
several per experiment), so the CLI cannot reach into them for metrics
after the fact.  Instead, every system registers its
:class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.sim.trace.Tracer` with the module-level
:data:`TELEMETRY_BOOK` at construction time.

Registration is a no-op unless a capture is active, so library users pay
nothing and long-running processes cannot leak references; the CLI wraps
experiment execution in :meth:`TelemetryBook.capture` and then exports
whatever was collected (``--metrics-out`` / ``--trace-dump``).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["TELEMETRY_BOOK", "TelemetryBook"]


class TelemetryBook:
    """Collects (label, registry/tracer) pairs while a capture is active."""

    def __init__(self) -> None:
        self._active = False
        self.registries: List[Tuple[str, Any]] = []
        self.tracers: List[Tuple[str, Any]] = []

    @property
    def active(self) -> bool:
        return self._active

    # -- producer side (systems) ----------------------------------------------
    def register(self, registry, label: str = "registry") -> None:
        """Record a metrics registry (no-op when no capture is active)."""
        if not self._active:
            return
        self.registries.append((f"{label}#{len(self.registries)}", registry))

    def register_tracer(self, tracer, label: str = "trace") -> None:
        if not self._active:
            return
        self.tracers.append((f"{label}#{len(self.tracers)}", tracer))

    # -- consumer side (CLI) ----------------------------------------------------
    @contextmanager
    def capture(self):
        """Collect every registry/tracer created inside the block.

        The collected lists stay readable after the block exits (that is
        when the CLI exports them); the next capture clears them.
        """
        if self._active:
            raise RuntimeError("telemetry capture is already active")
        self.registries.clear()
        self.tracers.clear()
        self._active = True
        try:
            yield self
        finally:
            self._active = False

    def merged_dict(self, experiments: Optional[List[str]] = None) -> Dict[str, Any]:
        """One JSON-ready document covering every captured registry."""
        return {
            "schema": "repro.obs/v1",
            "experiments": list(experiments or []),
            "registries": [
                {"label": label, "metrics": registry.to_dict()}
                for label, registry in self.registries
            ],
        }

    def dump_json(
        self, path: str, experiments: Optional[List[str]] = None, indent: int = 2
    ) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.merged_dict(experiments), handle, indent=indent)
            handle.write("\n")

    def dump(
        self,
        path: str,
        format: str = "json",
        experiments: Optional[List[str]] = None,
    ) -> None:
        """Export the captured telemetry as ``json``/``openmetrics``/``chrome-trace``.

        ``json`` is the legacy merged-registry document; ``openmetrics``
        is the Prometheus text exposition of every registry;
        ``chrome-trace`` is a Perfetto-loadable trace-event file built
        from every captured tracer (spans + instants) and registry
        (series/counter tracks).
        """
        from . import export as _export

        if format == "json":
            self.dump_json(path, experiments=experiments)
        elif format == "openmetrics":
            snapshots = [
                (label, registry.to_dict())
                for label, registry in self.registries
            ]
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(_export.to_openmetrics(snapshots))
        elif format == "chrome-trace":
            snapshots = [
                (label, registry.to_dict())
                for label, registry in self.registries
            ]
            _export.dump_chrome_trace(path, self.tracers, snapshots)
        else:
            raise ValueError(f"unknown telemetry format {format!r}")

    def flame_tables(self) -> List[str]:
        """One rendered flame table per captured tracer with spans."""
        from . import profile as _profile

        out: List[str] = []
        for label, tracer in self.tracers:
            records = _profile.span_records(tracer)
            if not records:
                continue
            stats = _profile.attribute_spans(records)
            out.append(
                _profile.format_flame_table(
                    stats, title=f"sim-time profile — {label}"
                )
            )
        return out

    def tail_traces(self, count: int) -> List[str]:
        """The last ``count`` trace lines of each captured tracer, rendered."""
        out: List[str] = []
        for label, tracer in self.tracers:
            records = list(tracer.records)[-count:]
            out.append(f"--- trace {label}: last {len(records)} of {len(tracer)} records ---")
            out.extend(str(record) for record in records)
        return out


#: The process-wide book the CLI and the systems share.
TELEMETRY_BOOK = TelemetryBook()
