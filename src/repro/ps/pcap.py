"""Processor Configuration Access Port (PCAP).

The PS-side configuration path: it loads full (static) bitstreams at
boot and can also do partial reconfiguration — but through the PS DevC
DMA at a modest effective rate (~145 MB/s with driver overhead, as
commonly measured on Zynq-7000), which is precisely why the paper builds
the PL-side over-clocked ICAP path instead.

The PCAP shares the same :class:`~repro.icap.primitive.ConfigPort`
semantics as the ICAP; full-device loads additionally reset the whole
configuration memory first.
"""

from __future__ import annotations

from ..bitstream.builder import Bitstream
from ..fabric.config_memory import ConfigMemory
from ..icap.primitive import ConfigPort
from ..sim import Event, Simulator

__all__ = ["Pcap"]


class Pcap:
    """PS-driven configuration port."""

    #: Effective PCAP throughput in bytes/ns (145 MB/s: DevC DMA + driver).
    EFFECTIVE_RATE = 145e6 / 1e9
    #: Fixed driver overhead per transfer (ns).
    SETUP_NS = 25_000.0

    def __init__(self, sim: Simulator, memory: ConfigMemory):
        self.sim = sim
        self.memory = memory
        self.port = ConfigPort(memory)
        self.transfers = 0
        self.bytes_transferred = 0

    def load(self, bitstream: Bitstream) -> Event:
        """Feed a bitstream through the PCAP; value is the ConfigPort.

        The caller inspects ``port.has_error`` / ``port.desynced`` on the
        returned port exactly as with the ICAP.
        """
        done = self.sim.event(name="pcap.load")

        def transfer():
            self.port.reset()
            yield self.sim.timeout(
                self.SETUP_NS + bitstream.size_bytes / self.EFFECTIVE_RATE
            )
            self.port.feed_words(bitstream.words)
            self.transfers += 1
            self.bytes_transferred += bitstream.size_bytes
            done.succeed(self.port)

        self.sim.process(transfer(), name="pcap.transfer")
        return done

    def throughput_mb_s(self) -> float:
        """Effective PCAP rate in MB/s (for baseline comparisons)."""
        return self.EFFECTIVE_RATE * 1e3
