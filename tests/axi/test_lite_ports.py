"""Tests for AXI-Lite register files, the interconnect and the Zynq ports."""

import pytest

from repro.axi import (
    AxiAcpPort,
    AxiHpPort,
    AxiInterconnect,
    AxiLiteError,
    AxiLiteRegisterFile,
)
from repro.dram import DramController, DramDevice
from repro.sim import ClockDomain, Simulator


# ----------------------------------------------------------------- AXI-Lite --
@pytest.fixture()
def regs():
    sim = Simulator()
    clock = ClockDomain(sim, 100.0)
    return sim, AxiLiteRegisterFile(sim, clock)


def test_define_and_peek(regs):
    _sim, file = regs
    file.define(0x0, reset=0xABCD)
    assert file.peek(0x0) == 0xABCD


def test_unaligned_and_duplicate_offsets_rejected(regs):
    _sim, file = regs
    with pytest.raises(ValueError):
        file.define(0x3)
    file.define(0x4)
    with pytest.raises(ValueError):
        file.define(0x4)


def test_timed_read_write(regs):
    sim, file = regs
    file.define(0x8)
    done = {}

    def driver(sim):
        yield file.write(0x8, 0x1234)
        value = yield file.read(0x8)
        done["value"] = value
        done["time"] = sim.now

    sim.process(driver(sim))
    sim.run()
    assert done["value"] == 0x1234
    # Two 5-cycle accesses at 100 MHz = 100 ns.
    assert done["time"] == pytest.approx(100.0)


def test_write_hook_and_read_hook(regs):
    sim, file = regs
    seen = []
    file.define(0xC, on_write=seen.append)
    file.define(0x10, on_read=lambda: 0x5A)

    def driver(sim):
        yield file.write(0xC, 7)

    sim.process(driver(sim))
    sim.run()
    assert seen == [7]
    assert file.peek(0x10) == 0x5A


def test_read_only_register(regs):
    _sim, file = regs
    file.define(0x14, read_only=True)
    with pytest.raises(AxiLiteError):
        file.write(0x14, 1)


def test_unknown_offset_rejected(regs):
    _sim, file = regs
    with pytest.raises(AxiLiteError):
        file.read(0x40)


# ----------------------------------------------------- interconnect + ports --
def _memory_system():
    sim = Simulator()
    device = DramDevice()
    controller = DramController(sim, device)
    interconnect = AxiInterconnect(sim, controller)
    return sim, device, interconnect


def test_interconnect_read_returns_data():
    sim, device, interconnect = _memory_system()
    device.store(0x100, b"\xde\xad\xbe\xef")
    got = {}

    def reader(sim):
        got["data"] = yield interconnect.read(0x100, 4)

    sim.process(reader(sim))
    sim.run()
    assert got["data"] == b"\xde\xad\xbe\xef"


def test_interconnect_write_then_read():
    sim, _device, interconnect = _memory_system()
    got = {}

    def driver(sim):
        yield interconnect.write(0x2000, b"hello world!")
        got["data"] = yield interconnect.read(0x2000, 12)

    sim.process(driver(sim))
    sim.run()
    assert got["data"] == b"hello world!"


def test_interconnect_serialises_masters():
    """Two concurrent 1 KiB reads take about twice one read's time."""
    sim, _device, interconnect = _memory_system()
    finish = {}

    def reader(sim, tag):
        yield interconnect.read(0x0, 1024)
        finish[tag] = sim.now

    sim.process(reader(sim, "a"))
    sim.process(reader(sim, "b"))
    sim.run()
    assert finish["b"] > finish["a"] * 1.8


def test_hp_port_calibrated_burst_rate():
    """The HP read path must match the paper-derived ~816 MB/s for
    sequential 1 KiB bursts (DESIGN.md section 5)."""
    sim, _device, interconnect = _memory_system()
    port = AxiHpPort(sim, interconnect)
    state = {}

    def reader(sim):
        start = sim.now
        total = 128 * 1024
        addr = 0
        while addr < total:
            yield port.read(addr, 1024)
            addr += 1024
        state["rate"] = total / (sim.now - start) * 1e3  # MB/s

    sim.process(reader(sim))
    sim.run()
    assert state["rate"] == pytest.approx(816.0, rel=0.03)


def test_hp_port_raw_bandwidth():
    sim, _device, interconnect = _memory_system()
    port = AxiHpPort(sim, interconnect)
    assert port.raw_bandwidth_bytes_per_ns == pytest.approx(1.2)  # 1200 MB/s


def test_acp_port_rejects_bulk_transfers():
    sim, _device, interconnect = _memory_system()
    acp = AxiAcpPort(sim, interconnect)
    with pytest.raises(ValueError, match="cache"):
        acp.read(0, AxiAcpPort.CACHE_BYTES + 1)


def test_acp_port_low_latency_small_reads():
    """ACP beats HP for small transfers (the cache-hit path)."""
    sim, device, interconnect = _memory_system()
    device.store(0, bytes(256))
    acp = AxiAcpPort(sim, interconnect)
    hp = AxiHpPort(sim, interconnect)
    times = {}

    def run(sim):
        start = sim.now
        yield acp.read(0, 256)
        times["acp"] = sim.now - start
        start = sim.now
        yield hp.read(0, 256)
        times["hp"] = sim.now - start

    sim.process(run(sim))
    sim.run()
    assert times["acp"] < times["hp"]
