"""Typed environmental-fault taxonomy + seed-deterministic fault plans.

A :class:`FaultPlan` is a **pure function** of ``(fault_seed, horizon,
count, seu_per_ms)`` — the same contract as the fuzzer's scenario
generator: no wall clock, no global RNG state, plain-data records.  Case
``i`` of a soak campaign therefore schedules bit-identical faults in
every process, forever, which is what makes ``--replay`` and the
serial-vs-parallel oracle byte-exact.

The taxonomy covers one fault per architectural layer of the platform
(see DESIGN.md §12 for the full table):

========================  ====================================================
kind                      physical effect modelled
========================  ====================================================
``dram_bitflip``          in-flight bit flip on a DDR read burst (link noise)
``dram_latency``          DDR service-latency spike window (refresh storm)
``axi_stall``             interconnect arbitration stall window
``axi_slverr``            AXI SLVERR response on a memory-mapped transaction
``icap_lockup``           ICAPE2 transient busy lock-up (extra busy cycles)
``clock_loss_of_lock``    MMCM loses lock; output falls back until re-lock
``brownout``              supply droop clamping the usable over-clock
``seu``                   single-event upset flipping a configuration frame
========================  ====================================================

Every fault is *recoverable by design* — the point of the chaos layer is
to prove the detect→isolate→repair machinery brings the service back,
not to model unrecoverable silicon death.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

__all__ = [
    "BOARD_KILL_KIND",
    "ENVIRONMENT_KINDS",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "build_board_fault_plan",
    "build_fault_plan",
]

#: Regions the SEU generator may target (the Z-7020 floorplan's RPs).
_REGIONS = ("RP1", "RP2", "RP3", "RP4")
#: Words per region available to the SEU offset draw (matches the
#: fuzzer's ``corrupt_offset`` bound: 1304 frames x 101 words).
_REGION_WORDS = 1304 * 101

#: Deterministically scheduled environmental faults (non-SEU).
ENVIRONMENT_KINDS = (
    "dram_bitflip",
    "dram_latency",
    "axi_stall",
    "axi_slverr",
    "icap_lockup",
    "clock_loss_of_lock",
    "brownout",
)
#: The full taxonomy.
FAULT_KINDS = ENVIRONMENT_KINDS + ("seu",)

#: Hard board death — the one deliberately *unrecoverable* kind.  It is
#: never drawn by the environmental rotation (every kind above is
#: recoverable by design); only the fleet layer schedules it, and only
#: the fleet layer handles it: the board stops executing mid-run and its
#: remaining work fails over to the surviving boards
#: (:mod:`repro.fleet.health`).  The :class:`~repro.chaos.ChaosInjector`
#: does not deliver it — executors split it out of the plan before
#: arming the injector.
BOARD_KILL_KIND = "board_kill"


@dataclass(frozen=True)
class Fault:
    """One scheduled fault (plain data, canonically ordered params)."""

    kind: str
    at_us: float
    #: Sorted ``(name, value)`` pairs — hashable and canonical-JSON-stable.
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def to_mapping(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at_us": self.at_us, **dict(self.params)}


@dataclass(frozen=True)
class FaultPlan:
    """The full fault schedule of one soak episode, ordered by time."""

    fault_seed: int
    horizon_us: float
    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for fault in self.faults:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return counts

    @property
    def kinds_covered(self) -> int:
        return len({fault.kind for fault in self.faults})


def _params(**kwargs: Any) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(kwargs.items()))


def _environment_fault(rng: random.Random, kind: str, at_us: float) -> Fault:
    """Draw a recoverable magnitude for one environmental fault."""
    if kind == "dram_bitflip":
        return Fault(kind, at_us, _params(
            count=rng.randint(1, 2),
            flip_mask=1 << rng.randrange(32),
        ))
    if kind == "dram_latency":
        return Fault(kind, at_us, _params(
            window_us=round(rng.uniform(200.0, 800.0), 1),
            extra_ns=round(rng.uniform(500.0, 3000.0), 1),
        ))
    if kind == "axi_stall":
        return Fault(kind, at_us, _params(
            window_us=round(rng.uniform(200.0, 800.0), 1),
            stall_ns=round(rng.uniform(1000.0, 5000.0), 1),
        ))
    if kind == "axi_slverr":
        return Fault(kind, at_us, _params(count=1))
    if kind == "icap_lockup":
        return Fault(kind, at_us, _params(
            bursts=rng.randint(1, 2),
            cycles=rng.randint(5_000, 50_000),
        ))
    if kind == "clock_loss_of_lock":
        return Fault(kind, at_us, _params())
    if kind == "brownout":
        return Fault(kind, at_us, _params(
            ceiling_mhz=round(rng.uniform(100.0, 150.0), 1),
            duration_us=round(rng.uniform(1000.0, 5000.0), 1),
        ))
    raise ValueError(f"unknown environmental fault kind {kind!r}")


def build_fault_plan(
    fault_seed: int,
    horizon_us: float,
    fault_count: int,
    seu_per_ms: float = 0.0,
    regions: Tuple[str, ...] = _REGIONS,
) -> FaultPlan:
    """Build the deterministic fault schedule for one episode.

    Environmental faults rotate through :data:`ENVIRONMENT_KINDS` from a
    seeded starting offset — ``fault_count >= 7`` therefore guarantees
    full taxonomy coverage while smaller counts still draw a diverse
    slice.  SEUs arrive as a Poisson process at ``seu_per_ms`` (drawn
    via ``expovariate``, so the arrival times are pure functions of the
    seed too).
    """
    if horizon_us <= 0:
        raise ValueError("fault horizon must be positive")
    if fault_count < 0:
        raise ValueError("fault count cannot be negative")
    rng = random.Random(int(fault_seed) * 1_000_003 + 17)
    faults: List[Fault] = []
    start = rng.randrange(len(ENVIRONMENT_KINDS))
    for index in range(fault_count):
        kind = ENVIRONMENT_KINDS[(start + index) % len(ENVIRONMENT_KINDS)]
        at_us = round(rng.uniform(0.05, 0.85) * horizon_us, 1)
        faults.append(_environment_fault(rng, kind, at_us))
    if seu_per_ms > 0:
        at_ms = 0.0
        while True:
            at_ms += rng.expovariate(seu_per_ms)
            at_us = round(at_ms * 1e3, 1)
            if at_us > horizon_us * 0.85:
                break
            faults.append(Fault("seu", at_us, _params(
                region=rng.choice(regions),
                offset_words=rng.randrange(_REGION_WORDS),
                flip_mask=1 << rng.randrange(32),
            )))
    faults.sort(key=lambda f: (f.at_us, f.kind, f.params))
    return FaultPlan(
        fault_seed=int(fault_seed),
        horizon_us=float(horizon_us),
        faults=tuple(faults),
    )


def build_board_fault_plan(
    fault_seed: int,
    board: int,
    horizon_us: float,
    fault_count: int,
    seu_per_ms: float = 0.0,
    kill_at_us: float = None,
) -> FaultPlan:
    """Per-board fault schedule for a fleet campaign.

    The campaign seed is salted by the board index (a second large prime
    so board salts never collide with the case salts of
    :func:`build_fault_plan`), which gives every board of a fleet an
    independent — but still seed-deterministic — storm.  ``kill_at_us``
    additionally schedules a hard :data:`BOARD_KILL_KIND` fault: the
    board goes permanently dark at that point of its execution.  Kill
    faults ride in the plan as plain data like everything else, but are
    consumed by the fleet executor, not the injector.
    """
    derived = int(fault_seed) * 1_000_003 + 59 + int(board) * 7_919
    plan = build_fault_plan(derived, horizon_us, fault_count, seu_per_ms)
    faults = plan.faults
    if kill_at_us is not None:
        faults = tuple(
            sorted(
                faults + (Fault(BOARD_KILL_KIND, float(kill_at_us)),),
                key=lambda f: (f.at_us, f.kind, f.params),
            )
        )
    return FaultPlan(
        fault_seed=derived,
        horizon_us=float(horizon_us),
        faults=faults,
    )
