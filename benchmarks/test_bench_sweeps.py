"""Benchmark E9: the sweep execution engine itself.

Runs one small reconfiguration sweep three ways — serial cold, parallel
(``jobs=2``), and a cached re-run — asserts the engine's core guarantee
(parallel and cached results identical to serial), and records suite
wall-clock plus per-point events/s to ``BENCH_sweeps.json`` at the repo
root so future PRs can see the perf curve.
"""

import json
import os
import time

from repro.exec import ResultCache, SweepRunner, SweepSpec
from repro.experiments.points import asp_descriptor, reconfigure_point
from repro.experiments.table1 import WORKLOAD_ASP

from conftest import run_once

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPORT_PATH = os.path.join(_REPO_ROOT, "BENCH_sweeps.json")

_FREQS = [100.0, 200.0, 320.0]


def _sweep_spec():
    workload = asp_descriptor(WORKLOAD_ASP)
    return SweepSpec.map(
        "bench",
        reconfigure_point,
        [
            dict(region="RP1", freq_mhz=freq, temp_c=40.0, workload=workload)
            for freq in _FREQS
        ],
        labels=[f"bench@{freq:g}MHz" for freq in _FREQS],
    )


def _run_all_modes(tmp_dir):
    spec = _sweep_spec()
    report = {}

    t0 = time.perf_counter()
    serial = SweepRunner(jobs=1).run(spec)
    report["serial"] = {
        "wall_s": round(time.perf_counter() - t0, 3),
        # Per-point latency rides along so `bench --check` can gate the
        # simulated physics, not just the kernel event counts.
        "points": [
            {**stat.to_dict()}
            if result.latency_us is None
            else {**stat.to_dict(), "latency_us": result.latency_us}
            for stat, result in zip(serial.stats, serial.values)
        ],
    }

    t0 = time.perf_counter()
    parallel = SweepRunner(jobs=2).run(spec)
    report["parallel_jobs2"] = {"wall_s": round(time.perf_counter() - t0, 3)}

    cache = ResultCache(os.path.join(tmp_dir, "sweep-cache"))
    cached_runner = SweepRunner(jobs=1, cache=cache)
    cached_runner.run(spec)  # populate
    t0 = time.perf_counter()
    cached = cached_runner.run(spec)
    report["cached_rerun"] = {
        "wall_s": round(time.perf_counter() - t0, 3),
        "cache_hits": cached.cache_hits,
    }
    return serial, parallel, cached, report


def test_bench_sweep_engine(benchmark, tmp_path):
    serial, parallel, cached, report = run_once(
        benchmark, _run_all_modes, str(tmp_path)
    )

    # The engine's core guarantee: execution mode never changes results.
    assert parallel.values == serial.values
    assert cached.values == serial.values
    assert cached.cache_hits == len(_FREQS) and cached.simulated == 0

    # The physics stayed put: the paper's robust region reconfigures
    # successfully, the over-clocked point fails CRC.
    by_freq = dict(zip(_FREQS, serial.values))
    assert by_freq[200.0].crc_valid
    assert not by_freq[320.0].crc_valid

    # Deterministic kernel: every point reports the same event count on
    # every run, so events/s is a clean single-run throughput measure.
    for stat in serial.stats:
        assert stat.events > 0 and stat.events_per_s > 0

    payload = {
        "generated_by": "benchmarks/test_bench_sweeps.py",
        "host_cpus": os.cpu_count(),
        "sweep": {
            "experiment": "reconfigure_point",
            "frequencies_mhz": _FREQS,
            "points": len(_FREQS),
        },
        "runs": report,
    }
    with open(_REPORT_PATH, "w") as handle:
        json.dump({**payload, "milestones": _MILESTONES}, handle, indent=2)
        handle.write("\n")


#: Measured once per tentpole change (see EXPERIMENTS.md for method);
#: kept here so the perf history survives report regeneration.
_MILESTONES = [
    {
        "date": "2026-08-05",
        "change": "parallel sweep engine + DES kernel fast path",
        "host_cpus": 1,
        "cli_all_serial_s": {"before": 94.3, "after": 67.3},
        "cli_all_jobs2_s": 55.6,
        "cold_single_point_s": {"before": 0.403, "after": 0.322},
        "warm_single_point_s": 0.180,
        "cached_table2_cli_s": {"cold": 1.7, "cached": 0.21},
        "events_per_reconfigure_point": 7297,
        "note": (
            "1-core container: jobs=2 gain comes from overlapping "
            "process setup, not true parallelism; byte-identity of the "
            "parallel and cached reports verified against serial."
        ),
    }
]
