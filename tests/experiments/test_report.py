"""Tests for the report formatting helpers."""

import pytest

from repro.experiments.report import ExperimentReport, fmt, fmt_err, format_table


def test_fmt_values_and_na():
    assert fmt(3.14159, 2) == "3.14"
    assert fmt(None) == "N/A"
    assert fmt(None, na="-") == "-"
    assert fmt(790.138, 0) == "790"


def test_fmt_err():
    assert fmt_err(101.0, 100.0) == "+1.0%"
    assert fmt_err(99.0, 100.0) == "-1.0%"
    assert fmt_err(None, 100.0) == "-"
    assert fmt_err(100.0, None) == "-"
    assert fmt_err(100.0, 0.0) == "-"


def test_format_table_alignment():
    text = format_table(
        ["MHz", "MB/s"],
        [["100", "399.06"], ["280", "790.14"]],
    )
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, two rows
    assert lines[0].endswith("MB/s")
    # All rows are the same width (right-aligned grid).
    assert len({len(line) for line in lines}) == 1


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["1"]])


def test_format_table_empty_rows():
    text = format_table(["a", "b"], [])
    assert "a" in text and "b" in text


def test_experiment_report_rendering():
    report = ExperimentReport("My Experiment")
    report.add("first section")
    report.add("second section")
    text = report.render()
    assert text.index("My Experiment") < text.index("first section")
    assert text.index("first section") < text.index("second section")
    assert "=" * 40 in text
