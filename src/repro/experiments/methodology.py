"""The paper's closing methodology, generalised.

"The power dissipation and temperature analysis ... can be extended to
any IP block implemented in the FPGA to determine its best trade-off
throughput vs. energy, and design the most power efficient accelerator
for the specific application and platform."

This module implements that methodology as a reusable procedure:

1. sweep the block's clock across candidate frequencies,
2. measure throughput at each point (``None`` marks a failed point —
   past fmax, CRC error, no completion),
3. measure (or model) power at each point,
4. rank by performance-per-watt and report the knee.

``characterize_pdr_system`` binds the procedure to the paper's own PDR
block, reproducing Table II's conclusion; ``characterize_block`` accepts
any user-supplied measurement callable, so the same harness tunes, say, a
filter ASP or a compression engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core import PdrSystem
from ..fabric import Asp, FirFilterAsp
from ..power import PowerModel

from .report import ExperimentReport, fmt, format_table

__all__ = [
    "OperatingPoint",
    "Characterization",
    "characterize_block",
    "characterize_pdr_system",
    "format_report",
    "main",
]


@dataclass(frozen=True)
class OperatingPoint:
    """One (frequency, throughput, power) sample of a block."""

    freq_mhz: float
    throughput_mb_s: Optional[float]  #: None = the block failed here
    power_w: float

    @property
    def ok(self) -> bool:
        return self.throughput_mb_s is not None

    @property
    def efficiency_mb_j(self) -> Optional[float]:
        if self.throughput_mb_s is None or self.power_w <= 0:
            return None
        return self.throughput_mb_s / self.power_w


@dataclass
class Characterization:
    """Result of sweeping one block."""

    block_name: str
    points: List[OperatingPoint]

    def working_points(self) -> List[OperatingPoint]:
        return [p for p in self.points if p.ok]

    def best_efficiency(self) -> OperatingPoint:
        """The most power-efficient working point (the paper's target)."""
        working = self.working_points()
        if not working:
            raise ValueError(f"{self.block_name}: no working operating points")
        return max(working, key=lambda p: p.efficiency_mb_j)

    def best_throughput(self) -> OperatingPoint:
        working = self.working_points()
        if not working:
            raise ValueError(f"{self.block_name}: no working operating points")
        return max(working, key=lambda p: p.throughput_mb_s)

    def max_working_frequency(self) -> float:
        working = self.working_points()
        if not working:
            raise ValueError(f"{self.block_name}: no working operating points")
        return max(p.freq_mhz for p in working)

    def headroom_worth_it(self, tolerance: float = 0.02) -> bool:
        """Is the fastest point within ``tolerance`` of the most efficient
        one's throughput?  If so, chasing frequency buys nothing."""
        best_eff = self.best_efficiency()
        best_thr = self.best_throughput()
        gain = best_thr.throughput_mb_s / best_eff.throughput_mb_s - 1.0
        return gain > tolerance


def characterize_block(
    block_name: str,
    measure_throughput: Callable[[float], Optional[float]],
    power_model: PowerModel,
    frequencies: Sequence[float],
    temp_c: float = 40.0,
) -> Characterization:
    """Run the methodology on an arbitrary block.

    ``measure_throughput(freq)`` returns MB/s or ``None`` on failure;
    power comes from the shared power model at the block's clock.
    """
    points = []
    for freq in frequencies:
        throughput = measure_throughput(freq)
        points.append(
            OperatingPoint(
                freq_mhz=freq,
                throughput_mb_s=throughput,
                power_w=power_model.pdr_power_w(freq, temp_c),
            )
        )
    return Characterization(block_name=block_name, points=points)


def characterize_pdr_system(
    system: Optional[PdrSystem] = None,
    frequencies: Sequence[float] = (100, 140, 180, 200, 240, 280, 310),
    region: str = "RP1",
    asp: Optional[Asp] = None,
) -> Characterization:
    """The methodology applied to the paper's own PDR block."""
    system = system or PdrSystem()
    system.set_die_temperature(40.0)
    workload = asp or FirFilterAsp([1, 2, 3])

    def measure(freq: float) -> Optional[float]:
        result = system.reconfigure(region, workload, freq)
        if not result.succeeded:
            return None
        return result.throughput_mb_s

    return characterize_block(
        "over-clocked DMA+ICAP PDR",
        measure,
        system.power_model,
        frequencies,
    )


def format_report(characterization: Characterization) -> str:
    """Render the operating-point table and verdicts."""
    report = ExperimentReport(
        f"Operating-point methodology — {characterization.block_name}"
    )
    rows = []
    for point in characterization.points:
        rows.append(
            [
                f"{point.freq_mhz:g}",
                fmt(point.throughput_mb_s, 1, na="failed"),
                fmt(point.power_w),
                fmt(point.efficiency_mb_j, 0, na="-"),
            ]
        )
    report.add(format_table(["MHz", "MB/s", "P [W]", "MB/J"], rows))
    best = characterization.best_efficiency()
    fastest = characterization.best_throughput()
    report.add(
        f"most power-efficient point: {best.freq_mhz:g} MHz "
        f"({best.efficiency_mb_j:.0f} MB/J)\n"
        f"fastest working point:      {fastest.freq_mhz:g} MHz "
        f"({fastest.throughput_mb_s:.1f} MB/s)\n"
        f"frequency headroom beyond the efficient point is "
        f"{'worth it' if characterization.headroom_worth_it() else 'NOT worth it'} "
        f"(<2% throughput gain)"
    )
    return report.render()


def main() -> None:
    """Characterise the PDR block and print the report."""
    print(format_report(characterize_pdr_system()))


if __name__ == "__main__":
    main()
