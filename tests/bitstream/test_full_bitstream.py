"""Tests for full-device (static) bitstreams and the PCAP boot flow."""

import pytest

from repro.bitstream import FRAME_WORDS, BitstreamBuilder, make_z7020_layout
from repro.fabric import ConfigMemory, FirFilterAsp, encode_asp_frames
from repro.icap import ConfigPort
from repro.ps import Pcap
from repro.sim import Simulator


@pytest.fixture(scope="module")
def layout():
    return make_z7020_layout()


def _static_design(layout):
    """A full-device frame image with an ASP pre-placed in RP1."""
    frames = [[0] * FRAME_WORDS for _ in range(layout.total_frames)]
    asp_frames = encode_asp_frames(
        layout.region_frame_count("RP1"), FirFilterAsp([5, 5])
    )
    for far, frame in zip(layout.region_frames("RP1"), asp_frames):
        frames[layout.frame_index(far)] = list(frame)
    return frames


def test_full_bitstream_covers_device(layout):
    builder = BitstreamBuilder(layout)
    bitstream = builder.build_full()
    assert bitstream.frame_count == layout.total_frames
    # ~4.5 MB static configuration for the Z-7020-class device.
    assert bitstream.size_bytes > 4_000_000
    assert bitstream.meta["full"] is True


def test_full_bitstream_validation(layout):
    builder = BitstreamBuilder(layout)
    with pytest.raises(ValueError, match="frames"):
        builder.build_full(frame_data=[[0] * FRAME_WORDS])
    bad = [[0] * FRAME_WORDS for _ in range(layout.total_frames)]
    bad[3] = [0] * 7
    with pytest.raises(ValueError, match="words"):
        builder.build_full(frame_data=bad)


def test_full_load_through_config_port(layout):
    builder = BitstreamBuilder(layout)
    frames = _static_design(layout)
    bitstream = builder.build_full(frames)
    memory = ConfigMemory(layout)
    port = ConfigPort(memory)
    port.feed_words(bitstream.words)
    assert port.desynced
    assert not port.has_error
    assert port.frames_committed == layout.total_frames
    # The pre-placed ASP decodes and computes.
    from repro.fabric import RpRegion

    region = RpRegion(memory, "RP1")
    assert region.compute([1, 0]) == [5, 5]


def test_pcap_boots_static_design(layout):
    """Boot flow: the PS loads the full static image through the PCAP
    before any ICAP partial reconfiguration can happen."""
    sim = Simulator()
    memory = ConfigMemory(layout)
    pcap = Pcap(sim, memory)
    bitstream = BitstreamBuilder(layout).build_full(_static_design(layout))

    def boot(sim):
        port = yield pcap.load(bitstream)
        return port

    port = sim.run_until(sim.process(boot(sim)))
    assert port.desynced and not port.has_error
    # Static load at ~145 MB/s: ~31 ms for the ~4.5 MB image.
    assert sim.now == pytest.approx(
        Pcap.SETUP_NS + bitstream.size_bytes / Pcap.EFFECTIVE_RATE, rel=0.01
    )
