"""Tests for the repro-pdr command-line interface."""

import contextlib
import io

import pytest

from repro.experiments.cli import EXPERIMENTS, main


def test_experiment_registry_covers_every_artifact():
    assert set(EXPERIMENTS) == {
        "table1",
        "table2",
        "table3",
        "fig5",
        "fig6",
        "temp-stress",
        "proposed",
        "methodology",
        "campaign",
        "sensitivity",
        "recovery",
    }


def test_cli_runs_single_experiment():
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(["table2"])
    out = buffer.getvalue()
    assert code == 0
    assert "Table II" in out
    assert "200 MHz" in out


def test_cli_runs_multiple_experiments():
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(["table3", "methodology"])
    out = buffer.getvalue()
    assert code == 0
    assert "Table III" in out
    assert "methodology" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_cli_requires_an_argument():
    with pytest.raises(SystemExit):
        main([])


def test_cli_metrics_out_writes_telemetry_json(tmp_path):
    import json

    path = tmp_path / "metrics.json"
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(["table2", "--metrics-out", str(path)])
    assert code == 0
    assert f"to {path}" in buffer.getvalue()
    doc = json.loads(path.read_text())
    assert doc["schema"] == "repro.obs/v1"
    assert doc["experiments"] == ["table2"]
    assert doc["registries"], "at least one system registry captured"
    merged = {}
    for entry in doc["registries"]:
        merged.update(entry["metrics"])
    assert merged["dma.bytes_moved"]["value"] > 0
    assert merged["dma2icap.fifo_depth_words"]["count"] > 0
    assert merged["icap.stall_cycles"]["value"] > 0
    assert merged["crc_scrub.scrubs_run"]["value"] > 0


def test_cli_trace_dump_prints_records():
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(["table2", "--trace-dump", "5"])
    out = buffer.getvalue()
    assert code == 0
    assert "--- trace" in out
    assert "last 5 of" in out


def test_cli_metrics_out_openmetrics(tmp_path):
    path = tmp_path / "metrics.om"
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(["table2", "--metrics-out", str(path), "--format", "openmetrics"])
    assert code == 0
    lines = path.read_text().rstrip().splitlines()
    assert lines[-1] == "# EOF"
    assert any(line.startswith("# TYPE repro_") for line in lines)


def test_cli_metrics_out_chrome_trace_and_profile(tmp_path):
    import json

    path = tmp_path / "trace.json"
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(
            ["table2", "--metrics-out", str(path), "--format", "chrome-trace",
             "--profile"]
        )
    assert code == 0
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    begins = sum(1 for e in events if e["ph"] == "B")
    ends = sum(1 for e in events if e["ph"] == "E")
    assert begins == ends > 0
    out = buffer.getvalue()
    assert "sim-time profile" in out
    assert "reconfigure" in out


def test_cli_bench_requires_check():
    buffer = io.StringIO()
    with contextlib.redirect_stderr(buffer):
        code = main(["bench"])
    assert code == 2
    assert "--check" in buffer.getvalue()


def test_cli_report_subcommand_aggregates_campaign(tmp_path):
    import json

    path = tmp_path / "campaign.json"
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(["report", "--out", str(path)])
    assert code == 0
    out = buffer.getvalue()
    assert "Campaign report" in out
    assert "latency_us" in out and "Critical paths" in out
    doc = json.loads(path.read_text())
    assert doc["schema"] == "repro.obs.campaign/v1"
    assert doc["points"] >= 50
    assert doc["results"]["latency_us"]["p99"] > 0
    assert sum(doc["critical_paths"].values()) == doc["points"]


def test_cli_report_includes_phase_breakdown():
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        main(["table1"])
    out = buffer.getvalue()
    assert "firmware phase breakdown" in out
    assert "dma_transfer" in out
    assert "timed sum" in out
