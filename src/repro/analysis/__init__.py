"""Series utilities, change-point (knee) detection and ASCII plotting."""

from .asciiplot import render_plot
from .series import Series, knee_frequency, linear_fit
from .stats import (
    Summary,
    group_results_by_frequency,
    nearest_rank,
    summarize,
    summarize_results,
)

__all__ = [
    "Series",
    "Summary",
    "group_results_by_frequency",
    "knee_frequency",
    "linear_fit",
    "nearest_rank",
    "render_plot",
    "summarize",
    "summarize_results",
]
