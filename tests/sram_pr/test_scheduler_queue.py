"""Tests for the PS scheduler's queue management."""

import pytest

from repro.fabric import Aes128Asp, FirFilterAsp, VectorScaleAsp
from repro.sram_pr import SramPrSystem


@pytest.fixture()
def system():
    return SramPrSystem()


def test_empty_queue_rejected(system):
    with pytest.raises(RuntimeError, match="empty"):
        system.sim.run_until(
            system.sim.process(system.scheduler.preload_next())
        )


def test_queue_is_fifo(system):
    first = system.prepare_image("RP1", FirFilterAsp([1]), compress=False)
    second = system.prepare_image("RP2", Aes128Asp([1, 2, 3, 4]), compress=False)
    system.scheduler.enqueue(first)
    system.scheduler.enqueue(second)
    assert system.scheduler.queue_depth == 2
    assert system.scheduler.pending() == [first.name, second.name]

    slot = system.sim.run_until(
        system.sim.process(system.scheduler.preload_next())
    )
    assert slot.region == "RP1"
    assert system.scheduler.queue_depth == 1
    slot = system.sim.run_until(
        system.sim.process(system.scheduler.preload_next())
    )
    assert slot.region == "RP2"
    assert system.scheduler.queue_depth == 0


def test_back_to_back_preload_activate_cycles(system):
    """Three images through the one-slot SRAM, sequentially."""
    asps = [FirFilterAsp([1]), VectorScaleAsp(2, 0), FirFilterAsp([3])]
    for asp in asps:
        result = system.reconfigure("RP3", asp, compress=False)
        assert result.crc_valid
    # The last ASP wins, and it computes.
    assert system.run_asp("RP3", [1, 0]) == [3, 0]
    assert system.scheduler.preloads_completed == 3
    assert system.pr_controller.activations == 3


def test_preload_throughput_is_dram_bound(system):
    pending = system.prepare_image("RP4", FirFilterAsp([9]), compress=False)
    system.scheduler.enqueue(pending)
    start = system.sim.now
    system.sim.run_until(system.sim.process(system.scheduler.preload_next()))
    elapsed_us = (system.sim.now - start) / 1e3
    rate = pending.word_count * 4 / elapsed_us  # MB/s
    # The DRAM path (~816 MB/s via 4 KiB bursts) bounds the fill, not the
    # much faster SRAM write port (1237.5 MB/s).
    assert 700 < rate < 1100
