"""Synthetic AXI traffic generator (CPU / second-tenant masters).

A closed-loop, rate-paced master for contention experiments: it issues
one burst through the crossbar, waits for completion, then sleeps out
the remainder of the issue period (``burst_bytes / rate``).  When the
memory system is slower than the requested rate the generator runs
back-to-back — the offered load saturates instead of queueing unbounded
requests, which keeps campaigns deterministic and bounded.

Address patterns:

* ``"sequential"`` — bursts walk linearly up through the window,
  wrapping; friendly to open-page row buffers (mostly hits).
* ``"reverse"`` — walks linearly *down* through the window: the same
  row locality, but the bank pointer sweeps opposite to a co-resident
  upward stream, so two streams never phase-lock into the same bank
  (the relative bank drift is the sum of their rates, not the
  difference — collisions stay brief at every rate).
* ``"strided"`` — each burst jumps ``stride_bytes`` (default: one DRAM
  row plus one burst, so consecutive bursts land in different rows);
  hostile to row buffers and to co-resident streams (conflicts).
* ``"random"`` — seeded uniform burst-aligned addresses.

Deterministic: the request stream is a pure function of the constructor
arguments, so serial and ``--jobs N`` campaign runs stay byte-identical.
"""

from __future__ import annotations

import random
from typing import Optional

from ..sim import Simulator

from .interconnect import AxiInterconnect

__all__ = ["AxiTrafficGenerator", "TRAFFIC_PATTERNS"]

TRAFFIC_PATTERNS = ("sequential", "reverse", "strided", "random")


class AxiTrafficGenerator:
    """Deterministic rate-paced memory traffic on one crossbar master."""

    def __init__(
        self,
        sim: Simulator,
        interconnect: AxiInterconnect,
        master: str = "tenant0",
        rate_mb_s: float = 400.0,
        burst_bytes: int = 1024,
        pattern: str = "strided",
        stride_bytes: Optional[int] = None,
        base_addr: int = 0x1800_0000,
        span_bytes: int = 64 * 1024 * 1024,
        write_fraction: float = 0.0,
        seed: int = 1,
    ):
        if pattern not in TRAFFIC_PATTERNS:
            raise ValueError(f"pattern must be one of {TRAFFIC_PATTERNS}")
        if rate_mb_s < 0:
            raise ValueError("rate cannot be negative")
        if burst_bytes <= 0 or span_bytes < burst_bytes:
            raise ValueError("burst must be positive and fit in the span")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        self.sim = sim
        self.interconnect = interconnect
        self.master = master
        self.rate_mb_s = rate_mb_s
        self.burst_bytes = burst_bytes
        self.pattern = pattern
        row_bytes = interconnect.controller.device.timing.row_bytes
        self.stride_bytes = (
            stride_bytes if stride_bytes is not None else row_bytes + burst_bytes
        )
        self.base_addr = base_addr
        self.span_bytes = span_bytes
        self.write_fraction = write_fraction
        self._rng = random.Random(seed * 1_000_003 + 101)
        self._payload = bytes(burst_bytes)
        self.bursts_issued = 0
        self.bytes_moved = 0
        self._running = False

    # 1 MB/s = 1e6 bytes / 1e9 ns.
    @property
    def period_ns(self) -> float:
        if self.rate_mb_s <= 0:
            return float("inf")
        return self.burst_bytes / (self.rate_mb_s * 1e-3)

    def start(self) -> None:
        """Begin issuing traffic (idempotent; no-op at zero rate)."""
        if self._running or self.rate_mb_s <= 0:
            return
        self._running = True
        self.sim.process(
            self._run(),
            name=f"traffic.{self.master}",
            daemon=True,
        )

    def stop(self) -> None:
        """Stop after the in-flight burst (if any) completes."""
        self._running = False

    def _next_addr(self) -> int:
        slots = self.span_bytes // self.burst_bytes
        if self.pattern == "random":
            return self.base_addr + self._rng.randrange(slots) * self.burst_bytes
        if self.pattern == "sequential":
            return self.base_addr + (self.bursts_issued % slots) * self.burst_bytes
        if self.pattern == "reverse":
            return self.base_addr + ((-1 - self.bursts_issued) % slots) * self.burst_bytes
        offset = self.bursts_issued * self.stride_bytes
        return self.base_addr + offset % (self.span_bytes - self.burst_bytes + 1)

    def _run(self):
        period = self.period_ns
        while self._running:
            issued = self.sim.now
            addr = self._next_addr()
            if self.write_fraction and self._rng.random() < self.write_fraction:
                yield self.interconnect.write(addr, self._payload, master=self.master)
            else:
                yield self.interconnect.read(addr, self.burst_bytes, master=self.master)
            self.bursts_issued += 1
            self.bytes_moved += self.burst_bytes
            gap = period - (self.sim.now - issued)
            if gap > 0:
                yield self.sim.timeout(gap)
