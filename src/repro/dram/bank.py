"""Bank-aware DDR controller: bank machines, refresh engine, multiplexer.

Replaces the flat-latency FIFO server as the default PS memory
controller.  Three cooperating pieces, mirroring a real DDR controller's
split (and the gram-style decomposition named in ROADMAP.md):

* **Bank machines** — per-bank open-row state lives in
  :class:`~repro.dram.device.DramDevice` (so snapshot fork/restore
  carries it).  Each access is classified hit / miss / conflict and
  priced from :class:`BankTiming`:

  ==========  =============================  =========================
  outcome     commands                       latency
  ==========  =============================  =========================
  hit         CAS                            tCAS
  miss        ACTIVATE + CAS                 tRCD + tCAS
  conflict    PRECHARGE + ACTIVATE + CAS     tRP + tRCD + tCAS
  ==========  =============================  =========================

  Under the **closed-page** policy every access auto-precharges, so no
  row stays open and every access pays tRCD + tCAS.

* **Refresh engine** — one all-banks refresh is *due* every tREFI and
  occupies the command bus for tRFC.  ``refresh_mode="engine"`` models
  that deterministically: refresh *k* becomes due at ``k·tREFI``, runs
  at ``max(due, previous refresh end, last service end)``, and any
  request arriving while the engine holds the bus stalls for the
  remainder (counted in ``refresh_stall_ns``).  ``refresh_mode="lazy"``
  reproduces the legacy flat controller's cheaper accounting (refreshes
  that fell in idle gaps are free; at most one tRFC charged per busy
  period) — it is the default so the seed campaigns stay byte-identical.
  ``refresh_mode="off"`` disables refresh entirely.

* **Command multiplexer** — per-master FIFO queues drained round-robin
  onto the single shared command/data bus.  One burst occupies the bus
  end-to-end (stall + activate/precharge + CAS + data transfer); that
  serialisation is exactly the multi-master contention the paper's
  memory-path bottleneck comes from.  Per-master bytes / wait ledgers
  feed the crossbar's bandwidth accounting.

Calibration note: the defaults (tCAS 202, tRCD 100, **tRP 0**) decompose
the legacy lumped latencies — row hit 202 ns, row miss 302 ns — which
already folded precharge into the activate figure, so by default
conflict == miss == 302 ns and every access pattern times identically to
the flat model.  Set ``dram_trp_ns`` (e.g. 100 ns) for a distinct
conflict penalty, as the contention campaign does.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from ..obs import MetricsRegistry
from ..sim import Event, Simulator

from .controller import MasterLedger, MemoryRequest
from .device import DramDevice

__all__ = [
    "BankDramController",
    "BankTiming",
    "MasterLedger",
    "PAGE_POLICIES",
    "REFRESH_MODES",
]

PAGE_POLICIES = ("open", "closed")
REFRESH_MODES = ("off", "lazy", "engine")


@dataclass(frozen=True)
class BankTiming:
    """Decomposed DDR command timings (ns)."""

    #: Column access: CAS-to-data latency, as seen end-to-end at the port.
    tcas_ns: float = 202.0
    #: ACTIVATE-to-CAS (row open) latency.
    trcd_ns: float = 100.0
    #: PRECHARGE (row close) latency.  0 by default: the legacy lumped
    #: row-miss figure already folds precharge into activate.
    trp_ns: float = 0.0
    #: Average refresh interval — one refresh is due every tREFI.
    trefi_ns: float = 7800.0
    #: Refresh cycle time — the command bus is held for tRFC per refresh.
    trfc_ns: float = 160.0

    @property
    def hit_ns(self) -> float:
        return self.tcas_ns

    @property
    def miss_ns(self) -> float:
        return self.trcd_ns + self.tcas_ns

    @property
    def conflict_ns(self) -> float:
        return self.trp_ns + self.trcd_ns + self.tcas_ns

    def access_ns(self, outcome: str) -> float:
        if outcome == "hit":
            return self.hit_ns
        if outcome == "miss":
            return self.miss_ns
        return self.conflict_ns


class BankDramController:
    """Bank-aware DDR controller with a multi-master command multiplexer.

    API-compatible with the legacy :class:`~repro.dram.controller.
    DramController` (``read``/``write`` returning completion events, the
    same chaos fault hooks), plus a ``master=`` tag that routes each
    burst into its own queue for round-robin arbitration and per-master
    accounting.
    """

    def __init__(
        self,
        sim: Simulator,
        device: Optional[DramDevice] = None,
        name: str = "ddrc",
        metrics: Optional[MetricsRegistry] = None,
        timing: Optional[BankTiming] = None,
        page_policy: str = "open",
        refresh_mode: str = "lazy",
    ):
        if page_policy not in PAGE_POLICIES:
            raise ValueError(f"page_policy must be one of {PAGE_POLICIES}")
        if refresh_mode not in REFRESH_MODES:
            raise ValueError(f"refresh_mode must be one of {REFRESH_MODES}")
        self.sim = sim
        self.device = device or DramDevice()
        self.name = name
        self.timing = timing or BankTiming()
        self.page_policy = page_policy
        self.refresh_mode = refresh_mode
        self._queues: Dict[str, Deque[MemoryRequest]] = {}
        self._rr_order: List[str] = []
        self._rr_index = 0
        self._pending = 0
        self._wakeup: Event = sim.event(name=f"{name}.wake")
        self.requests_served = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_ns = 0.0
        self.queue_wait_ns = 0.0
        self.refresh_stall_ns = 0.0
        self.refreshes_completed = 0
        self.masters: Dict[str, MasterLedger] = {}
        # Lazy-refresh state (legacy accounting).
        self._last_refresh_ns = 0.0
        # Engine-refresh state: next due time, bus-held-until, last
        # service end (a refresh can't preempt an in-flight burst).
        self._refresh_next_ns = self.timing.trefi_ns
        self._refresh_busy_until_ns = 0.0
        self._service_end_ns = 0.0
        self.metrics = metrics if metrics is not None else MetricsRegistry(now_fn=lambda: sim.now)
        self._m_requests = self.metrics.counter(f"{name}.requests_served")
        self._m_bytes_read = self.metrics.counter(f"{name}.bytes_read")
        self._m_bytes_written = self.metrics.counter(f"{name}.bytes_written")
        self._m_queue_depth = self.metrics.gauge(f"{name}.queue_depth")
        self._m_queue_wait_us = self.metrics.histogram(f"{name}.queue_wait_us")
        self._m_service_us = self.metrics.histogram(f"{name}.service_us")
        self._m_row_hits = self.metrics.counter(f"{name}.row_hits")
        self._m_row_misses = self.metrics.counter(f"{name}.row_misses")
        self._m_row_conflicts = self.metrics.counter(f"{name}.row_conflicts")
        self._m_refresh_stall = self.metrics.counter(f"{name}.refresh_stall_ns")
        self._m_refreshes = self.metrics.counter(f"{name}.refreshes_completed")
        self._m_queue_wait_ns = self.metrics.counter(f"{name}.queue_wait_ns")
        self._m_master_bytes: Dict[str, object] = {}
        self._m_master_wait: Dict[str, object] = {}
        self._m_queue_depth.set(0.0)
        #: Optional fault hooks — same contract as the legacy controller
        #: (installed unchanged by :mod:`repro.chaos`).
        self.fault_latency_ns: Optional[Callable[[MemoryRequest], float]] = None
        self.fault_read_tamper: Optional[
            Callable[[MemoryRequest, bytes], bytes]
        ] = None
        #: Optional :class:`repro.verify.InvariantMonitor` (set by attach).
        self.monitor = None
        sim.process(self._serve(), name=f"{name}.server", daemon=True)

    # -- master-facing API ----------------------------------------------------
    def read(self, addr: int, size: int, master: str = "m0") -> Event:
        """Submit a read burst; the event's value is the data bytes."""
        request = MemoryRequest(
            addr=addr,
            size=size,
            done=self.sim.event(),
            submitted_ns=self.sim.now,
            master=master,
        )
        self._submit(request)
        return request.done

    def write(self, addr: int, data: bytes, master: str = "m0") -> Event:
        """Submit a write burst; the event fires when committed."""
        request = MemoryRequest(
            addr=addr,
            size=len(data),
            is_write=True,
            data=data,
            done=self.sim.event(),
            submitted_ns=self.sim.now,
            master=master,
        )
        self._submit(request)
        return request.done

    @property
    def queue_depth(self) -> int:
        return self._pending

    # -- command multiplexer -------------------------------------------------
    def _submit(self, request: MemoryRequest) -> None:
        master = request.master
        if master not in self._queues:
            self._queues[master] = deque()
            self._rr_order.append(master)
            self.masters[master] = MasterLedger()
            self._m_master_bytes[master] = self.metrics.counter(
                f"{self.name}.master.{master}.bytes"
            )
            self._m_master_wait[master] = self.metrics.counter(
                f"{self.name}.master.{master}.wait_ns"
            )
        self._queues[master].append(request)
        self._pending += 1
        self._m_queue_depth.set(self._pending)
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _next_request(self) -> MemoryRequest:
        """Round-robin pick: resume scanning after the last-served master."""
        count = len(self._rr_order)
        for offset in range(count):
            index = (self._rr_index + offset) % count
            master = self._rr_order[index]
            queue = self._queues[master]
            if queue:
                self._rr_index = (index + 1) % count
                return queue.popleft()
        raise AssertionError("pending count out of sync with queues")

    # -- refresh engine -------------------------------------------------------
    def _refresh_stall(self, start_ns: float) -> float:
        """Stall imposed on a burst starting at ``start_ns`` by refresh.

        Advances refresh bookkeeping as a side effect.  Deterministic:
        depends only on the timing parameters and the service history.
        """
        timing = self.timing
        if self.refresh_mode == "off" or timing.trefi_ns <= 0:
            return 0.0
        if self.refresh_mode == "lazy":
            elapsed = start_ns - self._last_refresh_ns
            if elapsed >= timing.trefi_ns:
                intervals = int(elapsed // timing.trefi_ns)
                self._last_refresh_ns += intervals * timing.trefi_ns
                self.refreshes_completed += intervals
                self._m_refreshes.inc(intervals)
                return timing.trfc_ns
            return 0.0
        # engine: run every refresh due by start_ns at its earliest slot.
        busy_until = self._refresh_busy_until_ns
        next_due = self._refresh_next_ns
        floor = self._service_end_ns
        completed = 0
        while next_due <= start_ns:
            begin = max(next_due, busy_until, floor)
            busy_until = begin + timing.trfc_ns
            next_due += timing.trefi_ns
            completed += 1
        if completed:
            self._refresh_busy_until_ns = busy_until
            self._refresh_next_ns = next_due
            self.refreshes_completed += completed
            self._m_refreshes.inc(completed)
        return max(0.0, busy_until - start_ns)

    def sync_refresh(self, now_ns: Optional[float] = None) -> None:
        """Catch up refresh bookkeeping to ``now_ns`` (engine mode).

        Idempotent and timing-neutral: it executes exactly the refreshes
        a subsequent request would have executed, in the same slots, so
        calling it (e.g. from a quiescence check) never changes later
        service timing.
        """
        if self.refresh_mode == "engine":
            self._refresh_stall(self.sim.now if now_ns is None else now_ns)

    # -- server ----------------------------------------------------------------
    def _serve(self):
        timing = self.timing
        device = self.device
        while True:
            if self._pending == 0:
                self._wakeup = self.sim.event(name=f"{self.name}.wake")
                yield self._wakeup
            request = self._next_request()
            self._pending -= 1
            started = self.sim.now
            self._m_queue_depth.set(self._pending)
            wait_ns = started - request.submitted_ns
            self.queue_wait_ns += wait_ns
            self._m_queue_wait_ns.inc(wait_ns)
            self._m_queue_wait_us.observe(wait_ns / 1e3)
            ledger = self.masters[request.master]
            ledger.requests += 1
            ledger.wait_ns += wait_ns
            self._m_master_wait[request.master].inc(wait_ns)

            stall_ns = self._refresh_stall(started)
            if stall_ns:
                self.refresh_stall_ns += stall_ns
                self._m_refresh_stall.inc(stall_ns)
            outcome, bank, row, open_before = device.bank_access(
                request.addr, request.size, self.page_policy
            )
            if outcome == "hit":
                self._m_row_hits.inc()
            elif outcome == "miss":
                self._m_row_misses.inc()
            else:
                self._m_row_conflicts.inc()
            if self.monitor is not None:
                self.monitor.on_dram_access(
                    self, request, bank, row, outcome, open_before, stall_ns
                )
            access = timing.access_ns(outcome)
            transfer = device.transfer_ns(request.size)
            fault_ns = 0.0
            if self.fault_latency_ns is not None:
                fault_ns = max(0.0, self.fault_latency_ns(request))
            yield self.sim.timeout(stall_ns + access + transfer + fault_ns)

            if request.is_write:
                assert request.data is not None
                device.store(request.addr, request.data)
                self.bytes_written += request.size
                self._m_bytes_written.inc(request.size)
            else:
                request.read_data = device.load(request.addr, request.size)
                if self.fault_read_tamper is not None:
                    request.read_data = self.fault_read_tamper(
                        request, request.read_data
                    )
                self.bytes_read += request.size
                self._m_bytes_read.inc(request.size)
            ledger.bytes += request.size
            self._m_master_bytes[request.master].inc(request.size)
            self.requests_served += 1
            self._m_requests.inc()
            self.busy_ns += self.sim.now - started
            self._m_service_us.observe((self.sim.now - started) / 1e3)
            self._service_end_ns = self.sim.now
            request.done.succeed(request.read_data)
