"""Tests for the related-work controller models (paper §V / Table III)."""

import pytest

from repro.baselines import (
    Hkt2011Controller,
    Hp2011Controller,
    PcapBaselineController,
    ThisWorkController,
    TransferOutcome,
    Vf2012Controller,
)
from repro.core import TABLE1_BITSTREAM_BYTES


# ------------------------------------------------------------------ VF-2012 --
def test_vf2012_published_operating_points():
    vf = Vf2012Controller()
    nominal = vf.transfer(TABLE1_BITSTREAM_BYTES, 100.0)
    assert nominal.throughput_mb_s == pytest.approx(399.0, rel=0.01)
    best = vf.transfer(TABLE1_BITSTREAM_BYTES, 210.0)
    assert best.throughput_mb_s == pytest.approx(838.55, rel=0.01)


def test_vf2012_failure_regimes():
    vf = Vf2012Controller()
    assert vf.transfer(1024, 250.0).outcome == TransferOutcome.FAILED
    frozen = vf.transfer(1024, 320.0)
    assert frozen.outcome == TransferOutcome.FROZE
    assert not frozen.ok
    assert vf.max_working_mhz() == 210.0
    assert not vf.has_crc_check


def test_vf2012_input_validation():
    with pytest.raises(ValueError):
        Vf2012Controller().transfer(0, 100.0)


# ------------------------------------------------------------------ HP-2011 --
def test_hp2011_published_operating_point():
    hp = Hp2011Controller()
    result = hp.transfer(TABLE1_BITSTREAM_BYTES, 133.0)
    assert result.throughput_mb_s == pytest.approx(419.0, rel=0.02)
    assert result.outcome == TransferOutcome.OK


def test_hp2011_active_feedback_clamps():
    hp = Hp2011Controller()
    result = hp.transfer(TABLE1_BITSTREAM_BYTES, 300.0)
    assert result.outcome == TransferOutcome.CLAMPED
    assert result.effective_mhz == 133.0
    assert result.ok  # clamped transfers still succeed
    assert "feedback" in result.notes[0]


# ----------------------------------------------------------------- HKT-2011 --
def test_hkt2011_burst_rate_for_fifo_resident():
    hkt = Hkt2011Controller()
    result = hkt.transfer(50 * 1024, 550.0)
    assert result.throughput_mb_s == pytest.approx(2200.0, rel=0.02)


def test_hkt2011_large_bitstreams_degrade():
    """The paper doubts 2200 MB/s holds for ~1.4 MB bitstreams; the model
    makes the degradation explicit."""
    hkt = Hkt2011Controller()
    small = hkt.transfer(50 * 1024, 550.0)
    large = hkt.transfer(1_400_000, 550.0)
    assert large.throughput_mb_s < small.throughput_mb_s / 2
    assert "FIFO" in large.notes[0]


def test_hkt2011_clock_ceiling():
    hkt = Hkt2011Controller()
    result = hkt.transfer(1024, 700.0)
    assert result.effective_mhz == 550.0


# --------------------------------------------------------------------- PCAP --
def test_pcap_baseline_rate():
    pcap = PcapBaselineController()
    result = pcap.transfer(TABLE1_BITSTREAM_BYTES, 100.0)
    assert result.throughput_mb_s == pytest.approx(145.0, rel=0.05)
    # Clock requests are ignored (PS-fixed).
    faster = pcap.transfer(TABLE1_BITSTREAM_BYTES, 300.0)
    assert faster.throughput_mb_s == pytest.approx(
        result.throughput_mb_s, rel=0.01
    )


# ---------------------------------------------------------------- this work --
@pytest.fixture(scope="module")
def this_work():
    return ThisWorkController()


def test_this_work_table3_point(this_work):
    result = this_work.transfer(TABLE1_BITSTREAM_BYTES, 280.0)
    assert result.ok
    assert result.throughput_mb_s == pytest.approx(790.0, rel=0.01)
    assert this_work.has_crc_check


def test_this_work_detects_its_failures(this_work):
    no_irq = this_work.transfer(TABLE1_BITSTREAM_BYTES, 310.0)
    assert no_irq.outcome == TransferOutcome.FAILED
    assert "interrupt" in no_irq.notes[0]
    corrupted = this_work.transfer(TABLE1_BITSTREAM_BYTES, 320.0)
    assert corrupted.outcome == TransferOutcome.FAILED
    assert "CRC" in corrupted.notes[0]


def test_only_this_work_flags_corruption():
    """The §V argument: our system performs a CRC; VF-2012 does not."""
    assert ThisWorkController.has_crc_check
    assert not Vf2012Controller.has_crc_check
    assert not Hp2011Controller.has_crc_check
    assert not Hkt2011Controller.has_crc_check
