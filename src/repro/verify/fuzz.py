"""Deterministic scenario fuzzing for the simulated PDR platform.

A :class:`ScenarioGenerator` draws randomised operating points — clock
frequency, die temperature, bitstream padding, target region, FIFO
depth, DMA burst size, IRQ-timeout budget, recovery/scrub mix — from a
seeded ``random.Random``.  No wall-clock, no global RNG state: case
``i`` of seed ``S`` is the same scenario in every process, forever.

:func:`run_scenario` executes one scenario on a fresh
:class:`~repro.core.PdrSystem` under an
:class:`~repro.verify.invariants.InvariantMonitor` (collect mode, so a
broken invariant yields a record instead of an exception) and returns a
plain-data result dict — pickleable for the differential oracle's
``SweepRunner`` fan-out and canonical-JSON-stable for replay identity.

When a scenario violates an invariant, :func:`shrink_scenario` reduces
it: categorical fields collapse to their benign defaults first (fewer
ops, no fault mix, passthrough ASP), then the numeric deltas (frequency
toward 100 MHz, temperature toward 40 °C) are binary-searched to the
smallest excursion that still fails.  The minimal reproducer prints as
a ready-to-paste ``repro-pdr fuzz --replay '...'`` command.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..core import PdrSystem, PdrSystemConfig
from ..core.pdr_system import TABLE1_BITSTREAM_BYTES
from ..fabric import (
    Aes128Asp,
    Asp,
    Crc32Asp,
    FirFilterAsp,
    MatMulAsp,
    PassthroughAsp,
    Sha256Asp,
    VectorScaleAsp,
    encode_asp_frames,
)
from ..resilience import FrequencyGovernor, ResilientReconfigurator
from ..snapshot import fork_system

from .invariants import InvariantMonitor

__all__ = [
    "FuzzReport",
    "Scenario",
    "ScenarioGenerator",
    "format_report",
    "run_fuzz",
    "run_scenario",
    "shrink_scenario",
]

REGIONS = ("RP1", "RP2", "RP3", "RP4")
ASP_KINDS = ("passthrough", "fir", "matmul", "crc32", "sha256", "vecscale", "aes")
#: DMA memory-side burst sizes (bytes) the generator draws from.
BURST_CHOICES = (256, 1024)
#: Stream FIFO depths; a draw is constrained to hold one full burst.
FIFO_CHOICES = (64, 256, 1024, 4096)
#: Firmware IRQ give-up budgets (µs).  The short ones abort mid-transfer
#: at low clocks — deliberately, to fuzz the reset/abort path.
TIMEOUT_CHOICES = (1_000.0, 6_000.0, 20_000.0)
#: Bitstream padding (bytes); 0 means no padding (content-sized).
PAD_CHOICES = (0, TABLE1_BITSTREAM_BYTES, 600_000)


@dataclass(frozen=True)
class Scenario:
    """One fuzz case as plain data.

    Field defaults are the *benign* operating point the shrinker moves
    toward: nominal clock, bench temperature, reference geometry, a
    single raw reconfiguration with no fault mix.
    """

    index: int = 0
    region: str = "RP1"
    asp_kind: str = "passthrough"
    asp_param: int = 0
    freq_mhz: float = 100.0
    temp_c: float = 40.0
    fifo_words: int = 1024
    burst_bytes: int = 1024
    irq_timeout_us: float = 20_000.0
    pad_bytes: int = 0
    ops: int = 1
    use_recovery: bool = False
    scrub_corrupt: bool = False
    corrupt_offset: int = 0

    def to_mapping(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_mapping(cls, mapping: Union[Mapping, Tuple]) -> "Scenario":
        data = dict(mapping)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown scenario field(s): {sorted(unknown)}")
        return cls(**data)

    def replay_command(self) -> str:
        """The CLI invocation reproducing exactly this scenario."""
        rendered = json.dumps(self.to_mapping(), sort_keys=True)
        return f"repro-pdr fuzz --replay '{rendered}'"


class ScenarioGenerator:
    """Seeded generator: ``generate(i)`` is a pure function of (seed, i)."""

    def __init__(self, seed: int):
        self.seed = int(seed)

    def generate(self, index: int) -> Scenario:
        # Integer seed arithmetic — string seeds would hash differently
        # across processes and break the determinism contract.
        rng = random.Random(self.seed * 1_000_003 + index)
        burst_bytes = rng.choice(BURST_CHOICES)
        fifo_words = rng.choice(
            [w for w in FIFO_CHOICES if w >= burst_bytes // 4]
        )
        return Scenario(
            index=index,
            region=rng.choice(REGIONS),
            asp_kind=rng.choice(ASP_KINDS),
            asp_param=rng.randrange(16),
            freq_mhz=round(rng.uniform(80.0, 420.0), 1),
            temp_c=round(rng.uniform(25.0, 100.0), 1),
            fifo_words=fifo_words,
            burst_bytes=burst_bytes,
            irq_timeout_us=rng.choice(TIMEOUT_CHOICES),
            pad_bytes=rng.choice(PAD_CHOICES),
            ops=rng.choice((1, 1, 1, 2, 3)),
            use_recovery=rng.random() < 0.4,
            scrub_corrupt=rng.random() < 0.3,
            corrupt_offset=rng.randrange(1304 * 101),
        )


def _make_asp(kind: str, param: int) -> Asp:
    """Deterministic ASP from a scenario's (kind, knob) pair."""
    if kind == "passthrough":
        return PassthroughAsp()
    if kind == "fir":
        return FirFilterAsp([1 + (param + tap) % 7 for tap in range(3)])
    if kind == "matmul":
        return MatMulAsp(2 + param % 3)
    if kind == "crc32":
        return Crc32Asp()
    if kind == "sha256":
        return Sha256Asp()
    if kind == "vecscale":
        return VectorScaleAsp(1 + param % 9, param % 5)
    if kind == "aes":
        return Aes128Asp([(param * 0x9E3779B1 + word) & 0xFFFFFFFF for word in range(4)])
    raise ValueError(f"unknown ASP kind {kind!r}")


def _result_record(result) -> Dict[str, Any]:
    return {
        "region": result.region,
        "freq_mhz": result.freq_mhz,
        "interrupt_seen": result.interrupt_seen,
        "crc_valid": result.crc_valid,
        "latency_us": result.latency_us,
        "failure_modes": list(result.failure_modes),
    }


def run_scenario(scenario) -> Dict[str, Any]:
    """Execute one scenario under the invariant monitor.

    ``scenario`` may be a dict or a canonicalised tuple of ``(key,
    value)`` pairs (the form :class:`~repro.exec.SweepPoint` hands to
    point functions).  Returns a plain-data record; any invariant
    violation or crash lands in ``record["violations"]`` rather than
    raising, so the shrinker can re-run candidates cheaply.
    """
    sc = Scenario.from_mapping(scenario)
    config = PdrSystemConfig(
        die_temp_c=sc.temp_c,
        stream_fifo_words=sc.fifo_words,
        irq_timeout_us=sc.irq_timeout_us,
        pad_bitstreams_to=sc.pad_bytes or None,
        dma_burst_bytes=sc.burst_bytes,
    )
    # Template fork per config identity (byte-identical to a fresh
    # build; REPRO_SNAPSHOTS=0 falls back to direct construction).
    system = fork_system(config)
    monitor = InvariantMonitor(raise_on_violation=False).attach(system)
    asp = _make_asp(sc.asp_kind, sc.asp_param)
    start_index = REGIONS.index(sc.region)
    op_records: List[Dict[str, Any]] = []

    recoverer: Optional[ResilientReconfigurator] = None
    if sc.use_recovery:
        recoverer = ResilientReconfigurator(system)
        monitor.attach_governor(recoverer.governor)

    try:
        for op in range(sc.ops):
            region = REGIONS[(start_index + op) % len(REGIONS)]
            if recoverer is not None:
                outcome = recoverer.reconfigure(region, asp, sc.freq_mhz)
                result = system.results[-1]
                op_records.append(
                    {
                        "region": region,
                        "recovered": outcome.recovered,
                        "attempts": outcome.attempts_used,
                        "final_freq_mhz": outcome.final_freq_mhz,
                        "result": _result_record(result),
                    }
                )
            else:
                result = system.reconfigure(region, asp, sc.freq_mhz)
                op_records.append(_result_record(result))
            monitor.check_result(system, region, asp, result)
            monitor.check_quiescent(system)

            if sc.scrub_corrupt and result.succeeded:
                _scrub_corrupt_probe(system, monitor, region, asp, sc)
    except Exception as exc:  # a crash is itself a finding, not an abort
        monitor.violate("crash", f"{type(exc).__name__}: {exc}")
    finally:
        monitor.detach()

    return {
        "scenario": sc.to_mapping(),
        "ops": op_records,
        "succeeded_ops": sum(
            1
            for rec in op_records
            if rec.get("recovered") or (rec.get("interrupt_seen") and rec.get("crc_valid"))
        ),
        "checks": monitor.checks,
        "violations": list(monitor.violations),
        "unhandled_failures": [
            process.name for process in system.sim.unhandled_failures
        ],
        "events_processed": system.sim.events_processed,
    }


def _scrub_corrupt_probe(
    system: PdrSystem, monitor: InvariantMonitor, region: str, asp: Asp, sc: Scenario
) -> None:
    """Corrupt one loaded config word; the scrubber MUST notice, and a
    golden re-write MUST scrub clean — the paper's detectability claim."""
    system.memory.corrupt_region_word(region, sc.corrupt_offset, flip_mask=0x1)
    scrub = system.sim.run_until(
        system.sim.process(
            system.scrubber.scrub_region_once(region), name="verify.scrub"
        )
    )
    monitor._count()
    if scrub.ok:
        monitor.violate(
            "scrub.detects_corruption",
            f"{region}: corrupted word {sc.corrupt_offset} passed read-back CRC",
        )
    golden = encode_asp_frames(system.layout.region_frame_count(region), asp)
    system.memory.write_region(region, golden)
    rescrub = system.sim.run_until(
        system.sim.process(
            system.scrubber.scrub_region_once(region), name="verify.rescrub"
        )
    )
    monitor._count()
    if not rescrub.ok:
        monitor.violate(
            "scrub.repair_clean",
            f"{region}: golden re-write still fails read-back CRC",
        )


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

#: Categorical/structural fields collapsed toward the benign default, in
#: order of how much scenario complexity each removes.
_SHRINK_FIELDS = (
    "ops",
    "scrub_corrupt",
    "use_recovery",
    "asp_kind",
    "asp_param",
    "region",
    "fifo_words",
    "burst_bytes",
    "irq_timeout_us",
    "pad_bytes",
    "corrupt_offset",
)
#: Numeric fields bisected toward (target, tolerance).
_SHRINK_NUMERIC = (("freq_mhz", 100.0, 1.0), ("temp_c", 40.0, 1.0))


def shrink_scenario(
    scenario: Scenario,
    failing: Optional[Callable[[Scenario], bool]] = None,
    max_evals: int = 80,
) -> Tuple[Scenario, int]:
    """Reduce a violating scenario to a minimal reproducer.

    ``failing(candidate)`` must return True while the bug still
    reproduces; by default it re-runs :func:`run_scenario`.  Returns the
    smallest still-failing scenario found and the number of evaluations
    spent (bounded by ``max_evals``).
    """
    if failing is None:
        failing = lambda s: bool(run_scenario(s.to_mapping())["violations"])
    evals = 0

    def still_fails(candidate: Scenario) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        evals += 1
        return failing(candidate)

    current = scenario
    benign = Scenario(index=scenario.index)
    for name in _SHRINK_FIELDS:
        default = getattr(benign, name)
        if getattr(current, name) == default:
            continue
        candidate = replace(current, **{name: default})
        if still_fails(candidate):
            current = candidate

    for name, target, tolerance in _SHRINK_NUMERIC:
        bad = getattr(current, name)  # known failing value
        if abs(bad - target) <= tolerance:
            continue
        if still_fails(replace(current, **{name: target})):
            current = replace(current, **{name: target})
            continue
        good = target  # known passing value
        while abs(bad - good) > tolerance and evals < max_evals:
            mid = round((bad + good) / 2.0, 1)
            if mid == bad or mid == good:
                break
            if still_fails(replace(current, **{name: mid})):
                bad = mid
            else:
                good = mid
        current = replace(current, **{name: bad})

    return current, evals


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------


@dataclass
class FuzzReport:
    """Summary of one fuzz campaign."""

    seed: int
    cases: int
    checks: int = 0
    events_processed: int = 0
    succeeded_ops: int = 0
    total_ops: int = 0
    #: One entry per violating case: scenario, violation strings, the
    #: shrunk minimal scenario (when shrinking ran) and the replay command.
    findings: List[Dict[str, Any]] = field(default_factory=list)
    shrink_evals: int = 0
    oracle_scenarios: int = 0
    #: ``(case index, process name)`` for every simulation process that
    #: died with an unhandled exception — quietly dead daemons are a
    #: robustness bug even when no invariant tripped.
    unhandled_failures: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def run_fuzz(
    seed: int = 1,
    cases: int = 50,
    shrink: bool = True,
    oracle: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run ``cases`` seeded scenarios; shrink and report any violation.

    ``oracle > 0`` additionally replays the first ``oracle`` scenarios
    through the differential oracle (determinism + serial-vs-parallel
    equivalence); a mismatch is reported as an ``oracle.*`` finding.
    """
    generator = ScenarioGenerator(seed)
    report = FuzzReport(seed=seed, cases=cases)
    scenarios = [generator.generate(index) for index in range(cases)]
    for scenario in scenarios:
        record = run_scenario(scenario.to_mapping())
        report.checks += record["checks"]
        report.events_processed += record["events_processed"]
        report.succeeded_ops += record["succeeded_ops"]
        report.total_ops += len(record["ops"])
        for name in record["unhandled_failures"]:
            report.unhandled_failures.append((scenario.index, name))
        if record["violations"]:
            finding: Dict[str, Any] = {
                "scenario": scenario.to_mapping(),
                "violations": record["violations"],
                "repro": scenario.replay_command(),
            }
            if shrink:
                minimal, evals = shrink_scenario(scenario)
                report.shrink_evals += evals
                finding["shrunk"] = minimal.to_mapping()
                finding["repro"] = minimal.replay_command()
            report.findings.append(finding)
            if progress is not None:
                progress(f"case {scenario.index}: {record['violations'][0]}")
        elif progress is not None and (scenario.index + 1) % 25 == 0:
            progress(f"{scenario.index + 1}/{cases} cases clean")

    if oracle > 0:
        from .oracle import (
            DifferentialMismatch,
            assert_parallel_matches_serial,
            assert_replay_identical,
        )

        picked = scenarios[: min(oracle, cases)]
        report.oracle_scenarios = len(picked)
        try:
            for scenario in picked:
                assert_replay_identical(scenario)
            assert_parallel_matches_serial(picked, jobs=2)
        except DifferentialMismatch as exc:
            report.findings.append(
                {
                    "scenario": None,
                    "violations": [f"oracle.differential: {exc}"],
                    "repro": f"repro-pdr fuzz --seed {seed} --cases {cases} --oracle {oracle}",
                }
            )
    return report


def format_report(report: FuzzReport) -> str:
    lines = [
        "Fuzz campaign (deterministic scenario fuzzing + invariant monitor)",
        "=" * 66,
        f"seed {report.seed}, {report.cases} case(s): "
        f"{report.total_ops} reconfiguration(s), "
        f"{report.succeeded_ops} fully succeeded",
        f"invariant checks: {report.checks}, "
        f"kernel events: {report.events_processed}",
    ]
    if report.oracle_scenarios:
        lines.append(
            f"differential oracle: {report.oracle_scenarios} scenario(s) "
            f"replayed twice + serial-vs-parallel merge compared"
        )
    if report.unhandled_failures:
        lines.append(
            f"UNHANDLED FAILURES: {len(report.unhandled_failures)} process(es)"
        )
        for index, name in report.unhandled_failures:
            lines.append(f"  - case {index}: {name}")
    if report.ok:
        lines.append("violations: 0")
    else:
        lines.append(f"VIOLATIONS: {len(report.findings)} case(s)")
        for finding in report.findings:
            for violation in finding["violations"]:
                lines.append(f"  - {violation}")
            if "shrunk" in finding:
                lines.append(f"    minimal reproducer ({report.shrink_evals} shrink evals):")
            lines.append(f"    {finding['repro']}")
    return "\n".join(lines)
