"""Benchmark E6 (+E8): regenerate Table III and the §V scaling narrative."""

import pytest

from repro.baselines import ThisWorkController, TransferOutcome
from repro.experiments.calibration import PAPER_TABLE3
from repro.experiments.table3 import default_controllers, run_scaling_sweep, run_table3

from conftest import run_once


def test_bench_table3(benchmark, system):
    controllers = default_controllers(ThisWorkController(system))
    rows = run_once(benchmark, run_table3, controllers=controllers)

    by_design = {row.controller.design: row for row in rows}
    for design, (_platform, _freq, throughput) in PAPER_TABLE3.items():
        measured = by_design[design].result.throughput_mb_s
        assert measured == pytest.approx(throughput, rel=0.02), design

    # Who wins (burst throughput): HKT > VF > this work > HP — but only
    # this work carries a CRC check.
    ranked = sorted(rows, key=lambda r: r.result.throughput_mb_s, reverse=True)
    assert [r.controller.design for r in ranked] == [
        "HKT-2011",
        "VF-2012",
        "This work",
        "HP-2011",
    ]
    assert [r.controller.has_crc_check for r in rows].count(True) == 1


def test_baseline_scaling(benchmark):
    """E8: each design's behaviour as the clock rises (§V narrative)."""
    controllers = [
        c for c in default_controllers() if c.design != "This work"
    ]
    sweeps = run_once(
        benchmark,
        run_scaling_sweep,
        controllers=controllers,
        frequencies=[100.0, 210.0, 250.0, 310.0, 550.0],
    )

    vf = {r.requested_mhz: r for r in sweeps["VF-2012"]}
    # VF-2012 scales linearly to 210, fails beyond, freezes past 300.
    assert vf[210.0].throughput_mb_s == pytest.approx(838.55, rel=0.01)
    assert vf[250.0].outcome == TransferOutcome.FAILED
    assert vf[310.0].outcome == TransferOutcome.FROZE

    hp = {r.requested_mhz: r for r in sweeps["HP-2011"]}
    # HP-2011's active feedback never lets the device fail.
    assert all(r.ok for r in hp.values())
    assert hp[550.0].effective_mhz == 133.0

    hkt = {r.requested_mhz: r for r in sweeps["HKT-2011"]}
    # HKT-2011 on a large bitstream cannot sustain its 2200 MB/s burst
    # rate (the paper's doubt, made quantitative).
    assert hkt[550.0].throughput_mb_s < 1000.0
