"""Tests for the resilient reconfigurator (retry + scrub-repair loops)."""

import pytest

from repro.fabric import FirFilterAsp
from repro.resilience import (
    FrequencyGovernor,
    RecoveryPolicy,
    ResilientReconfigurator,
    detect_modes,
)
from repro.timing import FailureMode

WORKLOAD = FirFilterAsp([3, 1, 4, 1, 5])


@pytest.fixture()
def reconfigurator(system):
    return ResilientReconfigurator(system)


def test_in_spec_transfer_succeeds_first_try(reconfigurator):
    outcome = reconfigurator.reconfigure("RP2", WORKLOAD, 100.0)
    assert outcome.recovered
    assert not outcome.injected_failure
    assert outcome.attempts_used == 1
    assert outcome.recovery_latency_us is None


def test_irq_timeout_recovers_with_backoff(system, reconfigurator):
    # 320 MHz at 40 C violates the control path: no completion interrupt.
    system.set_die_temperature(40.0)
    outcome = reconfigurator.reconfigure("RP2", WORKLOAD, 320.0)
    assert outcome.injected_failure
    assert FailureMode.CONTROL_HANG in outcome.first_failure_modes
    assert outcome.recovered
    assert outcome.attempts_used > 1
    assert outcome.final_freq_mhz < 320.0
    assert outcome.recovery_latency_us > 0
    # After the abort-and-retry loop the engines are quiescent.
    assert system.dma.idle
    assert not system.icap.busy.value
    # And the region really holds the new design.
    assert system.run_asp("RP2", [1, 0, 0, 0, 0]) == [3, 1, 4, 1, 5]


def test_recovery_metrics_counted(system, reconfigurator):
    system.set_die_temperature(100.0)
    reconfigurator.reconfigure("RP2", WORKLOAD, 360.0)
    metrics = system.metrics
    assert metrics.get("resilience.failures_detected").value >= 1
    assert metrics.get("resilience.recoveries").value == 1
    assert metrics.get("resilience.retries").value >= 1
    assert metrics.get("resilience.backoffs").value >= 1
    assert metrics.get("resilience.time_to_repair_us").count == 1
    assert metrics.get("resilience.giveups").value == 0


def test_budget_exhaustion_reported(system):
    # One attempt, no backoff headroom: the violation cannot clear.
    policy = RecoveryPolicy(max_attempts=1)
    reconfigurator = ResilientReconfigurator(system, policy=policy)
    system.set_die_temperature(100.0)
    outcome = reconfigurator.reconfigure("RP2", WORKLOAD, 360.0)
    assert outcome.injected_failure
    assert not outcome.recovered
    assert outcome.final_freq_mhz is None
    assert system.metrics.get("resilience.giveups").value == 1
    # Even a failed loop leaves the engines quiescent.
    assert system.dma.idle
    assert not system.icap.busy.value


def test_governor_learns_from_the_loop(system, reconfigurator):
    system.set_die_temperature(100.0)
    outcome = reconfigurator.reconfigure("RP2", WORKLOAD, 360.0)
    governor = reconfigurator.governor
    assert governor.safe_fmax_mhz("RP2") == pytest.approx(outcome.final_freq_mhz)
    # The second identical request fails the same rungs again, pushing
    # their streaks past the quarantine threshold.
    second = reconfigurator.reconfigure("RP2", WORKLOAD, 360.0)
    assert second.recovered
    assert second.newly_quarantined >= 1
    # By the third request the governor clamps straight to the learned
    # safe frequency and the loop collapses to a single attempt.
    third = reconfigurator.reconfigure("RP2", WORKLOAD, 360.0)
    assert third.governor_clamped
    assert third.attempts_used == 1
    assert third.recovered
    assert third.final_freq_mhz < second.final_freq_mhz + 1.0


def test_detect_modes_uses_observables_only(system):
    system.set_die_temperature(40.0)
    result = system.reconfigure("RP2", WORKLOAD, 310.0)
    # 310 MHz at 40 C: control path violated, data path still intact.
    assert detect_modes(result) == (FailureMode.CONTROL_HANG,)
    result = system.reconfigure("RP2", WORKLOAD, 100.0)
    assert detect_modes(result) == ()


def test_scrub_mismatch_triggers_golden_repair(system, reconfigurator):
    reconfigurator.attach_scrubber()
    assert reconfigurator.reconfigure("RP2", WORKLOAD, 100.0).recovered

    # Soft-error upset: flip a configuration bit behind the firmware's back.
    system.memory.corrupt_region_word("RP2", 12_345, flip_mask=0x4)
    scrub = system.sim.run_until(
        system.sim.process(system.scrubber.scrub_region_once("RP2"))
    )
    assert not scrub.ok
    assert reconfigurator.pending_repairs == ["RP2"]

    outcomes = reconfigurator.repair_pending()
    assert len(outcomes) == 1
    assert outcomes[0].recovered
    assert reconfigurator.pending_repairs == []
    assert system.metrics.get("resilience.scrub_repairs").value == 1

    # The re-written region passes a fresh scrub pass.
    scrub = system.sim.run_until(
        system.sim.process(system.scrubber.scrub_region_once("RP2"))
    )
    assert scrub.ok
    assert system.run_asp("RP2", [1, 0, 0, 0, 0]) == [3, 1, 4, 1, 5]


def test_repair_without_golden_content_raises(system, reconfigurator):
    reconfigurator.pending_repairs.append("RP1")
    with pytest.raises(KeyError):
        reconfigurator.repair_pending()


def test_repair_runs_at_safe_frequency(system, reconfigurator):
    reconfigurator.attach_scrubber()
    reconfigurator.reconfigure("RP2", WORKLOAD, 250.0)
    system.memory.corrupt_region_word("RP2", 99, flip_mask=0x1)
    system.sim.run_until(
        system.sim.process(system.scrubber.scrub_region_once("RP2"))
    )
    outcomes = reconfigurator.repair_pending()
    # The repair reuses the learned safe frequency, not some default.
    assert outcomes[0].attempts[0].requested_mhz == pytest.approx(250.0, rel=0.05)


def test_custom_governor_is_used(system):
    governor = FrequencyGovernor(quarantine_after=1)
    reconfigurator = ResilientReconfigurator(system, governor=governor)
    assert reconfigurator.governor is governor


def test_batch_in_spec_recovers_first_pass(system, reconfigurator):
    jobs = [("RP1", FirFilterAsp([1, 2, 3])), ("RP2", WORKLOAD)]
    outcome = reconfigurator.reconfigure_batch(jobs, 100.0)
    assert outcome.recovered
    assert outcome.region_ok == {"RP1": True, "RP2": True}
    assert outcome.recoveries == {}
    assert outcome.attempts_used == 2  # one chain verdict per region
    assert outcome.latency_us > 0
    # Both regions really hold their new designs.
    assert system.run_asp("RP2", [1, 0, 0, 0, 0]) == [3, 1, 4, 1, 5]


def test_batch_failure_falls_back_to_per_region_recovery(system, reconfigurator):
    # 320 MHz at 40 C corrupts the data path: the chain's CRCs fail and
    # each invalid region re-drives through the individual retry loop.
    system.set_die_temperature(40.0)
    jobs = [("RP1", FirFilterAsp([1, 2, 3])), ("RP2", WORKLOAD)]
    outcome = reconfigurator.reconfigure_batch(jobs, 320.0)
    assert outcome.recovered
    assert outcome.recoveries  # at least one region needed the loop
    for recovery in outcome.recoveries.values():
        assert recovery.recovered
    assert outcome.attempts_used > len(jobs)
    assert system.run_asp("RP2", [1, 0, 0, 0, 0]) == [3, 1, 4, 1, 5]
