"""The paper's bench flow, end to end (Figs. 3 and 4).

Reproduces the physical test procedure: the application and two partial
bitstreams live on the SD card; the board boots; the 8 slide switches
select the over-clocking frequency; the push buttons start the ICAP
operation with one of the two bitstreams; results appear on the OLED.

Run:  python examples/board_demo.py
"""

from repro.board import DEFAULT_FREQUENCY_TABLE
from repro.core import PdrSystem
from repro.fabric import Aes128Asp, FirFilterAsp


def boot_from_sd(system: PdrSystem):
    """Stage the two test bitstreams from SD into DRAM (timed)."""
    bitstream_a = system.make_bitstream("RP1", FirFilterAsp([1, 2, 3, 2, 1]))
    bitstream_b = system.make_bitstream("RP1", Aes128Asp([9, 8, 7, 6]))
    system.sdcard.store_file("partial_fir.bin", bitstream_a.to_bytes())
    system.sdcard.store_file("partial_aes.bin", bitstream_b.to_bytes())

    staged = {}

    def boot():
        for name, bitstream in (
            ("partial_fir.bin", bitstream_a),
            ("partial_aes.bin", bitstream_b),
        ):
            data = yield system.sdcard.read_file(name)
            address = system.stage_bitstream(bitstream)
            staged[name] = (address, bitstream)
            print(
                f"  boot: staged {name} ({len(data)} bytes) "
                f"at {address:#010x}, t = {system.sim.now_us / 1e3:.1f} ms"
            )

    system.sim.run_until(system.sim.process(boot()))
    return staged


def main() -> None:
    system = PdrSystem()
    print("booting from SD card ...")
    staged = boot_from_sd(system)

    # Wire the push buttons exactly like the test firmware: BTNL loads
    # bitstream A, BTNR loads bitstream B, at the switch-selected clock.
    def load(name):
        _addr, bitstream = staged[name]
        freq = system.switches.selected_frequency_mhz()
        result = system.reconfigure(
            "RP1",
            asp=None,  # unused when an explicit bitstream is given
            freq_mhz=freq,
            bitstream=bitstream,
        )
        print(f"\n  [{name} @ {freq:g} MHz] {result.summary()}")
        print("\n".join("  " + line for line in system.oled.render().splitlines()))

    system.buttons.on_press("BTNL", lambda: load("partial_fir.bin"))
    system.buttons.on_press("BTNR", lambda: load("partial_aes.bin"))

    for code in (0, 3, 5):  # 100 MHz, 200 MHz, 280 MHz
        print(
            f"\nsetting switches to {code:#04x} "
            f"({DEFAULT_FREQUENCY_TABLE[code]:g} MHz) and pressing BTNL/BTNR"
        )
        system.switches.set_code(code)
        system.buttons.press("BTNL")
        system.buttons.press("BTNR")

    print(
        f"\ntotal reconfigurations: {len(system.results)}, "
        f"all CRC-valid: {all(r.crc_valid for r in system.results)}"
    )


if __name__ == "__main__":
    main()
