"""Power model and board current-sense measurement."""

from .model import PowerModel, PowerModelParams, PowerSupply
from .sense import CurrentSense

__all__ = ["CurrentSense", "PowerModel", "PowerModelParams", "PowerSupply"]
