"""The CRC Bitstream Read-Back scrubber of the paper's Fig. 2."""

from .scrubber import CrcScrubber, ScrubResult

__all__ = ["CrcScrubber", "ScrubResult"]
