"""The paper's heat gun (§IV-A temperature stress).

The authors point a heat gun at the Zynq's heat sink to sweep the die
from 40 °C to 100 °C.  :class:`HeatGun` drives the thermal model's
external forcing; :meth:`hold_die_at` solves for the forcing needed to
reach a setpoint given current self-heating and pins it, replicating the
bench procedure of waiting for each 10 °C step to stabilise.
"""

from __future__ import annotations

from .model import ThermalModel

__all__ = ["HeatGun"]


class HeatGun:
    """External heating actuator aimed at the die's heat sink."""

    #: Physical ceiling: the gun can add at most this much above ambient.
    MAX_FORCING_C = 400.0

    def __init__(self, thermal: ThermalModel):
        self.thermal = thermal
        self.on = False

    def set_forcing(self, delta_c: float) -> None:
        if not 0 <= delta_c <= self.MAX_FORCING_C:
            raise ValueError(f"forcing {delta_c} °C out of range")
        self.on = delta_c > 0
        self.thermal.set_forcing(delta_c)

    def off(self) -> None:
        self.set_forcing(0.0)

    def hold_die_at(self, setpoint_c: float) -> None:
        """Pin the die at ``setpoint_c`` (bench-stabilised measurement).

        Raises if the setpoint is below what self-heating alone produces —
        a heat gun cannot cool the part.
        """
        self.thermal.set_forcing(0.0)
        floor = self.thermal.steady_state_c()
        if setpoint_c < floor - 1e-9:
            raise ValueError(
                f"cannot hold {setpoint_c} °C: self-heating floor is "
                f"{floor:.1f} °C (a heat gun cannot cool)"
            )
        delta = setpoint_c - floor
        if delta > self.MAX_FORCING_C:
            raise ValueError(f"setpoint {setpoint_c} °C beyond gun capability")
        self.set_forcing(delta)
        self.thermal.pin_temperature(setpoint_c)
