"""Active-feedback over-clocking governor (extension).

HP-2011 (paper §V) over-clocks "with active feedback to ensure that the
device voltages and temperatures are within nominal values" — robust, but
capped at nominal.  The paper's own system instead over-clocks open-loop
and relies on the CRC to catch failures.

This module combines the two: a closed loop around *this* system's
timing model and die-temperature sensor that always runs as fast as the
silicon currently allows, minus a safety margin.  At 40 °C it authorises
~295 MHz; as the heat gun pushes the die toward 100 °C it backs the clock
off, so the 310 MHz/100 °C failure of §IV-A can never happen under
governance — at the cost of a few MHz the CRC-only approach would have
exploited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..fabric import Asp
from ..thermal import TemperatureSensor
from ..timing import TimingModel

from .pdr_system import PdrSystem
from .results import ReconfigResult

__all__ = ["GovernedReconfig", "ActiveFeedbackGovernor"]


@dataclass
class GovernedReconfig:
    """A reconfiguration run under governance."""

    result: ReconfigResult
    requested_mhz: float
    authorised_mhz: float

    @property
    def clamped(self) -> bool:
        return self.authorised_mhz < self.requested_mhz


class ActiveFeedbackGovernor:
    """Clamps over-clock requests to the temperature-derated safe limit."""

    def __init__(
        self,
        timing: TimingModel,
        sensor: TemperatureSensor,
        margin_mhz: float = 10.0,
    ):
        if margin_mhz < 0:
            raise ValueError("safety margin cannot be negative")
        self.timing = timing
        self.sensor = sensor
        self.margin_mhz = margin_mhz
        self.clamps_applied = 0

    def max_safe_mhz(self) -> float:
        """Weakest-path fmax at the *measured* die temperature, minus margin."""
        temp_c = self.sensor.read_celsius()
        return self.timing.max_safe_frequency(temp_c) - self.margin_mhz

    def authorise(self, requested_mhz: float) -> float:
        """The frequency actually allowed for ``requested_mhz``."""
        if requested_mhz <= 0:
            raise ValueError("requested frequency must be positive")
        limit = self.max_safe_mhz()
        if requested_mhz <= limit:
            return requested_mhz
        self.clamps_applied += 1
        return limit

    def reconfigure(
        self,
        system: PdrSystem,
        region: str,
        asp: Optional[Asp],
        requested_mhz: float,
        bitstream=None,
    ) -> GovernedReconfig:
        """A governed :meth:`PdrSystem.reconfigure`.

        Never lets the transfer run past the derated fmax, so the result
        always carries a latency and a valid CRC (unless the bitstream
        itself is bad).
        """
        authorised = self.authorise(requested_mhz)
        result = system.reconfigure(region, asp, authorised, bitstream=bitstream)
        return GovernedReconfig(
            result=result,
            requested_mhz=requested_mhz,
            authorised_mhz=authorised,
        )
