"""HKT-2011: Hansen, Koch & Torresen's enhanced ICAP hard macro.

Published behaviour ([12], as summarised in the paper's §V):

* an enhanced hard macro drives the ICAP at 550 MHz → 2 200 MB/s;
* the system has **no processor**; bitstreams (up to ~50 KB) are
  pre-buffered in an on-chip FIFO;
* the paper questions whether 2 200 MB/s is sustainable for ~1.4 MB
  bitstreams that must come through a DMA.

The model exposes exactly that asymmetry: transfers that fit in the FIFO
run at the full hard-macro rate; larger ones are refilled from external
memory and degrade toward the refill bandwidth.
"""

from __future__ import annotations

from .base import BaselineResult, ReconfigController, TransferOutcome

__all__ = ["Hkt2011Controller"]


class Hkt2011Controller(ReconfigController):
    design = "HKT-2011"
    platform = "Virtex-5"
    year = 2011
    has_crc_check = False
    nominal_mhz = 100.0

    #: Hard-macro rate: 4 B/cycle at 550 MHz.
    MACRO_MHZ = 550.0
    FIFO_BYTES = 50 * 1024
    #: External refill path for bitstreams beyond the FIFO (MB/s): a
    #: memory-to-FIFO DMA comparable to the Zynq HP path.
    REFILL_MB_S = 800.0
    SETUP_US = 0.2  # no processor: a trigger pulse starts the transfer

    def transfer(self, bitstream_bytes: int, freq_mhz: float) -> BaselineResult:
        if bitstream_bytes <= 0 or freq_mhz <= 0:
            raise ValueError("bitstream size and frequency must be positive")
        effective = min(freq_mhz, self.MACRO_MHZ)
        macro_rate = 4.0 * effective  # MB/s
        notes = []
        if freq_mhz > self.MACRO_MHZ:
            notes.append(f"hard macro tops out at {self.MACRO_MHZ:g} MHz")

        if bitstream_bytes <= self.FIFO_BYTES:
            latency_us = self.SETUP_US + bitstream_bytes / macro_rate
        else:
            # FIFO-resident head at macro rate; the tail is refill-bound.
            head = self.FIFO_BYTES
            tail = bitstream_bytes - head
            tail_rate = min(macro_rate, self.REFILL_MB_S)
            latency_us = (
                self.SETUP_US + head / macro_rate + tail / tail_rate
            )
            notes.append(
                f"bitstream exceeds the {self.FIFO_BYTES // 1024} KB FIFO: "
                f"tail refilled at {tail_rate:g} MB/s"
            )
        return self._result(
            requested_mhz=freq_mhz,
            effective_mhz=effective,
            bitstream_bytes=bitstream_bytes,
            outcome=TransferOutcome.OK,
            latency_us=latency_us,
            notes=notes,
        )

    def max_working_mhz(self) -> float:
        return self.MACRO_MHZ

    def table3_operating_point(self) -> float:
        return 550.0
