"""Experiment E5 — §IV-A temperature stress.

Repeats the Table I tests up to 310 MHz at die temperatures 40–100 °C in
10 °C steps (heat gun on the heat sink).  The paper: "All the tests
succeeded except the test done at 310 MHz and 100 °C which failed."

Success criterion, as in the paper, is the read-back CRC: the 310 MHz
column never delivers a completion interrupt (control path), but the
bitstream still loads correctly below 100 °C.

Regenerate with ``python -m repro.experiments.temp_stress``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core import PdrSystem
from ..exec import SweepRunner

from .calibration import (
    PAPER_STRESS_FAILURES,
    PAPER_STRESS_FREQS_MHZ,
    PAPER_STRESS_TEMPS_C,
)
from .points import asp_descriptor, reconfigure_point
from .report import ExperimentReport, format_table
from .table1 import WORKLOAD_ASP

__all__ = ["StressMatrix", "run_temp_stress", "format_report", "main"]


@dataclass
class StressMatrix:
    temps_c: List[float]
    freqs_mhz: List[float]
    #: (freq, temp) -> crc_valid
    cells: Dict[Tuple[float, float], bool] = field(default_factory=dict)

    def failures(self) -> List[Tuple[float, float]]:
        return sorted(key for key, ok in self.cells.items() if not ok)

    def matches_paper(self) -> bool:
        return self.failures() == sorted(PAPER_STRESS_FAILURES)


def run_temp_stress(
    system: Optional[PdrSystem] = None,
    temps_c: Optional[List[float]] = None,
    freqs_mhz: Optional[List[float]] = None,
    region: str = "RP2",
    runner: Optional[SweepRunner] = None,
) -> StressMatrix:
    """Run the full frequency x temperature stress grid."""
    temps = list(temps_c or PAPER_STRESS_TEMPS_C)
    freqs = list(freqs_mhz or PAPER_STRESS_FREQS_MHZ)
    matrix = StressMatrix(temps_c=temps, freqs_mhz=freqs)
    grid = [(temp, freq) for temp in temps for freq in freqs]
    if system is not None:
        results = []
        for temp, freq in grid:
            system.set_die_temperature(temp)
            results.append(system.reconfigure(region, WORKLOAD_ASP, freq))
    else:
        results = (runner or SweepRunner()).map(
            "temp_stress",
            reconfigure_point,
            [
                dict(
                    region=region,
                    freq_mhz=freq,
                    temp_c=temp,
                    workload=asp_descriptor(WORKLOAD_ASP),
                )
                for temp, freq in grid
            ],
            labels=[f"stress@{freq:g}MHz/{temp:g}C" for temp, freq in grid],
        )
    for (temp, freq), result in zip(grid, results):
        matrix.cells[(freq, temp)] = result.crc_valid
    return matrix


def format_report(matrix: StressMatrix) -> str:
    """Render the stress matrix and its frontier check."""
    report = ExperimentReport("SectionIV-A — temperature stress (heat gun, 40-100 C)")
    headers = ["MHz \\ C"] + [f"{t:g}" for t in matrix.temps_c]
    rows = []
    for freq in matrix.freqs_mhz:
        row = [f"{freq:g}"]
        for temp in matrix.temps_c:
            row.append("pass" if matrix.cells[(freq, temp)] else "FAIL")
        rows.append(row)
    report.add(format_table(headers, rows))
    report.add(
        f"failures: {matrix.failures()}   "
        f"(paper: {sorted(PAPER_STRESS_FAILURES)})\n"
        f"matches paper frontier: {'PASS' if matrix.matches_paper() else 'FAIL'}"
    )
    return report.render()


def main() -> None:
    """Regenerate the stress matrix and print the report."""
    print(format_report(run_temp_stress()))


if __name__ == "__main__":
    main()
