"""Observability layer: metrics, spans, and telemetry capture.

Public surface::

    from repro.obs import MetricsRegistry, SpanRecorder, TELEMETRY_BOOK

The package is deliberately free of simulator imports — everything is
parameterised by a ``now_fn`` time source — so it can sit below
:mod:`repro.sim` in the layering and be reused by any component.
"""

from .book import TELEMETRY_BOOK, TelemetryBook
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Probe, Series
from .spans import Span, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Probe",
    "Series",
    "Span",
    "SpanRecorder",
    "TELEMETRY_BOOK",
    "TelemetryBook",
]
