"""Generic Interrupt Controller (GIC) model.

PL interrupt lines (DMA completion, CRC error) route to the PS through
the GIC.  The model connects :class:`~repro.sim.signal.InterruptLine`
sources to software handlers and keeps per-source statistics; handlers
run at the interrupt's assertion instant plus a small entry latency.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..sim import InterruptLine, Simulator

__all__ = ["InterruptController"]


class InterruptController:
    """Routes PL interrupt lines to PS handler callbacks."""

    #: Interrupt entry latency: GIC ack + context save (ns).
    ENTRY_LATENCY_NS = 300.0

    def __init__(self, sim: Simulator, name: str = "gic"):
        self.sim = sim
        self.name = name
        self._sources: Dict[str, InterruptLine] = {}
        self._handlers: Dict[str, List[Callable[[], None]]] = {}
        self.counts: Dict[str, int] = {}

    def connect(self, irq_id: str, line: InterruptLine) -> None:
        """Attach a PL interrupt line under a software-visible id."""
        if irq_id in self._sources:
            raise ValueError(f"irq id {irq_id!r} already connected")
        self._sources[irq_id] = line
        self._handlers[irq_id] = []
        self.counts[irq_id] = 0
        line.watch(lambda old, new: self._on_edge(irq_id, old, new))

    def register_handler(self, irq_id: str, handler: Callable[[], None]) -> None:
        self._check(irq_id)
        self._handlers[irq_id].append(handler)

    def line(self, irq_id: str) -> InterruptLine:
        self._check(irq_id)
        return self._sources[irq_id]

    def wait_for(self, irq_id: str):
        """Event for the next assertion of ``irq_id`` (for polling loops)."""
        self._check(irq_id)
        return self._sources[irq_id].wait_assert()

    # -- internals ----------------------------------------------------------
    def _on_edge(self, irq_id: str, old, new) -> None:
        if old or not new:  # only rising edges
            return
        self.counts[irq_id] += 1
        handlers = list(self._handlers[irq_id])
        if not handlers:
            return

        def dispatch():
            yield self.sim.timeout(self.ENTRY_LATENCY_NS)
            for handler in handlers:
                handler()

        self.sim.process(dispatch(), name=f"{self.name}.isr:{irq_id}")

    def _check(self, irq_id: str) -> None:
        if irq_id not in self._sources:
            raise KeyError(
                f"no irq {irq_id!r} connected; have {sorted(self._sources)}"
            )
