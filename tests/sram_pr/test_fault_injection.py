"""Fault injection against the §VI SRAM-PR pipeline.

The scheduler and PR controller must *report* staging/activation faults
(failed preload, torn slot, read-port error) instead of deadlocking the
simulation or leaving a half-filled slot activatable.
"""

import pytest

from repro.axi import AxiSlaveError
from repro.fabric import FirFilterAsp
from repro.sram_pr import PreloadError, SramPrSystem

WORKLOAD = FirFilterAsp([2, 7, 1])


@pytest.fixture()
def system():
    return SramPrSystem()


def run_preload(system):
    return system.sim.run_until(
        system.sim.process(system.scheduler.preload_next(), name="preload")
    )


def run_activate(system):
    return system.sim.run_until(
        system.sim.process(system.pr_controller.activate(), name="activate")
    )


# ------------------------------------------------------------- staging faults
def test_axi_error_mid_preload_reports_failed_request(system):
    pending = system.prepare_image("RP1", WORKLOAD, compress=False)
    system.scheduler.enqueue(pending)

    hits = []

    def deny_reads(kind, addr, size):
        if kind == "r":
            hits.append(addr)
            return AxiSlaveError(f"injected SLVERR @{addr:#x}")
        return None

    system.interconnect.fault_error = deny_reads
    with pytest.raises(PreloadError, match=pending.name):
        run_preload(system)

    # The failure is *reported*, not silently swallowed or deadlocked.
    assert hits
    assert system.scheduler.failed_preloads == [pending.name]
    assert system.scheduler.preloads_completed == 0
    # The torn slot cannot be activated.
    assert not system.memctrl.slot_valid
    with pytest.raises(RuntimeError, match="no valid staged bitstream"):
        system.pr_controller.activate().send(None)


def test_preload_failure_leaves_scheduler_usable(system):
    """No deadlock: the very same scheduler retries once the bus heals."""
    pending = system.prepare_image("RP2", WORKLOAD, compress=False)
    system.scheduler.enqueue(pending)
    budget = [1]  # one burst fails, then the bus recovers

    def flaky(kind, addr, size):
        if kind == "r" and budget[0] > 0:
            budget[0] -= 1
            return AxiSlaveError("transient SLVERR")
        return None

    system.interconnect.fault_error = flaky
    with pytest.raises(PreloadError):
        run_preload(system)

    # Re-enqueue and retry on the *same* simulator: clean completion.
    retry = system.prepare_image("RP2", WORKLOAD, compress=False)
    system.scheduler.enqueue(retry)
    slot = run_preload(system)
    assert slot.region == "RP2"
    assert system.memctrl.slot_valid
    result = run_activate(system)
    assert result.config_ok
    assert system.run_asp("RP2", [1, 0, 0]) == [2, 7, 1]


def test_mid_stage_failure_happens_after_partial_fill(system):
    """The error path exercises the torn-slot case, not the first burst."""
    pending = system.prepare_image("RP3", WORKLOAD, compress=False)
    system.scheduler.enqueue(pending)
    seen = [0]

    def fail_third_burst(kind, addr, size):
        if kind != "r":
            return None
        seen[0] += 1
        if seen[0] == 3:
            return AxiSlaveError("SLVERR on burst 3")
        return None

    system.interconnect.fault_error = fail_third_burst
    with pytest.raises(PreloadError, match="burst 3"):
        run_preload(system)
    assert seen[0] == 3
    assert not system.memctrl.slot_valid


# ---------------------------------------------------------- activation faults
def test_sram_read_error_fails_activation_cleanly(system):
    pending = system.prepare_image("RP1", WORKLOAD, compress=False)
    system.scheduler.enqueue(pending)
    run_preload(system)

    system.sram.fault_read_error = lambda addr, count: RuntimeError(
        "injected read-port parity error"
    )
    result = run_activate(system)
    system.sram.fault_read_error = None

    # A failed ActivationResult, not an unhandled dead process.
    assert not result.config_ok
    assert result.bitstream_words == 0
    assert system.pr_controller.read_errors == 1
    assert system.pr_controller.error_irq.asserted
    assert not system.memctrl.slot_valid
    assert system.sim.unhandled_failures == []

    # The fabric was never touched and the pipeline still works.
    again = system.reconfigure("RP1", WORKLOAD, compress=False)
    assert again.crc_valid
    assert system.run_asp("RP1", [1, 0, 0]) == [2, 7, 1]


def test_decompressor_stall_degrades_but_completes(system):
    baseline = system.reconfigure("RP4", WORKLOAD, compress=True)
    assert baseline.crc_valid

    stall_ns = 250_000.0
    system.pr_controller.fault_decomp_stall_ns = lambda: stall_ns
    stalled = system.reconfigure("RP4", WORKLOAD, compress=True)
    system.pr_controller.fault_decomp_stall_ns = None

    # Backpressure, not data loss: the activation succeeds, only slower.
    assert stalled.crc_valid
    assert stalled.activation.config_ok
    assert system.pr_controller.decomp_stalls == 1
    assert stalled.activation_latency_us == pytest.approx(
        baseline.activation_latency_us + stall_ns / 1e3, rel=0.01
    )
    assert system.run_asp("RP4", [1, 0, 0]) == [2, 7, 1]


def test_decomp_stall_hook_not_consulted_for_uncompressed(system):
    calls = []
    system.pr_controller.fault_decomp_stall_ns = lambda: calls.append(1) or 0.0
    result = system.reconfigure("RP2", WORKLOAD, compress=False)
    assert result.crc_valid
    assert calls == []
