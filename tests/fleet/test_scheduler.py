"""The fleet planner: admission, queues, coalescing, dispatch groups."""

import pytest

from repro.fleet.scheduler import estimate_service_us, plan_fleet
from repro.fleet.workload import FleetRequest, build_workload


def _request(index, arrival_us, region="RP1", kind="crc32", param=0, pad=600_000):
    return FleetRequest(
        index=index,
        arrival_us=arrival_us,
        region=region,
        asp_kind=kind,
        asp_param=param,
        pad_to=pad,
    )


def test_plan_is_deterministic():
    requests = build_workload(5, 20.0)
    first = plan_fleet(requests, boards=3)
    second = plan_fleet(requests, boards=3)
    assert first.rejected == second.rejected
    assert [b.executable_groups() for b in first.boards] == [
        b.executable_groups() for b in second.boards
    ]


def test_every_admitted_request_is_planned_exactly_once():
    requests = build_workload(9, 25.0)
    plan = plan_fleet(requests, boards=2, queue_depth=3)
    members = [
        member
        for board in plan.boards
        for job in board.jobs
        for member in job.members
    ]
    assert sorted(members + list(plan.rejected)) == list(range(len(requests)))
    assert len(members) == plan.admitted


def test_same_bitstream_requests_coalesce_onto_one_load():
    # Three identical requests land while the first is still queued
    # behind nothing — est start is at arrival, so the 2nd and 3rd
    # arrive after it began: queue a burst behind an earlier blocker.
    blocker = _request(0, 0.0, region="RP2", kind="fir")
    burst = [_request(i, 10.0 * i, region="RP1") for i in range(1, 4)]
    plan = plan_fleet((blocker, *burst), boards=1)
    assert plan.admitted == 4
    assert plan.loads == 2  # blocker + one coalesced RP1 load
    assert plan.coalesced == 2
    rp1_jobs = [job for job in plan.boards[0].jobs if job.region == "RP1"]
    assert len(rp1_jobs) == 1 and rp1_jobs[0].members == [1, 2, 3]


def test_batching_off_never_coalesces_and_never_groups():
    requests = build_workload(5, 20.0)
    plan = plan_fleet(requests, boards=2, batching=False)
    assert plan.coalesced == 0
    for board in plan.boards:
        assert all(len(group) == 1 for group in board.groups)


def test_bounded_queue_rejects_overload():
    # 12 distinct back-to-back requests, one board, queue depth 2:
    # service takes ~1.6 ms each, so arrivals 10 us apart overflow.
    requests = tuple(
        _request(i, 10.0 * i, region=f"RP{1 + i % 4}", param=i, pad=600_000)
        for i in range(12)
    )
    plan = plan_fleet(requests, boards=1, queue_depth=2, batching=False)
    assert plan.rejected  # overload must reject, not queue unboundedly
    assert plan.admitted + len(plan.rejected) == 12
    assert plan.admitted == 2


def test_dispatch_groups_hold_distinct_regions_within_limit():
    requests = build_workload(13, 30.0)
    plan = plan_fleet(requests, boards=2, batch_limit=3)
    for board in plan.boards:
        for group in board.groups:
            regions = [job.region for job in group]
            assert len(regions) == len(set(regions))
            assert 1 <= len(group) <= 3


def test_grouped_jobs_had_arrived_by_group_start():
    """A batch may only chain jobs that were queued when it dispatched."""
    requests = build_workload(13, 30.0)
    plan = plan_fleet(requests, boards=2)
    for board in plan.boards:
        end_est = 0.0
        for group in board.groups:
            start_est = max(end_est, group[0].arrival_us)
            for job in group:
                assert job.arrival_us <= start_est
            end_est = start_est + sum(
                estimate_service_us(job.key[3]) for job in group
            )


def test_rejects_bad_arguments():
    with pytest.raises(ValueError):
        plan_fleet((), boards=0)
    with pytest.raises(ValueError):
        plan_fleet((), boards=1, queue_depth=0)
