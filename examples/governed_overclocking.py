"""Closed-loop over-clocking: never fail, always near the edge.

The paper's approach is open-loop — pick a frequency, let the CRC block
catch failures.  HP-2011 (compared in §V) instead used *active feedback*
to stay within nominal limits.  This example combines them: a governor
reads the XADC die-temperature sensor and the calibrated timing model,
and authorises the highest clock that still meets timing at the current
temperature (minus a safety margin).

Watch it track the heat gun: as the die warms from 40 °C to 100 °C the
authorised clock backs off, and every transfer stays CRC-valid — the
310 MHz @ 100 °C failure of §IV-A becomes unreachable.

Run:  python examples/governed_overclocking.py
"""

from repro.analysis import summarize_results
from repro.core import ActiveFeedbackGovernor, PdrSystem
from repro.fabric import FirFilterAsp


def main() -> None:
    system = PdrSystem()
    governor = ActiveFeedbackGovernor(
        system.timing, system.temp_sensor, margin_mhz=5.0
    )
    asp = FirFilterAsp([1, 3, 3, 1])
    request_mhz = 360.0  # deliberately far past any safe clock

    print(f"requesting {request_mhz:g} MHz at every temperature step\n")
    print(f"{'die C':>6} {'authorised MHz':>15} {'latency us':>11} "
          f"{'MB/s':>8} {'CRC':>10}")
    print("-" * 56)
    for temp in (40.0, 55.0, 70.0, 85.0, 100.0):
        system.set_die_temperature(temp)
        governed = governor.reconfigure(system, "RP1", asp, request_mhz)
        result = governed.result
        print(
            f"{temp:>6.0f} {governed.authorised_mhz:>15.1f} "
            f"{result.latency_us:>11.1f} {result.throughput_mb_s:>8.1f} "
            f"{'valid' if result.crc_valid else 'NOT VALID':>10}"
        )

    stats = summarize_results(system.results)
    print(
        f"\n{stats['total']} transfers, success rate "
        f"{stats['success_rate']:.0%}, clamps applied: "
        f"{governor.clamps_applied}"
    )
    print(
        "Every run stayed valid: the governor traded a few MHz of the "
        "open-loop ceiling for zero failures across the whole stress range."
    )

    # Contrast: the same request without governance, hot.
    system.set_die_temperature(100.0)
    ungoverned = system.reconfigure("RP2", asp, request_mhz)
    print(
        f"\nungoverned control run at {request_mhz:g} MHz / 100 C: "
        f"CRC {'valid' if ungoverned.crc_valid else 'NOT VALID'} "
        f"(the open-loop failure the governor prevents)"
    )


if __name__ == "__main__":
    main()
