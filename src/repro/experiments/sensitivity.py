"""Calibration sensitivity analysis.

DESIGN.md §5 fits four mechanistic constants against Table I.  A fair
question for any reproduction: *how much do the headline results depend
on those exact values?*  This harness perturbs each constant over a
±25 % range and reports the effect on the two shape-defining quantities:

* the Fig. 5 knee frequency (where the curve bends), and
* the saturation ceiling (the max throughput).

The structural conclusions turn out to be parameter-robust: the knee
moves with memory-path bandwidth (as the bottleneck analysis predicts)
but a knee-then-plateau *shape* and the 200 MHz efficiency sweet spot
survive every perturbation.

Regenerate with ``python -m repro.experiments.sensitivity``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..analysis import knee_frequency
from ..core import PdrSystem, PdrSystemConfig
from ..exec import SweepRunner, note_events
from ..fabric import FirFilterAsp

from .report import ExperimentReport, fmt, format_table

__all__ = [
    "SensitivityPoint",
    "SensitivityResult",
    "sensitivity_point",
    "run_sensitivity",
    "format_report",
    "main",
]

WORKLOAD = FirFilterAsp([2, 4, 2])
SWEEP_MHZ = [100.0, 140.0, 180.0, 200.0, 240.0, 280.0]


@dataclass
class SensitivityPoint:
    """One perturbed run."""

    parameter: str
    scale: float                    #: multiplier applied to the nominal value
    knee_mhz: Optional[float]
    ceiling_mb_s: float
    efficiency_peak_mhz: float


@dataclass
class SensitivityResult:
    """All perturbations of all parameters."""

    points: List[SensitivityPoint]

    def for_parameter(self, parameter: str) -> List[SensitivityPoint]:
        return [p for p in self.points if p.parameter == parameter]

    def shape_always_saturates(self) -> bool:
        """Every perturbed system still shows a knee-then-plateau curve."""
        return all(p.knee_mhz is not None for p in self.points)

    def efficiency_peak_is_stable(self) -> bool:
        """The PpW peak stays at the knee for every perturbation."""
        return all(
            p.efficiency_peak_mhz in (180.0, 200.0, 240.0) for p in self.points
        )


def _measure(system: PdrSystem) -> SensitivityPoint:
    throughputs: Dict[float, float] = {}
    efficiencies: Dict[float, float] = {}
    for freq in SWEEP_MHZ:
        result = system.reconfigure("RP1", WORKLOAD, freq)
        throughputs[result.freq_mhz] = result.throughput_mb_s
        efficiencies[result.freq_mhz] = result.power_efficiency_mb_per_j
    xs = sorted(throughputs)
    ys = [throughputs[x] for x in xs]
    return SensitivityPoint(
        parameter="",
        scale=1.0,
        knee_mhz=knee_frequency(xs, ys),
        ceiling_mb_s=max(ys),
        efficiency_peak_mhz=max(efficiencies, key=efficiencies.get),
    )


def _build_perturbations() -> Dict[str, Callable[[float], PdrSystem]]:
    """parameter name -> factory(scale) producing a perturbed system."""

    def burst(scale: float) -> PdrSystem:
        size = max(256, int(1024 * scale) // 4 * 4)
        return PdrSystem(config=PdrSystemConfig(dma_burst_bytes=size))

    def cmd_gap(scale: float) -> PdrSystem:
        cycles = max(0, round(10 * scale))
        return PdrSystem(config=PdrSystemConfig(dma_cmd_overhead_cycles=cycles))

    def interconnect_latency(scale: float) -> PdrSystem:
        system = PdrSystem()
        system.interconnect.forward_latency_ns = 160.0 * scale
        return system

    def setup_time(scale: float) -> PdrSystem:
        return PdrSystem(config=PdrSystemConfig(firmware_setup_us=1.9 * scale))

    return {
        "dma_burst_bytes": burst,
        "dma_cmd_gap_cycles": cmd_gap,
        "interconnect_latency_ns": interconnect_latency,
        "driver_setup_us": setup_time,
    }


def sensitivity_point(parameter: str, scale: float) -> SensitivityPoint:
    """One perturbed system, fully measured (sweep point)."""
    factory = _build_perturbations().get(parameter)
    if factory is None:
        raise KeyError(f"unknown sensitivity parameter {parameter!r}")
    system = factory(scale)
    point = _measure(system)
    point.parameter = parameter
    point.scale = scale
    note_events(system.sim.events_processed)
    return point


def run_sensitivity(
    scales: Optional[List[float]] = None,
    runner: Optional[SweepRunner] = None,
) -> SensitivityResult:
    """Perturb each calibrated constant and measure the curve shape."""
    scales = scales or [0.75, 1.0, 1.25]
    grid = [
        (parameter, scale)
        for parameter in _build_perturbations()
        for scale in scales
    ]
    points = (runner or SweepRunner()).map(
        "sensitivity",
        sensitivity_point,
        [dict(parameter=parameter, scale=scale) for parameter, scale in grid],
        labels=[f"sens@{parameter}x{scale:g}" for parameter, scale in grid],
    )
    return SensitivityResult(points=points)


def format_report(result: SensitivityResult) -> str:
    """Render the sensitivity table and the robustness verdicts."""
    report = ExperimentReport("Calibration sensitivity (±25% per constant)")
    rows = []
    for point in result.points:
        rows.append(
            [
                point.parameter,
                f"x{point.scale:g}",
                fmt(point.knee_mhz, 0, na="none"),
                fmt(point.ceiling_mb_s, 1),
                f"{point.efficiency_peak_mhz:g}",
            ]
        )
    report.add(
        format_table(
            ["parameter", "scale", "knee MHz", "ceiling MB/s", "PpW peak MHz"],
            rows,
        )
    )
    report.add(
        f"knee-then-plateau shape under every perturbation: "
        f"{result.shape_always_saturates()}\n"
        f"power-efficiency peak stays at the knee: "
        f"{result.efficiency_peak_is_stable()}"
    )
    return report.render()


def main() -> None:
    """Run the sensitivity sweep and print the report."""
    print(format_report(run_sensitivity()))


if __name__ == "__main__":
    main()
