"""ZedBoard user inputs: the 8 slide switches and push buttons.

The paper selects the over-clocking frequency with the 8 switches and
starts ICAP operations / selects one of the two bitstreams with two push
buttons.  The frequency encoding is a lookup table indexed by the switch
byte, mirroring the test firmware's `switch → MHz` mapping.
"""

from __future__ import annotations

from typing import Callable, Dict, List

__all__ = ["SwitchBank", "PushButtons", "DEFAULT_FREQUENCY_TABLE"]

#: Switch-code → over-clock MHz table used by the test firmware.  Codes
#: 0–8 select the paper's nine test frequencies; other codes fall back to
#: the nominal 100 MHz.
DEFAULT_FREQUENCY_TABLE: Dict[int, float] = {
    0: 100.0,
    1: 140.0,
    2: 180.0,
    3: 200.0,
    4: 240.0,
    5: 280.0,
    6: 310.0,
    7: 320.0,
    8: 360.0,
}


class SwitchBank:
    """Eight slide switches read as a byte."""

    def __init__(self, count: int = 8):
        self.count = count
        self._state = [False] * count

    def set_switch(self, index: int, on: bool) -> None:
        if not 0 <= index < self.count:
            raise IndexError(f"switch {index} out of range")
        self._state[index] = bool(on)

    def set_code(self, code: int) -> None:
        """Set all switches at once from an integer code."""
        if not 0 <= code < (1 << self.count):
            raise ValueError(f"code {code} needs more than {self.count} switches")
        for i in range(self.count):
            self._state[i] = bool(code & (1 << i))

    def read_code(self) -> int:
        return sum(1 << i for i, on in enumerate(self._state) if on)

    def selected_frequency_mhz(
        self, table: Dict[int, float] = DEFAULT_FREQUENCY_TABLE
    ) -> float:
        return table.get(self.read_code(), 100.0)


class PushButtons:
    """Momentary push buttons with press callbacks."""

    def __init__(self, names: List[str] = None):
        self.names = list(names or ["BTNC", "BTNL", "BTNR", "BTNU", "BTND"])
        self._handlers: Dict[str, List[Callable[[], None]]] = {
            name: [] for name in self.names
        }
        self.press_counts: Dict[str, int] = {name: 0 for name in self.names}

    def on_press(self, name: str, handler: Callable[[], None]) -> None:
        self._check(name)
        self._handlers[name].append(handler)

    def press(self, name: str) -> None:
        self._check(name)
        self.press_counts[name] += 1
        for handler in list(self._handlers[name]):
            handler()

    def _check(self, name: str) -> None:
        if name not in self._handlers:
            raise KeyError(f"no button {name!r}; have {self.names}")
