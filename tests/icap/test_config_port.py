"""Tests for the configuration-port state machine."""

import pytest

from repro.bitstream import (
    FRAME_WORDS,
    BitstreamBuilder,
    Command,
    ConfigRegister,
    OP_WRITE,
    SYNC_WORD,
    make_z7020_layout,
    type1,
)
from repro.fabric import ConfigMemory, FirFilterAsp, encode_asp_frames
from repro.icap import ConfigPort


@pytest.fixture()
def setup():
    layout = make_z7020_layout()
    memory = ConfigMemory(layout)
    return layout, memory, ConfigPort(memory), BitstreamBuilder(layout)


def _build(layout, builder, region, asp=None):
    frames = encode_asp_frames(
        layout.region_frame_count(region), asp or FirFilterAsp([1, 2])
    )
    return builder.build_partial(region, frames), frames


def test_ignores_words_before_sync(setup):
    _layout, _memory, port, _builder = setup
    port.feed_words([0xFFFFFFFF, 0x12345678, 0xDEADBEEF])
    assert not port.synced
    assert port.words_consumed == 3


def test_full_bitstream_loads_region(setup):
    layout, memory, port, builder = setup
    bitstream, frames = _build(layout, builder, "RP1")
    port.feed_words(bitstream.words)
    assert port.desynced
    assert not port.has_error
    assert port.frames_committed == layout.region_frame_count("RP1")
    assert memory.region_frames("RP1") == frames


def test_pad_frame_not_committed(setup):
    """The flush pad frame must not spill into the next column."""
    layout, memory, port, builder = setup
    bitstream, _frames = _build(layout, builder, "RP1")
    port.feed_words(bitstream.words)
    # The frame just after the region must remain untouched.
    last = layout.region_frames("RP1")[-1]
    next_index = layout.frame_index(last) + 1
    assert memory.read_frame(next_index) == [0] * FRAME_WORDS


def test_crc_error_on_corrupted_payload(setup):
    layout, memory, port, builder = setup
    bitstream, _ = _build(layout, builder, "RP2")
    corrupted = bitstream.corrupted(len(bitstream.words) // 2, flip_mask=0x8)
    port.feed_words(corrupted.words)
    assert port.crc_error
    assert port.has_error


def test_idcode_mismatch_blocks_frame_writes(setup):
    layout, memory, port, builder = setup
    bitstream, _ = _build(layout, builder, "RP3")
    idcode_index = bitstream.words.index(layout.idcode)
    corrupted = bitstream.corrupted(idcode_index, flip_mask=0xF)
    port.feed_words(corrupted.words)
    assert port.idcode_error
    assert port.frames_committed == 0
    assert all(w == 0 for w in memory.region_words("RP3"))


def test_reset_clears_state(setup):
    layout, _memory, port, builder = setup
    bitstream, _ = _build(layout, builder, "RP1")
    port.feed_words(bitstream.words)
    port.reset()
    assert not port.synced
    assert not port.desynced
    assert port.frames_committed == 0
    assert port.words_consumed == 0


def test_bulk_and_scalar_paths_equivalent(setup):
    """feed_words' FDRI fast path must match word-at-a-time feeding."""
    layout, _memory, _port, builder = setup
    bitstream, _ = _build(layout, builder, "RP1")

    memory_a = ConfigMemory(layout)
    port_a = ConfigPort(memory_a)
    port_a.feed_words(bitstream.words)

    memory_b = ConfigMemory(layout)
    port_b = ConfigPort(memory_b)
    for word in bitstream.words:
        port_b.feed_word(word)

    assert port_a.crc.value == port_b.crc.value
    assert port_a.frames_committed == port_b.frames_committed
    assert memory_a.region_words("RP1") == memory_b.region_words("RP1")
    assert port_a.has_error == port_b.has_error == False  # noqa: E712


def test_fdri_without_wcfg_is_ignored(setup):
    layout, memory, port, _builder = setup
    words = [
        SYNC_WORD,
        type1(OP_WRITE, int(ConfigRegister.FAR), 1),
        layout.region_frames("RP1")[0].encode(),
        type1(OP_WRITE, int(ConfigRegister.FDRI), 4),
        1, 2, 3, 4,
    ]
    port.feed_words(words)
    assert port.frames_committed == 0


def test_unknown_packet_type_latches_error(setup):
    _layout, _memory, port, _builder = setup
    port.feed_words([SYNC_WORD, 0x60000001])  # type-3 header
    assert port.crc_error


def test_far_beyond_device_flags_error(setup):
    layout, _memory, port, _builder = setup
    words = [
        SYNC_WORD,
        type1(OP_WRITE, int(ConfigRegister.CMD), 1),
        int(Command.WCFG),
        type1(OP_WRITE, int(ConfigRegister.FAR), 1),
        0x00FFFFFF,  # far outside the layout
        type1(OP_WRITE, int(ConfigRegister.FDRI), 0),
    ]
    port.feed_words(words)
    assert port.crc_error


def test_rcrc_clears_crc_error(setup):
    _layout, _memory, port, _builder = setup
    port.feed_words([SYNC_WORD, 0x60000001])  # latch an error
    assert port.crc_error
    port.feed_words([type1(OP_WRITE, int(ConfigRegister.CMD), 1), int(Command.RCRC)])
    assert not port.crc_error
