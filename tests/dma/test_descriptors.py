"""Tests for scatter-gather descriptors and batch reconfiguration."""

import pytest

from repro.core import PdrSystem
from repro.dma import SgDescriptor, write_descriptor_chain
from repro.fabric import Aes128Asp, FirFilterAsp, MatMulAsp


def test_descriptor_validation():
    with pytest.raises(ValueError):
        SgDescriptor(buffer_addr=0, length=0)
    with pytest.raises(ValueError):
        SgDescriptor(buffer_addr=0, length=1 << 27)


def test_chain_layout_in_dram():
    from repro.dram import DramDevice

    dram = DramDevice()
    descriptors = [
        SgDescriptor(buffer_addr=0x1000, length=256),
        SgDescriptor(buffer_addr=0x2000, length=512),
    ]
    head = write_descriptor_chain(dram, 0x8000, descriptors)
    assert head == 0x8000
    first = dram.load(0x8000, 32)
    # NXTDESC points at the second descriptor.
    assert int.from_bytes(first[0:4], "big") == 0x8020
    assert int.from_bytes(first[8:12], "big") == 0x1000
    control = int.from_bytes(first[24:28], "big")
    assert control & (1 << 27)  # SOF on the head
    second = dram.load(0x8020, 32)
    assert int.from_bytes(second[24:28], "big") & (1 << 26)  # EOF on the tail


def test_chain_validation():
    from repro.dram import DramDevice

    dram = DramDevice()
    with pytest.raises(ValueError):
        write_descriptor_chain(dram, 0x8000, [])
    with pytest.raises(ValueError):
        write_descriptor_chain(
            dram, 0x8001, [SgDescriptor(buffer_addr=0, length=4)]
        )


@pytest.fixture(scope="module")
def system():
    return PdrSystem()


def test_batch_reconfigures_every_region(system):
    jobs = [
        ("RP1", FirFilterAsp([1, 2])),
        ("RP2", Aes128Asp([1, 2, 3, 4])),
        ("RP3", MatMulAsp(2)),
    ]
    batch = system.reconfigure_batch(jobs, 200.0)
    assert batch.all_valid
    assert batch.regions == ["RP1", "RP2", "RP3"]
    assert batch.total_bytes == 3 * 528_760
    # All three regions are functional afterwards.
    assert system.run_asp("RP1", [1, 0]) == [1, 2]
    assert len(system.run_asp("RP2", [0, 0, 0, 0])) == 4
    assert system.run_asp("RP3", [1, 0, 0, 1, 5, 6, 7, 8]) == [5, 6, 7, 8]


def test_batch_throughput_matches_single(system):
    """Back-to-back chain sustains the single-transfer rate."""
    single = system.reconfigure("RP4", FirFilterAsp([9]), 200.0)
    batch = system.reconfigure_batch(
        [("RP1", FirFilterAsp([5])), ("RP2", FirFilterAsp([6]))], 200.0
    )
    assert batch.throughput_mb_s == pytest.approx(
        single.throughput_mb_s, rel=0.01
    )


def test_batch_writes_back_completion_status(system):
    system.reconfigure_batch([("RP1", FirFilterAsp([3]))], 180.0)
    # The head descriptor's STATUS word carries the completed bit.
    status = int.from_bytes(system.dram.load(0x0F00_0000 + 28, 4), "big")
    assert status & (1 << 31)


def test_batch_validation(system):
    with pytest.raises(ValueError):
        system.reconfigure_batch([], 200.0)
    with pytest.raises(KeyError):
        system.reconfigure_batch([("RP9", FirFilterAsp([1]))], 200.0)


def test_batch_corruption_detected_per_region(system):
    """Over-clocked past the data path, every region in the chain fails
    its read-back independently."""
    batch = system.reconfigure_batch(
        [("RP1", FirFilterAsp([7])), ("RP2", FirFilterAsp([8]))], 360.0
    )
    assert not batch.all_valid
    assert set(batch.region_valid.values()) == {False}
