"""Tests for the sim-time profiler and critical-path extractor."""

import pytest

from repro.obs import SpanRecorder
from repro.obs.profile import (
    PHASE_DEVICE,
    attribute_devices,
    attribute_spans,
    critical_path,
    format_flame_table,
    phase_table,
    span_records,
)
from repro.sim import Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _recorded_tracer():
    clock = FakeClock()
    tracer = Tracer()
    spans = SpanRecorder(now_fn=clock, tracer=tracer, source="fw")
    for _ in range(2):  # two reconfigurations accumulate per-path
        with spans.span("reconfigure"):
            with spans.span("clock_lock"):
                clock.now += 50_000.0       # ns: 50 us
            with spans.span("dma_transfer"):
                clock.now += 600_000.0      # ns: 600 us
            with spans.span("scrub"):
                clock.now += 300_000.0      # ns: 300 us
        clock.now += 10_000.0  # idle gap outside any span
    return tracer


# -- hierarchical attribution --------------------------------------------------


def test_attribute_spans_totals_and_self_time():
    stats = {s.path: s for s in attribute_spans(span_records(_recorded_tracer()))}
    assert stats["reconfigure"].count == 2
    assert stats["reconfigure"].total_us == pytest.approx(1900.0)
    # Self time = total minus child coverage (everything is in children).
    assert stats["reconfigure"].self_us == pytest.approx(0.0)
    assert stats["reconfigure/dma_transfer"].total_us == pytest.approx(1200.0)
    assert stats["reconfigure/dma_transfer"].self_us == pytest.approx(1200.0)
    # Depth-first path order: parent before its children.
    ordered = [s.path for s in attribute_spans(span_records(_recorded_tracer()))]
    assert ordered.index("reconfigure") < ordered.index("reconfigure/scrub")


def test_span_records_filters_by_source():
    tracer = _recorded_tracer()
    assert span_records(tracer, source="fw")
    assert span_records(tracer, source="other") == []


def test_format_flame_table_shows_hierarchy_and_percentages():
    table = format_flame_table(attribute_spans(span_records(_recorded_tracer())))
    lines = table.splitlines()
    assert any("reconfigure" in line and "100.0%" in line for line in lines)
    # Children render indented beneath the root.
    assert any(line.startswith("  dma_transfer") for line in lines)
    assert format_flame_table([]) == "sim-time profile: no spans recorded"


# -- device attribution / critical path ---------------------------------------


def test_attribute_devices_maps_phases():
    phase_us = {
        "clock_lock": 50.0,
        "driver_setup": 2.0,
        "dma_transfer": 600.0,
        "icap_drain": 1.0,
        "scrub": 300.0,
    }
    devices = attribute_devices(phase_us)
    assert devices == {
        "clock_wizard": 50.0,
        "cpu": 2.0,
        "dma": 600.0,
        "icap": 1.0,
        "scrubber": 300.0,
    }
    assert critical_path(phase_us) == "dma"


def test_fifo_backpressure_reattributes_transfer_time_to_icap():
    phase_us = {"dma_transfer": 600.0, "scrub": 300.0}
    # 400 of the 600 µs transfer was the DMA stalled on a full FIFO —
    # the ICAP (the consumer) was the bottleneck for that time.
    devices = attribute_devices(phase_us, fifo_stall_us=400.0)
    assert devices["dma"] == pytest.approx(200.0)
    assert devices["icap"] == pytest.approx(400.0)
    assert critical_path(phase_us, fifo_stall_us=400.0) == "icap"
    # Stall never exceeds the phase it is carved out of.
    clamped = attribute_devices(phase_us, fifo_stall_us=9999.0)
    assert clamped["dma"] == pytest.approx(0.0)
    assert clamped["icap"] == pytest.approx(600.0)


def test_critical_path_tie_breaks_alphabetically_and_handles_empty():
    assert critical_path({}) is None
    assert critical_path({"dma_transfer": 5.0, "scrub": 5.0}) == "dma"


def test_real_reconfiguration_names_a_device():
    from repro.core import PdrSystem, PdrSystemConfig
    from repro.fabric import PassthroughAsp

    system = PdrSystem(PdrSystemConfig(die_temp_c=40.0))
    result = system.reconfigure("RP1", PassthroughAsp(), 200.0)
    assert result.critical_path in set(PHASE_DEVICE.values())
    # The device table covers (at least) the whole phase breakdown.
    assert sum(result.device_us.values()) == pytest.approx(
        sum(result.phase_us.values()), rel=1e-3
    )
    rows = phase_table([result], phases=("dma_transfer", "scrub"))
    assert rows[0]["critical_path"] == result.critical_path
    assert rows[0]["dma_transfer"] == pytest.approx(
        result.phase_us["dma_transfer"], abs=1e-3
    )


def test_timeout_reconfiguration_critical_path_follows_the_hang():
    from repro.core import PdrSystem, PdrSystemConfig
    from repro.fabric import PassthroughAsp

    # 320 MHz at 40 C hangs the control path: the transfer window is the
    # IRQ timeout, so the transfer (dma) dominates the attribution.
    system = PdrSystem(PdrSystemConfig(die_temp_c=40.0))
    result = system.reconfigure("RP1", PassthroughAsp(), 340.0)
    assert not result.interrupt_seen
    assert result.critical_path == "dma"
