"""The §VI proposed SRAM-based partial-reconfiguration environment."""

from .decompressor import BitstreamDecompressor
from .memctrl import SramMemoryController, SramSlot
from .pr_controller import ActivationResult, PrController
from .scheduler import PendingBitstream, PreloadError, PsScheduler
from .sram import QdrSram
from .system import THEORETICAL_THROUGHPUT_MB_S, SramPrResult, SramPrSystem

__all__ = [
    "ActivationResult",
    "BitstreamDecompressor",
    "PendingBitstream",
    "PrController",
    "PreloadError",
    "PsScheduler",
    "QdrSram",
    "SramMemoryController",
    "SramPrResult",
    "SramPrSystem",
    "SramSlot",
    "THEORETICAL_THROUGHPUT_MB_S",
]
