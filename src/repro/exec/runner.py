"""The sweep execution engine.

:class:`SweepRunner` executes a :class:`~repro.exec.spec.SweepSpec` —
serially in-process, or fanned out across worker processes with
``jobs > 1`` — and merges results **in point order**, so a parallel run
is byte-identical to a serial one.  Each point is independently
addressable in the :class:`~repro.exec.cache.ResultCache`: a repeated
run only simulates the points the cache has never seen (or whose code
has changed since).

Point functions run inside :func:`_execute_point`, which times the call
and collects the event-throughput statistic the function reports via
:func:`note_events`; the per-point :class:`PointStats` trajectory is what
``benchmarks/sweep_perf.py`` records to ``BENCH_sweeps.json``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .cache import ResultCache
from .spec import SweepPoint, SweepSpec

__all__ = [
    "PointStats",
    "SweepResult",
    "SweepRunner",
    "default_jobs",
    "note_events",
]

#: Set by :func:`note_events` while a point function runs; read back by
#: :func:`_execute_point` after the function returns.
_POINT_EVENTS: Optional[int] = None


def note_events(events_processed: int) -> None:
    """Report the number of kernel events a point's simulation processed.

    Point functions call this (typically with
    ``system.sim.events_processed``) just before returning, so the
    runner can record an events/s trajectory without reaching into
    simulator objects that never cross the process boundary.
    """
    global _POINT_EVENTS
    _POINT_EVENTS = int(events_processed)


def _execute_point(point: SweepPoint) -> Tuple[Any, Optional[int], float]:
    """Run one point; returns ``(payload, events_processed, wall_s)``.

    Module-level so it is picklable by :class:`ProcessPoolExecutor`.
    """
    global _POINT_EVENTS
    _POINT_EVENTS = None
    function = point.resolve()
    started = time.perf_counter()
    payload = function(**point.kwargs())
    wall_s = time.perf_counter() - started
    return payload, _POINT_EVENTS, wall_s


def default_jobs() -> int:
    """Worker count for ``--jobs 0`` / "auto": the machine's CPU count."""
    return os.cpu_count() or 1


@dataclass
class PointStats:
    """Execution record of one sweep point."""

    label: str
    fn: str
    cached: bool
    wall_s: float = 0.0
    events: Optional[int] = None

    @property
    def events_per_s(self) -> Optional[float]:
        if self.events is None or self.wall_s <= 0 or self.cached:
            return None
        return self.events / self.wall_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "fn": self.fn,
            "cached": self.cached,
            "wall_s": round(self.wall_s, 6),
            "events": self.events,
            "events_per_s": (
                round(self.events_per_s, 1) if self.events_per_s else None
            ),
        }


@dataclass
class SweepResult:
    """Ordered results of one sweep execution."""

    name: str
    values: List[Any]
    stats: List[PointStats] = field(default_factory=list)
    wall_s: float = 0.0
    jobs: int = 1

    @property
    def cache_hits(self) -> int:
        return sum(1 for stat in self.stats if stat.cached)

    @property
    def simulated(self) -> int:
        return len(self.stats) - self.cache_hits


class SweepRunner:
    """Executes sweeps: ``jobs`` worker processes + optional result cache.

    ``jobs=1`` (the default) runs every point in-process — the serial
    fallback, and the mode in which per-system telemetry still reaches
    the process-wide :data:`~repro.obs.TELEMETRY_BOOK`.  ``jobs>1`` fans
    uncached points out over a :class:`ProcessPoolExecutor`; results are
    merged back in spec order, so reports do not depend on scheduling.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None):
        if jobs < 0:
            raise ValueError(f"jobs must be >= 0 (0 = auto), got {jobs}")
        self.jobs = jobs or default_jobs()
        self.cache = cache
        #: Accumulated stats across every sweep this runner executed.
        self.history: List[SweepResult] = []

    # -- convenience -----------------------------------------------------------
    def map(
        self,
        name: str,
        fn: Callable,
        param_sets: Iterable[Dict[str, Any]],
        labels: Iterable[str] = (),
    ) -> List[Any]:
        """Run ``fn`` over ``param_sets``; returns ordered payloads."""
        return self.run(SweepSpec.map(name, fn, param_sets, labels)).values

    # -- execution -------------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepResult:
        """Execute every point of ``spec``; results follow spec order."""
        started = time.perf_counter()
        count = len(spec.points)
        values: List[Any] = [None] * count
        stats: List[PointStats] = [
            PointStats(label=point.label, fn=point.fn, cached=False)
            for point in spec.points
        ]

        pending: List[int] = []
        for index, point in enumerate(spec.points):
            if self.cache is not None:
                hit, value = self.cache.get(point)
                if hit:
                    values[index] = value
                    stats[index].cached = True
                    continue
            pending.append(index)

        if pending:
            if self.jobs > 1 and len(pending) > 1:
                self._run_parallel(spec, pending, values, stats)
            else:
                self._run_serial(spec, pending, values, stats)
            if self.cache is not None:
                for index in pending:
                    self.cache.put(spec.points[index], values[index])

        result = SweepResult(
            name=spec.name,
            values=values,
            stats=stats,
            wall_s=time.perf_counter() - started,
            jobs=self.jobs,
        )
        self.history.append(result)
        return result

    def _run_serial(
        self,
        spec: SweepSpec,
        pending: List[int],
        values: List[Any],
        stats: List[PointStats],
    ) -> None:
        for index in pending:
            payload, events, wall_s = _execute_point(spec.points[index])
            values[index] = payload
            stats[index].events = events
            stats[index].wall_s = wall_s

    def _run_parallel(
        self,
        spec: SweepSpec,
        pending: List[int],
        values: List[Any],
        stats: List[PointStats],
    ) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            futures = {
                index: executor.submit(_execute_point, spec.points[index])
                for index in pending
            }
            # Collect in submission (= spec) order; completion order is
            # irrelevant to the merged result.
            for index in pending:
                try:
                    payload, events, wall_s = futures[index].result()
                except Exception as exc:
                    raise RuntimeError(
                        f"sweep {spec.name!r} point "
                        f"{spec.points[index].label or index} failed: {exc}"
                    ) from exc
                values[index] = payload
                stats[index].events = events
                stats[index].wall_s = wall_s
