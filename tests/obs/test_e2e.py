"""End-to-end observability: one real reconfiguration, full telemetry."""

import pytest

from repro.core import TIMED_PHASES, PdrSystem
from repro.fabric import FirFilterAsp

ASP = FirFilterAsp([3, -1, 4, 1, -5, 9, 2, 6])


@pytest.fixture(scope="module")
def reconfigured_system():
    system = PdrSystem()
    system.set_die_temperature(40.0)
    result = system.reconfigure("RP1", ASP, 200.0)
    return system, result


def test_reconfigure_populates_component_counters(reconfigured_system):
    system, result = reconfigured_system
    metrics = system.metrics
    assert result.latency_us is not None
    # DMA moved the whole bitstream in bursts.
    assert metrics.get("dma.bytes_moved").value > 0
    assert metrics.get("dma.bursts_issued").value > 0
    # ICAP consumed words (4 bytes each) and saw real stall cycles.
    assert metrics.get("icap.words_consumed").value == (
        metrics.get("dma.bytes_moved").value // 4
    )
    assert metrics.get("icap.stall_cycles").value > 0
    # Scrubber ran and (at a safe frequency) found nothing.
    assert metrics.get("crc_scrub.scrubs_run").value == 1
    assert metrics.get("crc_scrub.mismatches").value == 0
    assert metrics.get("icap.corrupted_words").value == 0
    # The stream FIFO saw traffic and its depth histogram has samples.
    assert metrics.get("dma2icap.fifo_depth_words").count > 0
    assert metrics.get("fw.reconfigures").value == 1


def test_reconfigure_phase_breakdown_sums_to_latency(reconfigured_system):
    _, result = reconfigured_system
    # Every firmware phase was recorded with a positive duration.
    for name in ("clock_lock", "driver_setup", "dma_transfer", "icap_drain", "scrub"):
        assert result.phase_us.get(name, 0.0) > 0.0, name
    # The timed phases reproduce the C-timer latency within 1 us.
    assert result.timed_phase_sum_us == pytest.approx(result.latency_us, abs=1.0)
    assert set(TIMED_PHASES) <= set(result.phase_us)


def test_reconfigure_emits_span_trace_records(reconfigured_system):
    system, _ = reconfigured_system
    spans = system.trace.filter(source="fw", kind="span")
    paths = {record.fields["span"] for record in spans}
    assert "reconfigure" in paths
    assert "reconfigure/dma_transfer" in paths
    # Each span record carries machine-readable begin/end/duration.
    for record in spans:
        assert record.fields["end_ns"] >= record.fields["begin_ns"]
        assert record.fields["duration_us"] == pytest.approx(
            (record.fields["end_ns"] - record.fields["begin_ns"]) / 1e3
        )


def test_overclocked_run_counts_corruption():
    system = PdrSystem()
    system.set_die_temperature(40.0)
    result = system.reconfigure("RP1", ASP, 320.0)
    assert not result.crc_valid
    assert system.metrics.get("icap.corrupted_words").value > 0
    assert system.metrics.get("crc_scrub.mismatches").value > 0


def test_simulator_probes_exported():
    system = PdrSystem()
    system.reconfigure("RP1", ASP, 200.0)
    data = system.metrics.to_dict()
    assert data["sim.events_processed"]["value"] > 0
    assert data["sim.heap_high_water"]["value"] > 0
    assert data["sim.processes_spawned"]["value"] > 0
    assert data["bench.temp_c"]["samples"]  # thermal series sampled
