"""Differential regression suite: bank model vs the legacy flat model.

The bank-aware controller, degenerated to the flat model's assumptions —
one master, closed-page policy (no row state), refresh disabled, and
hit == miss latency (tRCD = 0) — must reproduce the legacy flat-latency
campaign byte-identically over a 6-point grid.  This pins the refactor's
backward compatibility: any timing drift in the bank machines, the
command multiplexer, or the crossbar shows up as a diff here.

``REPRO_DRAM=flat`` remains the kill switch back to the legacy
controller; this suite exercises it too.
"""

import json
import os

import pytest

from repro.core import PdrSystem, PdrSystemConfig
from repro.dram import BankDramController, DramController
from repro.experiments.points import asp_descriptor, campaign_point
from repro.experiments.table1 import WORKLOAD_ASP
from repro.snapshot import reset_templates

#: The differential grid: 2 regions x 3 frequencies (the snapshot-smoke
#: grid, reused so fork/fresh and bank/flat pin the same points).
GRID = [
    dict(region=region, freq_mhz=freq, temp_c=40.0)
    for region in ("RP1", "RP2")
    for freq in (100.0, 200.0, 320.0)
]

#: Degenerate knobs under which bank and flat models must be equivalent:
#: closed-page kills row state, tRCD=0 makes hit == miss == tCAS, and
#: refresh off removes the only other time-dependent term.
DEGENERATE = dict(
    dram_page_policy="closed",
    dram_refresh_mode="off",
    dram_trcd_ns=0.0,
    dram_trp_ns=0.0,
)

#: Keys stripped before comparison: both carry implementation identity,
#: not physics.  The bank controller registers extra probes (row_hits,
#: refresh counters, per-master ledgers) so the metrics snapshots name
#: different series, and its deque+wake queue schedules a slightly
#: different kernel event count than the legacy Channel — while every
#: timed observable (latency, throughput, power, phases, critical path)
#: must match to the byte.
VOLATILE_KEYS = ("metrics", "events")


@pytest.fixture(autouse=True)
def _clean_templates():
    reset_templates()
    yield
    reset_templates()


def _campaign(config):
    workload = asp_descriptor(WORKLOAD_ASP)
    records = []
    for point in GRID:
        record = campaign_point(workload=workload, config=config, **point)
        for key in VOLATILE_KEYS:
            record.pop(key)
        records.append(record)
    return json.dumps(records, sort_keys=True)


def test_degenerate_bank_model_reproduces_flat_campaign_byte_identically():
    bank = _campaign(dict(DEGENERATE, dram_model="bank"))
    flat = _campaign(dict(DEGENERATE, dram_model="flat"))
    assert bank == flat


def test_default_bank_calibration_matches_flat_timing():
    """Default knobs (open page, lazy refresh, tRP=0) are calibrated to
    the legacy lumped timings, so even the *non*-degenerate default must
    time identically to the flat model for the single-master campaign."""
    bank = _campaign(dict(dram_model="bank"))
    flat = _campaign(dict(dram_model="flat"))
    assert bank == flat


def test_env_kill_switch_selects_legacy_controller(monkeypatch):
    monkeypatch.setenv("REPRO_DRAM", "flat")
    assert isinstance(PdrSystem().dram_controller, DramController)
    monkeypatch.delenv("REPRO_DRAM")
    assert isinstance(PdrSystem().dram_controller, BankDramController)


def test_env_kill_switch_overrides_config(monkeypatch):
    monkeypatch.setenv("REPRO_DRAM", "flat")
    system = PdrSystem(PdrSystemConfig(dram_model="bank"))
    assert isinstance(system.dram_controller, DramController)
    assert system.dram_model == "flat"


def test_env_kill_switch_campaign_matches_default(monkeypatch):
    """The kill switch flips only the controller implementation — the
    legacy campaign observables match the default bank model's."""
    monkeypatch.delenv("REPRO_DRAM", raising=False)
    default = _campaign(None)
    monkeypatch.setenv("REPRO_DRAM", "flat")
    reset_templates()
    flat = _campaign(None)
    assert default == flat


def test_rejects_unknown_model(monkeypatch):
    monkeypatch.setenv("REPRO_DRAM", "quantum")
    with pytest.raises(ValueError):
        PdrSystem()


def test_env_overrides_refresh_mode(monkeypatch):
    """``REPRO_DRAM_REFRESH`` flips refresh accounting without touching
    the config — the hook for A/B soak runs over campaigns that build
    their ``PdrSystemConfig`` internally."""
    monkeypatch.setenv("REPRO_DRAM_REFRESH", "engine")
    assert PdrSystem().dram_controller.refresh_mode == "engine"
    monkeypatch.setenv("REPRO_DRAM_REFRESH", "sometimes")
    with pytest.raises(ValueError):
        PdrSystem()
    monkeypatch.delenv("REPRO_DRAM_REFRESH")
    assert PdrSystem().dram_controller.refresh_mode == "lazy"
