"""The detect→recover loop around :class:`~repro.core.PdrSystem`.

The firmware detects over-clocking failures (missing completion
interrupt, read-back CRC mismatch) but, on its own, leaves the damage in
place: a timed-out transfer is abandoned and a corrupted region stays
corrupted.  :class:`ResilientReconfigurator` closes the loop:

* **IRQ timeout** (control-path hang): the firmware sequence has already
  reset the DMA engine and aborted the in-flight ICAP transfer (see
  :meth:`~repro.core.PdrSystem.abort_transfer`); the reconfigurator
  retries the whole transfer at a frequency from the policy's backoff
  ladder.
* **CRC mismatch** (data-path corruption): the golden bitstream is
  re-written — a marginal violation gets one same-frequency retry (the
  salted fault injector re-draws the corruption), then the ladder backs
  the clock off until the words land intact.
* Every outcome feeds the :class:`~repro.resilience.FrequencyGovernor`,
  which quarantines operating points after repeated failures and clamps
  later requests below them.

All recovery activity is observable: ``resilience.*`` counters and
histograms live in the system's metrics registry, and each logical
reconfiguration is wrapped in a ``recover`` span (mirrored into the
system trace) so time-to-repair shows up next to the firmware phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..core import PdrSystem, ReconfigResult
from ..fabric import Asp
from ..obs import SpanRecorder
from ..timing import FailureMode

from .governor import FrequencyGovernor
from .policy import RecoveryPolicy

__all__ = [
    "AttemptRecord",
    "BatchRecoveryOutcome",
    "RecoveryOutcome",
    "ResilientReconfigurator",
]

#: "No padding override requested" — distinct from ``pad_to=None``,
#: which explicitly asks for a content-sized bitstream.
_UNSET = object()


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt of a recovered reconfiguration (plain data)."""

    attempt: int
    requested_mhz: float
    achieved_mhz: float
    interrupt_seen: bool
    crc_valid: bool
    detected_modes: tuple
    latency_us: Optional[float]

    @property
    def succeeded(self) -> bool:
        return self.interrupt_seen and self.crc_valid


@dataclass
class RecoveryOutcome:
    """Outcome of one logical reconfiguration under recovery."""

    region: str
    requested_freq_mhz: float
    temp_c: float
    attempts: List[AttemptRecord] = field(default_factory=list)
    #: True when the final attempt fully succeeded.
    recovered: bool = False
    #: Frequency of the successful attempt (None if the budget ran out).
    final_freq_mhz: Optional[float] = None
    #: Sim-time from the first detected failure to the final success
    #: (None when the first try succeeded or nothing ever succeeded).
    recovery_latency_us: Optional[float] = None
    #: Operating points the governor newly quarantined during this loop.
    newly_quarantined: int = 0
    #: Requests clamped by the governor before the first attempt.
    governor_clamped: bool = False

    @property
    def injected_failure(self) -> bool:
        """Did the first attempt fail (i.e. was there anything to recover)?"""
        return bool(self.attempts) and not self.attempts[0].succeeded

    @property
    def attempts_used(self) -> int:
        return len(self.attempts)

    @property
    def first_failure_modes(self) -> tuple:
        if not self.injected_failure:
            return ()
        return self.attempts[0].detected_modes

    def summary(self) -> str:
        if not self.injected_failure:
            return "ok"
        if self.recovered:
            return f"rec:{self.attempts_used}@{self.final_freq_mhz:.0f}"
        return "FAIL"


@dataclass
class BatchRecoveryOutcome:
    """Outcome of one SG dispatch group executed under recovery.

    The descriptor chain runs once at the (governor-authorised) batch
    frequency; any region whose read-back CRC failed — or every region,
    when the chain's control path hung — is then re-driven through the
    normal per-region retry loop, so one corrupted transfer never
    poisons the whole group.
    """

    requested_freq_mhz: float
    #: Frequency the chain actually ran at (after governor clamping).
    freq_mhz: float
    #: Sim-time from chain start to the last recovery settling (µs).
    latency_us: float
    #: region -> final verdict after any individual recovery.
    region_ok: Dict[str, bool] = field(default_factory=dict)
    #: Per-region retry loops run for regions the batch left invalid.
    recoveries: Dict[str, "RecoveryOutcome"] = field(default_factory=dict)
    governor_clamped: bool = False
    newly_quarantined: int = 0

    @property
    def recovered(self) -> bool:
        """Did every region of the group end up valid?"""
        return bool(self.region_ok) and all(self.region_ok.values())

    @property
    def attempts_used(self) -> int:
        return len(self.region_ok) + sum(
            outcome.attempts_used for outcome in self.recoveries.values()
        )


def detect_modes(result: ReconfigResult) -> tuple:
    """Failure modes as the firmware *observes* them (no oracle).

    A missing completion interrupt reads as a control-path hang; a CRC
    mismatch as data-path corruption.  ``result.failure_modes`` (the
    timing model's ground truth) is deliberately not consulted.
    """
    modes = []
    if not result.interrupt_seen:
        modes.append(FailureMode.CONTROL_HANG)
    if not result.crc_valid:
        modes.append(FailureMode.DATA_CORRUPT)
    return tuple(modes)


class ResilientReconfigurator:
    """Retry/repair driver between the experiments and the PDR system."""

    def __init__(
        self,
        system: PdrSystem,
        policy: Optional[RecoveryPolicy] = None,
        governor: Optional[FrequencyGovernor] = None,
    ):
        self.system = system
        self.policy = policy or RecoveryPolicy()
        self.governor = governor or FrequencyGovernor(
            quarantine_after=self.policy.quarantine_after,
            metrics=system.metrics,
        )
        metrics = system.metrics
        self._m_attempts = metrics.counter("resilience.attempts")
        self._m_retries = metrics.counter("resilience.retries")
        self._m_backoffs = metrics.counter("resilience.backoffs")
        self._m_failures = metrics.counter("resilience.failures_detected")
        self._m_recoveries = metrics.counter("resilience.recoveries")
        self._m_giveups = metrics.counter("resilience.giveups")
        self._m_repairs = metrics.counter("resilience.scrub_repairs")
        self._m_repair_us = metrics.histogram("resilience.time_to_repair_us")
        #: Completed (re-verified) SEU repair cycles — the chaos layer's
        #: headline repair counter; ``scrub_repairs`` above counts repair
        #: *starts* and predates it.
        self._m_seu_repairs = metrics.counter("resilience.repairs")
        self._m_seu_detected = metrics.counter("resilience.seu_detected")
        self._m_verify_failures = metrics.counter(
            "resilience.repair_verify_failures"
        )
        self._m_mttr_us = metrics.histogram("resilience.mttr_us")
        self._spans = SpanRecorder(
            now_fn=lambda: system.sim.now,
            tracer=system.trace,
            source="resilience",
            metrics=metrics,
            metrics_prefix="resilience.phase.",
        )
        #: region -> last ASP successfully loaded (the golden content the
        #: scrub-triggered repair path re-writes).
        self._golden: Dict[str, Asp] = {}
        #: Regions the background scrubber flagged as corrupted.
        self.pending_repairs: List[str] = []
        #: First-detection sim time of each pending region (for MTTR).
        self._detected_ns: Dict[str, float] = {}
        #: Regions taken out of service by an in-progress repair cycle.
        self.isolated_regions: Set[str] = set()
        #: Completed repair cycles, oldest first (plain-data records).
        self.repair_log: List[dict] = []
        #: Region currently being reconfigured by :meth:`reconfigure` —
        #: its own post-transfer scrub failures belong to the retry loop,
        #: not the background-repair queue.
        self._active_region: Optional[str] = None

    # -- main entry ----------------------------------------------------------
    def reconfigure(
        self, region: str, asp: Asp, freq_mhz: float, pad_to=_UNSET
    ) -> RecoveryOutcome:
        """One logical reconfiguration, retried within the policy budget.

        ``pad_to`` overrides the bitstream padding for every attempt
        (``None`` = content-sized), mirroring
        :meth:`~repro.core.PdrSystem.make_bitstream` — request-level
        workloads mix bitstream sizes on one system this way.  Left
        unset, the system's configured padding applies.
        """
        system = self.system
        policy = self.policy
        temp_c = system.die_temp_c
        authorised = self.governor.authorise(region, freq_mhz, temp_c)
        outcome = RecoveryOutcome(
            region=region,
            requested_freq_mhz=freq_mhz,
            temp_c=temp_c,
            governor_clamped=authorised < freq_mhz,
        )
        freq = authorised
        first_failure_ns: Optional[float] = None
        bitstream = (
            None if pad_to is _UNSET
            else system.make_bitstream(region, asp, pad_to=pad_to)
        )
        previous_active = self._active_region
        self._active_region = region
        try:
            return self._reconfigure_attempts(
                region, asp, freq, outcome, first_failure_ns, bitstream
            )
        finally:
            self._active_region = previous_active

    def _reconfigure_attempts(
        self, region, asp, freq, outcome, first_failure_ns, bitstream=None
    ) -> RecoveryOutcome:
        system = self.system
        policy = self.policy
        freq_mhz = outcome.requested_freq_mhz
        with self._spans.span("recover", region=region, freq_mhz=freq_mhz):
            for attempt in range(policy.max_attempts):
                self._m_attempts.inc()
                if attempt > 0:
                    self._m_retries.inc()
                result = system.reconfigure(
                    region, asp, freq, bitstream=bitstream, attempt=attempt
                )
                modes = detect_modes(result)
                outcome.attempts.append(
                    AttemptRecord(
                        attempt=attempt,
                        requested_mhz=freq,
                        achieved_mhz=result.freq_mhz,
                        interrupt_seen=result.interrupt_seen,
                        crc_valid=result.crc_valid,
                        detected_modes=modes,
                        latency_us=result.latency_us,
                    )
                )
                if result.succeeded:
                    self.governor.record_success(
                        region, result.freq_mhz, result.temp_c
                    )
                    self._golden[region] = asp
                    outcome.recovered = True
                    outcome.final_freq_mhz = result.freq_mhz
                    if first_failure_ns is not None:
                        repair_us = (system.sim.now - first_failure_ns) / 1e3
                        outcome.recovery_latency_us = repair_us
                        self._m_recoveries.inc()
                        self._m_repair_us.observe(repair_us)
                    break
                # -- failure detected -------------------------------------
                self._m_failures.inc()
                if first_failure_ns is None:
                    first_failure_ns = system.sim.now
                if self.governor.record_failure(
                    region, result.freq_mhz, result.temp_c, modes
                ):
                    outcome.newly_quarantined += 1
                system.trace.emit(
                    system.sim.now,
                    "resilience",
                    f"attempt {attempt} at {result.freq_mhz:g} MHz failed "
                    f"({', '.join(modes) or 'unknown'})",
                )
                next_freq = policy.next_frequency(freq, attempt, modes)
                if next_freq < freq:
                    self._m_backoffs.inc()
                freq = next_freq
            else:
                self._m_giveups.inc()
        return outcome

    # -- batch (SG dispatch group) entry ----------------------------------------
    def reconfigure_batch(self, jobs, freq_mhz: float) -> BatchRecoveryOutcome:
        """One SG dispatch group under recovery.

        ``jobs`` is the same ``(region, asp[, pad_to])`` list
        :meth:`~repro.core.PdrSystem.reconfigure_batch` accepts (regions
        must be distinct).  The chain runs once at the lowest frequency
        the governor authorises across the group's regions; every
        region's verdict then feeds the governor exactly as an
        individual reconfiguration would, and any invalid region falls
        back to the per-region retry loop of :meth:`reconfigure`.
        """
        jobs = list(jobs)
        if not jobs:
            raise ValueError("batch needs at least one (region, asp) job")
        system = self.system
        temp_c = system.die_temp_c
        authorised = min(
            self.governor.authorise(job[0], freq_mhz, temp_c) for job in jobs
        )
        start_ns = system.sim.now
        outcome = BatchRecoveryOutcome(
            requested_freq_mhz=freq_mhz,
            freq_mhz=authorised,
            latency_us=0.0,
            governor_clamped=authorised < freq_mhz,
        )
        with self._spans.span(
            "recover_batch", jobs=len(jobs), freq_mhz=freq_mhz
        ):
            batch = system.reconfigure_batch(jobs, authorised)
            outcome.freq_mhz = batch.freq_mhz
            for job in jobs:
                region, asp = job[0], job[1]
                pad_to = job[2] if len(job) > 2 else _UNSET
                self._m_attempts.inc()
                ok = batch.control_path_ok and batch.region_valid.get(
                    region, False
                )
                if ok:
                    self.governor.record_success(
                        region, batch.freq_mhz, temp_c
                    )
                    self._golden[region] = asp
                    outcome.region_ok[region] = True
                    continue
                self._m_failures.inc()
                modes = []
                if not batch.control_path_ok:
                    modes.append(FailureMode.CONTROL_HANG)
                if not batch.region_valid.get(region, False):
                    modes.append(FailureMode.DATA_CORRUPT)
                if self.governor.record_failure(
                    region, batch.freq_mhz, temp_c, tuple(modes)
                ):
                    outcome.newly_quarantined += 1
                recovery = self.reconfigure(region, asp, freq_mhz, pad_to=pad_to)
                outcome.recoveries[region] = recovery
                outcome.region_ok[region] = recovery.recovered
                outcome.newly_quarantined += recovery.newly_quarantined
        outcome.latency_us = (system.sim.now - start_ns) / 1e3
        return outcome

    # -- scrub-triggered repair -------------------------------------------------
    def attach_scrubber(self) -> None:
        """Register on the system scrubber's mismatch hook.

        Once attached, any scrub pass (including the background loop)
        that detects a corrupted region queues it here; call
        :meth:`repair_pending` to re-write the golden content.
        """
        self.system.scrubber.on_mismatch = self._on_scrub_mismatch

    def _on_scrub_mismatch(self, scrub) -> None:
        if scrub.region == self._active_region:
            # The firmware's own post-transfer scrub of the region being
            # reconfigured right now: the retry loop already owns that
            # failure — queueing a background repair would double-treat.
            return
        if scrub.region not in self.pending_repairs:
            self.pending_repairs.append(scrub.region)
            self._detected_ns.setdefault(scrub.region, scrub.at_ns)
            self._m_seu_detected.inc()

    def repair_pending(self) -> List[RecoveryOutcome]:
        """Run the full SEU repair cycle for every scrub-flagged region.

        For each region: **isolate** it (out of service for the duration),
        **re-write** the golden bitstream, then **re-verify** with an
        explicit scrub pass before returning it to service.  Repairs run
        at the region's learned safe frequency (falling back to the
        policy floor when nothing is known yet) so the repair itself
        cannot re-trigger the failure that corrupted the region.  Each
        completed cycle appends a plain-data record (with MTTR measured
        from first detection) to :attr:`repair_log`; a failed re-verify
        leaves the region queued for the next call.
        """
        system = self.system
        queue, self.pending_repairs = self.pending_repairs, []
        outcomes = []
        for region in queue:
            asp = self._golden.get(region)
            if asp is None:
                raise KeyError(
                    f"scrubber flagged {region!r} but no golden content "
                    f"was ever loaded through this reconfigurator"
                )
            detected_ns = self._detected_ns.get(region, system.sim.now)
            freq = self.governor.safe_fmax_mhz(region) or self.policy.freq_floor_mhz
            self._m_repairs.inc()
            with self._spans.span("seu_repair", region=region):
                self.isolated_regions.add(region)
                try:
                    outcome = self.reconfigure(region, asp, freq)
                    verified = False
                    if outcome.recovered:
                        scrub = system.sim.run_until(
                            system.sim.process(
                                system.scrubber.scrub_region_once(region),
                                name=f"resilience.verify:{region}",
                            )
                        )
                        verified = scrub.ok
                finally:
                    self.isolated_regions.discard(region)
            repaired_ns = system.sim.now
            mttr_us = (repaired_ns - detected_ns) / 1e3
            self.repair_log.append(
                {
                    "region": region,
                    "detected_ns": detected_ns,
                    "repaired_ns": repaired_ns,
                    "mttr_us": mttr_us,
                    "verified": verified,
                    "attempts": outcome.attempts_used,
                }
            )
            if verified:
                self._detected_ns.pop(region, None)
                self._m_seu_repairs.inc()
                self._m_mttr_us.observe(mttr_us)
                system.trace.emit(
                    repaired_ns,
                    "resilience",
                    f"SEU repair of {region} verified clean "
                    f"(MTTR {mttr_us:.1f} us)",
                )
            else:
                self._m_verify_failures.inc()
                if region not in self.pending_repairs:
                    self.pending_repairs.append(region)
                system.trace.emit(
                    repaired_ns,
                    "resilience",
                    f"SEU repair of {region} FAILED re-verify; re-queued",
                )
            outcomes.append(outcome)
        return outcomes
