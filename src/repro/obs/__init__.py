"""Observability layer: metrics, spans, exporters, profiler, campaigns.

Public surface::

    from repro.obs import MetricsRegistry, SpanRecorder, TELEMETRY_BOOK
    from repro.obs import export, profile, campaign

The package is deliberately free of simulator imports — everything is
parameterised by a ``now_fn`` time source or consumes already-recorded
plain data — so it can sit below :mod:`repro.sim` in the layering and
be reused by any component.

* :mod:`repro.obs.export` — OpenMetrics text + Chrome trace-event JSON.
* :mod:`repro.obs.profile` — span-tree attribution, flame tables and
  the critical-path extractor.
* :mod:`repro.obs.campaign` — per-point record rollups behind
  ``repro-pdr report``.
"""

from . import campaign, export, profile
from .book import TELEMETRY_BOOK, TelemetryBook
from .campaign import CampaignReport, aggregate_campaign
from .export import to_chrome_trace, to_openmetrics
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    NullMetricsRegistry,
    Probe,
    Series,
)
from .profile import attribute_devices, critical_path, format_flame_table
from .spans import Span, SpanRecorder

__all__ = [
    "CampaignReport",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRIC",
    "NullMetricsRegistry",
    "Probe",
    "Series",
    "Span",
    "SpanRecorder",
    "TELEMETRY_BOOK",
    "TelemetryBook",
    "aggregate_campaign",
    "attribute_devices",
    "campaign",
    "critical_path",
    "export",
    "format_flame_table",
    "profile",
    "to_chrome_trace",
    "to_openmetrics",
]
