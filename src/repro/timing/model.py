"""Static-timing / over-clocking failure model.

The paper over-clocks standard IP far beyond its specification and
observes three regimes (Table I + §IV-A):

* up to 280 MHz — everything works, at any die temperature 40–100 °C;
* at 310 MHz — the transfer data still lands correctly (read-back CRC
  "valid") but the completion interrupt never arrives; at 100 °C even the
  data path fails;
* at 320 MHz and above — the bitstream is corrupted (CRC "not valid").

We model this with two lumped critical paths, each with an fmax at 40 °C
and a linear thermal derating (silicon slows as it heats):

* ``pdr_control`` — the DMA/ICAP completion/interrupt logic,
  fmax(40 °C) = 305 MHz.  Violation ⇒ the completion interrupt sticks.
* ``pdr_data`` — the stream datapath, fmax(40 °C) = 315 MHz.
  Violation ⇒ configuration words are corrupted in flight.

fmax(T) = fmax(40) · (1 − α·(T − 40)) with α = 3.0·10⁻⁴/°C gives exactly
the paper's frontier (fmax_data(90 °C) = 310.3 MHz, fmax_data(100 °C) =
309.3 MHz): 310 MHz data-path OK at ≤90 °C, failing at 100 °C;
control path failing at 310 MHz at every temperature; ≥320 MHz failing
outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["CriticalPath", "TimingModel", "FailureMode", "default_timing_model"]


class FailureMode:
    """What breaks when a path's timing is violated."""

    CONTROL_HANG = "control-hang"    #: interrupts/handshakes stop arriving
    DATA_CORRUPT = "data-corrupt"    #: data words latch wrong values
    FREEZE = "freeze"                #: the whole fabric wedges (VF-2012 >300 MHz)


@dataclass(frozen=True)
class CriticalPath:
    """One lumped flop-to-flop path."""

    name: str
    fmax_mhz_at_40c: float
    failure_mode: str
    #: Fractional fmax loss per °C above 40 °C.
    thermal_derate_per_c: float = 3.0e-4

    def fmax_mhz(self, temp_c: float) -> float:
        """Temperature-derated maximum frequency."""
        derate = 1.0 - self.thermal_derate_per_c * (temp_c - 40.0)
        return self.fmax_mhz_at_40c * max(derate, 0.0)

    def ok(self, freq_mhz: float, temp_c: float) -> bool:
        return freq_mhz <= self.fmax_mhz(temp_c)

    def slack_ns(self, freq_mhz: float, temp_c: float) -> float:
        """Positive slack = margin; negative = violation (per cycle, ns)."""
        if freq_mhz <= 0:
            raise ValueError("frequency must be positive")
        period = 1e3 / freq_mhz
        delay = 1e3 / self.fmax_mhz(temp_c)
        return period - delay


class TimingModel:
    """A set of named critical paths queried by the PDR system."""

    def __init__(self, paths: Optional[List[CriticalPath]] = None):
        self._paths: Dict[str, CriticalPath] = {}
        for path in paths or []:
            self.add_path(path)

    def add_path(self, path: CriticalPath) -> None:
        if path.name in self._paths:
            raise ValueError(f"path {path.name!r} already registered")
        self._paths[path.name] = path

    def path(self, name: str) -> CriticalPath:
        if name not in self._paths:
            raise KeyError(f"unknown timing path {name!r}; have {sorted(self._paths)}")
        return self._paths[name]

    def path_names(self) -> List[str]:
        return sorted(self._paths)

    def ok(self, name: str, freq_mhz: float, temp_c: float) -> bool:
        return self.path(name).ok(freq_mhz, temp_c)

    def failures(self, freq_mhz: float, temp_c: float) -> List[CriticalPath]:
        """All paths violated at this operating point, worst slack first."""
        violated = [
            p for p in self._paths.values() if not p.ok(freq_mhz, temp_c)
        ]
        return sorted(violated, key=lambda p: p.slack_ns(freq_mhz, temp_c))

    def max_safe_frequency(self, temp_c: float) -> float:
        """fmax of the weakest path at ``temp_c``."""
        if not self._paths:
            raise ValueError("timing model has no paths")
        return min(p.fmax_mhz(temp_c) for p in self._paths.values())


#: Paths of the paper's over-clocked PDR design.
PDR_CONTROL_PATH = "pdr_control"
PDR_DATA_PATH = "pdr_data"


def default_timing_model() -> TimingModel:
    """The calibrated two-path model described in the module docstring."""
    return TimingModel(
        [
            CriticalPath(
                name=PDR_CONTROL_PATH,
                fmax_mhz_at_40c=305.0,
                failure_mode=FailureMode.CONTROL_HANG,
            ),
            CriticalPath(
                name=PDR_DATA_PATH,
                fmax_mhz_at_40c=315.0,
                failure_mode=FailureMode.DATA_CORRUPT,
            ),
        ]
    )
