"""Module-level point functions for the exec test suite.

Sweep point functions must be importable by reference ("module:qualname"),
including from worker processes, so they live here rather than inside the
test functions.
"""

from repro.exec import note_events


def square(x):
    """x^2 — the simplest possible sweep point."""
    return x * x


def describe(x, scale=1.0, tag=""):
    """Echo the canonicalised kwargs back, plus a derived value."""
    return {"x": x, "scale": scale, "tag": tag, "value": x * scale}


def slow_square(x):
    """Like :func:`square`, but reports fake event statistics."""
    note_events(100 * x)
    return x * x


def boom(x):
    """Always fails."""
    raise ValueError(f"boom({x})")
