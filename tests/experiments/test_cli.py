"""Tests for the repro-pdr command-line interface."""

import contextlib
import io

import pytest

from repro.experiments.cli import EXPERIMENTS, main


def test_experiment_registry_covers_every_artifact():
    assert set(EXPERIMENTS) == {
        "table1",
        "table2",
        "table3",
        "fig5",
        "fig6",
        "temp-stress",
        "proposed",
        "methodology",
        "campaign",
        "sensitivity",
    }


def test_cli_runs_single_experiment():
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(["table2"])
    out = buffer.getvalue()
    assert code == 0
    assert "Table II" in out
    assert "200 MHz" in out


def test_cli_runs_multiple_experiments():
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(["table3", "methodology"])
    out = buffer.getvalue()
    assert code == 0
    assert "Table III" in out
    assert "methodology" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_cli_requires_an_argument():
    with pytest.raises(SystemExit):
        main([])
