"""ZedBoard peripherals: switches, buttons, OLED, SD card."""

from .inputs import DEFAULT_FREQUENCY_TABLE, PushButtons, SwitchBank
from .oled import OledDisplay
from .sdcard import SdCard

__all__ = [
    "DEFAULT_FREQUENCY_TABLE",
    "OledDisplay",
    "PushButtons",
    "SdCard",
    "SwitchBank",
]
