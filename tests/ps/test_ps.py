"""Tests for the PS blocks: global timer, GIC, PCAP."""

import pytest

from repro.bitstream import BitstreamBuilder, make_z7020_layout
from repro.fabric import ConfigMemory, FirFilterAsp, encode_asp_frames
from repro.ps import GlobalTimer, InterruptController, Pcap
from repro.sim import InterruptLine, Simulator


# -------------------------------------------------------------------- timer --
def test_timer_ticks_at_cpu_half():
    sim = Simulator()
    timer = GlobalTimer(sim, cpu_mhz=600.0)
    assert timer.tick_mhz == pytest.approx(300.0)

    def wait(sim):
        yield sim.timeout(3000.0)  # 3 us at 300 MHz -> 900 ticks

    sim.run_until(sim.process(wait(sim)))
    assert timer.read_ticks() == 900


def test_timer_elapsed_us():
    sim = Simulator()
    timer = GlobalTimer(sim)
    start = timer.read_ticks()

    def wait(sim):
        yield sim.timeout(123_456.0)

    sim.run_until(sim.process(wait(sim)))
    assert timer.elapsed_us(start) == pytest.approx(123.456, abs=0.005)


def test_timer_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        GlobalTimer(sim, cpu_mhz=0)


# ---------------------------------------------------------------------- GIC --
def test_gic_dispatches_handlers_with_latency():
    sim = Simulator()
    gic = InterruptController(sim)
    line = InterruptLine(sim, name="test_irq")
    gic.connect("test", line)
    hits = []
    gic.register_handler("test", lambda: hits.append(sim.now))

    def firer(sim):
        yield sim.timeout(1000.0)
        line.assert_()

    sim.process(firer(sim))
    sim.run()
    assert gic.counts["test"] == 1
    assert hits == [1000.0 + InterruptController.ENTRY_LATENCY_NS]


def test_gic_counts_only_rising_edges():
    sim = Simulator()
    gic = InterruptController(sim)
    line = InterruptLine(sim)
    gic.connect("x", line)
    line.assert_()
    line.assert_()  # still high: no new edge
    line.deassert()
    line.assert_()
    assert gic.counts["x"] == 2


def test_gic_duplicate_and_unknown_ids():
    sim = Simulator()
    gic = InterruptController(sim)
    line = InterruptLine(sim)
    gic.connect("a", line)
    with pytest.raises(ValueError):
        gic.connect("a", InterruptLine(sim))
    with pytest.raises(KeyError):
        gic.register_handler("nope", lambda: None)
    with pytest.raises(KeyError):
        gic.wait_for("nope")
    assert gic.line("a") is line


def test_gic_wait_for():
    sim = Simulator()
    gic = InterruptController(sim)
    line = InterruptLine(sim)
    gic.connect("done", line)
    seen = {}

    def waiter(sim):
        yield gic.wait_for("done")
        seen["t"] = sim.now

    def firer(sim):
        yield sim.timeout(55.0)
        line.pulse()

    sim.process(waiter(sim))
    sim.process(firer(sim))
    sim.run()
    assert seen["t"] == 55.0


# --------------------------------------------------------------------- PCAP --
def test_pcap_loads_partial_bitstream():
    sim = Simulator()
    layout = make_z7020_layout()
    memory = ConfigMemory(layout)
    pcap = Pcap(sim, memory)
    frames = encode_asp_frames(layout.region_frame_count("RP1"), FirFilterAsp([9]))
    bitstream = BitstreamBuilder(layout).build_partial("RP1", frames)
    done = {}

    def driver(sim):
        port = yield pcap.load(bitstream)
        done["port"] = port
        done["t"] = sim.now

    sim.process(driver(sim))
    sim.run()
    assert done["port"].desynced
    assert not done["port"].has_error
    assert memory.region_frames("RP1") == frames
    # ~3.6 ms at 145 MB/s for a ~528 kB partial.
    expected_ns = Pcap.SETUP_NS + bitstream.size_bytes / Pcap.EFFECTIVE_RATE
    assert done["t"] == pytest.approx(expected_ns, rel=0.01)


def test_pcap_throughput_is_modest():
    """The PCAP explains why the paper builds the ICAP path: ~145 MB/s
    vs ~400 MB/s nominal ICAP."""
    sim = Simulator()
    pcap = Pcap(sim, ConfigMemory(make_z7020_layout()))
    assert pcap.throughput_mb_s() == pytest.approx(145.0)
