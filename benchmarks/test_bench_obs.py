"""Benchmark E12: telemetry probe overhead.

Times the same reconfiguration workload with the full metrics/trace
stack enabled and with it compiled out (``telemetry=False`` swaps in the
``NullMetricsRegistry`` and disables trace retention), asserts the two
modes agree on the physics, and records the overhead ratio to
``BENCH_obs.json`` at the repo root.  The design target is <=10 %
overhead; the assertion is deliberately looser because a 1-core CI
container adds real scheduling noise to a ~10 % signal.
"""

import json
import os
import time

from repro.experiments.points import asp_descriptor, reconfigure_point
from repro.experiments.table1 import WORKLOAD_ASP

from conftest import run_once

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPORT_PATH = os.path.join(_REPO_ROOT, "BENCH_obs.json")

_POINTS = 8
_FREQ_MHZ = 200.0


def _run_points(config):
    workload = asp_descriptor(WORKLOAD_ASP)
    t0 = time.perf_counter()
    results = [
        reconfigure_point(
            region="RP1",
            freq_mhz=_FREQ_MHZ,
            temp_c=40.0,
            workload=workload,
            config=config,
        )
        for _ in range(_POINTS)
    ]
    return time.perf_counter() - t0, results


def _measure():
    # Interleave-free ordering, off first: warms imports/allocator so
    # the instrumented run is not charged for one-time costs.
    off_s, off_results = _run_points({"telemetry": False})
    on_s, on_results = _run_points(None)
    return on_s, off_s, on_results, off_results


def test_bench_probe_overhead(benchmark):
    on_s, off_s, on_results, off_results = run_once(benchmark, _measure)

    # Telemetry must be an observer: identical physics either way.
    for on, off in zip(on_results, off_results):
        assert on.succeeded and off.succeeded
        assert on.latency_us == off.latency_us
        assert on.phase_us == off.phase_us
    # The instrumented run carries the richer result fields regardless.
    assert on_results[0].critical_path is not None

    overhead = (on_s - off_s) / off_s
    # Design target is 0.10; gate at 0.50 to absorb 1-core CI noise
    # while still catching an accidentally quadratic probe.
    assert overhead < 0.50, f"probe overhead {overhead:.1%} exceeds budget"

    payload = {
        "generated_by": "benchmarks/test_bench_obs.py",
        "host_cpus": os.cpu_count(),
        "workload": {
            "experiment": "reconfigure_point",
            "points": _POINTS,
            "freq_mhz": _FREQ_MHZ,
            "temp_c": 40.0,
        },
        "telemetry_on_wall_s": round(on_s, 3),
        "telemetry_off_wall_s": round(off_s, 3),
        "overhead_ratio": round(overhead, 4),
        "target_overhead_ratio": 0.10,
    }
    with open(_REPORT_PATH, "w") as handle:
        json.dump({**payload, "milestones": _MILESTONES}, handle, indent=2)
        handle.write("\n")


#: Measured once per tentpole change; survives report regeneration.
_MILESTONES = [
    {
        "date": "2026-08-08",
        "change": "null-registry compiled-out probes + span recorder",
        "host_cpus": 1,
        "note": (
            "telemetry=False swaps NullMetricsRegistry (shared no-op "
            "metric) and sets trace.enabled=False; lazy trace messages "
            "are never built when retention is off."
        ),
    }
]
