"""Lightweight simulation tracing.

Every hardware model can emit trace records through a shared
:class:`Tracer`.  Records are kept in a bounded ring buffer so long
simulations do not grow without bound; filters allow tests to assert on the
sequence of events a component produced.

Records may be *structured*: in addition to the human-readable message, a
record can carry a ``kind`` tag (``"span"``, ``"irq"``, ...) and a
``fields`` mapping of machine-readable values, which the observability
layer uses to export phase spans without parsing strings.

Emission is lazy: ``message`` may be a zero-argument callable that is only
invoked when the record will actually be retained or echoed, so always-on
instrumentation in hot loops costs one ``enabled`` check when telemetry is
off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Iterable, List, Mapping, Optional, Union

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace line: when, who, what — plus optional structured payload."""

    time_ns: float
    source: str
    message: str
    kind: str = ""
    fields: Optional[Mapping[str, object]] = field(default=None)

    def __str__(self) -> str:
        text = f"[{self.time_ns / 1e3:12.3f}us] {self.source:<24} {self.message}"
        if self.kind:
            text += f"  <{self.kind}>"
        return text


class Tracer:
    """Bounded in-memory trace sink with optional live echo.

    Parameters
    ----------
    limit:
        Maximum number of retained records (oldest dropped first).
    echo:
        Optional callable invoked with each record as it arrives (e.g.
        ``print`` for live debugging).  The echo fires even when
        retention is disabled, so a live listener keeps seeing events
        while the ring buffer stays frozen.
    """

    def __init__(self, limit: int = 100_000, echo: Optional[Callable[[TraceRecord], None]] = None):
        self.records: Deque[TraceRecord] = deque(maxlen=limit)
        self.echo = echo
        self.enabled = True
        self.dropped = 0

    def emit(
        self,
        time_ns: float,
        source: str,
        message: Union[str, Callable[[], str]],
        kind: str = "",
        fields: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record one trace line.

        ``message`` may be a zero-argument callable; it is only invoked
        (and the record only constructed) when the tracer is enabled or
        has an echo, which makes disabled telemetry near-free.
        """
        if not self.enabled and self.echo is None:
            return
        if callable(message):
            message = message()
        record = TraceRecord(time_ns, source, message, kind=kind, fields=fields)
        if self.enabled:
            if len(self.records) == self.records.maxlen:
                self.dropped += 1
            self.records.append(record)
        if self.echo is not None:
            self.echo(record)

    def filter(
        self,
        source: Optional[str] = None,
        contains: Optional[str] = None,
        kind: Optional[str] = None,
        since_ns: Optional[float] = None,
        until_ns: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Return retained records matching source/substring/kind/time bound.

        ``since_ns`` is an **inclusive** lower bound on ``time_ns`` — a
        record stamped exactly at the cutoff is returned, so "what
        happened after I armed the transfer" includes events fired on
        the arming instant itself.  ``until_ns`` is an **exclusive**
        upper bound, making ``[since_ns, until_ns)`` windows compose
        without double-counting boundary records.  Both bounds compose
        with every other filter (``kind``, ``source``, ``contains``).
        """
        out = []
        for record in self.records:
            if since_ns is not None and record.time_ns < since_ns:
                continue
            if until_ns is not None and record.time_ns >= until_ns:
                continue
            if source is not None and record.source != source:
                continue
            if contains is not None and contains not in record.message:
                continue
            if kind is not None and record.kind != kind:
                continue
            out.append(record)
        return out

    def sources(self) -> Iterable[str]:
        return sorted({record.source for record in self.records})

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)
