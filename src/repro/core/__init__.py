"""The paper's contribution: the over-clocked PDR system (Fig. 2) and the
HLL acceleration framework (Fig. 1)."""

from .governor import ActiveFeedbackGovernor, GovernedReconfig
from .hll import AspRequest, HllFramework, JobResult
from .library import BitstreamLibrary, LibraryEntry
from .pdr_system import TABLE1_BITSTREAM_BYTES, PdrSystem, PdrSystemConfig
from .results import PHASES, TIMED_PHASES, BatchReconfigResult, ReconfigResult
from .rp_channel import RpDataChannel
from .rp_regs import RpControlInterface

__all__ = [
    "ActiveFeedbackGovernor",
    "AspRequest",
    "BatchReconfigResult",
    "BitstreamLibrary",
    "GovernedReconfig",
    "HllFramework",
    "JobResult",
    "LibraryEntry",
    "PHASES",
    "PdrSystem",
    "PdrSystemConfig",
    "ReconfigResult",
    "TIMED_PHASES",
    "RpControlInterface",
    "RpDataChannel",
    "TABLE1_BITSTREAM_BYTES",
]
