"""Quickstart: over-clocked dynamic partial reconfiguration in 30 lines.

Builds the paper's Fig. 2 system, loads an AES-128 engine into a
reconfigurable partition at the nominal 100 MHz and again at the
over-clocked 200 MHz sweet spot, and shows the latency win plus the fact
that the partition *really* computes AES afterwards.

Run:  python examples/quickstart.py
"""

from repro.core import PdrSystem
from repro.fabric import Aes128Asp


def main() -> None:
    system = PdrSystem()
    aes = Aes128Asp([0x00010203, 0x04050607, 0x08090A0B, 0x0C0D0E0F])

    nominal = system.reconfigure("RP1", aes, freq_mhz=100.0)
    boosted = system.reconfigure("RP1", aes, freq_mhz=200.0)

    print("Partial reconfiguration of RP1 with an AES-128 engine")
    print(f"  nominal 100 MHz : {nominal.latency_us:8.1f} us "
          f"({nominal.throughput_mb_s:6.1f} MB/s)")
    print(f"  boosted 200 MHz : {boosted.latency_us:8.1f} us "
          f"({boosted.throughput_mb_s:6.1f} MB/s)")
    print(f"  speedup         : {nominal.latency_us / boosted.latency_us:8.2f}x")
    print(f"  read-back CRC   : {'valid' if boosted.crc_valid else 'NOT VALID'}")

    # The reconfigured region is functional: FIPS-197 test vector.
    plaintext = [0x00112233, 0x44556677, 0x8899AABB, 0xCCDDEEFF]
    ciphertext = system.run_asp("RP1", plaintext)
    print("\nAES-128 on the reconfigured fabric:")
    print("  plaintext :", " ".join(f"{w:08x}" for w in plaintext))
    print("  ciphertext:", " ".join(f"{w:08x}" for w in ciphertext))
    assert ciphertext == [0x69C4E0D8, 0x6A7B0430, 0xD8CDB780, 0x70B4C55A]

    print("\nOLED panel after the last run:")
    print(system.oled.render())


if __name__ == "__main__":
    main()
