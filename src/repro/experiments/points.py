"""Shared sweep point functions.

Every experiment harness decomposes into independent *points* — one
simulation per (frequency, temperature, workload, configuration) tuple —
executed through :class:`repro.exec.SweepRunner`.  A point function must
be a **module-level callable taking only plain-data kwargs** so it can
cross a process boundary and give the on-disk result cache a canonical
key.  The common case, one over-clocked reconfiguration on a fresh
:class:`~repro.core.PdrSystem`, lives here; experiment-specific points
(baseline controllers, campaigns, perturbed systems) live next to their
experiment module.

A fresh system per point is what makes the points independent (and thus
parallel/cacheable); results match the shared-system path to well within
the reproduction's 1 % tolerance — only the global-timer tick phase
differs, which shows up at most in the 5th significant digit.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core import PdrSystem, PdrSystemConfig, ReconfigResult
from ..exec import note_events
from ..fabric import Asp, instantiate_asp

__all__ = ["asp_descriptor", "make_system", "reconfigure_point"]


def asp_descriptor(asp: Asp) -> Tuple[int, Tuple[int, ...]]:
    """Plain-data identity of an ASP: ``(kind, params)``.

    Rebuild the ASP with :func:`repro.fabric.instantiate_asp` — the same
    round-trip the configuration frames themselves use.
    """
    return (asp.kind, tuple(asp.params()))


def make_system(config=None) -> PdrSystem:
    """A fresh system from a plain-data config mapping (or ``None``)."""
    if config:
        return PdrSystem(config=PdrSystemConfig(**dict(config)))
    return PdrSystem()


def reconfigure_point(
    region: str,
    freq_mhz: float,
    temp_c: float,
    workload: Tuple[int, Tuple[int, ...]],
    config=None,
) -> ReconfigResult:
    """One complete over-clocked PDR measurement on a fresh system.

    The point behind Table I, Table II, Fig. 5, Fig. 6 and the §IV-A
    stress matrix; ``workload`` is an :func:`asp_descriptor` tuple and
    ``config`` an optional mapping of ``PdrSystemConfig`` overrides.
    """
    system = make_system(config)
    system.set_die_temperature(temp_c)
    asp = instantiate_asp(workload[0], list(workload[1]))
    result = system.reconfigure(region, asp, freq_mhz)
    note_events(system.sim.events_processed)
    return result
