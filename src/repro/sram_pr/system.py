"""The assembled §VI proposed partial-reconfiguration environment (Fig. 7).

DRAM → (PS Scheduler) → SRAM ⇄ (Memory Controller)
                         │
             (PR Controller + Bitstream Decompressor)
                         │
                 enhanced ICAP @ 550 MHz → Configuration Memory

Compared to the Fig. 2 system, the DRAM/interconnect/DMA bottleneck moves
off the critical path: the bitstream is staged into the SRAM *before*
activation (overlapping useful work), and the activation itself streams
at the SRAM's 1 237.5 MB/s — the paper's theoretical estimate — or even
faster when the image is compressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..axi import AxiHpPort, AxiInterconnect
from ..bitstream import (
    Bitstream,
    BitstreamBuilder,
    compress_words,
    crc32c_words,
    make_z7020_layout,
)
from ..dram import DramController, DramDevice
from ..fabric import Asp, ConfigMemory, RpRegion, encode_asp_frames
from ..obs import TELEMETRY_BOOK, MetricsRegistry
from ..sim import ClockDomain, Simulator

from .memctrl import SramMemoryController
from .pr_controller import ActivationResult, PrController
from .scheduler import PendingBitstream, PsScheduler
from .sram import QdrSram

__all__ = ["SramPrResult", "SramPrSystem"]

#: The paper's §VI estimate: 550 MHz · 36 bit / 2 = 1237.5 MB/s.
THEORETICAL_THROUGHPUT_MB_S = 550.0 * 36.0 / 2.0 / 8.0 * 1e-0  # = 1237.5


@dataclass
class SramPrResult:
    """End-to-end outcome of one preload + activate cycle."""

    region: str
    preload_us: float
    activation: ActivationResult
    crc_valid: bool

    @property
    def activation_latency_us(self) -> float:
        return self.activation.latency_us

    @property
    def throughput_mb_s(self) -> float:
        return self.activation.throughput_mb_s


class SramPrSystem:
    """The proposed environment as a runnable system."""

    def __init__(self) -> None:
        self.sim = Simulator()
        sim = self.sim

        #: Shared telemetry registry (same naming scheme as PdrSystem).
        self.metrics = MetricsRegistry(now_fn=lambda: sim.now, name="sram_pr_system")

        self.layout = make_z7020_layout()
        self.memory = ConfigMemory(self.layout)
        self.regions: Dict[str, RpRegion] = {
            name: RpRegion(self.memory, name) for name in self.layout.regions
        }
        self.builder = BitstreamBuilder(self.layout)

        self.dram = DramDevice()
        self.dram_controller = DramController(sim, self.dram, metrics=self.metrics)
        self.interconnect = AxiInterconnect(
            sim, self.dram_controller, metrics=self.metrics
        )
        self.hp_port = AxiHpPort(sim, self.interconnect, name="hp_sched")

        self.sram = QdrSram(sim)
        self.memctrl = SramMemoryController(sim, self.sram)
        self.icap_clock = ClockDomain(sim, 550.0, name="icap550")
        self.pr_controller = PrController(
            sim, self.memctrl, self.memory, icap_clock=self.icap_clock
        )
        self.scheduler = PsScheduler(sim, self.memctrl, self.hp_port)

        self._staging_cursor = 0x1000_0000
        self.results: List[SramPrResult] = []

        metrics = self.metrics
        metrics.probe("sim.events_processed", lambda: sim.events_processed)
        metrics.probe("sim.heap_high_water", lambda: sim.heap_high_water)
        metrics.probe("sim.processes_spawned", lambda: sim.processes_spawned)
        metrics.probe("icap550.freq_mhz", lambda: self.icap_clock.freq_mhz)
        self._m_reconfigures = metrics.counter("sram_pr.reconfigures")
        self._m_preload_us = metrics.histogram("sram_pr.preload_us")
        self._m_activation_us = metrics.histogram("sram_pr.activation_us")
        TELEMETRY_BOOK.register(metrics, "sram_pr_system")

    # -- image preparation ----------------------------------------------------
    def prepare_image(
        self, region: str, asp: Asp, compress: bool = True
    ) -> PendingBitstream:
        """Build a partial bitstream, optionally compress it, stage in DRAM."""
        frames = encode_asp_frames(self.layout.region_frame_count(region), asp)
        bitstream = self.builder.build_partial(region, frames)
        words = bitstream.words
        if compress:
            words = compress_words(words)
        data = b"".join(w.to_bytes(4, "big") for w in words)
        addr = self._staging_cursor
        self._staging_cursor += (len(data) + 0xFFF) & ~0xFFF
        self.dram.store(addr, data)
        return PendingBitstream(
            name=bitstream.description,
            region=region,
            dram_addr=addr,
            word_count=len(words),
            compressed=compress,
            region_crc=crc32c_words(w for frame in frames for w in frame),
        )

    # -- paper workflow -----------------------------------------------------------
    def reconfigure(
        self, region: str, asp: Asp, compress: bool = True
    ) -> SramPrResult:
        """Preload then activate, blocking in simulation time.

        For the latency-hiding variant (preload overlapped with useful
        work) drive :attr:`scheduler` / :attr:`pr_controller` directly —
        see ``examples/proposed_sram_pr.py``.
        """
        pending = self.prepare_image(region, asp, compress=compress)
        self.scheduler.enqueue(pending)

        def sequence():
            t0 = self.sim.now
            yield self.sim.process(self.scheduler.preload_next(), name="preload")
            preload_us = (self.sim.now - t0) / 1e3
            activation = yield self.sim.process(
                self.pr_controller.activate(), name="activate"
            )
            crc_valid = (
                crc32c_words(self.memory.iter_region_words(region))
                == pending.region_crc
            )
            return SramPrResult(
                region=region,
                preload_us=preload_us,
                activation=activation,
                crc_valid=crc_valid,
            )

        process = self.sim.process(sequence(), name=f"sram_pr:{region}")
        result: SramPrResult = self.sim.run_until(process)
        self.results.append(result)
        self._m_reconfigures.inc()
        self._m_preload_us.observe(result.preload_us)
        self._m_activation_us.observe(result.activation_latency_us)
        return result

    def run_asp(self, region: str, words: List[int]) -> List[int]:
        """Execute the currently configured ASP of ``region`` functionally."""
        return self.regions[region].compute(words)

    @staticmethod
    def theoretical_throughput_mb_s() -> float:
        """The paper's §VI bandwidth arithmetic."""
        return THEORETICAL_THROUGHPUT_MB_S
