"""Benchmark E9: the sweep execution engine itself.

Runs one small reconfiguration sweep three ways — serial cold, parallel
(``jobs=2``), and a cached re-run — asserts the engine's core guarantee
(parallel and cached results identical to serial), and records suite
wall-clock plus per-point events/s to ``BENCH_sweeps.json`` at the repo
root so future PRs can see the perf curve.
"""

import json
import os
import time

from repro.exec import ResultCache, SweepRunner, SweepSpec
from repro.experiments.points import asp_descriptor, reconfigure_point
from repro.experiments.table1 import WORKLOAD_ASP
from repro.snapshot import reset_templates

from conftest import run_once

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPORT_PATH = os.path.join(_REPO_ROOT, "BENCH_sweeps.json")

_FREQS = [100.0, 200.0, 320.0]


def _sweep_spec():
    workload = asp_descriptor(WORKLOAD_ASP)
    return SweepSpec.map(
        "bench",
        reconfigure_point,
        [
            dict(region="RP1", freq_mhz=freq, temp_c=40.0, workload=workload)
            for freq in _FREQS
        ],
        labels=[f"bench@{freq:g}MHz" for freq in _FREQS],
    )


def _run_all_modes(tmp_dir):
    spec = _sweep_spec()
    report = {}
    reset_templates()  # measure the cold path honestly

    def _points(run):
        # Per-point latency rides along so `bench --check` can gate the
        # simulated physics, not just the kernel event counts.  A point
        # with no latency (the 320 MHz over-clock never raises its
        # completion interrupt) records an explicit null plus the
        # firmware's reason, so downstream checks can tell "measurement
        # skipped" from "key dropped".
        return [
            {
                **stat.to_dict(),
                "latency_us": result.latency_us,
                **(
                    {"latency_unavailable_reason": result.latency_unavailable_reason}
                    if result.latency_us is None
                    else {}
                ),
            }
            for stat, result in zip(run.stats, run.values)
        ]

    t0 = time.perf_counter()
    serial = SweepRunner(jobs=1).run(spec)
    report["serial"] = {
        "wall_s": round(time.perf_counter() - t0, 3),
        "points": _points(serial),
    }

    # Warm pass: same spec, same process — snapshot templates and the
    # shared build/CRC caches are hot, so this measures the steady-state
    # per-point cost a long campaign actually pays.
    t0 = time.perf_counter()
    warm = SweepRunner(jobs=1).run(spec)
    report["serial_warm"] = {
        "wall_s": round(time.perf_counter() - t0, 3),
        "points": _points(warm),
    }

    t0 = time.perf_counter()
    parallel = SweepRunner(jobs=2).run(spec)
    report["parallel_jobs2"] = {"wall_s": round(time.perf_counter() - t0, 3)}

    cache = ResultCache(os.path.join(tmp_dir, "sweep-cache"))
    cached_runner = SweepRunner(jobs=1, cache=cache)
    cached_runner.run(spec)  # populate
    t0 = time.perf_counter()
    cached = cached_runner.run(spec)
    report["cached_rerun"] = {
        "wall_s": round(time.perf_counter() - t0, 3),
        "cache_hits": cached.cache_hits,
    }
    return serial, warm, parallel, cached, report


def test_bench_sweep_engine(benchmark, tmp_path):
    serial, warm, parallel, cached, report = run_once(
        benchmark, _run_all_modes, str(tmp_path)
    )

    # The engine's core guarantee: execution mode never changes results.
    assert parallel.values == serial.values
    assert cached.values == serial.values
    assert warm.values == serial.values  # template forks are transparent
    assert cached.cache_hits == len(_FREQS) and cached.simulated == 0

    # The physics stayed put: the paper's robust region reconfigures
    # successfully, the over-clocked point fails CRC.
    by_freq = dict(zip(_FREQS, serial.values))
    assert by_freq[200.0].crc_valid
    assert not by_freq[320.0].crc_valid

    # The over-clocked point never sees its completion interrupt, so its
    # record carries an explicit null latency plus the firmware's reason
    # (never a silently missing key).
    by_label = {
        point["label"]: point for point in report["serial"]["points"]
    }
    hot = by_label["bench@320MHz"]
    assert hot["latency_us"] is None
    assert hot["latency_unavailable_reason"] == "no completion interrupt"
    assert by_label["bench@200MHz"]["latency_us"] is not None
    assert "latency_unavailable_reason" not in by_label["bench@200MHz"]

    # Deterministic kernel: every point reports the same event count on
    # every run, so events/s is a clean single-run throughput measure.
    for stat in serial.stats:
        assert stat.events > 0 and stat.events_per_s > 0

    payload = {
        "generated_by": "benchmarks/test_bench_sweeps.py",
        "host_cpus": os.cpu_count(),
        "sweep": {
            "experiment": "reconfigure_point",
            "frequencies_mhz": _FREQS,
            "points": len(_FREQS),
        },
        "runs": report,
    }
    with open(_REPORT_PATH, "w") as handle:
        json.dump({**payload, "milestones": _MILESTONES}, handle, indent=2)
        handle.write("\n")


#: Measured once per tentpole change (see EXPERIMENTS.md for method);
#: kept here so the perf history survives report regeneration.
_MILESTONES = [
    {
        "date": "2026-08-05",
        "change": "parallel sweep engine + DES kernel fast path",
        "host_cpus": 1,
        "cli_all_serial_s": {"before": 94.3, "after": 67.3},
        "cli_all_jobs2_s": 55.6,
        "cold_single_point_s": {"before": 0.403, "after": 0.322},
        "warm_single_point_s": 0.180,
        "cached_table2_cli_s": {"cold": 1.7, "cached": 0.21},
        "events_per_reconfigure_point": 7297,
        "note": (
            "1-core container: jobs=2 gain comes from overlapping "
            "process setup, not true parallelism; byte-identity of the "
            "parallel and cached reports verified against serial."
        ),
    },
    {
        "date": "2026-08-08",
        "change": (
            "copy-on-write snapshots + kernel fast-path round 2 "
            "(batched same-timestamp dispatch, slicing-by-20 run folds, "
            "vectorised CRC miss paths, template forking)"
        ),
        "host_cpus": 1,
        "cold_single_point_s": {"before": 0.322, "after": 0.109},
        "warm_single_point_s": {"before": 0.180, "after": 0.052},
        "warm_events_per_s": {"before": 40539.0, "after": 141108.0},
        "soak10_wall_s": 9.8,
        "events_per_reconfigure_point": 7297,
        #: Absolute floors enforced by `repro-pdr bench --check`
        #: (see repro.experiments.benchcheck._compare_milestone).
        "gate": {
            "cold_single_point_s_max": 0.12,
            "warm_events_per_s_min": 123949.0,
        },
        "note": (
            "warm floor is 3x the pre-PR 200 MHz events/s (41316); "
            "latencies and event counts stayed byte-identical "
            "(677.0250006770251 us @200 MHz, 7297 events). 10-case "
            "chaos campaign 9.8 s vs 81 s before the PR-6/7 work."
        ),
    },
]
