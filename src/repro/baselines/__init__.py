"""Related-work reconfiguration controllers (paper §V / Table III)."""

from .base import BaselineResult, ReconfigController, TransferOutcome
from .hkt2011 import Hkt2011Controller
from .hp2011 import Hp2011Controller
from .pcap_baseline import PcapBaselineController
from .this_work import ThisWorkController
from .vf2012 import Vf2012Controller

__all__ = [
    "BaselineResult",
    "Hkt2011Controller",
    "Hp2011Controller",
    "PcapBaselineController",
    "ReconfigController",
    "ThisWorkController",
    "TransferOutcome",
    "Vf2012Controller",
]
