"""7-series-style configuration bitstream format.

Provides frame addressing (:class:`FrameAddress`), the device layout and RP
floorplan (:class:`DeviceLayout`), packet encoding, the configuration CRC,
a partial-bitstream builder/parser pair, and the run-length compressor used
by the proposed §VI environment.
"""

from .builder import Bitstream, BitstreamBuilder
from .compress import (
    CompressedFormatError,
    compress_words,
    compression_ratio,
    decompress_words,
)
from .crc import ConfigCrc, crc32c_bytes, crc32c_packed, crc32c_words
from .device import (
    FRAME_BYTES,
    FRAME_WORDS,
    ColumnType,
    DeviceLayout,
    RegionSpec,
    Z7020_IDCODE,
    make_z7020_layout,
)
from .far import BLOCK_TYPE_BRAM_CONTENT, BLOCK_TYPE_MAIN, FrameAddress
from .packets import (
    BUS_WIDTH_DETECT_WORD,
    BUS_WIDTH_SYNC_WORD,
    DUMMY_WORD,
    NOOP_WORD,
    OP_NOP,
    OP_READ,
    OP_WRITE,
    SYNC_WORD,
    PacketHeader,
    decode_header,
    type1,
    type2,
)
from .parser import (
    BitstreamFormatError,
    BitstreamParser,
    ParsedBitstream,
    WriteOp,
)
from .registers import Command, ConfigRegister

__all__ = [
    "BLOCK_TYPE_BRAM_CONTENT",
    "BLOCK_TYPE_MAIN",
    "BUS_WIDTH_DETECT_WORD",
    "BUS_WIDTH_SYNC_WORD",
    "Bitstream",
    "BitstreamBuilder",
    "BitstreamFormatError",
    "BitstreamParser",
    "ColumnType",
    "Command",
    "CompressedFormatError",
    "ConfigCrc",
    "ConfigRegister",
    "DUMMY_WORD",
    "DeviceLayout",
    "FRAME_BYTES",
    "FRAME_WORDS",
    "FrameAddress",
    "NOOP_WORD",
    "OP_NOP",
    "OP_READ",
    "OP_WRITE",
    "PacketHeader",
    "ParsedBitstream",
    "RegionSpec",
    "SYNC_WORD",
    "WriteOp",
    "Z7020_IDCODE",
    "compress_words",
    "compression_ratio",
    "crc32c_bytes",
    "crc32c_packed",
    "crc32c_words",
    "decode_header",
    "decompress_words",
    "make_z7020_layout",
    "type1",
    "type2",
]
