"""Soak campaign acceptance tests.

The seeded campaign is the PR's headline claim: >= 50 faults across >= 4
taxonomy kinds, >= 95 % recovered, zero invariant violations, zero
silently-dead processes — and the whole thing byte-identical under
replay and under parallel execution.
"""

import pytest

from repro.chaos import (
    SoakCaseGenerator,
    SoakSlos,
    format_report,
    run_soak,
    soak_case,
)
from repro.exec import SweepRunner
from repro.exec.spec import canonical_json

SEED = 1
CASES = 5


@pytest.fixture(scope="module")
def campaign():
    return run_soak(seed=SEED, cases=CASES)


def test_campaign_injects_the_advertised_fault_mass(campaign):
    assert campaign.faults_injected >= 50
    assert len(campaign.by_kind) >= 4
    assert campaign.seu_injected > 0


def test_campaign_meets_recovery_and_availability_slos(campaign):
    assert campaign.recovery_rate >= 0.95
    assert campaign.availability_mean >= SoakSlos().min_availability
    assert campaign.faults_recovered >= 0.95 * campaign.faults_injected
    assert not campaign.breaches
    assert campaign.ok


def test_campaign_is_clean_of_violations_and_dead_processes(campaign):
    assert campaign.findings == []
    assert campaign.unhandled == []
    assert campaign.checks > 0


def test_campaign_reports_mttr_percentiles(campaign):
    assert campaign.mttr_samples > 0
    assert campaign.mttr_p50_us is not None
    assert campaign.mttr_p50_us <= campaign.mttr_p90_us <= campaign.mttr_p99_us
    assert campaign.mttr_p99_us <= SoakSlos().max_mttr_p99_us


def test_report_has_no_wall_clock(campaign):
    text = format_report(campaign)
    assert "seed 1" in text
    assert "SLO breaches: 0" in text
    # CI byte-compares this output across runs: no wall-clock allowed.
    assert "wall" not in text and "seconds" not in text


def test_case_replay_is_byte_identical():
    case = SoakCaseGenerator(SEED).generate(0)
    first = canonical_json(soak_case(**case.to_mapping()))
    second = canonical_json(soak_case(**case.to_mapping()))
    assert first == second


def test_parallel_campaign_matches_serial():
    serial = run_soak(seed=SEED, cases=2, runner=SweepRunner(jobs=1))
    parallel = run_soak(seed=SEED, cases=2, runner=SweepRunner(jobs=2))
    assert format_report(serial) == format_report(parallel)
    assert serial.faults_injected == parallel.faults_injected
    assert serial.mttr_p99_us == parallel.mttr_p99_us


def test_slo_breach_detected():
    # An impossible availability floor must register as a breach.
    strict = run_soak(
        seed=SEED,
        cases=1,
        slos=SoakSlos(min_availability=1.0),
    )
    assert strict.breaches
    metric, observed, floor = strict.breaches[0]
    assert metric == "availability"
    assert observed < floor == 1.0
    assert not strict.ok
    assert "SLO BREACHES" in format_report(strict)
