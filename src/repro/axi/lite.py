"""AXI4-Lite register-file model.

Control-plane accesses (the PS programming the DMA, reading status, the
Clock Wizard's configuration registers) go through AXI4-Lite.  The model
provides a register map with read/write hooks and a fixed per-access
latency, which is negligible against transfer times but keeps the
software/hardware interaction honest in the simulator.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim import ClockDomain, Event, Simulator

__all__ = ["AxiLiteRegisterFile", "AxiLiteError"]


class AxiLiteError(RuntimeError):
    """DECERR/SLVERR-style response: bad address or forbidden access."""


class AxiLiteRegisterFile:
    """A 32-bit register file reachable over AXI4-Lite.

    Registers are declared with :meth:`define`; optional hooks observe
    writes (``on_write(value)``) and synthesise read values
    (``on_read() -> value``), letting hardware blocks expose live status.
    """

    #: AXI-Lite single-beat access cost in bus cycles (address + data + resp).
    ACCESS_CYCLES = 5

    def __init__(self, sim: Simulator, clock: ClockDomain, name: str = "regs"):
        self.sim = sim
        self.clock = clock
        self.name = name
        self._values: Dict[int, int] = {}
        self._write_hooks: Dict[int, Callable[[int], None]] = {}
        self._read_hooks: Dict[int, Callable[[], int]] = {}
        self._read_only: Dict[int, bool] = {}
        self.reads = 0
        self.writes = 0

    # -- declaration -----------------------------------------------------------
    def define(
        self,
        offset: int,
        reset: int = 0,
        on_write: Optional[Callable[[int], None]] = None,
        on_read: Optional[Callable[[], int]] = None,
        read_only: bool = False,
    ) -> None:
        if offset % 4:
            raise ValueError(f"register offset {offset:#x} not word aligned")
        if offset in self._values:
            raise ValueError(f"register {offset:#x} already defined in {self.name}")
        self._values[offset] = reset & 0xFFFFFFFF
        if on_write:
            self._write_hooks[offset] = on_write
        if on_read:
            self._read_hooks[offset] = on_read
        self._read_only[offset] = read_only

    # -- zero-time accessors (used by hardware internals) -------------------------
    def peek(self, offset: int) -> int:
        self._check(offset)
        hook = self._read_hooks.get(offset)
        return hook() & 0xFFFFFFFF if hook else self._values[offset]

    def poke(self, offset: int, value: int) -> None:
        """Hardware-internal update (no bus transaction, no hooks)."""
        self._check(offset)
        self._values[offset] = value & 0xFFFFFFFF

    # -- bus transactions (timed) ---------------------------------------------
    def read(self, offset: int) -> Event:
        """Timed AXI-Lite read; event value is the register value."""
        self._check(offset)
        self.reads += 1
        event = self.sim.event(name=f"{self.name}.read")

        def transaction():
            yield self.clock.wait_cycles(self.ACCESS_CYCLES)
            event.succeed(self.peek(offset))

        self.sim.process(transaction(), name=f"{self.name}.read@{offset:#x}")
        return event

    def write(self, offset: int, value: int) -> Event:
        """Timed AXI-Lite write; fires when the write lands."""
        self._check(offset)
        if self._read_only.get(offset):
            raise AxiLiteError(f"{self.name}: register {offset:#x} is read-only")
        self.writes += 1
        event = self.sim.event(name=f"{self.name}.write")

        def transaction():
            yield self.clock.wait_cycles(self.ACCESS_CYCLES)
            self._values[offset] = value & 0xFFFFFFFF
            hook = self._write_hooks.get(offset)
            if hook:
                hook(value & 0xFFFFFFFF)
            event.succeed(value & 0xFFFFFFFF)

        self.sim.process(transaction(), name=f"{self.name}.write@{offset:#x}")
        return event

    # -- internals ----------------------------------------------------------
    def _check(self, offset: int) -> None:
        if offset not in self._values:
            raise AxiLiteError(
                f"{self.name}: no register at {offset:#x} "
                f"(have {sorted(hex(o) for o in self._values)})"
            )
