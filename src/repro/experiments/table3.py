"""Experiment E6 — Table III: comparison with related work.

Runs every baseline controller at its published operating point on the
reference bitstream and reproduces the comparison table, plus the §V
frequency-scaling narrative (E8): how each design behaves as the clock
rises, including VF-2012's fail/freeze thresholds and HP-2011's
active-feedback clamp.

Regenerate with ``python -m repro.experiments.table3``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..baselines import (
    BaselineResult,
    Hkt2011Controller,
    Hp2011Controller,
    PcapBaselineController,
    ReconfigController,
    ThisWorkController,
    TransferOutcome,
    Vf2012Controller,
)
from ..core import TABLE1_BITSTREAM_BYTES
from ..exec import SweepRunner, note_events

from .calibration import PAPER_TABLE3
from .report import ExperimentReport, fmt, fmt_err, format_table

__all__ = [
    "Table3Row",
    "default_controllers",
    "run_table3",
    "run_table3_sweep",
    "run_scaling_sweep",
    "table3_point",
    "format_report",
    "main",
]

#: HKT-2011 is quoted for FIFO-resident bitstreams ("up to 50 KB").
HKT_BITSTREAM_BYTES = 50 * 1024

#: §V scaling-narrative sweep frequencies (MHz).
DEFAULT_SCALING_FREQS = [100.0, 150.0, 210.0, 250.0, 280.0, 310.0, 350.0, 550.0]

#: Sweep-point registry: design key -> controller factory.
DESIGN_FACTORIES = {
    "vf2012": Vf2012Controller,
    "hp2011": Hp2011Controller,
    "hkt2011": Hkt2011Controller,
    "this_work": ThisWorkController,
}


@dataclass
class Table3Row:
    controller: ReconfigController
    result: BaselineResult
    paper_platform: str
    paper_freq_mhz: float
    paper_throughput_mb_s: float


def default_controllers(
    this_work: Optional[ThisWorkController] = None,
) -> List[ReconfigController]:
    """The four Table III comparison controllers."""
    return [
        Vf2012Controller(),
        Hp2011Controller(),
        Hkt2011Controller(),
        this_work or ThisWorkController(),
    ]


def run_table3(
    controllers: Optional[List[ReconfigController]] = None,
) -> List[Table3Row]:
    """Run every controller at its published operating point."""
    rows = []
    for controller in controllers or default_controllers():
        size = (
            HKT_BITSTREAM_BYTES
            if isinstance(controller, Hkt2011Controller)
            else TABLE1_BITSTREAM_BYTES
        )
        result = controller.transfer(size, controller.table3_operating_point())
        paper = PAPER_TABLE3.get(controller.design)
        if paper is None:
            paper = (controller.platform, controller.table3_operating_point(), 0.0)
        rows.append(
            Table3Row(
                controller=controller,
                result=result,
                paper_platform=paper[0],
                paper_freq_mhz=paper[1],
                paper_throughput_mb_s=paper[2],
            )
        )
    return rows


@dataclass
class ControllerInfo:
    """Plain-data stand-in for a controller in sweep-produced rows.

    Carries exactly the attributes :func:`format_report` reads off
    ``Table3Row.controller`` — the live controller itself stays in the
    worker process.
    """

    design: str
    platform: str
    has_crc_check: bool


def table3_point(design: str, scaling_freqs) -> dict:
    """One design's full Table III + §V measurement (sweep point).

    Builds the controller fresh, runs the published operating point and
    the scaling sweep on the *same* instance (ThisWork's DES system keeps
    its clock-wizard/DRAM state across transfers, as on the bench) and
    returns plain data only.
    """
    controller = DESIGN_FACTORIES[design]()
    size = (
        HKT_BITSTREAM_BYTES
        if isinstance(controller, Hkt2011Controller)
        else TABLE1_BITSTREAM_BYTES
    )
    operating = controller.transfer(size, controller.table3_operating_point())
    sweep = [
        controller.transfer(TABLE1_BITSTREAM_BYTES, freq) for freq in scaling_freqs
    ]
    system = getattr(controller, "system", None)
    if system is not None:
        note_events(system.sim.events_processed)
    return {
        "design": controller.design,
        "platform": controller.platform,
        "has_crc_check": controller.has_crc_check,
        "operating": operating,
        "sweep": sweep,
    }


def run_table3_sweep(
    runner: Optional[SweepRunner] = None,
    frequencies: Optional[List[float]] = None,
):
    """Table III rows + §V scaling sweeps through the sweep runner.

    Returns ``(rows, sweeps)`` matching :func:`run_table3` /
    :func:`run_scaling_sweep`, with each design an independent point.
    """
    freqs = [float(f) for f in frequencies or DEFAULT_SCALING_FREQS]
    designs = list(DESIGN_FACTORIES)
    payloads = (runner or SweepRunner()).map(
        "table3",
        table3_point,
        [dict(design=design, scaling_freqs=freqs) for design in designs],
        labels=[f"table3@{design}" for design in designs],
    )
    rows: List[Table3Row] = []
    sweeps: Dict[str, List[BaselineResult]] = {}
    for payload in payloads:
        info = ControllerInfo(
            design=payload["design"],
            platform=payload["platform"],
            has_crc_check=payload["has_crc_check"],
        )
        operating = payload["operating"]
        paper = PAPER_TABLE3.get(info.design)
        if paper is None:
            paper = (info.platform, operating.requested_mhz, 0.0)
        rows.append(
            Table3Row(
                controller=info,
                result=operating,
                paper_platform=paper[0],
                paper_freq_mhz=paper[1],
                paper_throughput_mb_s=paper[2],
            )
        )
        sweeps[info.design] = payload["sweep"]
    return rows, sweeps


def run_scaling_sweep(
    controllers: Optional[List[ReconfigController]] = None,
    frequencies: Optional[List[float]] = None,
) -> Dict[str, List[BaselineResult]]:
    """E8: per-design frequency sweep (the §V scaling narrative)."""
    sweeps: Dict[str, List[BaselineResult]] = {}
    for controller in controllers or default_controllers():
        results = []
        for freq in frequencies or [100, 150, 210, 250, 280, 310, 350, 550]:
            results.append(controller.transfer(TABLE1_BITSTREAM_BYTES, freq))
        sweeps[controller.design] = results
    return sweeps


def format_report(
    rows: List[Table3Row],
    sweeps: Optional[Dict[str, List[BaselineResult]]] = None,
) -> str:
    """Render Table III plus the scaling sweeps."""
    report = ExperimentReport("Table III — comparison with related work")
    table_rows = []
    for row in rows:
        result = row.result
        table_rows.append(
            [
                row.controller.design,
                row.controller.platform,
                f"{result.effective_mhz:g}",
                fmt(result.throughput_mb_s, 0),
                "yes" if row.controller.has_crc_check else "no",
                fmt(row.paper_throughput_mb_s, 0),
                fmt_err(result.throughput_mb_s, row.paper_throughput_mb_s),
            ]
        )
    report.add(
        format_table(
            ["design", "platform", "MHz", "MB/s", "CRC", "paper MB/s", "err"],
            table_rows,
        )
    )
    ranked = sorted(
        (r for r in rows if r.result.throughput_mb_s),
        key=lambda r: r.result.throughput_mb_s,
        reverse=True,
    )
    order = " > ".join(f"{r.controller.design}" for r in ranked)
    report.add(f"ranking (burst throughput): {order}")
    if sweeps:
        lines = []
        for design, results in sweeps.items():
            cells = []
            for result in results:
                if result.outcome == TransferOutcome.FROZE:
                    cells.append(f"{result.requested_mhz:g}:FROZE")
                elif result.outcome == TransferOutcome.FAILED:
                    cells.append(f"{result.requested_mhz:g}:fail")
                elif result.outcome == TransferOutcome.CLAMPED:
                    cells.append(
                        f"{result.requested_mhz:g}:clamp@{result.effective_mhz:g}"
                    )
                else:
                    cells.append(
                        f"{result.requested_mhz:g}:{result.throughput_mb_s:.0f}"
                    )
            lines.append(f"{design:>10}: " + "  ".join(cells))
        report.add("frequency scaling (MHz:outcome):\n" + "\n".join(lines))
    return report.render()


def main() -> None:
    """Regenerate Table III and print the report."""
    rows = run_table3()
    sweeps = run_scaling_sweep(
        # Reuse the (already-built) DES system from the table run.
        controllers=[row.controller for row in rows]
    )
    print(format_report(rows, sweeps))


if __name__ == "__main__":
    main()
