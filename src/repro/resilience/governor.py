"""Frequency governor: learned quarantine of unsafe operating points.

Unlike the :class:`~repro.core.governor.ActiveFeedbackGovernor`, which
consults the timing *model* (an oracle the real firmware does not have),
this governor learns purely from observed outcomes — the honest version
of the paper's robustness story.  Every reconfiguration reports back:

* a success raises the region's learned safe-fmax estimate;
* repeated failures at one (region, frequency, temperature) operating
  point quarantine it, and future requests at or above a quarantined
  frequency are clamped below it.

Operating points are bucketed (default 5 MHz / 10 °C) so the MMCM's
quantised output frequencies and nearby temperatures share failure
history.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..obs import MetricsRegistry

__all__ = ["FrequencyGovernor"]


class FrequencyGovernor:
    """Tracks failure history and publishes per-region safe frequencies."""

    def __init__(
        self,
        quarantine_after: int = 2,
        freq_bucket_mhz: float = 5.0,
        temp_bucket_c: float = 10.0,
        clamp_step_mhz: float = 10.0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if quarantine_after < 1:
            raise ValueError("quarantine threshold must be >= 1")
        if freq_bucket_mhz <= 0 or temp_bucket_c <= 0:
            raise ValueError("bucket sizes must be positive")
        if clamp_step_mhz <= 0:
            raise ValueError("clamp step must be positive")
        self.quarantine_after = quarantine_after
        self.freq_bucket_mhz = freq_bucket_mhz
        self.temp_bucket_c = temp_bucket_c
        self.clamp_step_mhz = clamp_step_mhz
        self.metrics = metrics
        # NB: the registry is falsy while empty (it defines __len__), so
        # these guards must test identity, not truthiness.
        self._m_quarantines = (
            metrics.counter("resilience.quarantines") if metrics is not None else None
        )
        self._m_clamps = (
            metrics.counter("resilience.governor_clamps") if metrics is not None else None
        )
        #: (region, fbucket, tbucket) -> consecutive failure count.
        self._fail_streak: Dict[Tuple[str, int, int], int] = {}
        #: Quarantined operating-point buckets.
        self._quarantined: Dict[Tuple[str, int, int], List[str]] = {}
        #: region -> highest frequency ever observed to succeed.
        self._best_success: Dict[str, float] = {}
        #: (region, tbucket) -> lowest quarantined frequency.
        self._lowest_quarantined: Dict[Tuple[str, int], float] = {}
        #: Optional :class:`~repro.verify.InvariantMonitor` checking that
        #: authorise() only clamps downward and the quarantine floor is
        #: monotonically non-increasing.
        self.monitor = None

    # -- bucketing ---------------------------------------------------------------
    def _key(self, region: str, freq_mhz: float, temp_c: float) -> Tuple[str, int, int]:
        return (
            region,
            int(freq_mhz // self.freq_bucket_mhz),
            int(temp_c // self.temp_bucket_c),
        )

    # -- feedback ---------------------------------------------------------------
    def record_success(self, region: str, freq_mhz: float, temp_c: float) -> None:
        """A reconfiguration at this operating point fully succeeded."""
        self._fail_streak.pop(self._key(region, freq_mhz, temp_c), None)
        if freq_mhz > self._best_success.get(region, 0.0):
            self._best_success[region] = freq_mhz
            if self.metrics is not None:
                self.metrics.gauge(f"resilience.safe_fmax_mhz.{region}").set(freq_mhz)

    def record_failure(
        self, region: str, freq_mhz: float, temp_c: float, modes: Iterable[str] = ()
    ) -> bool:
        """A reconfiguration failed; returns True if the point was newly
        quarantined by this failure."""
        key = self._key(region, freq_mhz, temp_c)
        streak = self._fail_streak.get(key, 0) + 1
        self._fail_streak[key] = streak
        if streak < self.quarantine_after or key in self._quarantined:
            return False
        self._quarantined[key] = sorted(set(modes))
        if self._m_quarantines is not None:
            self._m_quarantines.inc()
        low_key = (region, key[2])
        lowest = self._lowest_quarantined.get(low_key)
        if lowest is None or freq_mhz < lowest:
            self._lowest_quarantined[low_key] = freq_mhz
        if self.monitor is not None:
            self.monitor.on_governor_quarantine(
                self, region, key[2], self._lowest_quarantined[low_key]
            )
        return True

    # -- queries -----------------------------------------------------------------
    def is_quarantined(self, region: str, freq_mhz: float, temp_c: float) -> bool:
        return self._key(region, freq_mhz, temp_c) in self._quarantined

    def quarantined_points(self) -> List[Tuple[str, int, int]]:
        return sorted(self._quarantined)

    def safe_fmax_mhz(self, region: str) -> Optional[float]:
        """Published estimate: the highest frequency seen to succeed."""
        return self._best_success.get(region)

    def authorise(self, region: str, freq_mhz: float, temp_c: float) -> float:
        """Clamp a request below quarantined territory.

        Requests at or above the lowest quarantined frequency for this
        (region, temperature) come back clamped: to the region's learned
        safe fmax when one is known, otherwise one clamp step below the
        quarantine line.  Everything else passes through untouched.
        """
        if freq_mhz <= 0:
            raise ValueError("requested frequency must be positive")
        low_key = (region, int(temp_c // self.temp_bucket_c))
        lowest = self._lowest_quarantined.get(low_key)
        if lowest is None or freq_mhz < lowest:
            if self.monitor is not None:
                self.monitor.on_governor_authorise(
                    self, region, freq_mhz, temp_c, freq_mhz
                )
            return freq_mhz
        best = self._best_success.get(region)
        if best is not None and best < lowest:
            clamped = best
        else:
            clamped = lowest - self.clamp_step_mhz
        clamped = max(clamped, self.clamp_step_mhz)
        if self._m_clamps is not None and clamped < freq_mhz:
            self._m_clamps.inc()
        granted = min(freq_mhz, clamped)
        if self.monitor is not None:
            self.monitor.on_governor_authorise(self, region, freq_mhz, temp_c, granted)
        return granted
