"""Offline structural bitstream parser.

The authoritative consumer of configuration streams is the simulated device
itself (:mod:`repro.icap.primitive`), which executes the stream against the
configuration memory.  This parser is the *offline* counterpart used by
tests and tooling: it walks a word stream, extracts the register-write
sequence, recomputes the configuration CRC, and reconstructs the frames a
partial bitstream would write — without needing a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .crc import ConfigCrc
from .device import FRAME_WORDS, DeviceLayout
from .far import FrameAddress
from .packets import NOOP_WORD, OP_WRITE, SYNC_WORD, decode_header
from .registers import Command, ConfigRegister

__all__ = ["WriteOp", "ParsedBitstream", "BitstreamParser", "BitstreamFormatError"]


class BitstreamFormatError(ValueError):
    """The word stream violates the configuration-packet grammar."""


@dataclass(frozen=True)
class WriteOp:
    """One register write extracted from the stream."""

    register: int
    words: Tuple[int, ...]

    @property
    def register_name(self) -> str:
        try:
            return ConfigRegister(self.register).name
        except ValueError:  # pragma: no cover - unknown register
            return f"REG{self.register:#x}"


@dataclass
class ParsedBitstream:
    """Result of structurally parsing a configuration stream."""

    ops: List[WriteOp] = field(default_factory=list)
    sync_offset: int = -1
    idcode: Optional[int] = None
    far: Optional[FrameAddress] = None
    frame_words: List[int] = field(default_factory=list)
    crc_written: Optional[int] = None
    crc_computed: Optional[int] = None
    desynced: bool = False
    noop_words: int = 0

    @property
    def crc_ok(self) -> bool:
        return self.crc_written is not None and self.crc_written == self.crc_computed

    @property
    def frame_count(self) -> int:
        """Frames carried by FDRI (including the trailing pad frame)."""
        return len(self.frame_words) // FRAME_WORDS

    def frames(self) -> List[List[int]]:
        """FDRI payload split into frames, pad frame included."""
        if len(self.frame_words) % FRAME_WORDS:
            raise BitstreamFormatError(
                f"FDRI payload ({len(self.frame_words)} words) is not a "
                f"whole number of {FRAME_WORDS}-word frames"
            )
        return [
            self.frame_words[i : i + FRAME_WORDS]
            for i in range(0, len(self.frame_words), FRAME_WORDS)
        ]

    def payload_frames(self) -> List[List[int]]:
        """Frames excluding the trailing flush pad frame."""
        frames = self.frames()
        if not frames:
            return frames
        return frames[:-1]


class BitstreamParser:
    """Parses word streams into :class:`ParsedBitstream` summaries."""

    def __init__(self, layout: Optional[DeviceLayout] = None):
        self.layout = layout

    def parse_words(self, words: List[int]) -> ParsedBitstream:
        result = ParsedBitstream()
        crc = ConfigCrc()

        # ---- find sync ---------------------------------------------------
        try:
            index = words.index(SYNC_WORD)
        except ValueError:
            raise BitstreamFormatError("no sync word in stream") from None
        result.sync_offset = index
        index += 1

        # ---- packet loop ---------------------------------------------------
        last_register: Optional[int] = None
        while index < len(words):
            header_word = words[index]
            index += 1
            if header_word == NOOP_WORD:
                result.noop_words += 1
                continue
            try:
                header = decode_header(header_word)
            except ValueError as exc:
                raise BitstreamFormatError(str(exc)) from None
            if header.packet_type == 1:
                register = header.register_addr
                last_register = register
            else:
                if last_register is None:
                    raise BitstreamFormatError(
                        "type-2 packet with no preceding type-1 target"
                    )
                register = last_register
            if header.word_count == 0:
                continue
            if index + header.word_count > len(words):
                raise BitstreamFormatError(
                    f"packet at word {index - 1} overruns stream "
                    f"(needs {header.word_count} words)"
                )
            payload = words[index : index + header.word_count]
            index += header.word_count
            if not header.is_write:
                continue

            result.ops.append(WriteOp(register=register, words=tuple(payload)))
            self._apply(result, crc, register, payload)
            if result.desynced:
                break

        return result

    def parse_bytes(self, data: bytes) -> ParsedBitstream:
        if len(data) % 4:
            raise BitstreamFormatError(f"byte length {len(data)} not word aligned")
        words = [
            int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)
        ]
        return self.parse_words(words)

    # -- internals ----------------------------------------------------------
    def _apply(
        self,
        result: ParsedBitstream,
        crc: ConfigCrc,
        register: int,
        payload: List[int],
    ) -> None:
        if register == int(ConfigRegister.CRC):
            result.crc_written = payload[-1]
            result.crc_computed = crc.value
            crc.check(payload[-1])
            return
        for word in payload:
            crc.update(register, word)
        if register == int(ConfigRegister.IDCODE):
            result.idcode = payload[-1]
            if self.layout is not None and payload[-1] != self.layout.idcode:
                raise BitstreamFormatError(
                    f"IDCODE mismatch: stream {payload[-1]:#010x} vs device "
                    f"{self.layout.idcode:#010x}"
                )
        elif register == int(ConfigRegister.FAR):
            result.far = FrameAddress.decode(payload[-1])
        elif register == int(ConfigRegister.FDRI):
            result.frame_words.extend(payload)
        elif register == int(ConfigRegister.CMD):
            if payload[-1] == int(Command.RCRC):
                crc.reset()
            elif payload[-1] == int(Command.DESYNC):
                result.desynced = True
