"""SD card model.

The ZedBoard boots from an SD card that also holds the partial
bitstreams.  The model is a named-file store with a realistic sequential
read rate (SD class 10, ~20 MB/s), charged when the firmware stages a
bitstream into DRAM at boot.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim import Event, Simulator

__all__ = ["SdCard"]


class SdCard:
    """File store with timed reads."""

    #: Sequential read throughput in bytes/ns (20 MB/s).
    READ_RATE = 20e6 / 1e9
    #: Per-read command/seek latency (ns).
    ACCESS_LATENCY_NS = 1.2e6

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._files: Dict[str, bytes] = {}
        self.bytes_read = 0

    # -- provisioning (done before "boot", untimed) ---------------------------
    def store_file(self, name: str, data: bytes) -> None:
        if not name:
            raise ValueError("file name cannot be empty")
        self._files[name] = bytes(data)

    def list_files(self) -> List[str]:
        return sorted(self._files)

    def file_size(self, name: str) -> int:
        self._check(name)
        return len(self._files[name])

    # -- timed access ----------------------------------------------------------
    def read_file(self, name: str) -> Event:
        """Timed read; the event's value is the file contents."""
        self._check(name)
        data = self._files[name]
        done = self.sim.event(name=f"sd.read:{name}")

        def transfer():
            yield self.sim.timeout(
                self.ACCESS_LATENCY_NS + len(data) / self.READ_RATE
            )
            self.bytes_read += len(data)
            done.succeed(data)

        self.sim.process(transfer(), name=f"sd.read:{name}")
        return done

    def _check(self, name: str) -> None:
        if name not in self._files:
            raise FileNotFoundError(
                f"SD card has no file {name!r}; have {self.list_files()}"
            )
