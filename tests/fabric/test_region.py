"""Tests for RpRegion and readback helpers."""

import pytest

from repro.bitstream import make_z7020_layout
from repro.fabric import (
    AspDecodeError,
    ConfigMemory,
    FirFilterAsp,
    MatMulAsp,
    RegionNotConfigured,
    RpRegion,
    encode_asp_frames,
    golden_region_crcs,
    region_crc,
)


@pytest.fixture()
def memory():
    return ConfigMemory(make_z7020_layout())


def _load(memory, region_name, asp):
    frames = encode_asp_frames(
        memory.layout.region_frame_count(region_name), asp
    )
    memory.write_region(region_name, frames)


def test_blank_region_raises(memory):
    region = RpRegion(memory, "RP1")
    assert region.is_blank()
    with pytest.raises(RegionNotConfigured):
        region.current_asp()
    assert region.try_current_asp() is None


def test_unknown_region_name_rejected(memory):
    with pytest.raises(KeyError):
        RpRegion(memory, "RP77")


def test_configured_region_computes(memory):
    region = RpRegion(memory, "RP1")
    _load(memory, "RP1", FirFilterAsp([2, 1]))
    assert region.compute([1, 0, 0]) == [2, 1, 0]
    assert region.current_asp().name == "fir-filter"


def test_reconfiguration_swaps_behaviour(memory):
    region = RpRegion(memory, "RP2")
    _load(memory, "RP2", FirFilterAsp([1]))
    assert region.compute([5]) == [5]
    _load(memory, "RP2", MatMulAsp(2))
    assert region.current_asp().name == "matmul"
    assert region.compute([1, 0, 0, 1, 9, 8, 7, 6]) == [9, 8, 7, 6]


def test_asp_cache_invalidated_on_rewrite(memory):
    region = RpRegion(memory, "RP3")
    _load(memory, "RP3", FirFilterAsp([1, 2]))
    first = region.current_asp()
    assert region.current_asp() is first  # cached
    _load(memory, "RP3", FirFilterAsp([3, 4]))
    second = region.current_asp()
    assert second is not first
    assert second.coefficients == [3, 4]


def test_corrupted_region_fails_decode(memory):
    region = RpRegion(memory, "RP4")
    _load(memory, "RP4", FirFilterAsp([1]))
    memory.corrupt_region_word("RP4", 0, flip_mask=0xFFFF)  # destroy the magic
    with pytest.raises(AspDecodeError):
        region.current_asp()


def test_reconfiguration_count(memory):
    region = RpRegion(memory, "RP1")
    assert region.reconfiguration_count == 0
    _load(memory, "RP1", FirFilterAsp([1]))
    assert region.reconfiguration_count == 1
    _load(memory, "RP1", FirFilterAsp([2]))
    assert region.reconfiguration_count == 2


def test_region_crc_changes_with_content(memory):
    before = region_crc(memory, "RP1")
    _load(memory, "RP1", FirFilterAsp([7]))
    after = region_crc(memory, "RP1")
    assert before != after


def test_region_crc_detects_single_bit_corruption(memory):
    _load(memory, "RP2", FirFilterAsp([7, 8, 9]))
    clean = region_crc(memory, "RP2")
    memory.corrupt_region_word("RP2", 12_345, flip_mask=0x1)
    assert region_crc(memory, "RP2") != clean


def test_golden_crcs_cover_all_regions(memory):
    crcs = golden_region_crcs(memory)
    assert set(crcs) == {"RP1", "RP2", "RP3", "RP4"}
    # All blank regions of equal size have equal CRCs.
    assert len(set(crcs.values())) == 1
