"""Zynq Processing System: global timer, interrupt controller, PCAP."""

from .firmware import ZedboardTestApp
from .gic import InterruptController
from .pcap import Pcap
from .timer import GlobalTimer

__all__ = ["GlobalTimer", "InterruptController", "Pcap", "ZedboardTestApp"]
