"""Unit + property tests for the FIFO channel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Channel, SchedulingError, Simulator


def test_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, capacity=0)


def test_put_get_roundtrip():
    sim = Simulator()
    chan = Channel(sim, capacity=4)
    got = []

    def producer(sim):
        for i in range(3):
            yield chan.put(i)

    def consumer(sim):
        for _ in range(3):
            got.append((yield chan.get()))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert got == [0, 1, 2]


def test_put_blocks_when_full():
    sim = Simulator()
    chan = Channel(sim, capacity=1)
    times = {}

    def producer(sim):
        yield chan.put("a")
        yield chan.put("b")  # blocks until the consumer drains "a"
        times["second_put"] = sim.now

    def consumer(sim):
        yield sim.timeout(50.0)
        yield chan.get()
        yield chan.get()

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert times["second_put"] == 50.0


def test_get_blocks_when_empty():
    sim = Simulator()
    chan = Channel(sim)
    times = {}

    def consumer(sim):
        value = yield chan.get()
        times["got"] = (sim.now, value)

    def producer(sim):
        yield sim.timeout(30.0)
        yield chan.put("late")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert times["got"] == (30.0, "late")


def test_try_put_try_get():
    sim = Simulator()
    chan = Channel(sim, capacity=1)
    assert chan.try_put(1) is True
    assert chan.try_put(2) is False  # full
    ok, value = chan.try_get()
    assert (ok, value) == (True, 1)
    ok, value = chan.try_get()
    assert ok is False


def test_level_and_peak_tracking():
    sim = Simulator()
    chan = Channel(sim, capacity=8)
    for i in range(5):
        chan.try_put(i)
    assert chan.level == 5
    assert chan.peak_level == 5
    chan.try_get()
    chan.try_get()
    assert chan.level == 3
    assert chan.peak_level == 5


def test_drain_returns_all_items():
    sim = Simulator()
    chan = Channel(sim)
    for i in range(4):
        chan.try_put(i)
    assert chan.drain() == [0, 1, 2, 3]
    assert chan.is_empty


def test_drain_with_blocked_processes_rejected():
    sim = Simulator()
    chan = Channel(sim, capacity=1)

    def blocked_putter(sim):
        yield chan.put("a")
        yield chan.put("b")

    sim.process(blocked_putter(sim))
    sim.run(until=1.0)
    with pytest.raises(SchedulingError):
        chan.drain()


def test_multiple_getters_fifo_order():
    sim = Simulator()
    chan = Channel(sim)
    winners = []

    def getter(sim, tag):
        value = yield chan.get()
        winners.append((tag, value))

    def putter(sim):
        yield sim.timeout(10.0)
        yield chan.put("x")
        yield chan.put("y")

    sim.process(getter(sim, "first"))
    sim.process(getter(sim, "second"))
    sim.process(putter(sim))
    sim.run()
    assert winners == [("first", "x"), ("second", "y")]


@settings(max_examples=50, deadline=None)
@given(
    items=st.lists(st.integers(), max_size=64),
    capacity=st.integers(min_value=1, max_value=8),
)
def test_property_conservation_and_order(items, capacity):
    """Everything put is got, exactly once, in order, for any capacity."""
    sim = Simulator()
    chan = Channel(sim, capacity=capacity, name="prop")
    received = []

    def producer(sim):
        for item in items:
            yield chan.put(item)

    def consumer(sim):
        for _ in items:
            received.append((yield chan.get()))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert received == items
    assert chan.total_put == len(items)
    assert chan.total_got == len(items)
    assert chan.peak_level <= capacity


@settings(max_examples=30, deadline=None)
@given(
    items=st.lists(st.integers(), min_size=1, max_size=32),
    producer_gap=st.floats(min_value=0.0, max_value=20.0),
    consumer_gap=st.floats(min_value=0.0, max_value=20.0),
)
def test_property_order_with_arbitrary_timing(items, producer_gap, consumer_gap):
    """FIFO order holds regardless of relative producer/consumer speed."""
    sim = Simulator()
    chan = Channel(sim, capacity=2)
    received = []

    def producer(sim):
        for item in items:
            yield sim.timeout(producer_gap)
            yield chan.put(item)

    def consumer(sim):
        for _ in items:
            yield sim.timeout(consumer_gap)
            received.append((yield chan.get()))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert received == items
