"""Scatter-gather descriptor engine (AXI DMA SG mode).

Direct register mode (what the paper's measurements use) needs the PS to
program SA/LENGTH for every transfer.  SG mode instead walks a chain of
DMA descriptors resident in DRAM: each descriptor names one buffer, and
the engine fetches the next descriptor itself — so a whole *sequence* of
partial bitstreams streams back-to-back with no software in the loop.

Descriptor layout (Xilinx-compatible fields, 8 words = 32 bytes):

====  ==========================================
word  field
====  ==========================================
0     NXTDESC (address of the next descriptor)
1     reserved
2     BUFFER_ADDR
3     reserved
4     reserved
5     reserved
6     CONTROL: bits[25:0] length, bit 27 SOF, bit 26 EOF
7     STATUS: bit 31 completed (written back by the engine)
====  ==========================================

The chain terminates at a descriptor whose EOF bit is set (tail-pointer
mode is not modelled).  Each descriptor fetch and status write-back costs
a memory round trip — the ablation-style test shows this overhead is
negligible against half-megabyte bitstreams but visible for tiny buffers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List

from ..dram.device import DramDevice
from ..sim import InterruptLine

from .engine import AxiDmaEngine
from .registers import (
    DMACR_IOC_IRQ_EN,
    DMACR_RS,
    DMASR_IOC_IRQ,
    MM2S_DMACR,
    MM2S_DMASR,
    MM2S_LENGTH,
    MM2S_SA,
)

__all__ = ["SgDescriptor", "write_descriptor_chain", "SgDmaEngine"]

DESC_BYTES = 32
_CTRL_LEN_MASK = 0x03FFFFFF
_CTRL_EOF = 1 << 26
_CTRL_SOF = 1 << 27
_STAT_CMPLT = 1 << 31


@dataclass
class SgDescriptor:
    """One software-built descriptor."""

    buffer_addr: int
    length: int
    first: bool = False
    last: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.length <= _CTRL_LEN_MASK:
            raise ValueError(f"descriptor length {self.length} out of range")

    def pack(self, next_addr: int) -> bytes:
        control = self.length
        if self.first:
            control |= _CTRL_SOF
        if self.last:
            control |= _CTRL_EOF
        return struct.pack(
            ">8I", next_addr, 0, self.buffer_addr, 0, 0, 0, control, 0
        )


def write_descriptor_chain(
    dram: DramDevice, base_addr: int, descriptors: List[SgDescriptor]
) -> int:
    """Lay a chain out in DRAM; returns the head descriptor address."""
    if not descriptors:
        raise ValueError("descriptor chain cannot be empty")
    if base_addr % DESC_BYTES:
        raise ValueError("descriptor base must be 32-byte aligned")
    descriptors = list(descriptors)
    descriptors[0].first = True
    descriptors[-1].last = True
    for index, descriptor in enumerate(descriptors):
        addr = base_addr + index * DESC_BYTES
        next_addr = base_addr + (index + 1) * DESC_BYTES
        dram.store(addr, descriptor.pack(next_addr))
    return base_addr


class SgDmaEngine:
    """Walks a descriptor chain through an underlying MM2S engine.

    The fetch and write-back use the same HP port as the data, so SG
    bookkeeping competes with payload bandwidth exactly as in hardware.
    """

    def __init__(self, dma: AxiDmaEngine, name: str = "sg"):
        self.dma = dma
        self.sim = dma.sim
        self.name = name
        self.chain_done_irq = InterruptLine(self.sim, name=f"{name}.done")
        self.descriptors_processed = 0

    def start_chain(self, head_addr: int):
        """Process the chain (returns the driving Process)."""
        return self.sim.process(self._walk(head_addr), name=f"{self.name}.walk")

    def _walk(self, head_addr: int):
        port = self.dma.port
        addr = head_addr
        while True:
            raw = yield port.read(addr, DESC_BYTES)
            fields = struct.unpack(">8I", raw)
            next_addr, buffer_addr, control = fields[0], fields[2], fields[6]
            length = control & _CTRL_LEN_MASK
            if length == 0:
                raise ValueError(f"descriptor at {addr:#x} has zero length")

            # Drive the underlying engine in direct mode for this buffer.
            self.dma.reg_write(MM2S_DMACR, DMACR_RS | DMACR_IOC_IRQ_EN)
            self.dma.reg_write(MM2S_SA, buffer_addr)
            irq = self.dma.ioc_irq.wait_assert()
            self.dma.reg_write(MM2S_LENGTH, length)
            yield irq
            self.dma.reg_write(MM2S_DMASR, DMASR_IOC_IRQ)  # ack IOC (W1C)

            # Write completion status back into the descriptor.
            status = struct.pack(">I", _STAT_CMPLT)
            yield port.write(addr + 28, status)
            self.descriptors_processed += 1

            if control & _CTRL_EOF:
                break
            addr = next_addr
        self.chain_done_irq.pulse()
        return self.descriptors_processed
