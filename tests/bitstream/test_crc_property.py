"""Property test: the slicing-by-4 CRC-32C equals a bitwise reference.

The production tables in :mod:`repro.bitstream.crc` process four bytes
per step; this suite re-derives the checksum one *bit* at a time from
the Castagnoli polynomial and compares over ~200 seeded random buffers,
covering length 0, lengths that are not multiples of four (the tail
loop), and buffers up to 4096 bytes.
"""

import random
import struct

from repro.bitstream import crc32c_bytes, crc32c_words

_POLY = 0x82F63B78  # reflected Castagnoli polynomial


def crc32c_bitwise(data: bytes) -> int:
    """Textbook one-bit-at-a-time CRC-32C (reflected algorithm)."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
    return crc ^ 0xFFFFFFFF


def test_known_vector():
    # RFC 3720 appendix test vector for CRC-32C.
    assert crc32c_bytes(b"123456789") == 0xE3069283
    assert crc32c_bitwise(b"123456789") == 0xE3069283


def test_empty_and_tiny_buffers():
    for length in range(0, 9):
        data = bytes(range(length))
        assert crc32c_bytes(data) == crc32c_bitwise(data)


def test_slicing_matches_bitwise_reference_over_random_buffers():
    rng = random.Random(0xC5C32C)
    lengths = []
    # ~200 buffers: every residue mod 4 is hit repeatedly, so the word
    # fast path and the byte tail are both exercised.
    for _ in range(200):
        lengths.append(rng.randrange(0, 4097))
    # Force the boundary lengths in as well.
    lengths.extend([1, 2, 3, 4, 5, 4095, 4096])
    for length in lengths:
        data = rng.randbytes(length)
        assert crc32c_bytes(data) == crc32c_bitwise(data), f"len={length}"


def test_word_digest_is_little_endian_byte_digest():
    rng = random.Random(99)
    words = [rng.randrange(1 << 32) for _ in range(257)]  # odd count
    as_bytes = struct.pack(f"<{len(words)}I", *words)
    assert crc32c_words(words) == crc32c_bytes(as_bytes)
    assert crc32c_words(words) == crc32c_bitwise(as_bytes)
