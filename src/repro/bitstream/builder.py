"""Partial-bitstream construction.

:class:`BitstreamBuilder` emits a 7-series-style configuration stream for
one reconfigurable partition: sync header, IDCODE check, CRC reset, a FAR
write targeting the first frame of the region, a single large type-2 FDRI
write carrying every frame (plus the flush pad frame), the final CRC word
and the DESYNC trailer.  The stream is optionally NOOP-padded to an exact
byte size, as vendor tools do.

The builder computes the configuration CRC exactly the way the simulated
device (:mod:`repro.icap.primitive`) folds it, so a built bitstream always
passes the device's CRC check unless it is corrupted in flight.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .crc import ConfigCrc
from .device import FRAME_WORDS, DeviceLayout
from .packets import (
    BUS_WIDTH_DETECT_WORD,
    BUS_WIDTH_SYNC_WORD,
    DUMMY_WORD,
    NOOP_WORD,
    OP_WRITE,
    SYNC_WORD,
    type1,
    type2,
)
from .registers import Command, ConfigRegister

__all__ = ["Bitstream", "BitstreamBuilder"]


@dataclass
class Bitstream:
    """A built configuration stream plus its provenance metadata."""

    words: List[int]
    region_name: str
    frame_count: int
    description: str = ""
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def word_count(self) -> int:
        return len(self.words)

    @property
    def size_bytes(self) -> int:
        return len(self.words) * 4

    def __post_init__(self) -> None:
        self._packed_be: Optional[bytes] = None

    def to_bytes(self) -> bytes:
        """Serialise big-endian per word (configuration stream order).

        Memoised on the instance: built bitstreams are immutable in
        practice (mutations go through :meth:`corrupted`, which copies),
        and campaigns re-stage the same stream into DRAM for every case.
        """
        if self._packed_be is None:
            self._packed_be = struct.pack(f">{len(self.words)}I", *self.words)
        return self._packed_be

    @classmethod
    def from_bytes(
        cls, data: bytes, region_name: str = "", description: str = ""
    ) -> "Bitstream":
        if len(data) % 4:
            raise ValueError(f"bitstream byte length {len(data)} not word aligned")
        words = list(struct.unpack(f">{len(data) // 4}I", data))
        return cls(
            words=words,
            region_name=region_name,
            frame_count=0,
            description=description,
        )

    def corrupted(self, word_index: int, flip_mask: int = 0x1) -> "Bitstream":
        """A copy with one word XOR-flipped (for fault-injection tests)."""
        if not 0 <= word_index < len(self.words):
            raise IndexError(f"word index {word_index} out of range")
        words = list(self.words)
        words[word_index] ^= flip_mask
        return Bitstream(
            words=words,
            region_name=self.region_name,
            frame_count=self.frame_count,
            description=f"{self.description} (corrupted @{word_index})",
            meta=dict(self.meta),
        )


class BitstreamBuilder:
    """Builds partial bitstreams for a given device layout."""

    def __init__(self, layout: DeviceLayout):
        self.layout = layout

    def build_full(
        self,
        frame_data: Optional[Sequence[Sequence[int]]] = None,
        description: str = "",
    ) -> Bitstream:
        """Build a full-device (static) bitstream.

        Writes every frame of the device starting at FAR 0.  Full
        bitstreams are what the PCAP loads at boot (the ICAP cannot load
        them — it is itself part of the PL).  ``frame_data`` defaults to
        an all-blank device.
        """
        total = self.layout.total_frames
        if frame_data is None:
            frame_data = [[0] * FRAME_WORDS for _ in range(total)]
        if len(frame_data) != total:
            raise ValueError(
                f"device has {total} frames, got {len(frame_data)}"
            )
        for i, frame in enumerate(frame_data):
            if len(frame) != FRAME_WORDS:
                raise ValueError(
                    f"frame {i} has {len(frame)} words, expected {FRAME_WORDS}"
                )

        crc = ConfigCrc()
        words: List[int] = []

        def emit(word: int) -> None:
            words.append(word & 0xFFFFFFFF)

        def write_reg(register: ConfigRegister, value: int) -> None:
            emit(type1(OP_WRITE, int(register), 1))
            emit(value)
            crc.update(int(register), value)

        for _ in range(8):
            emit(DUMMY_WORD)
        emit(BUS_WIDTH_SYNC_WORD)
        emit(BUS_WIDTH_DETECT_WORD)
        emit(DUMMY_WORD)
        emit(DUMMY_WORD)
        emit(SYNC_WORD)
        emit(NOOP_WORD)
        write_reg(ConfigRegister.CMD, int(Command.RCRC))
        crc.reset()
        emit(NOOP_WORD)
        emit(NOOP_WORD)
        write_reg(ConfigRegister.IDCODE, self.layout.idcode)
        write_reg(ConfigRegister.CMD, int(Command.WCFG))
        emit(NOOP_WORD)
        write_reg(ConfigRegister.FAR, self.layout.frame_address(0).encode())
        emit(NOOP_WORD)

        data_words: List[int] = []
        for frame in frame_data:
            data_words.extend(w & 0xFFFFFFFF for w in frame)
        data_words.extend([0] * FRAME_WORDS)  # flush pad frame
        emit(type1(OP_WRITE, int(ConfigRegister.FDRI), 0))
        emit(type2(OP_WRITE, len(data_words)))
        words.extend(data_words)
        crc.update_run(int(ConfigRegister.FDRI), data_words)

        expected_crc = crc.value
        emit(type1(OP_WRITE, int(ConfigRegister.CRC), 1))
        emit(expected_crc)
        emit(NOOP_WORD)
        write_reg(ConfigRegister.CMD, int(Command.DGHIGH_LFRM))
        emit(NOOP_WORD)
        write_reg(ConfigRegister.CMD, int(Command.START))
        write_reg(ConfigRegister.CMD, int(Command.DESYNC))
        for _ in range(4):
            emit(NOOP_WORD)

        return Bitstream(
            words=words,
            region_name="<full-device>",
            frame_count=total,
            description=description or "full static configuration",
            meta={"expected_crc": expected_crc, "full": True},
        )

    def build_partial(
        self,
        region_name: str,
        frame_data: Optional[Sequence[Sequence[int]]] = None,
        pad_to_bytes: Optional[int] = None,
        description: str = "",
        frame_data_packed: Optional[bytes] = None,
    ) -> Bitstream:
        """Build a partial bitstream writing ``frame_data`` into a region.

        Parameters
        ----------
        region_name:
            Target reconfigurable partition (must exist in the layout).
        frame_data:
            One word-list per frame of the region, each exactly
            :data:`FRAME_WORDS` long, in FDRI auto-increment order.
        pad_to_bytes:
            If given, append NOOP words after DESYNC until the stream is
            exactly this many bytes (must be word-aligned and not smaller
            than the unpadded stream).
        frame_data_packed:
            Alternative to ``frame_data``: the same frame content as one
            packed little-endian byte string (``FRAME_WORDS`` words per
            frame, auto-increment order) — the form the slab config
            memory and the ASP encoder cache already hold, skipping the
            per-word flatten/pack on the hot build path.
        """
        first_index, region_frame_count = self.layout.region_span(region_name)
        first_far = self.layout.frame_address(first_index)
        if (frame_data is None) == (frame_data_packed is None):
            raise ValueError(
                "exactly one of frame_data / frame_data_packed is required"
            )
        if frame_data_packed is not None:
            expected = region_frame_count * FRAME_WORDS * 4
            if len(frame_data_packed) != expected:
                raise ValueError(
                    f"region {region_name} needs {expected} packed bytes, "
                    f"got {len(frame_data_packed)}"
                )
        else:
            if len(frame_data) != region_frame_count:
                raise ValueError(
                    f"region {region_name} has {region_frame_count} frames, "
                    f"got {len(frame_data)} frames of data"
                )
            for i, frame in enumerate(frame_data):
                if len(frame) != FRAME_WORDS:
                    raise ValueError(
                        f"frame {i} has {len(frame)} words, expected {FRAME_WORDS}"
                    )

        crc = ConfigCrc()
        words: List[int] = []

        def emit(word: int) -> None:
            words.append(word & 0xFFFFFFFF)

        def write_reg(register: ConfigRegister, value: int) -> None:
            emit(type1(OP_WRITE, int(register), 1))
            emit(value)
            crc.update(int(register), value)

        # ---- header: dummy pad, bus-width detect, sync -------------------
        for _ in range(8):
            emit(DUMMY_WORD)
        emit(BUS_WIDTH_SYNC_WORD)
        emit(BUS_WIDTH_DETECT_WORD)
        emit(DUMMY_WORD)
        emit(DUMMY_WORD)
        emit(SYNC_WORD)
        emit(NOOP_WORD)

        # ---- preamble: reset CRC, check device, enter write config -------
        write_reg(ConfigRegister.CMD, int(Command.RCRC))
        crc.reset()  # RCRC resets the accumulator (after folding itself)
        emit(NOOP_WORD)
        emit(NOOP_WORD)
        write_reg(ConfigRegister.IDCODE, self.layout.idcode)
        write_reg(ConfigRegister.CMD, int(Command.WCFG))
        emit(NOOP_WORD)
        write_reg(ConfigRegister.FAR, first_far.encode())
        emit(NOOP_WORD)

        # ---- frame data: type1 FDRI (count 0) + type2 with all frames ----
        # One pad frame flushes the device's frame buffer.
        if frame_data_packed is not None:
            packed_le = frame_data_packed + bytes(FRAME_WORDS * 4)
            data_words = list(struct.unpack(f"<{len(packed_le) // 4}I", packed_le))
        else:
            data_words = []
            for frame in frame_data:
                data_words.extend(frame)
            data_words.extend([0] * FRAME_WORDS)
            try:
                packed_le = struct.pack(f"<{len(data_words)}I", *data_words)
            except struct.error:
                data_words = [w & 0xFFFFFFFF for w in data_words]
                packed_le = struct.pack(f"<{len(data_words)}I", *data_words)

        emit(type1(OP_WRITE, int(ConfigRegister.FDRI), 0))
        emit(type2(OP_WRITE, len(data_words)))
        words.extend(data_words)
        crc.update_run(int(ConfigRegister.FDRI), data_words, packed=packed_le)

        # ---- trailer: CRC check, last frame, desync -----------------------
        expected_crc = crc.value
        emit(type1(OP_WRITE, int(ConfigRegister.CRC), 1))
        emit(expected_crc)
        emit(NOOP_WORD)
        emit(NOOP_WORD)
        write_reg(ConfigRegister.CMD, int(Command.DGHIGH_LFRM))
        emit(NOOP_WORD)
        emit(NOOP_WORD)
        write_reg(ConfigRegister.CMD, int(Command.DESYNC))
        for _ in range(4):
            emit(NOOP_WORD)

        # ---- optional exact-size padding -----------------------------------
        if pad_to_bytes is not None:
            if pad_to_bytes % 4:
                raise ValueError(f"pad_to_bytes={pad_to_bytes} not word aligned")
            if pad_to_bytes < len(words) * 4:
                raise ValueError(
                    f"pad_to_bytes={pad_to_bytes} smaller than stream "
                    f"({len(words) * 4} bytes)"
                )
            words.extend([NOOP_WORD] * ((pad_to_bytes - len(words) * 4) // 4))

        return Bitstream(
            words=words,
            region_name=region_name,
            frame_count=region_frame_count,
            description=description or f"partial for {region_name}",
            meta={
                "expected_crc": expected_crc,
                "first_far": first_far.encode(),
                "data_words": len(data_words),
            },
        )
