"""Tests for the generalised operating-point methodology."""

import pytest

from repro.core import PdrSystem
from repro.experiments.methodology import (
    Characterization,
    OperatingPoint,
    characterize_block,
    characterize_pdr_system,
    format_report,
)
from repro.power import PowerModel


def test_operating_point_efficiency():
    point = OperatingPoint(freq_mhz=200.0, throughput_mb_s=780.0, power_w=1.3)
    assert point.ok
    assert point.efficiency_mb_j == pytest.approx(600.0)
    failed = OperatingPoint(freq_mhz=320.0, throughput_mb_s=None, power_w=1.5)
    assert not failed.ok
    assert failed.efficiency_mb_j is None


def test_characterize_block_with_synthetic_curve():
    """A block that is linear to 200 MHz then flat, failing past 300."""

    def measure(freq):
        if freq > 300:
            return None
        return min(4.0 * freq, 800.0)

    result = characterize_block(
        "synthetic", measure, PowerModel(), [100, 200, 250, 300, 350]
    )
    assert len(result.points) == 5
    assert len(result.working_points()) == 4
    assert result.max_working_frequency() == 300
    # Efficiency peaks where the curve flattens; the plateau means no
    # throughput headroom beyond the efficient point.
    assert result.best_efficiency().freq_mhz == 200
    assert result.best_throughput().throughput_mb_s == 800.0
    assert not result.headroom_worth_it()


def test_headroom_detection_when_scaling_continues():
    """A block whose throughput keeps creeping up past its efficiency
    peak rewards chasing frequency (worth-it verdict flips)."""

    def measure(freq):
        # Full rate to 200 MHz, then a half-rate tail: throughput still
        # grows, but slower than power.
        return 4.0 * min(freq, 200.0) + 0.5 * max(freq - 200.0, 0.0)

    result = characterize_block(
        "scaler", measure, PowerModel(), [100, 200, 300, 400]
    )
    assert result.best_efficiency().freq_mhz == 200
    assert result.best_throughput().freq_mhz == 400
    assert result.headroom_worth_it()


def test_no_working_points_raises():
    result = Characterization("dead", [
        OperatingPoint(100.0, None, 1.0),
    ])
    with pytest.raises(ValueError):
        result.best_efficiency()
    with pytest.raises(ValueError):
        result.best_throughput()
    with pytest.raises(ValueError):
        result.max_working_frequency()


def test_pdr_system_characterization_matches_table2():
    system = PdrSystem()
    result = characterize_pdr_system(
        system=system, frequencies=(100, 200, 280, 310)
    )
    # 310 MHz is not a working point (no completion interrupt).
    assert len(result.working_points()) == 3
    best = result.best_efficiency()
    assert best.freq_mhz == 200
    assert best.efficiency_mb_j == pytest.approx(599.0, rel=0.02)
    assert not result.headroom_worth_it()
    text = format_report(result)
    assert "200" in text
    assert "failed" in text
