"""repro — reproduction of "Robust Throughput Boosting for Low Latency
Dynamic Partial Reconfiguration" (Nannarelli et al., SOCC 2017).

The package simulates the paper's complete hardware/software stack — a
Zynq-7000-class SoC with over-clocked DMA + ICAP partial reconfiguration —
and regenerates every table and figure of the paper's evaluation.

High-level entry points (re-exported here for convenience)::

    from repro import PdrSystem, HllFramework, SramPrSystem

* :class:`PdrSystem` — the Fig. 2 over-clocked PDR architecture.
* :class:`HllFramework` — the Fig. 1 acceleration framework
  (four reconfigurable partitions, per-RP DMA and clocks).
* :class:`SramPrSystem` — the §VI proposed SRAM-based system.
* :mod:`repro.experiments` — one harness per paper table/figure
  (also on the command line as ``repro-pdr``).
"""

from .core import HllFramework, PdrSystem
from .sram_pr import SramPrSystem

__version__ = "1.0.0"

__all__ = ["HllFramework", "PdrSystem", "SramPrSystem", "__version__"]
