"""Experiment E7 — §VI: the proposed SRAM-based PR environment.

Measures the simulated end-to-end system against the paper's theoretical
estimate (550 MHz · 36 bit / 2 = 1237.5 MB/s), and quantifies the two
mechanisms the proposal adds beyond raw bandwidth:

* bitstream decompression (effective throughput beyond the SRAM rate),
* PS-scheduler preloading (staging hidden behind useful work).

Regenerate with ``python -m repro.experiments.proposed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core import PdrSystem
from ..fabric import Aes128Asp, FirFilterAsp
from ..sram_pr import SramPrSystem, THEORETICAL_THROUGHPUT_MB_S

from .report import ExperimentReport, fmt, format_table
from .table1 import WORKLOAD_ASP

__all__ = ["ProposedData", "run_proposed", "format_report", "main"]


@dataclass
class ProposedData:
    #: Fig. 2 system at its best power-efficiency point (200 MHz).
    current_latency_us: float
    current_throughput_mb_s: float
    #: §VI system, uncompressed image.
    plain_activation_us: float
    plain_throughput_mb_s: float
    plain_preload_us: float
    #: §VI system, compressed image.
    compressed_activation_us: float
    compressed_throughput_mb_s: float
    compressed_preload_us: float
    compression_ratio: float
    theoretical_mb_s: float = THEORETICAL_THROUGHPUT_MB_S


def run_proposed(
    pdr_system: Optional[PdrSystem] = None,
    sram_system: Optional[SramPrSystem] = None,
) -> ProposedData:
    """Measure the SectionVI system against the Fig. 2 baseline."""
    pdr_system = pdr_system or PdrSystem()
    pdr_system.set_die_temperature(40.0)
    current = pdr_system.reconfigure("RP1", WORKLOAD_ASP, 200.0)

    sram_system = sram_system or SramPrSystem()
    plain = sram_system.reconfigure("RP1", Aes128Asp([9, 9, 9, 9]), compress=False)
    compressed = sram_system.reconfigure(
        "RP2", FirFilterAsp([5, 4, 3, 2, 1]), compress=True
    )

    return ProposedData(
        current_latency_us=current.latency_us,
        current_throughput_mb_s=current.throughput_mb_s,
        plain_activation_us=plain.activation_latency_us,
        plain_throughput_mb_s=plain.throughput_mb_s,
        plain_preload_us=plain.preload_us,
        compressed_activation_us=compressed.activation_latency_us,
        compressed_throughput_mb_s=compressed.throughput_mb_s,
        compressed_preload_us=compressed.preload_us,
        compression_ratio=compressed.activation.compression_ratio,
    )


def format_report(data: ProposedData) -> str:
    """Render the SectionVI comparison table and analysis."""
    report = ExperimentReport("SectionVI — proposed SRAM-based PR environment")
    rows = [
        [
            "current (Fig.2, 200 MHz)",
            fmt(data.current_latency_us, 1),
            fmt(data.current_throughput_mb_s, 1),
            "-",
        ],
        [
            "proposed, uncompressed",
            fmt(data.plain_activation_us, 1),
            fmt(data.plain_throughput_mb_s, 1),
            fmt(data.plain_preload_us, 1),
        ],
        [
            "proposed, compressed",
            fmt(data.compressed_activation_us, 1),
            fmt(data.compressed_throughput_mb_s, 1),
            fmt(data.compressed_preload_us, 1),
        ],
    ]
    report.add(
        format_table(
            ["system", "activation us", "MB/s", "preload us (hideable)"],
            rows,
        )
    )
    speedup = data.plain_throughput_mb_s / data.current_throughput_mb_s
    report.add(
        f"theoretical estimate: {data.theoretical_mb_s:.1f} MB/s "
        f"(paper SectionVI arithmetic)\n"
        f"simulated uncompressed: {data.plain_throughput_mb_s:.1f} MB/s "
        f"({data.plain_throughput_mb_s / data.theoretical_mb_s * 100:.1f}% of theory)\n"
        f"vs current system: {speedup:.2f}x "
        f"(paper: 'almost double the one measured')\n"
        f"compression ratio {data.compression_ratio:.2f} pushes the effective "
        f"rate to {data.compressed_throughput_mb_s:.1f} MB/s (ICAP-clock bound)"
    )
    return report.render()


def main() -> None:
    """Regenerate the SectionVI numbers and print the report."""
    print(format_report(run_proposed()))


if __name__ == "__main__":
    main()
