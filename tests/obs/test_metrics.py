"""Tests for the metric primitives and the registry."""

import json

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    NullMetricsRegistry,
)


class FakeClock:
    """Controllable now_fn for time-weighted math tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# -- counters ----------------------------------------------------------------

def test_counter_accumulates_and_rejects_decrements():
    counter = Counter("c")
    counter.inc()
    counter.inc(41)
    assert counter.value == 42
    with pytest.raises(ValueError):
        counter.inc(-1)


# -- time-weighted gauges ------------------------------------------------------

def test_gauge_time_weighted_mean():
    clock = FakeClock()
    gauge = Gauge("g", now_fn=clock)
    gauge.set(10.0)          # t=0
    clock.now = 100.0
    gauge.set(20.0)          # held 10 for 100 ns
    clock.now = 200.0        # held 20 for 100 ns
    assert gauge.time_weighted_mean() == pytest.approx(15.0)
    assert gauge.min == 10.0
    assert gauge.max == 20.0


def test_gauge_mean_weights_by_duration_not_sample_count():
    # Nine instantaneous spikes to 100 and one long stretch at 0 must
    # average near 0, not near 90 — the whole point of time-weighting.
    clock = FakeClock()
    gauge = Gauge("g", now_fn=clock)
    gauge.set(0.0)
    clock.now = 1000.0
    for _ in range(9):
        gauge.set(100.0)
        gauge.set(0.0)       # same timestamp: zero-width spike
    clock.now = 2000.0
    assert gauge.time_weighted_mean() == pytest.approx(0.0)


def test_gauge_add_is_relative():
    clock = FakeClock()
    gauge = Gauge("g", now_fn=clock)
    gauge.add(3)
    gauge.add(-1)
    assert gauge.value == 2


def test_gauge_unset_reports_none():
    gauge = Gauge("g", now_fn=lambda: 0.0)
    assert gauge.time_weighted_mean() is None
    assert gauge.to_dict()["value"] is None


def test_gauge_final_segment_integrates_through_end_ns():
    # The tail regression: a gauge set once early and never touched
    # again must weight its final value over the whole remaining window,
    # not just up to its last set.
    clock = FakeClock()
    gauge = Gauge("g", now_fn=clock)
    gauge.set(0.0)           # t=0
    clock.now = 100.0
    gauge.set(10.0)          # 0 held for 100 ns, then 10 ... forever
    # Snapshot at t=900: 0*100 + 10*800 over 900 ns.
    assert gauge.time_weighted_mean(end_ns=900.0) == pytest.approx(8000.0 / 900.0)
    # Without end_ns the live clock closes the window the same way.
    clock.now = 900.0
    assert gauge.time_weighted_mean() == pytest.approx(8000.0 / 900.0)
    # to_dict threads the explicit window end through.
    assert gauge.to_dict(end_ns=900.0)["time_weighted_mean"] == pytest.approx(
        8000.0 / 900.0
    )


def test_gauge_end_before_last_set_clamps_not_subtracts():
    # A rewound/detached clock must never subtract tail mass.
    clock = FakeClock()
    gauge = Gauge("g", now_fn=clock)
    gauge.set(10.0)          # t=0
    clock.now = 100.0
    gauge.set(20.0)
    assert gauge.time_weighted_mean(end_ns=50.0) == pytest.approx(10.0)


def test_registry_to_dict_threads_end_ns_to_gauges_only():
    clock = FakeClock()
    registry = MetricsRegistry(now_fn=clock)
    gauge = registry.gauge("fifo.level")
    gauge.set(4.0)           # t=0, never set again
    registry.counter("ops").inc(3)
    data = registry.to_dict(end_ns=200.0)
    assert data["fifo.level"]["time_weighted_mean"] == pytest.approx(4.0)
    assert data["ops"]["value"] == 3


# -- compiled-out registry -----------------------------------------------------

def test_null_registry_returns_shared_noop_metric():
    registry = NullMetricsRegistry(name="off")
    counter = registry.counter("a.count")
    gauge = registry.gauge("a.level")
    assert counter is NULL_METRIC and gauge is NULL_METRIC
    counter.inc(5)
    gauge.set(3.0)
    registry.histogram("a.lat").observe(1.0)
    registry.series("a.temp").sample(40.0)
    registry.probe("a.events", lambda: 99)
    # Nothing was recorded, and readable attributes stay inert.
    assert NULL_METRIC.value == 0.0
    assert NULL_METRIC.time_weighted_mean() is None
    assert NULL_METRIC.to_dict() == {"type": "null"}


# -- histograms ----------------------------------------------------------------

def test_histogram_exact_stats_and_percentiles():
    histogram = Histogram("h")
    for value in range(1, 101):  # 1..100
        histogram.observe(float(value))
    assert histogram.count == 100
    assert histogram.min == 1.0
    assert histogram.max == 100.0
    assert histogram.mean == pytest.approx(50.5)
    assert histogram.percentile(0) == 1.0
    assert histogram.percentile(100) == 100.0
    assert histogram.percentile(50) == pytest.approx(50.5)
    assert histogram.percentile(90) == pytest.approx(90.1)


def test_histogram_reservoir_decimates_deterministically():
    histogram = Histogram("h", reservoir_size=64)
    for value in range(10_000):
        histogram.observe(float(value))
    # Exact aggregates survive decimation...
    assert histogram.count == 10_000
    assert histogram.max == 9999.0
    # ...and the sampled median stays representative.
    assert histogram.percentile(50) == pytest.approx(5000, rel=0.15)
    # Re-running the same sequence gives the same reservoir (no RNG).
    other = Histogram("h2", reservoir_size=64)
    for value in range(10_000):
        other.observe(float(value))
    assert other.percentile(50) == histogram.percentile(50)


def test_histogram_empty_and_bad_percentile():
    histogram = Histogram("h")
    assert histogram.percentile(50) is None
    with pytest.raises(ValueError):
        histogram.percentile(101)


# -- registry ----------------------------------------------------------------

def test_registry_get_or_create_returns_same_object():
    registry = MetricsRegistry()
    assert registry.counter("dma.bytes") is registry.counter("dma.bytes")
    assert "dma.bytes" in registry
    with pytest.raises(TypeError):
        registry.gauge("dma.bytes")  # same name, different type


def test_registry_series_and_probe_export():
    clock = FakeClock()
    registry = MetricsRegistry(now_fn=clock)
    series = registry.series("bench.temp_c")
    series.sample(40.0)
    clock.now = 10.0
    series.sample(41.0)
    registry.probe("sim.events", lambda: 123)
    data = registry.to_dict()
    assert data["bench.temp_c"]["samples"] == [[0.0, 40.0], [10.0, 41.0]]
    assert data["sim.events"]["value"] == 123


def test_registry_dump_json_and_csv(tmp_path):
    registry = MetricsRegistry(name="test")
    registry.counter("a.count").inc(7)
    registry.histogram("a.lat_us").observe(2.5)

    json_path = tmp_path / "m.json"
    registry.dump_json(str(json_path))
    doc = json.loads(json_path.read_text())
    assert doc["registry"] == "test"
    assert doc["metrics"]["a.count"]["value"] == 7

    csv_path = tmp_path / "m.csv"
    registry.dump_csv(str(csv_path))
    text = csv_path.read_text()
    assert text.startswith("metric,field,value\n")
    assert "a.count,value,7" in text
