"""Fleet-scale PDR service: many boards under live request traffic.

The rest of the repo measures one reconfiguration at a time; this
package is the ROADMAP's "millions of users" story.  A
:class:`FleetSpec` describes a fleet of simulated boards (forked cheaply
from :mod:`repro.snapshot` templates) and an open-loop request workload
(Poisson or bursty arrivals of reconfiguration requests over mixed ASP
kinds, sizes and regions).  :func:`run_fleet` drives the requests
through admission control, bounded per-board queues and same-bitstream
batching, executes every board's schedule on a real
:class:`~repro.core.PdrSystem` through :class:`~repro.exec.SweepRunner`
(serial ≡ ``--jobs N`` byte-identical), and grades the resulting
request-level SLOs — p50/p99 latency, rejected-request rate, per-board
utilisation — with the same nearest-rank/rollup machinery as every
other campaign in the repo.

:mod:`repro.fleet.health` adds the fault-tolerance control plane: per-
board chaos storms, a deterministic board health state machine
(healthy → degraded → quarantined → dead) with a circuit breaker, and
request-level failover with capped retries — the degraded-mode SLOs
(availability under board loss, failover latency penalty, goodput)
surface through the same :class:`FleetReport`.
"""

from .health import (
    DEADLINE_FACTOR,
    FleetHealthTracker,
    PROBE_COOLDOWN_US,
    chaos_board_point,
    run_chaos_fleet,
)
from .report import FleetReport, FleetSlos, format_report, render_json
from .scheduler import FleetPlan, plan_fleet
from .service import FleetSpec, board_point, run_fleet
from .workload import FleetRequest, build_workload, reissue

__all__ = [
    "DEADLINE_FACTOR",
    "FleetHealthTracker",
    "FleetPlan",
    "FleetReport",
    "FleetRequest",
    "FleetSlos",
    "FleetSpec",
    "PROBE_COOLDOWN_US",
    "board_point",
    "build_workload",
    "chaos_board_point",
    "format_report",
    "plan_fleet",
    "reissue",
    "render_json",
    "run_chaos_fleet",
    "run_fleet",
]
