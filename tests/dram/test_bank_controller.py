"""Unit tests for the bank-aware DDR controller.

Covers the bank-machine latency table (hit/miss/conflict x page
policy), both refresh modes, the round-robin command multiplexer with
per-master ledgers, the queue-wait counter, fault hooks, and device
snapshot round-trips of the extended bank/row state.
"""

import pytest

from repro.dram import (
    BankDramController,
    BankTiming,
    DdrTiming,
    DramDevice,
    MemoryRequest,
)
from repro.sim import Simulator

ROW = DdrTiming().row_bytes
BANKS = DdrTiming().banks


def _drive(sim, steps):
    """Run ``steps`` (a generator function of sim) to completion."""
    sim.process(steps(sim))
    sim.run()


def _timed_read(sim, controller, addr, size=64, master="m0"):
    state = {}

    def driver(sim):
        start = sim.now
        yield controller.read(addr, size, master=master)
        state["ns"] = sim.now - start

    _drive(sim, driver)
    return state["ns"]


# ------------------------------------------------------------ latency table --
def test_hit_miss_conflict_latencies_open_page():
    sim = Simulator()
    timing = BankTiming(tcas_ns=200.0, trcd_ns=100.0, trp_ns=50.0)
    controller = BankDramController(
        sim, DramDevice(), timing=timing, refresh_mode="off"
    )
    transfer = controller.device.transfer_ns(64)
    # Cold bank: ACTIVATE + CAS.
    assert _timed_read(sim, controller, 0) == pytest.approx(
        timing.miss_ns + transfer
    )
    # Same row: CAS only.
    assert _timed_read(sim, controller, 64) == pytest.approx(
        timing.hit_ns + transfer
    )
    # Different row, same bank: PRECHARGE + ACTIVATE + CAS.
    conflict_addr = ROW * BANKS
    assert _timed_read(sim, controller, conflict_addr) == pytest.approx(
        timing.conflict_ns + transfer
    )
    assert controller.device.row_hits == 1
    assert controller.device.row_misses == 1
    assert controller.device.row_conflicts == 1


def test_closed_page_never_hits_and_never_conflicts():
    sim = Simulator()
    timing = BankTiming(tcas_ns=200.0, trcd_ns=100.0, trp_ns=50.0)
    controller = BankDramController(
        sim, DramDevice(), timing=timing, page_policy="closed", refresh_mode="off"
    )
    transfer = controller.device.transfer_ns(64)
    for addr in (0, 64, ROW * BANKS, 0):
        assert _timed_read(sim, controller, addr) == pytest.approx(
            timing.miss_ns + transfer
        )
    assert controller.device.row_hits == 0
    assert controller.device.row_conflicts == 0
    assert controller.device.row_misses == 4
    for bank in range(BANKS):
        assert controller.device.open_row(bank) is None


def test_constructor_validates_policy_and_mode():
    sim = Simulator()
    with pytest.raises(ValueError):
        BankDramController(sim, page_policy="ajar")
    with pytest.raises(ValueError):
        BankDramController(sim, refresh_mode="sometimes")


# ------------------------------------------------------------------ refresh --
def test_engine_refresh_stalls_requests_in_every_window():
    sim = Simulator()
    timing = BankTiming(trefi_ns=1000.0, trfc_ns=100.0)
    controller = BankDramController(
        sim, DramDevice(), timing=timing, refresh_mode="engine"
    )

    def driver(sim):
        # Arrive exactly when refresh 1 becomes due: full tRFC stall.
        yield sim.timeout(1000.0)
        start = sim.now
        yield controller.read(0, 64)
        assert sim.now - start == pytest.approx(
            100.0 + timing.miss_ns + controller.device.transfer_ns(64)
        )

    _drive(sim, driver)
    assert controller.refreshes_completed == 1
    assert controller.refresh_stall_ns == pytest.approx(100.0)


def test_engine_refresh_covers_every_trefi_window_after_sync():
    sim = Simulator()
    timing = BankTiming(trefi_ns=500.0, trfc_ns=60.0)
    controller = BankDramController(
        sim, DramDevice(), timing=timing, refresh_mode="engine"
    )

    def driver(sim):
        for step in range(10):
            yield controller.read(step * 64, 64)
            yield sim.timeout(700.0)

    _drive(sim, driver)
    controller.sync_refresh()
    assert controller.refreshes_completed == int(sim.now // timing.trefi_ns)


def test_engine_refresh_in_idle_gap_costs_nothing_later():
    """Refreshes that ran during idle are done; the next burst only pays
    the remainder of an in-progress refresh, never the backlog."""
    sim = Simulator()
    timing = BankTiming(trefi_ns=1000.0, trfc_ns=100.0)
    controller = BankDramController(
        sim, DramDevice(), timing=timing, refresh_mode="engine"
    )

    def driver(sim):
        yield sim.timeout(10_500.0)  # 10 refreshes due, all ran while idle
        start = sim.now
        yield controller.read(0, 64)
        assert sim.now - start == pytest.approx(
            timing.miss_ns + controller.device.transfer_ns(64)
        )

    _drive(sim, driver)
    assert controller.refreshes_completed == 10
    assert controller.refresh_stall_ns == 0.0


def test_lazy_refresh_matches_legacy_accounting():
    sim = Simulator()
    timing = BankTiming(trefi_ns=1000.0, trfc_ns=100.0)
    controller = BankDramController(sim, DramDevice(), timing=timing)

    def driver(sim):
        yield sim.timeout(3500.0)  # 3 intervals elapsed
        start = sim.now
        yield controller.read(0, 64)
        # Legacy rule: exactly one tRFC charged, however many intervals.
        assert sim.now - start == pytest.approx(
            100.0 + timing.miss_ns + controller.device.transfer_ns(64)
        )

    _drive(sim, driver)
    assert controller.refreshes_completed == 3
    assert controller.refresh_stall_ns == pytest.approx(100.0)


def test_refresh_off_never_stalls():
    sim = Simulator()
    controller = BankDramController(
        sim, DramDevice(), timing=BankTiming(trefi_ns=10.0), refresh_mode="off"
    )

    def driver(sim):
        yield sim.timeout(1e6)
        yield controller.read(0, 64)

    _drive(sim, driver)
    assert controller.refreshes_completed == 0
    assert controller.refresh_stall_ns == 0.0


# -------------------------------------------------------------- multiplexer --
def test_round_robin_interleaves_masters():
    sim = Simulator()
    controller = BankDramController(sim, DramDevice(), refresh_mode="off")
    order = []

    def master(sim, name, count):
        for index in range(count):
            yield controller.read(index * 64, 64, master=name)
            order.append(name)

    sim.process(master(sim, "a", 4))
    sim.process(master(sim, "b", 4))
    sim.run()
    # Closed-loop masters with equal work alternate under round-robin.
    runs, longest = 1, 1
    for previous, current in zip(order, order[1:]):
        runs = runs + 1 if previous == current else 1
        longest = max(longest, runs)
    assert longest <= 2
    assert controller.masters["a"].requests == 4
    assert controller.masters["b"].requests == 4


def test_per_master_ledger_sums_to_controller_totals():
    sim = Simulator()
    controller = BankDramController(sim, DramDevice(), refresh_mode="off")

    def master(sim, name, count, write):
        for index in range(count):
            addr = index * 1024
            if write:
                yield controller.write(addr, bytes(1024), master=name)
            else:
                yield controller.read(addr, 1024, master=name)

    sim.process(master(sim, "reader", 5, False))
    sim.process(master(sim, "writer", 3, True))
    sim.run()
    ledgers = controller.masters
    assert ledgers["reader"].bytes == 5 * 1024
    assert ledgers["writer"].bytes == 3 * 1024
    total = controller.bytes_read + controller.bytes_written
    assert sum(ledger.bytes for ledger in ledgers.values()) == total
    assert sum(ledger.wait_ns for ledger in ledgers.values()) == pytest.approx(
        controller.queue_wait_ns
    )


def test_contended_masters_accumulate_queue_wait():
    sim = Simulator()
    controller = BankDramController(sim, DramDevice(), refresh_mode="off")

    def master(sim, name):
        for index in range(6):
            yield controller.read(index * 1024, 1024, master=name)

    sim.process(master(sim, "a"))
    sim.process(master(sim, "b"))
    sim.run()
    # Both submit at t=0; whoever is served second waited a full service.
    assert controller.queue_wait_ns > 0.0
    metric = controller.metrics.to_dict()["ddrc.queue_wait_ns"]
    assert metric["value"] == pytest.approx(controller.queue_wait_ns)


# -------------------------------------------------------------- fault hooks --
def test_fault_latency_hook_slows_request():
    sim = Simulator()
    controller = BankDramController(sim, DramDevice(), refresh_mode="off")
    controller.fault_latency_ns = lambda request: 5000.0
    base = BankTiming().miss_ns + controller.device.transfer_ns(64)
    assert _timed_read(sim, controller, 0) == pytest.approx(base + 5000.0)


def test_fault_read_tamper_hook_corrupts_data():
    sim = Simulator()
    controller = BankDramController(sim, DramDevice(), refresh_mode="off")
    controller.fault_read_tamper = lambda request, data: b"\xff" * len(data)
    got = {}

    def driver(sim):
        yield controller.write(0, b"\x00" * 16)
        got["data"] = yield controller.read(0, 16)

    _drive(sim, driver)
    assert got["data"] == b"\xff" * 16


def test_chaos_injector_arms_on_bank_controller():
    from repro.chaos import ChaosInjector, build_fault_plan
    from repro.core import PdrSystem

    system = PdrSystem()
    assert isinstance(system.dram_controller, BankDramController)
    plan = build_fault_plan(fault_seed=3, horizon_us=100.0, fault_count=4)
    injector = ChaosInjector(system, plan)
    injector.arm()
    assert system.dram_controller.fault_latency_ns is not None
    assert system.dram_controller.fault_read_tamper is not None


# ----------------------------------------------------------------- snapshot --
def test_device_capture_restore_roundtrips_bank_state():
    device = DramDevice()
    device.store(0x100, b"payload")
    device.bank_access(0, 64, "open")
    device.bank_access(ROW * BANKS, 64, "open")  # conflict in bank 0
    device.bank_access(0, 64, "open")            # conflict back
    state = device.capture_state()
    clone = DramDevice()
    clone.restore_state(state)
    assert clone.load(0x100, 7) == b"payload"
    assert clone.row_hits == device.row_hits
    assert clone.row_misses == device.row_misses
    assert clone.row_conflicts == device.row_conflicts == 2
    assert clone.open_row(0) == device.open_row(0)
    assert clone.capture_state() == state


def test_memory_request_carries_master_tag():
    request = MemoryRequest(addr=0, size=64, master="tenant")
    assert request.master == "tenant"
    assert MemoryRequest(addr=0, size=64).master == "m0"
