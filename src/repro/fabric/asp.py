"""Application-Specific Processors (ASPs) and their frame encoding.

The paper's motivation is swapping ASPs — crypto engines, filters, etc. —
into reconfigurable partitions on demand.  In this reproduction the ASPs
are *functional*: the frames written into a partition encode which ASP it
implements and its parameters, and :func:`decode_asp` +
:func:`instantiate_asp` turn the partition's configuration memory back
into an executable model.  Reconfiguring a region really changes what it
computes, which the integration tests verify end to end.

Frame encoding (region frame 0):

====  ===========================================
word  meaning
====  ===========================================
0     ``ASP_MAGIC`` (0x41535031, "ASP1")
1     ASP kind id (:class:`AspKind`)
2     parameter word count ``P``
3..   ``P`` parameter words (may spill into subsequent frames)
====  ===========================================

Remaining frame words carry deterministic pseudo-random "routing/LUT"
content derived from the parameters, so different ASPs produce genuinely
different (and realistically compressible) bitstreams.
"""

from __future__ import annotations

import itertools
import struct

from typing import List, Optional, Sequence, Tuple

from ..bitstream.crc import crc32c_words
from ..bitstream.device import FRAME_WORDS

__all__ = [
    "ASP_MAGIC",
    "AspKind",
    "Asp",
    "PassthroughAsp",
    "FirFilterAsp",
    "Aes128Asp",
    "MatMulAsp",
    "Crc32Asp",
    "encode_asp_frames",
    "encode_asp_packed",
    "decode_asp",
    "instantiate_asp",
    "AspDecodeError",
]

ASP_MAGIC = 0x41535031  # "ASP1"

_MASK32 = 0xFFFFFFFF


class AspDecodeError(ValueError):
    """The region's frames do not contain a well-formed ASP header."""


class AspKind:
    """ASP kind identifiers carried in the configuration frames."""

    PASSTHROUGH = 0
    FIR_FILTER = 1
    AES128 = 2
    MATMUL = 3
    CRC32 = 4
    SHA256 = 5
    VECTOR_SCALE = 6

    NAMES = {
        PASSTHROUGH: "passthrough",
        FIR_FILTER: "fir-filter",
        AES128: "aes-128",
        MATMUL: "matmul",
        CRC32: "crc32",
        SHA256: "sha-256",
        VECTOR_SCALE: "vector-scale",
    }


class Asp:
    """Base class: a functional model with a word-stream interface."""

    kind: int = -1

    def process(self, words: Sequence[int]) -> List[int]:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return AspKind.NAMES.get(self.kind, f"kind{self.kind}")

    def params(self) -> List[int]:
        """Parameter words as encoded into the configuration frames."""
        raise NotImplementedError


class PassthroughAsp(Asp):
    """Identity datapath (useful as a 'blank but valid' configuration)."""

    kind = AspKind.PASSTHROUGH

    def process(self, words: Sequence[int]) -> List[int]:
        return [w & _MASK32 for w in words]

    def params(self) -> List[int]:
        return []


class FirFilterAsp(Asp):
    """Integer FIR filter: y[n] = sum_k c[k] * x[n-k].

    Coefficients and samples are 32-bit two's-complement words; outputs are
    truncated back to 32 bits (as a fixed-point hardware datapath would).
    """

    kind = AspKind.FIR_FILTER

    def __init__(self, coefficients: Sequence[int]):
        if not coefficients:
            raise ValueError("FIR filter needs at least one coefficient")
        self.coefficients = [int(c) for c in coefficients]

    @staticmethod
    def _signed(word: int) -> int:
        word &= _MASK32
        return word - (1 << 32) if word & 0x80000000 else word

    def process(self, words: Sequence[int]) -> List[int]:
        samples = [self._signed(w) for w in words]
        out = []
        for n in range(len(samples)):
            acc = 0
            for k, coeff in enumerate(self.coefficients):
                if n - k < 0:
                    break
                acc += self._signed(coeff) * samples[n - k]
            out.append(acc & _MASK32)
        return out

    def params(self) -> List[int]:
        return [len(self.coefficients)] + [c & _MASK32 for c in self.coefficients]


class Aes128Asp(Asp):
    """AES-128 ECB encryption engine (the paper's 'crypto engine' ASP).

    The key is the four parameter words; :meth:`process` consumes multiples
    of four words (16-byte blocks) and returns the encrypted blocks.
    """

    kind = AspKind.AES128

    def __init__(self, key_words: Sequence[int]):
        if len(key_words) != 4:
            raise ValueError("AES-128 key must be exactly 4 words")
        self.key_words = [k & _MASK32 for k in key_words]
        key = b"".join(k.to_bytes(4, "big") for k in self.key_words)
        self._round_keys = _aes_key_schedule(key)

    def process(self, words: Sequence[int]) -> List[int]:
        if len(words) % 4:
            raise ValueError("AES input must be a multiple of 4 words")
        out: List[int] = []
        for i in range(0, len(words), 4):
            block = b"".join((w & _MASK32).to_bytes(4, "big") for w in words[i : i + 4])
            cipher = _aes_encrypt_block(block, self._round_keys)
            out.extend(
                int.from_bytes(cipher[j : j + 4], "big") for j in range(0, 16, 4)
            )
        return out

    def params(self) -> List[int]:
        return list(self.key_words)


class MatMulAsp(Asp):
    """n×n integer matrix multiply: input is A then B row-major, output A·B."""

    kind = AspKind.MATMUL

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("matrix dimension must be >= 1")
        self.n = int(n)

    def process(self, words: Sequence[int]) -> List[int]:
        n = self.n
        if len(words) != 2 * n * n:
            raise ValueError(f"matmul({n}) needs {2 * n * n} input words")
        a = [words[i * n : (i + 1) * n] for i in range(n)]
        b = [words[n * n + i * n : n * n + (i + 1) * n] for i in range(n)]
        out = []
        for i in range(n):
            for j in range(n):
                out.append(sum(a[i][k] * b[k][j] for k in range(n)) & _MASK32)
        return out

    def params(self) -> List[int]:
        return [self.n]


class Crc32Asp(Asp):
    """CRC-32C offload engine: digests the whole input into one word."""

    kind = AspKind.CRC32

    def process(self, words: Sequence[int]) -> List[int]:
        return [crc32c_words([w & _MASK32 for w in words])]

    def params(self) -> List[int]:
        return []


class Sha256Asp(Asp):
    """SHA-256 hash engine: digests the word stream into eight words.

    Words are hashed in big-endian byte order (the natural AXI-Stream
    framing for a hardware hash core).
    """

    kind = AspKind.SHA256

    def process(self, words: Sequence[int]) -> List[int]:
        import hashlib

        data = b"".join((w & _MASK32).to_bytes(4, "big") for w in words)
        digest = hashlib.sha256(data).digest()
        return [int.from_bytes(digest[i : i + 4], "big") for i in range(0, 32, 4)]

    def params(self) -> List[int]:
        return []


class VectorScaleAsp(Asp):
    """Fixed-point vector scale-and-offset: y = (a * x + b) mod 2^32.

    The simplest useful streaming datapath (gain + bias), configured by
    two parameter words.
    """

    kind = AspKind.VECTOR_SCALE

    def __init__(self, scale: int, offset: int = 0):
        self.scale = int(scale) & _MASK32
        self.offset = int(offset) & _MASK32

    def process(self, words: Sequence[int]) -> List[int]:
        return [((w & _MASK32) * self.scale + self.offset) & _MASK32 for w in words]

    def params(self) -> List[int]:
        return [self.scale, self.offset]


# --------------------------------------------------------------------------
# Frame encode / decode
# --------------------------------------------------------------------------
def _xorshift32(state: int) -> int:
    state &= _MASK32
    state ^= (state << 13) & _MASK32
    state ^= state >> 17
    state ^= (state << 5) & _MASK32
    return state & _MASK32


try:  # optional: vectorised fill when numpy is present (bit-identical)
    import numpy as _np
except ImportError:  # pragma: no cover - depends on environment
    _np = None


# -- GF(2) linear-operator helpers for the vectorised fill -------------------
# xorshift32 is linear over GF(2), so k steps compose into one 32x32 bit
# matrix, carried here as 32 basis images and applied via 4 x 256 lookup
# tables (the same representation the CRC fast path uses).
def _lin_tables(imgs: List[int]) -> List[List[int]]:
    tables = []
    for part in range(4):
        base = imgs[8 * part : 8 * part + 8]
        tab = [0] * 256
        for v in range(1, 256):
            lsb = v & -v
            tab[v] = tab[v ^ lsb] ^ base[lsb.bit_length() - 1]
        tables.append(tab)
    return tables


def _lin_apply(tabs: List[List[int]], x: int) -> int:
    return (
        tabs[0][x & 0xFF]
        ^ tabs[1][(x >> 8) & 0xFF]
        ^ tabs[2][(x >> 16) & 0xFF]
        ^ tabs[3][x >> 24]
    )


def _lin_compose(a_imgs: List[int], b_imgs: List[int]) -> List[int]:
    ta = _lin_tables(a_imgs)
    return [_lin_apply(ta, x) for x in b_imgs]


_XS_JUMP_CACHE: dict = {}


def _xorshift_jump_tables(steps: int) -> List[List[int]]:
    """Lookup tables advancing a xorshift32 state by ``steps`` steps."""
    cached = _XS_JUMP_CACHE.get(steps)
    if cached is not None:
        return cached
    imgs = [1 << b for b in range(32)]  # identity
    sq = [_xorshift32(1 << b) for b in range(32)]
    exp = steps
    while exp:
        if exp & 1:
            imgs = _lin_compose(sq, imgs)
        exp >>= 1
        if exp:
            sq = _lin_compose(sq, sq)
    tables = _lin_tables(imgs)
    _XS_JUMP_CACHE[steps] = tables
    return tables


def _fill_words_numpy(header: List[int], words_total: int, seed: int) -> List[int]:
    """Vectorised equivalent of the scalar fill loop in encode_asp_frames.

    The walk consumes one xorshift state per word, plus one more for every
    written word (states divisible by 4 trigger a second advance whose
    result is stored).  The orbit itself is generated as 2048 parallel
    streams — seeded via a jump operator, advanced in lock-step — and the
    data-dependent consume-1-or-2 pattern is resolved without a scalar
    loop: within each run of trigger-eligible states, inspections
    alternate, so run-start indices plus parity give the inspected set.
    """
    n = words_total - len(header)
    m = 2 * n + 64  # worst case: every word triggers the second advance
    streams = 2048
    length = -(-m // streams)
    jump = _xorshift_jump_tables(length)
    starts = [0] * streams
    state = seed
    for j in range(streams):
        starts[j] = state
        state = _lin_apply(jump, state)
    orbit = _np.empty((length, streams), dtype=_np.uint32)
    orbit[0] = starts
    for t in range(1, length):
        x = orbit[t - 1]
        y = x ^ (x << 13)
        y ^= y >> 17
        y ^= y << 5
        orbit[t] = y
    flat = orbit.T.reshape(-1)[:m]

    walk = flat[1:]  # flat[0] is the seed; the first word inspects f(seed)
    mask = (walk & 3) == 0
    idx = _np.arange(walk.size)
    run_start = mask.copy()
    run_start[1:] &= ~mask[:-1]
    rs = _np.where(run_start, idx, 0)
    _np.maximum.accumulate(rs, out=rs)
    triggers = mask & (((idx - rs) & 1) == 0)  # inspected & divisible by 4
    prev_trigger = _np.empty_like(mask)
    prev_trigger[0] = False
    prev_trigger[1:] = triggers[:-1]
    inspected = _np.where(mask, triggers, ~prev_trigger)
    ranks = _np.cumsum(inspected)  # 1-based word number per position
    write_at = _np.nonzero(triggers & (ranks <= n))[0]
    out = _np.zeros(words_total, dtype=_np.uint32)
    out[len(header) + ranks[write_at] - 1] = walk[write_at + 1]
    words = out.tolist()
    words[: len(header)] = header
    return words


_ENCODE_CACHE: dict = {}


def encode_asp_frames(frame_count: int, asp: Asp) -> List[List[int]]:
    """Frames for a region of ``frame_count`` frames implementing ``asp``.

    Frame 0 carries the header and parameters; the rest is deterministic
    pseudo-random fill (~25 % non-zero) seeded by the parameters, standing
    in for LUT/routing configuration.

    Encoding is deterministic, so results are memoised; treat the returned
    frames as read-only.
    """
    params = asp.params()
    cache_key = (frame_count, asp.kind, tuple(params))
    cached = _ENCODE_CACHE.get(cache_key)
    if cached is not None:
        return cached
    header = [ASP_MAGIC, asp.kind, len(params)] + [p & _MASK32 for p in params]
    if len(header) > frame_count * FRAME_WORDS:
        raise ValueError("parameters do not fit in the region")

    words_total = frame_count * FRAME_WORDS
    # Deterministic sparse fill after the header region, vectorised when
    # numpy is available (bit-identical to the scalar loop; the property
    # tests compare both).
    seed = crc32c_words([asp.kind] + params) or 0xDEADBEEF
    if _np is not None and words_total - len(header) >= 4096:
        words = _fill_words_numpy(header, words_total, seed)
    else:
        words = header + [0] * (words_total - len(header))
        # The xorshift steps are inlined: this loop runs >130 k times per
        # region encode and a call per step doubles its cost.
        state = seed
        mask = _MASK32  # localise: three global loads per word add ~20 %
        for i in range(len(header), words_total):
            state ^= (state << 13) & mask
            state ^= state >> 17
            state = (state ^ (state << 5)) & mask
            if not state & 3:  # ~25 % of words configured (state % 4 == 0)
                state ^= (state << 13) & mask
                state ^= state >> 17
                state = (state ^ (state << 5)) & mask
                words[i] = state

    frames = [words[i : i + FRAME_WORDS] for i in range(0, words_total, FRAME_WORDS)]
    _ENCODE_CACHE[cache_key] = frames
    return frames


_ENCODE_PACKED_CACHE: dict = {}


def encode_asp_packed(frame_count: int, asp: Asp) -> bytes:
    """:func:`encode_asp_frames` as one packed little-endian byte string.

    The byte form the configuration-memory slab stores, memoised
    separately so golden-image comparison and region-CRC computation skip
    per-word packing on every campaign case.
    """
    cache_key = (frame_count, asp.kind, tuple(asp.params()))
    cached = _ENCODE_PACKED_CACHE.get(cache_key)
    if cached is not None:
        return cached
    frames = encode_asp_frames(frame_count, asp)
    packed = struct.pack(
        f"<{frame_count * FRAME_WORDS}I",
        *itertools.chain.from_iterable(frames),
    )
    _ENCODE_PACKED_CACHE[cache_key] = packed
    return packed


def decode_asp(frames: Sequence[Sequence[int]]) -> Optional[Tuple[int, List[int]]]:
    """Extract ``(kind, params)`` from region frames.

    Returns ``None`` for an all-blank (never configured) region and raises
    :class:`AspDecodeError` for frames that are non-blank but malformed —
    which is what a functional 'hang' after a corrupted reconfiguration
    looks like.
    """
    if not frames:
        return None
    flat: List[int] = []
    for frame in frames[:2]:  # header + possible parameter spill
        flat.extend(frame)
    if all(w == 0 for w in flat) and all(
        w == 0 for frame in frames for w in frame
    ):
        return None
    if flat[0] != ASP_MAGIC:
        raise AspDecodeError(
            f"region is configured but has no ASP header "
            f"(word0={flat[0]:#010x})"
        )
    kind = flat[1]
    count = flat[2]
    if kind not in AspKind.NAMES:
        raise AspDecodeError(f"unknown ASP kind {kind}")
    if count > len(flat) - 3:
        raise AspDecodeError(f"parameter count {count} overruns header frames")
    return kind, flat[3 : 3 + count]


def instantiate_asp(kind: int, params: Sequence[int]) -> Asp:
    """Build the functional model for a decoded ``(kind, params)`` pair."""
    if kind == AspKind.PASSTHROUGH:
        return PassthroughAsp()
    if kind == AspKind.FIR_FILTER:
        if not params or params[0] != len(params) - 1:
            raise AspDecodeError(f"bad FIR parameter block {params!r}")
        return FirFilterAsp(params[1:])
    if kind == AspKind.AES128:
        if len(params) != 4:
            raise AspDecodeError(f"AES key must be 4 words, got {len(params)}")
        return Aes128Asp(params)
    if kind == AspKind.MATMUL:
        if len(params) != 1:
            raise AspDecodeError(f"matmul takes 1 parameter, got {len(params)}")
        return MatMulAsp(params[0])
    if kind == AspKind.CRC32:
        return Crc32Asp()
    if kind == AspKind.SHA256:
        return Sha256Asp()
    if kind == AspKind.VECTOR_SCALE:
        if len(params) != 2:
            raise AspDecodeError(f"vector-scale takes 2 parameters, got {len(params)}")
        return VectorScaleAsp(params[0], params[1])
    raise AspDecodeError(f"unknown ASP kind {kind}")


# --------------------------------------------------------------------------
# AES-128 primitives (encryption only; tables derived, not hard-coded)
# --------------------------------------------------------------------------
def _gf_mul(a: int, b: int) -> int:
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> List[int]:
    # Multiplicative inverse in GF(2^8) followed by the AES affine transform.
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = []
    for x in range(256):
        b = inverse[x]
        value = 0x63
        for i in range(8):
            bit = (
                (b >> i)
                ^ (b >> ((i + 4) % 8))
                ^ (b >> ((i + 5) % 8))
                ^ (b >> ((i + 6) % 8))
                ^ (b >> ((i + 7) % 8))
            ) & 1
            value ^= bit << i
        sbox.append(value)
    # The affine constant 0x63 is already folded in via initialisation.
    return sbox


_SBOX = _build_sbox()
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _aes_key_schedule(key: bytes) -> List[bytes]:
    words = [key[i : i + 4] for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = words[i - 1]
        if i % 4 == 0:
            temp = bytes(
                _SBOX[temp[(j + 1) % 4]] ^ (_RCON[i // 4 - 1] if j == 0 else 0)
                for j in range(4)
            )
        words.append(bytes(a ^ b for a, b in zip(words[i - 4], temp)))
    return [b"".join(words[r * 4 : r * 4 + 4]) for r in range(11)]


def _aes_encrypt_block(block: bytes, round_keys: List[bytes]) -> bytes:
    # Row-major state: state[r*4 + c] = input byte r + 4c (FIPS-197 layout).
    state = [block[r + 4 * c] for r in range(4) for c in range(4)]
    state = _add_round_key(state, round_keys[0])
    for round_index in range(1, 10):
        state = _sub_bytes(state)
        state = _shift_rows(state)
        state = _mix_columns(state)
        state = _add_round_key(state, round_keys[round_index])
    state = _sub_bytes(state)
    state = _shift_rows(state)
    state = _add_round_key(state, round_keys[10])
    return bytes(state[r * 4 + c] for c in range(4) for r in range(4))


def _sub_bytes(state: List[int]) -> List[int]:
    return [_SBOX[b] for b in state]


def _shift_rows(state: List[int]) -> List[int]:
    out = list(state)
    for row in range(1, 4):
        cols = [state[row * 4 + ((c + row) % 4)] for c in range(4)]
        for c in range(4):
            out[row * 4 + c] = cols[c]
    return out


def _mix_columns(state: List[int]) -> List[int]:
    out = [0] * 16
    for c in range(4):
        col = [state[r * 4 + c] for r in range(4)]
        out[0 * 4 + c] = _gf_mul(col[0], 2) ^ _gf_mul(col[1], 3) ^ col[2] ^ col[3]
        out[1 * 4 + c] = col[0] ^ _gf_mul(col[1], 2) ^ _gf_mul(col[2], 3) ^ col[3]
        out[2 * 4 + c] = col[0] ^ col[1] ^ _gf_mul(col[2], 2) ^ _gf_mul(col[3], 3)
        out[3 * 4 + c] = _gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ _gf_mul(col[3], 2)
    return out


def _add_round_key(state: List[int], round_key: bytes) -> List[int]:
    # round_key is 16 bytes in column order (word i = column i).
    return [state[r * 4 + c] ^ round_key[c * 4 + r] for r in range(4) for c in range(4)]
