"""Command-line front end: regenerate any (or every) paper artifact.

Usage::

    repro-pdr all
    repro-pdr table1 table2
    repro-pdr table1 --metrics-out metrics.json --trace-dump 20
    python -m repro.experiments.cli fig5

``--metrics-out PATH`` exports the metrics registry of every system the
selected experiments constructed as one JSON document; ``--trace-dump
[N]`` prints the last N (default 50) trace records of each system.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from ..obs import TELEMETRY_BOOK

from . import (
    fig5,
    fig6,
    methodology,
    proposed,
    table1,
    table2,
    sensitivity,
    table3,
    temp_stress,
    workloads,
)

__all__ = ["main"]


def _run_table1() -> str:
    return table1.format_report(table1.run_table1())


def _run_fig5() -> str:
    return fig5.format_report(fig5.run_fig5())


def _run_fig6() -> str:
    return fig6.format_report(fig6.run_fig6())


def _run_table2() -> str:
    return table2.format_report(table2.run_table2())


def _run_temp_stress() -> str:
    return temp_stress.format_report(temp_stress.run_temp_stress())


def _run_table3() -> str:
    rows = table3.run_table3()
    sweeps = table3.run_scaling_sweep(controllers=[r.controller for r in rows])
    return table3.format_report(rows, sweeps)


def _run_proposed() -> str:
    return proposed.format_report(proposed.run_proposed())


def _run_methodology() -> str:
    return methodology.format_report(methodology.characterize_pdr_system())


def _run_campaign() -> str:
    return workloads.format_report(workloads.compare_icap_frequencies())


def _run_sensitivity() -> str:
    return sensitivity.format_report(sensitivity.run_sensitivity())


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": _run_table1,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "table2": _run_table2,
    "temp-stress": _run_temp_stress,
    "table3": _run_table3,
    "proposed": _run_proposed,
    "methodology": _run_methodology,
    "campaign": _run_campaign,
    "sensitivity": _run_sensitivity,
}


def main(argv=None) -> int:
    """Parse arguments and print the requested experiment reports."""
    parser = argparse.ArgumentParser(
        prog="repro-pdr",
        description=(
            "Regenerate the tables and figures of 'Robust Throughput "
            "Boosting for Low Latency Dynamic Partial Reconfiguration' "
            "(SOCC 2017) on the simulated Zynq platform."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which paper artifacts to regenerate",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the telemetry of every simulated system to PATH as JSON",
    )
    parser.add_argument(
        "--trace-dump",
        nargs="?",
        const=50,
        type=int,
        default=None,
        metavar="N",
        help="print the last N trace records of each system (default 50)",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    with TELEMETRY_BOOK.capture() as book:
        for name in names:
            print(EXPERIMENTS[name]())
    if args.trace_dump is not None:
        for line in book.tail_traces(args.trace_dump):
            print(line)
    if args.metrics_out:
        book.dump_json(args.metrics_out, experiments=names)
        print(
            f"wrote metrics for {len(book.registries)} system(s) "
            f"to {args.metrics_out}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
