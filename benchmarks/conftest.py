"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one paper artifact (table or figure) through
the full discrete-event system, asserts the paper's *shape* (who wins,
where the knee falls, which cells fail) and reports the wall-clock cost
of the regeneration via pytest-benchmark.

The simulations are deterministic, so a single round per benchmark is
both sufficient and honest about cost.
"""

import pytest

from repro.core import PdrSystem


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def system():
    return PdrSystem()
