"""Tests for the fault taxonomy and seed-deterministic fault plans."""

import pytest

from repro.chaos import ENVIRONMENT_KINDS, FAULT_KINDS, Fault, build_fault_plan


def test_plan_is_pure_function_of_seed():
    first = build_fault_plan(7, 50_000.0, 6, seu_per_ms=0.05)
    second = build_fault_plan(7, 50_000.0, 6, seu_per_ms=0.05)
    assert first == second
    assert first.faults == second.faults


def test_different_seeds_differ():
    a = build_fault_plan(1, 50_000.0, 6, seu_per_ms=0.05)
    b = build_fault_plan(2, 50_000.0, 6, seu_per_ms=0.05)
    assert a.faults != b.faults


def test_full_taxonomy_coverage_with_seven_faults():
    # Environmental kinds rotate, so >= 7 faults cover all seven kinds.
    plan = build_fault_plan(3, 100_000.0, 7, seu_per_ms=0.05)
    by_kind = plan.by_kind()
    for kind in ENVIRONMENT_KINDS:
        assert by_kind.get(kind, 0) >= 1, kind
    assert "seu" in by_kind
    assert plan.kinds_covered == len(FAULT_KINDS)


def test_faults_sorted_by_time():
    plan = build_fault_plan(5, 80_000.0, 7, seu_per_ms=0.1)
    times = [fault.at_us for fault in plan.faults]
    assert times == sorted(times)
    # Everything is scheduled inside the episode's settling margin.
    assert all(0 < t <= 80_000.0 * 0.85 for t in times)


def test_seu_rate_scales_arrivals():
    quiet = build_fault_plan(9, 200_000.0, 0, seu_per_ms=0.005)
    busy = build_fault_plan(9, 200_000.0, 0, seu_per_ms=0.5)
    assert len(busy.faults) > len(quiet.faults)
    assert all(fault.kind == "seu" for fault in busy.faults)


def test_seu_params_are_bounded():
    plan = build_fault_plan(11, 300_000.0, 0, seu_per_ms=0.2)
    assert plan.faults, "expected some SEU arrivals at this rate"
    for fault in plan.faults:
        assert fault.param("region") in ("RP1", "RP2", "RP3", "RP4")
        assert 0 <= fault.param("offset_words") < 1304 * 101
        mask = fault.param("flip_mask")
        assert mask and mask & (mask - 1) == 0  # single-bit flip


def test_fault_records_are_plain_data():
    plan = build_fault_plan(13, 60_000.0, 3)
    for fault in plan.faults:
        mapping = fault.to_mapping()
        assert mapping["kind"] == fault.kind
        assert mapping["at_us"] == fault.at_us
        # params round-trip through the accessor.
        for key, value in fault.params:
            assert fault.param(key) == value
    assert Fault("seu", 1.0).param("missing", 42) == 42


def test_plan_validation():
    with pytest.raises(ValueError):
        build_fault_plan(1, 0.0, 3)
    with pytest.raises(ValueError):
        build_fault_plan(1, 1000.0, -1)
