"""Reconfigurable partitions as functional units.

:class:`RpRegion` is the runtime view of one reconfigurable partition
(RP 1–4 of the paper's Fig. 1): it watches the configuration memory and
exposes whatever ASP is currently configured as an executable object.
"""

from __future__ import annotations

from typing import List, Optional

from ..bitstream.device import DeviceLayout
from .asp import Asp, AspDecodeError, decode_asp, instantiate_asp
from .config_memory import ConfigMemory

__all__ = ["RpRegion", "RegionNotConfigured"]


class RegionNotConfigured(RuntimeError):
    """The region is blank (no ASP has ever been loaded)."""


class RpRegion:
    """One reconfigurable partition bound to the configuration memory."""

    def __init__(self, memory: ConfigMemory, name: str):
        self.memory = memory
        self.name = name
        self.layout: DeviceLayout = memory.layout
        self.layout.region(name)  # validate the name early
        # Region frames are contiguous in flat frame-index space
        # (region_span asserts it), so a range covers them without the
        # per-frame address translation.  Membership tests on a range are
        # O(1), which _on_frame_write needs for every frame of every
        # transfer.
        first, count = self.layout.region_span(name)
        self._frame_indices = range(first, first + count)
        self._frame_index_set = self._frame_indices
        self._first_frame_index = first if count else -1
        self._cached_asp: Optional[Asp] = None
        self._cached_generation: Optional[List[int]] = None
        #: How many distinct configurations this region has held.
        self.reconfiguration_count = 0
        self._last_seen_generation = self._generations()
        memory.watch_writes(self._on_frame_write)

    # -- configuration state ----------------------------------------------
    @property
    def frame_count(self) -> int:
        return len(self._frame_indices)

    @property
    def size_bytes(self) -> int:
        return self.layout.region_bytes(self.name)

    def is_blank(self) -> bool:
        return all(
            all(w == 0 for w in self.memory.read_frame(i))
            for i in self._frame_indices
        )

    def current_asp(self) -> Asp:
        """Decode the configured ASP (cached until the frames change).

        Raises :class:`RegionNotConfigured` for a blank region and
        :class:`~repro.fabric.asp.AspDecodeError` for corrupted content.
        """
        generations = self._generations()
        if self._cached_asp is not None and generations == self._cached_generation:
            return self._cached_asp
        frames = [self.memory.read_frame(i) for i in self._frame_indices]
        decoded = decode_asp(frames)
        if decoded is None:
            raise RegionNotConfigured(f"region {self.name} is blank")
        kind, params = decoded
        asp = instantiate_asp(kind, params)
        self._cached_asp = asp
        self._cached_generation = generations
        return asp

    def try_current_asp(self) -> Optional[Asp]:
        """Like :meth:`current_asp` but returns ``None`` instead of raising."""
        try:
            return self.current_asp()
        except (RegionNotConfigured, AspDecodeError):
            return None

    def compute(self, words: List[int]) -> List[int]:
        """Run the configured ASP on a word stream."""
        return self.current_asp().process(words)

    # -- internals ----------------------------------------------------------
    def _generations(self) -> List[int]:
        return self.memory.generation_span(
            self._frame_indices.start, len(self._frame_indices)
        )

    def _on_frame_write(self, frame_index: int) -> None:
        if frame_index not in self._frame_index_set:
            return
        # Count a "reconfiguration" once per burst of writes: when the first
        # frame of the region is rewritten.
        if frame_index == self._first_frame_index:
            self.reconfiguration_count += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        asp = self.try_current_asp()
        state = asp.name if asp else "blank/invalid"
        return f"<RpRegion {self.name}: {state}>"
