"""Table formatting shared by the experiment harnesses."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = [
    "format_phase_table",
    "format_table",
    "fmt",
    "fmt_err",
    "ExperimentReport",
]


def fmt(value: Optional[float], digits: int = 2, na: str = "N/A") -> str:
    """Format a float or an absent measurement."""
    if value is None:
        return na
    return f"{value:.{digits}f}"


def fmt_err(measured: Optional[float], reference: Optional[float]) -> str:
    """Relative error column: measured vs the paper's value."""
    if measured is None or reference is None or reference == 0:
        return "-"
    return f"{(measured - reference) / reference * 100:+.1f}%"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Plain-text table with right-aligned numeric-looking columns."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {columns}")
    widths = [
        max(len(str(headers[c])), *(len(str(r[c])) for r in rows)) if rows
        else len(str(headers[c]))
        for c in range(columns)
    ]
    def line(cells):
        return "  ".join(str(cell).rjust(widths[i]) for i, cell in enumerate(cells))

    rule = "  ".join("-" * w for w in widths)
    out = [line(headers), rule]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def format_phase_table(labelled_results: Sequence[Tuple[str, object]]) -> str:
    """Per-phase latency breakdown table for reconfiguration results.

    ``labelled_results`` pairs a row label (e.g. the frequency) with a
    :class:`~repro.core.results.ReconfigResult`; phases are columns in
    their canonical firmware order, plus a sum-vs-measured check column.
    """
    from ..core.results import PHASES, TIMED_PHASES

    headers = ["run"] + [name for name in PHASES] + ["timed sum", "latency"]
    rows = []
    for label, result in labelled_results:
        cells = [label]
        for name in PHASES:
            cells.append(fmt(result.phase_us.get(name), 1, na="-"))
        cells.append(fmt(result.timed_phase_sum_us, 1, na="-"))
        cells.append(fmt(result.latency_us, 1, na="no irq"))
        rows.append(cells)
    note = (
        "phases in us; 'timed sum' = "
        + " + ".join(TIMED_PHASES)
        + " (the C-timer window, equal to the measured latency)"
    )
    return format_table(headers, rows) + "\n" + note


class ExperimentReport:
    """A titled collection of text sections (tables, plots, notes)."""

    def __init__(self, title: str):
        self.title = title
        self.sections: List[str] = []

    def add(self, text: str) -> None:
        self.sections.append(text)

    def render(self) -> str:
        bar = "=" * max(len(self.title), 40)
        body = "\n\n".join(self.sections)
        return f"{bar}\n{self.title}\n{bar}\n\n{body}\n"
