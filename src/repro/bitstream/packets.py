"""Configuration packet encoding (7-series style).

The configuration stream (after the sync word) is a sequence of packets:

* **Type 1** — ``[31:29]=001``, opcode ``[28:27]`` (00 NOP, 01 READ,
  10 WRITE), register address ``[17:13]``, word count ``[10:0]``.
* **Type 2** — ``[31:29]=010``, opcode as above, word count ``[26:0]``;
  it extends the immediately preceding type-1 packet's register target and
  is used for large FDRI frame-data writes.

This module provides header pack/unpack and the well-known constant words
(sync, NOOP, bus-width detection).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SYNC_WORD",
    "NOOP_WORD",
    "DUMMY_WORD",
    "BUS_WIDTH_SYNC_WORD",
    "BUS_WIDTH_DETECT_WORD",
    "OP_NOP",
    "OP_READ",
    "OP_WRITE",
    "PacketHeader",
    "type1",
    "type2",
]

SYNC_WORD = 0xAA995566
NOOP_WORD = 0x20000000
DUMMY_WORD = 0xFFFFFFFF
BUS_WIDTH_SYNC_WORD = 0x000000BB
BUS_WIDTH_DETECT_WORD = 0x11220044

OP_NOP = 0
OP_READ = 1
OP_WRITE = 2

_TYPE_SHIFT = 29
_OP_SHIFT = 27
_ADDR_SHIFT = 13
_ADDR_MASK = 0x1F
_T1_COUNT_MASK = 0x7FF
_T2_COUNT_MASK = 0x07FFFFFF


@dataclass(frozen=True)
class PacketHeader:
    """Decoded view of a configuration packet header word."""

    packet_type: int
    opcode: int
    register_addr: int  # meaningful for type 1 only
    word_count: int

    @property
    def is_noop(self) -> bool:
        return self.packet_type == 1 and self.opcode == OP_NOP

    @property
    def is_write(self) -> bool:
        return self.opcode == OP_WRITE

    @property
    def is_read(self) -> bool:
        return self.opcode == OP_READ


def type1(opcode: int, register_addr: int, word_count: int) -> int:
    """Encode a type-1 packet header."""
    if opcode not in (OP_NOP, OP_READ, OP_WRITE):
        raise ValueError(f"bad opcode {opcode}")
    if not 0 <= register_addr <= _ADDR_MASK:
        raise ValueError(f"register address {register_addr} out of range")
    if not 0 <= word_count <= _T1_COUNT_MASK:
        raise ValueError(f"type-1 word count {word_count} out of range")
    return (
        (1 << _TYPE_SHIFT)
        | (opcode << _OP_SHIFT)
        | (register_addr << _ADDR_SHIFT)
        | word_count
    )


def type2(opcode: int, word_count: int) -> int:
    """Encode a type-2 packet header (target register from preceding type 1)."""
    if opcode not in (OP_NOP, OP_READ, OP_WRITE):
        raise ValueError(f"bad opcode {opcode}")
    if not 0 <= word_count <= _T2_COUNT_MASK:
        raise ValueError(f"type-2 word count {word_count} out of range")
    return (2 << _TYPE_SHIFT) | (opcode << _OP_SHIFT) | word_count


def decode_header(word: int) -> PacketHeader:
    """Decode a packet header word (raises on unknown packet types)."""
    if not 0 <= word <= 0xFFFFFFFF:
        raise ValueError(f"header word {word:#x} out of range")
    packet_type = (word >> _TYPE_SHIFT) & 0x7
    opcode = (word >> _OP_SHIFT) & 0x3
    if packet_type == 1:
        return PacketHeader(
            packet_type=1,
            opcode=opcode,
            register_addr=(word >> _ADDR_SHIFT) & _ADDR_MASK,
            word_count=word & _T1_COUNT_MASK,
        )
    if packet_type == 2:
        return PacketHeader(
            packet_type=2,
            opcode=opcode,
            register_addr=-1,
            word_count=word & _T2_COUNT_MASK,
        )
    raise ValueError(f"unknown packet type {packet_type} in word {word:#010x}")
