"""Generator-based discrete-event simulation kernel.

The kernel is deliberately small and explicit: a time-ordered heap of
:class:`Event` objects and generator-based :class:`Process` coroutines that
yield the events they want to wait for.  It is the substrate on which every
hardware model in this repository (AXI buses, DMA, ICAP, DRAM, ...) runs.

Time is a ``float`` measured in **nanoseconds**.  Events scheduled for the
same instant fire in FIFO order (a monotonically increasing sequence number
breaks heap ties), which makes simulations fully deterministic.

Typical use::

    sim = Simulator()

    def producer(sim, chan):
        for i in range(4):
            yield sim.timeout(10.0)
            yield chan.put(i)

    def consumer(sim, chan):
        while True:
            item = yield chan.get()
            ...

    sim.process(producer(sim, chan))
    sim.process(consumer(sim, chan))
    sim.run(until=1000.0)
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from .errors import Deadlock, Interrupt, SchedulingError, SimulationError

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Simulator",
]

# Sentinel distinguishing "no value yet" from an event value of ``None``.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event goes through three states: *pending* (just created),
    *triggered* (scheduled on the heap with a value or an exception) and
    *processed* (callbacks have run).  Events may only be triggered once.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "_processed", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        #: Callables invoked with this event when it is processed.  ``None``
        #: once processed (further appends are a bug we want to surface).
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self._processed = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception (it is on the heap)."""
        return self._value is not _PENDING or self._exc is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        if self._exc is not None:
            raise self._exc
        if self._value is _PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SchedulingError(f"event {self!r} already triggered")
        self._value = value
        self.sim._enqueue(0.0, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every waiting process.
        """
        if self.triggered:
            raise SchedulingError(f"event {self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        self._exc = exc
        self._value = None
        self.sim._enqueue(0.0, self)
        return self

    # -- internals ----------------------------------------------------------
    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.__class__.__name__
        state = (
            "processed" if self._processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{label} {state} at t={self.sim.now:.3f}ns>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SchedulingError(f"negative timeout delay {delay!r}")
        # Timeouts are the hottest allocation in the kernel; skip the
        # per-instance name f-string and render the delay in __repr__.
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self.sim._enqueue(delay, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed" if self._processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<timeout({self.delay:g}) {state} at t={self.sim.now:.3f}ns>"


class _Resume:
    """Lightweight heap entry: resume a process from an already-processed event.

    Yielding an event that has already fired must resume the process at the
    *same* timestamp, after everything currently scheduled there (FIFO).
    Allocating a full replay :class:`Event` for that is wasteful — this
    carries just the captured value/exception and the target process.
    """

    __slots__ = ("process", "value", "exc")

    #: ``Process._deliver_interrupt`` checks ``target.callbacks is not None``
    #: before detaching a waiter; ``None`` here means there is nothing to
    #: remove — cancellation is detected in :meth:`_process` instead, via
    #: the process' ``_waiting_on`` link.
    callbacks = None

    def __init__(self, process: "Process", value: Any, exc: Optional[BaseException]):
        self.process = process
        self.value = value
        self.exc = exc

    def _process(self) -> None:
        process = self.process
        if process._waiting_on is not self:
            # The process was interrupted (or re-targeted) while this entry
            # sat on the heap; the resume is stale.
            return
        process._waiting_on = None
        if self.exc is not None:
            process._step(throw=self.exc)
        else:
            process._step(send=self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<resume:{self.process.name}>"


class Process(Event):
    """A running coroutine.  Also an event that fires when the coroutine ends.

    The wrapped generator yields :class:`Event` instances; the process is
    resumed with the event's value (or the event's exception is thrown into
    the generator).  The generator's return value becomes this event's value.
    """

    __slots__ = ("_generator", "_waiting_on", "_interrupts", "daemon")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator,
        name: str = "",
        daemon: bool = False,
    ):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        self._generator = generator
        #: The Event (or _Resume entry) this process is currently waiting on.
        self._waiting_on: Optional[Any] = None
        self._interrupts: List[Interrupt] = []
        #: Daemon processes (infinite hardware server loops) do not count
        #: toward deadlock detection: a run that leaves only daemons
        #: waiting has simply finished its workload.
        self.daemon = daemon
        # Kick off the process at the current simulation time.
        bootstrap = Event(sim, name=f"bootstrap:{self.name}")
        bootstrap.callbacks.append(self._resume)
        bootstrap._value = None
        sim._enqueue(0.0, bootstrap)
        sim.processes_spawned += 1
        if not daemon:
            sim._live_processes += 1

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def _process(self) -> None:
        had_waiters = bool(self.callbacks)
        super()._process()
        if self._exc is not None and not had_waiters:
            # A process died with an exception and nobody was waiting on it.
            # Surface the failure instead of letting it vanish.
            self.sim._unhandled.append(self)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the event it was waiting on.
        """
        if self.triggered:
            raise SchedulingError(f"cannot interrupt finished process {self!r}")
        interrupt = Interrupt(cause)
        self._interrupts.append(interrupt)
        poke = Event(self.sim, name=f"interrupt:{self.name}")
        poke.callbacks.append(self._deliver_interrupt)
        poke._value = None
        self.sim._enqueue(0.0, poke)

    # -- internals ----------------------------------------------------------
    def _deliver_interrupt(self, _poke: Event) -> None:
        if self.triggered or not self._interrupts:
            return
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self._step(throw=self._interrupts.pop(0))

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._exc is not None:
            self._step(throw=event._exc)
        else:
            self._step(send=event._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        sim = self.sim
        sim._active_process, previous = self, sim._active_process
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            if not self.daemon:
                sim._live_processes -= 1
            self._value = stop.value
            sim._enqueue(0.0, self)
            return
        except Interrupt as interrupt:
            # An un-caught interrupt terminates the process with its cause.
            if not self.daemon:
                sim._live_processes -= 1
            self._value = interrupt.cause
            sim._enqueue(0.0, self)
            return
        except BaseException as exc:
            if not self.daemon:
                sim._live_processes -= 1
            self._exc = exc
            self._value = None
            sim._enqueue(0.0, self)
            if not isinstance(exc, Exception):  # pragma: no cover
                raise
            return
        finally:
            sim._active_process = previous

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                f"yield Event instances"
            )
        if target.sim is not sim:
            raise SimulationError(
                f"process {self.name!r} yielded an event from a different "
                f"simulator"
            )
        if target._processed:
            # The event already fired; resume immediately (same timestamp)
            # via a lightweight heap entry instead of a replay Event.
            resume = _Resume(self, target._value, target._exc)
            sim._enqueue(0.0, resume)
            self._waiting_on = resume
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Condition(Event):
    """Base class for composite wait conditions (:class:`AllOf`/:class:`AnyOf`)."""

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self.events: Tuple[Event, ...] = tuple(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed({})
            return
        for event in self.events:
            if event._processed:
                self._on_child(event)
                if self.triggered:
                    break
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict:
        # ``_processed`` (not ``triggered``) is the "has fired" notion here:
        # a Timeout carries its value from creation, so it is "triggered"
        # long before its scheduled time arrives.
        return {
            event: event._value
            for event in self.events
            if event._processed and event._exc is None
        }


class AllOf(Condition):
    """Fires when every child event has fired; value maps event -> value."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="all_of")

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires as soon as any child event fires; value maps event -> value."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="any_of")

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self.succeed(self._collect())


class Simulator:
    """The event loop: a time-ordered heap of triggered events.

    ``now`` is the current simulation time in nanoseconds.  All model
    components hold a reference to a shared ``Simulator``.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        # Heap entries hold Events or lightweight _Resume records; the
        # sequence number breaks ties so entries are never compared.
        self._heap: List[Tuple[float, int, Any]] = []
        self._sequence = 0
        self._live_processes = 0
        self._active_process: Optional[Process] = None
        self._running = False
        self._unhandled: List[Process] = []
        #: Every process that died unobserved, kept for post-mortem
        #: inspection even after :meth:`step` raised the first failure.
        self.unhandled_failures: List[Process] = []
        #: Execution statistics (exported by the observability layer).
        self.events_processed = 0
        self.heap_high_water = 0
        self.processes_spawned = 0
        #: Optional :class:`~repro.verify.InvariantMonitor` probing every
        #: step (time monotonicity, single-fire).  ``None`` costs one
        #: identity check per event.
        self.monitor = None

    # -- time ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def now_us(self) -> float:
        """Current simulation time in microseconds."""
        return self._now / 1e3

    @property
    def now_s(self) -> float:
        """Current simulation time in seconds."""
        return self._now / 1e9

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event construction ---------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator, name: str = "", daemon: bool = False
    ) -> Process:
        """Register ``generator`` as a new process starting now.

        ``daemon=True`` marks an infinite server loop (a hardware block
        waiting for requests): it is excluded from deadlock detection.
        """
        return Process(self, generator, name=name, daemon=daemon)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when every one of ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, delay: float, event: Any) -> None:
        if delay < 0:
            raise SchedulingError(f"cannot schedule {delay!r} ns in the past")
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, self._sequence, event))
        if len(self._heap) > self.heap_high_water:
            self.heap_high_water = len(self._heap)

    # -- execution -------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event on the heap."""
        if not self._heap:
            raise Deadlock(self._live_processes)
        when, _seq, event = heapq.heappop(self._heap)
        if self.monitor is not None:
            self.monitor.on_kernel_event(self, when, event)
        if when < self._now:  # pragma: no cover - guarded by _enqueue
            raise SimulationError("time ran backwards")
        self._now = when
        self.events_processed += 1
        event._process()
        if self._unhandled:
            self._raise_unhandled()

    def _raise_unhandled(self) -> None:
        # One event can cascade into several unobserved process deaths
        # (e.g. a failing event with multiple waiters at the same
        # timestamp).  Sibling casualties are separate Process events
        # still sitting on the heap at this same timestamp — collect
        # them too, then raise the first but keep every casualty
        # inspectable instead of silently dropping the rest.
        same_time = []
        while self._heap and self._heap[0][0] == self._now:
            same_time.append(heapq.heappop(self._heap))
        for item in same_time:
            sibling = item[2]
            if (
                isinstance(sibling, Process)
                and sibling._exc is not None
                and not sibling.callbacks
            ):
                self.events_processed += 1
                sibling._process()
            else:
                heapq.heappush(self._heap, item)
        self.unhandled_failures.extend(self._unhandled)
        first = self._unhandled[0]
        self._unhandled.clear()
        raise first._exc

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or ``until`` (absolute ns) is reached.

        Draining the heap with processes still waiting raises
        :class:`Deadlock` — silence would hide lost wakeups.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            if self.monitor is None:
                # Batch dispatch: with no monitor attached (the compiled-out
                # probe configuration, same contract as ``telemetry=False``)
                # the per-event ``step()`` call collapses into a locals-bound
                # loop that drains every event sharing a timestamp in one
                # heap inspection.  Semantics — event order, processed
                # counts, the unhandled-failure cascade, ``until`` boundary
                # handling — are identical to repeated ``step()`` calls.
                heap = self._heap
                pop = heapq.heappop
                while heap:
                    when = heap[0][0]
                    if until is not None and when > until:
                        self._now = until
                        return
                    self._now = when
                    while heap and heap[0][0] == when:
                        event = pop(heap)[2]
                        self.events_processed += 1
                        event._process()
                        if self._unhandled:
                            self._raise_unhandled()
            else:
                while self._heap:
                    if until is not None and self._heap[0][0] > until:
                        self._now = until
                        return
                    self.step()
            # A bounded run may legitimately drain the heap while processes
            # wait on external stimulus (the caller pokes the model and runs
            # again); only an unbounded run can never wake them.
            if until is None and self._live_processes > 0:
                raise Deadlock(self._live_processes)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until(self, event: Event) -> Any:
        """Run until ``event`` fires; returns its value (or raises)."""
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        # Register as an observer so a failing process does not ALSO land
        # in the unhandled-failure list (its exception is delivered to the
        # caller through ``event.value`` below).
        if event.callbacks is not None:
            event.callbacks.append(lambda _event: None)
        self._running = True
        try:
            if self.monitor is None:
                # Same batch fast path as :meth:`run`; the target-event
                # check stays per dispatched event so the loop stops at
                # exactly the same point as repeated ``step()`` calls
                # (later same-timestamp events remain on the heap).
                heap = self._heap
                pop = heapq.heappop
                while not event.triggered:
                    if not heap:
                        raise Deadlock(self._live_processes)
                    when = heap[0][0]
                    self._now = when
                    while heap and heap[0][0] == when:
                        dispatched = pop(heap)[2]
                        self.events_processed += 1
                        dispatched._process()
                        if self._unhandled:
                            self._raise_unhandled()
                        if event.triggered:
                            break
            else:
                while not event.triggered:
                    if not self._heap:
                        raise Deadlock(self._live_processes)
                    self.step()
            # Drain remaining same-timestamp bookkeeping for determinism of
            # repeated run_until calls.
            return event.value
        finally:
            self._running = False
