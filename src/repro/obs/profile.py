"""Deterministic sim-time profiler over recorded span trees.

Everything in this module post-processes *already recorded* telemetry —
structured ``kind="span"`` trace records (see
:class:`~repro.obs.spans.SpanRecorder`) — into the three views a latency
investigation needs:

* **hierarchical attribution** (:func:`attribute_spans`): for every span
  path, how much simulation time was spent in total and how much was
  *self* time (total minus the time covered by child spans);
* **flame tables** (:func:`format_flame_table`): the attribution rendered
  as an indented, percentage-annotated table — a text flame graph;
* **critical-path extraction** (:func:`attribute_devices` /
  :func:`critical_path`): which *device* bounded each reconfiguration.

The critical-path algorithm walks the firmware's span tree — the
firmware sequence is the spine of the DES event graph during a
reconfiguration, and each phase blocks on exactly one device chain — and
maps every phase onto the device that bounds it.  The one phase with two
possible masters, ``dma_transfer``, is split using the stream's
backpressure accounting: simulation time the DMA spent stalled on a full
DMA→ICAP FIFO is time the *consumer* (the ICAP write port) was the
bottleneck; the remainder is bounded by the memory-fetch side (DMA
engine + DRAM path).  The device with the largest attributed share of
the reconfiguration is the critical path, published as
``ReconfigResult.critical_path``.

Like the rest of :mod:`repro.obs`, this module is free of simulator
imports: it consumes plain records and returns plain data, so it runs
identically in-process, in sweep workers, and over deserialised
campaign artifacts.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "PHASE_DEVICE",
    "SpanStat",
    "attribute_devices",
    "attribute_spans",
    "critical_path",
    "format_flame_table",
    "span_records",
]

#: Which device bounds each firmware phase.  ``dma_transfer`` is split
#: between ``dma`` (memory fetch + burst issue) and ``icap`` (write-port
#: drain) by the stream's backpressure accounting; the mapping here is
#: the remainder's owner.
PHASE_DEVICE: Dict[str, str] = {
    "clock_lock": "clock_wizard",
    "driver_setup": "cpu",
    "dma_transfer": "dma",
    "fault_abort": "dma",
    "icap_drain": "icap",
    "scrub": "scrubber",
}


# ---------------------------------------------------------------------------
# Span extraction + hierarchical attribution
# ---------------------------------------------------------------------------


def span_records(tracer, source: Optional[str] = None) -> List[Mapping[str, Any]]:
    """The structured payloads of every completed span a tracer retained.

    Returns the ``fields`` mappings of ``kind="span"`` records (each
    carries ``span`` path, ``begin_ns``, ``end_ns``, ``duration_us``).
    """
    return [
        record.fields
        for record in tracer.filter(kind="span", source=source)
        if record.fields is not None and "span" in record.fields
    ]


class SpanStat:
    """Aggregated statistics of one span path."""

    __slots__ = ("path", "count", "total_us", "child_us")

    def __init__(self, path: str):
        self.path = path
        self.count = 0
        self.total_us = 0.0
        self.child_us = 0.0

    @property
    def depth(self) -> int:
        return self.path.count("/")

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    @property
    def self_us(self) -> float:
        return max(0.0, self.total_us - self.child_us)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "count": self.count,
            "total_us": round(self.total_us, 3),
            "self_us": round(self.self_us, 3),
        }


def attribute_spans(records: Iterable[Mapping[str, Any]]) -> List[SpanStat]:
    """Fold span records into per-path total/self attribution.

    ``records`` are the ``fields`` payloads from :func:`span_records`
    (or any mapping with ``span`` and ``duration_us``).  Repeated paths
    accumulate — a campaign of N reconfigurations produces one row per
    phase, not N.  Rows come back in depth-first path order.
    """
    stats: Dict[str, SpanStat] = {}
    for record in records:
        path = str(record["span"])
        duration = float(record.get("duration_us") or 0.0)
        stat = stats.get(path)
        if stat is None:
            stat = stats[path] = SpanStat(path)
        stat.count += 1
        stat.total_us += duration
        parent_path = path.rsplit("/", 1)[0] if "/" in path else None
        if parent_path is not None:
            parent = stats.get(parent_path)
            if parent is None:
                parent = stats[parent_path] = SpanStat(parent_path)
            parent.child_us += duration
    return [stats[path] for path in sorted(stats)]


def format_flame_table(
    stats: List[SpanStat], title: str = "sim-time profile"
) -> str:
    """Render attribution rows as an indented text flame table."""
    if not stats:
        return f"{title}: no spans recorded"
    roots_total = sum(s.total_us for s in stats if s.depth == 0) or 1.0
    width = max(len("  " * s.depth + s.name) for s in stats)
    lines = [
        title,
        "-" * len(title),
        f"{'span':<{width}}  {'count':>6}  {'total_us':>12}  "
        f"{'self_us':>12}  {'total%':>7}",
    ]
    for stat in stats:
        label = "  " * stat.depth + stat.name
        lines.append(
            f"{label:<{width}}  {stat.count:>6}  {stat.total_us:>12.1f}  "
            f"{stat.self_us:>12.1f}  {100.0 * stat.total_us / roots_total:>6.1f}%"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Critical path
# ---------------------------------------------------------------------------


def attribute_devices(
    phase_us: Mapping[str, float], fifo_stall_us: float = 0.0
) -> Dict[str, float]:
    """Per-device share of one reconfiguration's phases, in µs.

    ``phase_us`` is a :class:`~repro.core.ReconfigResult` phase
    breakdown; ``fifo_stall_us`` is the simulation time the DMA spent
    blocked on a full DMA→ICAP FIFO during the transfer (the consumer
    was the bottleneck for exactly that long).
    """
    out: Dict[str, float] = {}
    for phase, duration in phase_us.items():
        device = PHASE_DEVICE.get(phase, phase)
        share = float(duration)
        if phase == "dma_transfer":
            stall = min(max(0.0, float(fifo_stall_us)), share)
            if stall > 0.0:
                out["icap"] = out.get("icap", 0.0) + stall
                share -= stall
        out[device] = out.get(device, 0.0) + share
    return out


def critical_path(
    phase_us: Mapping[str, float], fifo_stall_us: float = 0.0
) -> Optional[str]:
    """Name the device that owned the largest share of a reconfiguration.

    Ties break alphabetically so the answer is deterministic.
    """
    devices = attribute_devices(phase_us, fifo_stall_us)
    if not devices:
        return None
    return max(sorted(devices), key=lambda name: devices[name])


def phase_table(
    results: Iterable, phases: Tuple[str, ...] = ()
) -> List[Dict[str, Any]]:
    """Per-result phase rows (µs) for campaign reports.

    ``results`` may be :class:`~repro.core.ReconfigResult` objects or
    plain mappings with ``phase_us`` / ``critical_path`` keys.
    """
    rows: List[Dict[str, Any]] = []
    for result in results:
        if isinstance(result, Mapping):
            phase_us = dict(result.get("phase_us") or {})
            critical = result.get("critical_path")
        else:
            phase_us = dict(getattr(result, "phase_us", {}) or {})
            critical = getattr(result, "critical_path", None)
        row: Dict[str, Any] = {
            name: round(phase_us.get(name, 0.0), 3)
            for name in (phases or sorted(phase_us))
        }
        row["critical_path"] = critical
        rows.append(row)
    return rows
