"""Integration tests: DRAM -> interconnect -> DMA -> stream -> ICAP."""

import pytest

from repro.axi import AxiHpPort, AxiInterconnect, AxiStream
from repro.bitstream import BitstreamBuilder, make_z7020_layout
from repro.dma import (
    AxiDmaEngine,
    DMACR_IOC_IRQ_EN,
    DMACR_RESET,
    DMACR_RS,
    DMASR_IOC_IRQ,
    MM2S_DMACR,
    MM2S_DMASR,
    MM2S_LENGTH,
    MM2S_SA,
)
from repro.dram import DramController, DramDevice
from repro.fabric import ConfigMemory, FirFilterAsp, encode_asp_frames
from repro.icap import IcapController
from repro.sim import ClockDomain, Simulator


class TransferRig:
    """The Fig. 2 transfer path, standalone."""

    def __init__(self, freq_mhz=100.0):
        self.sim = Simulator()
        self.layout = make_z7020_layout()
        self.memory = ConfigMemory(self.layout)
        self.dram = DramDevice()
        controller = DramController(self.sim, self.dram)
        interconnect = AxiInterconnect(self.sim, controller)
        self.port = AxiHpPort(self.sim, interconnect)
        self.clock = ClockDomain(self.sim, freq_mhz)
        self.stream = AxiStream(self.sim, fifo_words=1024)
        self.dma = AxiDmaEngine(self.sim, self.clock, self.port, self.stream)
        self.icap = IcapController(self.sim, self.clock, self.memory, self.stream)

    def load(self, region="RP1", asp=None):
        builder = BitstreamBuilder(self.layout)
        frames = encode_asp_frames(
            self.layout.region_frame_count(region), asp or FirFilterAsp([2, 1])
        )
        bitstream = builder.build_partial(region, frames)
        self.dram.store(0x1000, bitstream.to_bytes())
        return bitstream, frames

    def start(self, size):
        self.dma.reg_write(MM2S_DMACR, DMACR_RS | DMACR_IOC_IRQ_EN)
        self.dma.reg_write(MM2S_SA, 0x1000)
        self.dma.reg_write(MM2S_LENGTH, size)


def test_end_to_end_transfer_configures_region():
    rig = TransferRig()
    bitstream, frames = rig.load("RP1")
    rig.icap.begin_transfer()
    rig.start(bitstream.size_bytes)
    irq = rig.dma.ioc_irq.wait_assert()
    rig.sim.run_until(irq)
    assert rig.memory.region_frames("RP1") == frames
    assert rig.icap.port.desynced
    assert not rig.icap.port.has_error


def test_throughput_at_nominal_frequency():
    """At 100 MHz the path must deliver ~399 MB/s (Table I row 1)."""
    rig = TransferRig(freq_mhz=100.0)
    bitstream, _ = rig.load()
    rig.icap.begin_transfer()
    start = rig.sim.now
    rig.start(bitstream.size_bytes)
    rig.sim.run_until(rig.dma.ioc_irq.wait_assert())
    throughput = bitstream.size_bytes / (rig.sim.now - start) * 1e3  # MB/s
    assert throughput == pytest.approx(399.0, rel=0.01)


def test_throughput_saturates_at_high_frequency():
    """At 280 MHz the memory path caps throughput near 790 MB/s."""
    rig = TransferRig(freq_mhz=280.0)
    bitstream, _ = rig.load()
    rig.icap.begin_transfer()
    start = rig.sim.now
    rig.start(bitstream.size_bytes)
    rig.sim.run_until(rig.dma.ioc_irq.wait_assert())
    throughput = bitstream.size_bytes / (rig.sim.now - start) * 1e3
    assert 770.0 < throughput < 810.0


def test_word_corruptor_breaks_load():
    rig = TransferRig()
    bitstream, frames = rig.load("RP2")
    rig.icap.word_corruptor = lambda words: [w ^ 0x1 for w in words]
    rig.icap.begin_transfer()
    rig.start(bitstream.size_bytes)
    rig.sim.run_until(rig.dma.ioc_irq.wait_assert())
    assert rig.memory.region_frames("RP2") != frames


def test_suppressed_irq_never_fires():
    rig = TransferRig()
    bitstream, frames = rig.load("RP1")
    rig.dma.suppress_completion_irq = True
    rig.icap.begin_transfer()
    rig.start(bitstream.size_bytes)
    rig.sim.run(until=5e6)  # 5 ms — far beyond the transfer
    assert rig.dma.ioc_irq.assert_count == 0
    # ... but the data still landed (the paper's 310 MHz regime).
    assert rig.memory.region_frames("RP1") == frames


def test_dma_register_interface():
    rig = TransferRig()
    rig.dma.reg_write(MM2S_DMACR, DMACR_RS)
    assert rig.dma.running
    rig.dma.reg_write(MM2S_SA, 0xABC0)
    assert rig.dma.reg_read(MM2S_SA) == 0xABC0
    rig.dma.reg_write(MM2S_DMACR, DMACR_RESET)
    assert not rig.dma.running
    with pytest.raises(ValueError):
        rig.dma.reg_write(0x99, 1)
    with pytest.raises(ValueError):
        rig.dma.reg_read(0x99)


def test_length_write_while_halted_rejected():
    rig = TransferRig()
    rig.dma.reg_write(MM2S_DMACR, DMACR_RESET)
    with pytest.raises(RuntimeError, match="halted"):
        rig.dma.reg_write(MM2S_LENGTH, 1024)


def test_irq_ack_clears_status():
    rig = TransferRig()
    bitstream, _ = rig.load()
    rig.icap.begin_transfer()
    rig.start(bitstream.size_bytes)
    rig.sim.run_until(rig.dma.ioc_irq.wait_assert())
    assert rig.dma.reg_read(MM2S_DMASR) & DMASR_IOC_IRQ
    rig.dma.reg_write(MM2S_DMASR, DMASR_IOC_IRQ)
    assert not rig.dma.reg_read(MM2S_DMASR) & DMASR_IOC_IRQ
    assert not rig.dma.ioc_irq.asserted


def test_short_unaligned_tail_burst():
    """A transfer that is not a multiple of the burst size completes."""
    rig = TransferRig()
    rig.dram.store(0x1000, bytes(range(256)) * 9)  # 2304 B = 2.25 bursts
    rig.start(2304)
    rig.sim.run_until(rig.dma.ioc_irq.wait_assert())
    assert rig.dma.bytes_moved == 2304
