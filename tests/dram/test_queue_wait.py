"""Regression tests for DRAM queue-wait accounting.

``MemoryRequest.submitted_ns`` used to be stamped and never read — the
time a request spent queued behind other masters was invisible.  Both
controllers now publish it: the interval from submission to the start
of service accumulates into ``queue_wait_ns`` (and the
``<name>.queue_wait_ns`` metric plus the per-master ledgers).  A solo
closed-loop master never waits; two contending masters must.
"""

import pytest

from repro.dram import BankDramController, DramController, DramDevice
from repro.sim import Simulator


def _drive_masters(controller, sim, masters, bursts=8, size=1024):
    def master(sim, name):
        for index in range(bursts):
            yield controller.read(index * size, size, master=name)

    for name in masters:
        sim.process(master(sim, name))
    sim.run()


@pytest.mark.parametrize("make", [DramController, BankDramController])
def test_solo_master_never_queue_waits(make):
    sim = Simulator()
    controller = make(sim, DramDevice())
    _drive_masters(controller, sim, ["solo"])
    assert controller.queue_wait_ns == 0.0
    assert controller.masters["solo"].wait_ns == 0.0


@pytest.mark.parametrize("make", [DramController, BankDramController])
def test_contended_masters_accumulate_nonzero_queue_wait(make):
    sim = Simulator()
    controller = make(sim, DramDevice())
    _drive_masters(controller, sim, ["a", "b"])
    # Both masters submit at t=0 every round: the loser of each round
    # waits out the winner's full service time.
    assert controller.queue_wait_ns > 0.0
    assert controller.masters["a"].wait_ns + controller.masters["b"].wait_ns == \
        pytest.approx(controller.queue_wait_ns)
    name = controller.name
    metric = controller.metrics.to_dict()[f"{name}.queue_wait_ns"]
    assert metric["value"] == pytest.approx(controller.queue_wait_ns)


@pytest.mark.parametrize("make", [DramController, BankDramController])
def test_queue_wait_scales_with_contention(make):
    def total_wait(master_count):
        sim = Simulator()
        controller = make(sim, DramDevice())
        _drive_masters(controller, sim, [f"m{i}" for i in range(master_count)])
        return controller.queue_wait_ns

    assert total_wait(1) == 0.0
    assert 0.0 < total_wait(2) < total_wait(4)


def test_system_probe_exposes_queue_wait():
    from repro.core import PdrSystem

    system = PdrSystem()
    snapshot = system.metrics.to_dict()
    assert "ddrc.queue_wait_ns" in snapshot
