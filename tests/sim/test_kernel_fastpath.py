"""Edge cases of the kernel fast path: already-processed resume,
run_until after Deadlock, event accounting, interrupt-vs-resume races."""

import pytest

from repro.sim import Deadlock, Interrupt, SimulationError, Simulator


def test_resume_on_already_processed_event_delivers_value():
    sim = Simulator()
    flag = sim.event()
    got = {}

    def firer(sim):
        yield sim.timeout(1.0)
        flag.succeed("payload")

    def late_waiter(sim):
        yield sim.timeout(50.0)
        got["v"] = yield flag  # fired and processed 49 ns ago

    sim.process(firer(sim))
    sim.process(late_waiter(sim))
    sim.run()
    assert got["v"] == "payload"


def test_resume_on_already_processed_event_same_timestamp():
    sim = Simulator()
    flag = sim.event()
    got = {}

    def late_waiter(sim):
        yield sim.timeout(50.0)
        got["v"] = yield flag
        got["t"] = sim.now

    def firer(sim):
        yield sim.timeout(1.0)
        flag.succeed("go")

    sim.process(late_waiter(sim))
    sim.process(firer(sim))
    sim.run()
    # The resume happens AT the waiter's current time, not later.
    assert got["v"] == "go"
    assert got["t"] == 50.0


def test_resume_on_already_failed_event_raises_into_process():
    sim = Simulator()
    flag = sim.event()
    caught = {}

    def firer(sim):
        yield sim.timeout(1.0)
        flag.fail(RuntimeError("stale failure"))

    def observer(sim):
        # Witness the failure so it does not count as unhandled.
        try:
            yield flag
        except RuntimeError:
            pass

    def late_waiter(sim):
        yield sim.timeout(50.0)
        try:
            yield flag
        except RuntimeError as exc:
            caught["exc"] = str(exc)

    sim.process(firer(sim))
    sim.process(observer(sim))
    sim.process(late_waiter(sim))
    sim.run()
    assert caught["exc"] == "stale failure"


def test_resume_on_finished_process_event():
    sim = Simulator()
    got = {}

    def child(sim):
        yield sim.timeout(1.0)
        return "early"

    def parent(sim, process):
        yield sim.timeout(50.0)
        got["v"] = yield process

    child_process = sim.process(child(sim))
    sim.process(parent(sim, child_process))
    sim.run()
    assert got["v"] == "early"


def test_interrupt_cancels_pending_resume():
    sim = Simulator()
    flag = sim.event()
    trail = []

    def firer(sim):
        yield sim.timeout(1.0)
        flag.succeed("stale")

    def waiter(sim):
        yield sim.timeout(50.0)
        try:
            value = yield flag  # already processed -> resume queued
        except Interrupt as interrupt:
            trail.append(f"interrupted:{interrupt.cause}")
            yield sim.timeout(5.0)
            trail.append("resumed-after")
            return
        trail.append(f"value:{value}")

    def interrupter(sim, holder):
        yield sim.timeout(50.0)
        holder["victim"].interrupt(cause="now")

    sim.process(firer(sim))
    # Spawned BEFORE the waiter, so at t=50 the interrupter runs first and
    # its poke is enqueued ahead of the resume the waiter queues when it
    # reaches ``yield flag``.  The interrupt detaches the waiter, and the
    # stale resume left on the heap must NOT re-deliver "stale" into the
    # re-yielded timeout.
    holder = {}
    sim.process(interrupter(sim, holder))
    holder["victim"] = sim.process(waiter(sim))
    sim.run()
    assert trail == ["interrupted:now", "resumed-after"]
    assert sim.now == 55.0


def test_resume_enqueued_first_beats_interrupt():
    # Mirror ordering: the waiter reaches its yield (queueing the resume)
    # before the interrupter runs at the same timestamp.  FIFO order means
    # the resume legitimately wins and the interrupt lands on a finished
    # process as a no-op poke.
    sim = Simulator()
    flag = sim.event()
    trail = []

    def firer(sim):
        yield sim.timeout(1.0)
        flag.succeed("stale")

    def waiter(sim):
        yield sim.timeout(50.0)
        try:
            value = yield flag
        except Interrupt:  # pragma: no cover - must not happen
            trail.append("interrupted")
            return
        trail.append(f"value:{value}")

    def interrupter(sim, victim):
        yield sim.timeout(50.0)
        if victim.is_alive:
            victim.interrupt(cause="late")

    sim.process(firer(sim))
    victim = sim.process(waiter(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert trail == ["value:stale"]


def test_run_until_usable_after_deadlock():
    sim = Simulator()
    got = {}

    def stuck(sim, gate):
        got["v"] = yield gate

    gate = sim.event()
    sim.process(stuck(sim, gate))
    with pytest.raises(Deadlock):
        sim.run()
    # The kernel survives the deadlock: poke the model and drive it again.
    gate.succeed("released")
    done = sim.event()

    def closer(sim):
        yield sim.timeout(1.0)
        done.succeed("done")

    sim.process(closer(sim))
    assert sim.run_until(done) == "done"
    assert got["v"] == "released"


def test_events_processed_counts_resume_entries():
    sim = Simulator()
    flag = sim.event()

    def firer(sim):
        yield sim.timeout(1.0)
        flag.succeed()

    def late_waiter(sim):
        yield sim.timeout(2.0)
        yield flag

    sim.process(firer(sim))
    sim.process(late_waiter(sim))
    sim.run()
    # 2 bootstraps + 2 timeouts + flag + 1 resume + 2 process-end events.
    assert sim.events_processed == 8


def test_timeout_repr_shows_delay():
    sim = Simulator()
    timeout = sim.timeout(12.5)
    assert "timeout(12.5)" in repr(timeout)
    assert timeout.name == ""


def test_yield_non_event_still_rejected():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()
