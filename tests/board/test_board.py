"""Tests for the ZedBoard peripherals."""

import pytest

from repro.board import (
    DEFAULT_FREQUENCY_TABLE,
    OledDisplay,
    PushButtons,
    SdCard,
    SwitchBank,
)
from repro.sim import Simulator


# ---------------------------------------------------------------- switches --
def test_switch_codes():
    bank = SwitchBank()
    bank.set_code(0b0000_0101)
    assert bank.read_code() == 5
    bank.set_switch(1, True)
    assert bank.read_code() == 7


def test_switch_validation():
    bank = SwitchBank()
    with pytest.raises(IndexError):
        bank.set_switch(8, True)
    with pytest.raises(ValueError):
        bank.set_code(256)


def test_frequency_table_selection():
    bank = SwitchBank()
    for code, freq in DEFAULT_FREQUENCY_TABLE.items():
        bank.set_code(code)
        assert bank.selected_frequency_mhz() == freq
    bank.set_code(200)  # unmapped code falls back to nominal
    assert bank.selected_frequency_mhz() == 100.0


# ----------------------------------------------------------------- buttons --
def test_button_press_fires_handlers():
    buttons = PushButtons()
    hits = []
    buttons.on_press("BTNC", lambda: hits.append("c"))
    buttons.on_press("BTNC", lambda: hits.append("c2"))
    buttons.press("BTNC")
    assert hits == ["c", "c2"]
    assert buttons.press_counts["BTNC"] == 1


def test_unknown_button_rejected():
    buttons = PushButtons()
    with pytest.raises(KeyError):
        buttons.press("NOPE")
    with pytest.raises(KeyError):
        buttons.on_press("NOPE", lambda: None)


# -------------------------------------------------------------------- OLED --
def test_oled_write_and_snapshot():
    oled = OledDisplay()
    oled.write_line(0, "FREQ 200.0 MHz")
    oled.write_line(3, "CRC valid")
    assert oled.line(0) == "FREQ 200.0 MHz"
    assert oled.snapshot()[3] == "CRC valid"
    assert oled.updates == 2


def test_oled_truncates_long_lines():
    oled = OledDisplay()
    oled.write_line(1, "x" * 100)
    assert len(oled.line(1)) == OledDisplay.COLUMNS


def test_oled_bounds():
    oled = OledDisplay()
    with pytest.raises(IndexError):
        oled.write_line(4, "no")
    with pytest.raises(IndexError):
        oled.line(-1)


def test_oled_render_frame():
    oled = OledDisplay()
    oled.write_line(0, "hello")
    rendered = oled.render()
    assert "hello" in rendered
    assert rendered.count("+") == 4  # four frame corners
    oled.clear()
    assert oled.line(0) == ""


# ----------------------------------------------------------------- SD card --
def test_sd_store_and_list():
    sim = Simulator()
    card = SdCard(sim)
    card.store_file("rp1_fir.bin", b"\x01\x02")
    card.store_file("rp1_aes.bin", b"\x03")
    assert card.list_files() == ["rp1_aes.bin", "rp1_fir.bin"]
    assert card.file_size("rp1_fir.bin") == 2
    with pytest.raises(ValueError):
        card.store_file("", b"")


def test_sd_read_is_timed():
    sim = Simulator()
    card = SdCard(sim)
    payload = bytes(1_000_000)
    card.store_file("big.bin", payload)
    got = {}

    def reader(sim):
        got["data"] = yield card.read_file("big.bin")
        got["time"] = sim.now

    sim.process(reader(sim))
    sim.run()
    assert got["data"] == payload
    # ~50 ms at 20 MB/s plus access latency.
    assert got["time"] == pytest.approx(50e6 + SdCard.ACCESS_LATENCY_NS, rel=0.01)
    assert card.bytes_read == len(payload)


def test_sd_missing_file():
    sim = Simulator()
    card = SdCard(sim)
    with pytest.raises(FileNotFoundError):
        card.read_file("ghost.bin")
