"""Configuration read-back helpers.

The CRC scrubber (:mod:`repro.crccheck`) and verification tools read frames
back out of the configuration memory.  These helpers compute reference
CRCs over regions so corruption anywhere in a partition is detectable.
"""

from __future__ import annotations

from typing import Dict, List

from ..bitstream.crc import crc32c_words
from .config_memory import ConfigMemory

__all__ = ["region_readback_words", "region_crc", "golden_region_crcs"]


def region_readback_words(memory: ConfigMemory, region_name: str) -> List[int]:
    """All words of a region in read-back (frame-address) order."""
    return memory.region_words(region_name)


def region_crc(memory: ConfigMemory, region_name: str) -> int:
    """CRC-32C over a region's current frame contents."""
    return crc32c_words(region_readback_words(memory, region_name))


def golden_region_crcs(memory: ConfigMemory) -> Dict[str, int]:
    """Reference CRC of every region at the current instant."""
    return {
        name: region_crc(memory, name) for name, _spec in memory.layout.iter_regions()
    }
