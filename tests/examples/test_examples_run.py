"""Smoke tests: every shipped example must run clean and say what it
claims.  These guard the examples against API drift."""

import contextlib
import io
import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    """Execute an example's main() and capture stdout."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return buffer.getvalue()


def test_examples_directory_contents():
    names = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart.py" in names
    assert len(names) >= 5


def test_quickstart():
    out = run_example("quickstart.py")
    assert "speedup" in out
    assert "69c4e0d8" in out  # FIPS-197 ciphertext word
    assert "CRC  valid" in out  # OLED line


def test_asp_switching():
    out = run_example("asp_switching.py")
    assert "100 MHz" in out and "200 MHz" in out
    assert "saves" in out
    assert "anatomy of a miss" in out


def test_temperature_stress():
    out = run_example("temperature_stress.py")
    assert out.count("FAIL") == 1  # only 310 MHz @ 100 C
    assert "steady state" in out


def test_board_demo():
    out = run_example("board_demo.py")
    assert "booting from SD card" in out
    assert "all CRC-valid: True" in out
    assert "280" in out


def test_proposed_sram_pr():
    out = run_example("proposed_sram_pr.py")
    assert "1237" in out
    assert "hidden" in out


def test_governed_overclocking():
    out = run_example("governed_overclocking.py")
    assert "clamps applied: 5" in out
    assert "NOT VALID" in out  # the ungoverned control run
    assert out.count("valid") >= 5
