"""DDR3 SDRAM device timing model.

Models the Zynq PS DDR3 (32-bit DDR3-1066): a peak data rate of
~4 264 MB/s and bank/row state, so sequential bursts mostly hit open rows
while scattered accesses pay the activate+precharge penalty.  Latencies
are lumped end-to-end values as seen from the DDR controller port (they
include controller queuing), calibrated so the full HP-port path matches
the paper's measured memory-side bandwidth (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["DdrTiming", "DramDevice"]


@dataclass(frozen=True)
class DdrTiming:
    """Lumped DDR timing parameters (ns unless noted)."""

    #: Peak data rate in bytes/ns (32-bit DDR3-1066 = 4.264 GB/s).
    peak_bytes_per_ns: float = 4.264
    #: End-to-end access latency when the target row is already open.
    row_hit_ns: float = 202.0
    #: Access latency when a new row must be activated.
    row_miss_ns: float = 302.0
    #: Bytes per DRAM row (page size x device width).
    row_bytes: int = 8192
    #: Number of banks (rows stay open per bank).
    banks: int = 8
    #: Refresh: one row refresh every tREFI, stalling the device.
    refresh_interval_ns: float = 7800.0
    refresh_stall_ns: float = 160.0


class DramDevice:
    """Bank/row state + a backing byte store.

    The device is passive: :class:`~repro.dram.controller.DramController`
    drives :meth:`access_latency_ns` for timing and the load/store methods
    for data.  Storage is sparse (dict of 4 KiB pages) because the Zynq's
    512 MB DRAM is mostly untouched in any one experiment.
    """

    _PAGE = 4096

    def __init__(self, size_bytes: int = 512 * 1024 * 1024, timing: DdrTiming = DdrTiming()):
        if size_bytes <= 0:
            raise ValueError("DRAM size must be positive")
        self.size_bytes = size_bytes
        self.timing = timing
        self._open_rows: Dict[int, int] = {}  # bank -> open row index
        self._pages: Dict[int, bytearray] = {}
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0

    # -- timing -------------------------------------------------------------
    def access_latency_ns(self, addr: int, size: int) -> float:
        """Access latency for a burst at ``addr`` (updates row state)."""
        self._bounds(addr, size)
        row = addr // self.timing.row_bytes
        bank = row % self.timing.banks
        if self._open_rows.get(bank) == row:
            self.row_hits += 1
            return self.timing.row_hit_ns
        self._open_rows[bank] = row
        self.row_misses += 1
        return self.timing.row_miss_ns

    # -- bank machine -------------------------------------------------------
    def bank_of(self, addr: int) -> int:
        return (addr // self.timing.row_bytes) % self.timing.banks

    def row_of(self, addr: int) -> int:
        return addr // self.timing.row_bytes

    def bank_access(
        self, addr: int, size: int, policy: str = "open"
    ) -> Tuple[str, int, int, Optional[int]]:
        """Classify one burst against per-bank row state (mutating it).

        Returns ``(outcome, bank, row, open_row_before)`` where outcome is
        ``"hit"`` (row already open), ``"miss"`` (bank idle — ACTIVATE
        only) or ``"conflict"`` (a different row was open — PRECHARGE then
        ACTIVATE).  Under the closed-page policy every access auto-
        precharges, so no row is ever left open and every access is a
        miss.  The bank-aware controller derives latency from the outcome;
        this method owns the state so snapshot fork/restore carries
        bank/row history with the device.
        """
        self._bounds(addr, size)
        row = addr // self.timing.row_bytes
        bank = row % self.timing.banks
        open_before = self._open_rows.get(bank)
        if policy == "closed":
            self.row_misses += 1
            self._open_rows.pop(bank, None)
            return "miss", bank, row, open_before
        if open_before == row:
            self.row_hits += 1
            return "hit", bank, row, open_before
        self._open_rows[bank] = row
        if open_before is None:
            self.row_misses += 1
            return "miss", bank, row, open_before
        self.row_conflicts += 1
        return "conflict", bank, row, open_before

    def open_row(self, bank: int) -> Optional[int]:
        """Currently open row in ``bank`` (None when precharged)."""
        return self._open_rows.get(bank)

    def transfer_ns(self, size: int) -> float:
        """Pure data time for ``size`` bytes at peak rate."""
        return size / self.timing.peak_bytes_per_ns

    # -- data -----------------------------------------------------------------
    def store(self, addr: int, data: bytes) -> None:
        self._bounds(addr, len(data))
        offset = 0
        while offset < len(data):
            page_index, page_offset = divmod(addr + offset, self._PAGE)
            chunk = min(self._PAGE - page_offset, len(data) - offset)
            page = self._pages.get(page_index)
            if page is None:
                page = self._pages[page_index] = bytearray(self._PAGE)
            page[page_offset : page_offset + chunk] = data[offset : offset + chunk]
            offset += chunk

    def load(self, addr: int, size: int) -> bytes:
        self._bounds(addr, size)
        out = bytearray(size)
        offset = 0
        while offset < size:
            page_index, page_offset = divmod(addr + offset, self._PAGE)
            chunk = min(self._PAGE - page_offset, size - offset)
            page = self._pages.get(page_index)
            if page is not None:
                out[offset : offset + chunk] = page[page_offset : page_offset + chunk]
            offset += chunk
        return bytes(out)

    # -- snapshot support ----------------------------------------------------
    def capture_state(self):
        """Plain-data device state for :mod:`repro.snapshot`.

        Bank/row state and the hit/miss counters are part of the state:
        a forked system must replay the same row-hit sequence (and hence
        the same access latencies) as the system it was captured from.
        """
        return (
            tuple(sorted(
                (index, bytes(page)) for index, page in self._pages.items()
            )),
            tuple(sorted(self._open_rows.items())),
            self.row_hits,
            self.row_misses,
            self.row_conflicts,
        )

    def restore_state(self, state) -> None:
        """Restore a :meth:`capture_state` result."""
        pages, open_rows, hits, misses, conflicts = state
        self._pages = {index: bytearray(page) for index, page in pages}
        self._open_rows = dict(open_rows)
        self.row_hits = hits
        self.row_misses = misses
        self.row_conflicts = conflicts

    # -- internals ----------------------------------------------------------
    def _bounds(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.size_bytes:
            raise ValueError(
                f"DRAM access [{addr:#x}, +{size}) outside device "
                f"({self.size_bytes:#x} bytes)"
            )
