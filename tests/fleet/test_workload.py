"""The open-loop workload generator: pure in the seed, well-formed."""

import pytest

from repro.fleet.workload import (
    ARRIVAL_MODES,
    FLEET_ASP_KINDS,
    FLEET_REGIONS,
    PAD_CLASSES,
    FleetRequest,
    build_workload,
)


def test_same_seed_same_stream():
    assert build_workload(7, 15.0) == build_workload(7, 15.0)
    assert build_workload(7, 15.0, "bursty") == build_workload(7, 15.0, "bursty")


def test_different_seeds_differ():
    assert build_workload(1, 15.0) != build_workload(2, 15.0)


@pytest.mark.parametrize("mode", ARRIVAL_MODES)
def test_requests_are_indexed_in_arrival_order(mode):
    requests = build_workload(3, 25.0, mode)
    assert len(requests) > 10
    assert [request.index for request in requests] == list(range(len(requests)))
    arrivals = [request.arrival_us for request in requests]
    assert arrivals == sorted(arrivals)
    assert arrivals[-1] <= 25.0 * 1e3


@pytest.mark.parametrize("mode", ARRIVAL_MODES)
def test_request_content_stays_in_palette(mode):
    for request in build_workload(11, 20.0, mode):
        assert request.region in FLEET_REGIONS
        assert request.asp_kind in FLEET_ASP_KINDS
        assert request.pad_to in PAD_CLASSES
        assert request.bitstream_key == (
            request.region,
            request.asp_kind,
            request.asp_param,
            request.pad_to,
        )


def test_hot_set_produces_duplicate_bitstreams():
    """The popularity skew must leave the scheduler something to batch."""
    requests = build_workload(1, 30.0)
    keys = [request.bitstream_key for request in requests]
    assert len(set(keys)) < len(keys)


def test_mapping_round_trip():
    request = build_workload(1, 10.0)[0]
    assert FleetRequest.from_mapping(request.to_mapping()) == request


def test_rejects_bad_arguments():
    with pytest.raises(ValueError):
        build_workload(1, 0.0)
    with pytest.raises(ValueError):
        build_workload(1, 10.0, "uniform")
    with pytest.raises(ValueError):
        build_workload(1, 10.0, rate_per_ms=0.0)
