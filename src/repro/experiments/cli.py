"""Command-line front end: regenerate any (or every) paper artifact.

Usage::

    repro-pdr all
    repro-pdr all --jobs 4                  # parallel sweep execution
    repro-pdr all --jobs 0 --cache          # auto workers + result cache
    repro-pdr table1 table2
    repro-pdr table1 --metrics-out metrics.json --trace-dump 20
    python -m repro.experiments.cli fig5

Sweep-shaped experiments run through the :mod:`repro.exec` engine:
``--jobs N`` fans independent simulation points over N worker processes
(0 = one per CPU); results merge in point order, so the report is
byte-identical to a serial run.  ``--cache [DIR]`` additionally reuses
results across invocations (content-addressed by code + parameters).
Cached or parallel points run outside this process, so per-system
telemetry (``--metrics-out`` / ``--trace-dump``) only covers systems
built in-process — run serially without ``--cache`` for full telemetry.

``--metrics-out PATH`` exports the metrics registry of every system the
selected experiments constructed (``--format`` selects JSON, OpenMetrics
text or Perfetto-loadable Chrome trace JSON); ``--trace-dump [N]``
prints the last N (default 50) trace records of each system;
``--profile`` prints a per-system sim-time flame table.

Two further subcommand-style experiments:

* ``repro-pdr report`` runs a 56-point reconfiguration campaign and
  emits the deterministic telemetry rollup (markdown to stdout, canonical
  JSON via ``--out``) — byte-identical for any ``--jobs N``;
* ``repro-pdr bench --check`` re-runs the benchmark probes and diffs
  them against the committed ``BENCH_*.json`` baselines, exiting 1 on
  regression (``--inject-scale 2.0`` self-tests the gate).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from ..exec import ResultCache, SweepRunner, default_cache_dir
from ..obs import TELEMETRY_BOOK

from . import (
    fig5,
    fig6,
    methodology,
    proposed,
    recovery,
    table1,
    table2,
    sensitivity,
    table3,
    temp_stress,
    workloads,
)

__all__ = ["main"]


def _run_table1(runner: SweepRunner) -> str:
    return table1.format_report(table1.run_table1(runner=runner))


def _run_fig5(runner: SweepRunner) -> str:
    return fig5.format_report(fig5.run_fig5(runner=runner))


def _run_fig6(runner: SweepRunner) -> str:
    return fig6.format_report(fig6.run_fig6(runner=runner))


def _run_table2(runner: SweepRunner) -> str:
    return table2.format_report(table2.run_table2(runner=runner))


def _run_temp_stress(runner: SweepRunner) -> str:
    return temp_stress.format_report(temp_stress.run_temp_stress(runner=runner))


def _run_table3(runner: SweepRunner) -> str:
    rows, sweeps = table3.run_table3_sweep(runner=runner)
    return table3.format_report(rows, sweeps)


def _run_proposed(runner: SweepRunner) -> str:
    return proposed.format_report(proposed.run_proposed())


def _run_methodology(runner: SweepRunner) -> str:
    return methodology.format_report(methodology.characterize_pdr_system())


def _run_campaign(runner: SweepRunner) -> str:
    return workloads.format_report(workloads.compare_icap_frequencies(runner=runner))


def _run_sensitivity(runner: SweepRunner) -> str:
    return sensitivity.format_report(sensitivity.run_sensitivity(runner=runner))


def _run_recovery(runner: SweepRunner) -> str:
    return recovery.format_report(recovery.run_recovery(runner=runner))


EXPERIMENTS: Dict[str, Callable[[SweepRunner], str]] = {
    "table1": _run_table1,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "table2": _run_table2,
    "temp-stress": _run_temp_stress,
    "table3": _run_table3,
    "proposed": _run_proposed,
    "methodology": _run_methodology,
    "campaign": _run_campaign,
    "sensitivity": _run_sensitivity,
    "recovery": _run_recovery,
}


def _report_unhandled(prefix: str, unhandled, noun: str = "case") -> None:
    """Surface processes that died with unhandled exceptions."""
    print(
        f"[{prefix}] {len(unhandled)} simulation process(es) died with "
        f"unhandled exceptions:",
        file=sys.stderr,
    )
    for index, name in unhandled:
        print(f"[{prefix}]   {noun} {index}: {name}", file=sys.stderr)


def _run_fuzz_command(args) -> int:
    """``repro-pdr fuzz``: scenario fuzzing under the invariant monitor.

    Exit status 1 when any invariant violation (or oracle mismatch)
    survives — CI treats a finding as a failure.  With
    ``--fail-on-unhandled`` (the default) a simulation process that died
    with an unhandled exception also fails the run, even when no
    invariant tripped.
    """
    import json

    from ..verify import Scenario, format_report, run_fuzz, run_scenario

    with TELEMETRY_BOOK.capture() as book:
        if args.replay is not None:
            scenario = Scenario.from_mapping(json.loads(args.replay))
            record = run_scenario(scenario.to_mapping())
            print(json.dumps(record, indent=2, sort_keys=True))
            violations = record["violations"]
            unhandled = [
                (scenario.index, name)
                for name in record["unhandled_failures"]
            ]
        else:
            report = run_fuzz(
                seed=args.seed,
                cases=args.cases,
                shrink=not args.no_shrink,
                oracle=args.oracle,
                progress=lambda line: print(f"[fuzz] {line}", file=sys.stderr),
            )
            print(format_report(report))
            violations = report.findings
            unhandled = report.unhandled_failures
    if args.trace_dump is not None:
        for line in book.tail_traces(args.trace_dump):
            print(line)
    if args.profile:
        for table in book.flame_tables():
            print(table)
    if args.metrics_out:
        book.dump(args.metrics_out, format=args.metrics_format, experiments=["fuzz"])
        print(
            f"wrote metrics for {len(book.registries)} system(s) "
            f"to {args.metrics_out}"
        )
    if violations:
        return 1
    if unhandled and args.fail_on_unhandled:
        _report_unhandled("fuzz", unhandled)
        return 1
    return 0


def _run_chaos_command(args) -> int:
    """``repro-pdr chaos``: seeded soak campaign graded against SLOs.

    Exit status 1 on any SLO breach, invariant violation or (by default)
    unhandled process failure.  ``--replay`` re-runs exactly one episode
    from its JSON case mapping and prints the full plain-data record —
    byte-identical on every invocation of the same mapping.
    """
    import json

    from ..chaos import SoakCase, SoakSlos, format_report, run_soak, soak_case

    with TELEMETRY_BOOK.capture() as book:
        if args.replay is not None:
            case = SoakCase.from_mapping(json.loads(args.replay))
            record = soak_case(**case.to_mapping())
            print(json.dumps(record, indent=2, sort_keys=True))
            failed = bool(record["violations"])
            unhandled = [
                (case.index, name) for name in record["unhandled_failures"]
            ]
        else:
            slos = SoakSlos(
                min_availability=args.min_availability,
                min_recovery_rate=args.min_recovery,
                max_mttr_p99_us=args.max_mttr_p99_us,
            )
            report = run_soak(
                seed=args.seed, cases=args.cases, jobs=args.jobs, slos=slos
            )
            print(format_report(report))
            unhandled = report.unhandled
            unhandled_reasons = {
                f"unhandled failure in process {name!r}"
                for _, name in unhandled
            }
            failed = bool(report.breaches) or any(
                reason not in unhandled_reasons
                for finding in report.findings
                for reason in finding["reasons"]
            )
    if args.trace_dump is not None:
        for line in book.tail_traces(args.trace_dump):
            print(line)
    if args.profile:
        for table in book.flame_tables():
            print(table)
    if args.metrics_out:
        book.dump(args.metrics_out, format=args.metrics_format, experiments=["chaos"])
        print(
            f"wrote metrics for {len(book.registries)} system(s) "
            f"to {args.metrics_out}"
        )
    if failed:
        return 1
    if unhandled and args.fail_on_unhandled:
        _report_unhandled("chaos", unhandled)
        return 1
    return 0


#: ``repro-pdr report`` campaign grid: 14 frequencies x 4 temperatures =
#: 56 points, spanning the paper's robust region through the failure
#: knee.  Fixed (not flag-tunable) so every invocation aggregates the
#: same campaign and reports stay comparable across runs and machines.
REPORT_FREQS_MHZ = [100.0 + 20.0 * step for step in range(14)]  # 100..360
REPORT_TEMPS_C = [40.0, 60.0, 80.0, 100.0]


def _run_report_command(args, runner: SweepRunner) -> int:
    """``repro-pdr report``: campaign rollup (markdown stdout, JSON --out)."""
    from ..obs.campaign import aggregate_campaign, render_json, render_markdown
    from .points import asp_descriptor, campaign_point
    from .table1 import WORKLOAD_ASP

    workload = asp_descriptor(WORKLOAD_ASP)
    params = []
    labels = []
    for temp_c in REPORT_TEMPS_C:
        for freq in REPORT_FREQS_MHZ:
            params.append(
                dict(
                    region="RP1", freq_mhz=freq, temp_c=temp_c,
                    workload=workload,
                )
            )
            labels.append(f"RP1@{freq:g}MHz/{temp_c:g}C")
    records = runner.map("campaign_report", campaign_point, params, labels=labels)
    report = aggregate_campaign("pdr-campaign", records)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(render_json(report))
        print(
            f"wrote campaign report ({report.points} points) to {args.out}",
            file=sys.stderr,
        )
    print(render_markdown(report))
    return 0


def _run_fleet_command(args, runner: SweepRunner) -> int:
    """``repro-pdr fleet``: fleet-scale PDR service under live traffic.

    Builds the seed-deterministic open-loop workload, schedules it over
    ``--boards`` snapshot-forked boards (admission control, bounded
    queues, same-bitstream batching), executes every board through the
    sweep engine (serial ≡ ``--jobs N`` byte-identical) and prints the
    request-level SLO report.  ``--out`` writes the canonical JSON form;
    exit status 1 when a ``--max-*`` SLO target is breached.

    ``--chaos`` arms a per-board fault storm (``--chaos-intensity``,
    ``--kill-boards``, same ``--seed`` discipline) and routes execution
    through the health/failover control plane; availability is then
    graded against ``--min-availability``.  ``--verify`` attaches the
    invariant monitor to every board; any violation fails the run, as
    does (by default) an unhandled dead simulation process.
    """
    from ..fleet import FleetSpec, format_report, render_json, run_fleet

    spec = FleetSpec(
        boards=args.boards,
        seed=args.seed,
        duration_ms=args.duration_ms,
        arrival=args.arrival,
        rate_per_ms=args.rate,
        queue_depth=args.queue_depth,
        batching=not args.no_batching,
        chaos=args.chaos,
        chaos_intensity=args.chaos_intensity,
        kill_boards=args.kill_boards,
        verify=args.verify,
    )
    report = run_fleet(spec, runner=runner)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(render_json(report))
        print(
            f"wrote fleet report ({report.offered} requests) to {args.out}",
            file=sys.stderr,
        )
    print(format_report(report))
    breaches = report.slos.breaches(
        p99_target_us=args.max_p99_latency_us,
        reject_target=args.max_rejected_rate,
        availability_target=args.min_availability if args.chaos else None,
    )
    for breach in breaches:
        print(f"SLO breach: {breach}", file=sys.stderr)
    failed = bool(breaches)
    if report.verify is not None and report.verify["violations"]:
        for violation in report.verify["violations"]:
            print(f"invariant violation: {violation}", file=sys.stderr)
        failed = True
    if report.unhandled and args.fail_on_unhandled:
        _report_unhandled(
            "fleet",
            [
                (entry["board"], name)
                for entry in report.unhandled
                for name in entry["processes"]
            ],
            noun="board",
        )
        failed = True
    return 1 if failed else 0


def _run_contention_command(args, runner: SweepRunner) -> int:
    """``repro-pdr contention``: tenant-load × page-policy campaign.

    Runs the E15 grid — second-tenant offered bandwidth × DRAM page
    policy on the bank-aware memory system — and prints the markdown
    rollup.  ``--out`` writes the canonical JSON records (byte-identical
    serial and ``--jobs N``).
    """
    from .contention import format_report, render_json, run_contention

    records = run_contention(runner=runner)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(render_json(records))
        print(
            f"wrote contention campaign ({len(records)} points) to {args.out}",
            file=sys.stderr,
        )
    print(format_report(records))
    return 0


def _run_bench_command(args) -> int:
    """``repro-pdr bench --check``: the perf-regression gate."""
    from .benchcheck import run_check

    if not args.check:
        print(
            "bench: nothing to do without --check "
            "(run `pytest benchmarks/` to regenerate baselines)",
            file=sys.stderr,
        )
        return 2
    code, lines = run_check(
        suites=tuple(args.suite)
        if args.suite
        else ("sweeps", "chaos", "fleet", "dram"),
        tolerance=args.tolerance,
        wall_tolerance=args.wall_tolerance,
        inject_scale=args.inject_scale,
        baseline_dir=args.baseline_dir,
    )
    for line in lines:
        print(line)
    return code


def main(argv=None) -> int:
    """Parse arguments and print the requested experiment reports."""
    parser = argparse.ArgumentParser(
        prog="repro-pdr",
        description=(
            "Regenerate the tables and figures of 'Robust Throughput "
            "Boosting for Low Latency Dynamic Partial Reconfiguration' "
            "(SOCC 2017) on the simulated Zynq platform."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS)
        + ["all", "bench", "chaos", "contention", "fleet", "fuzz", "report"],
        help=(
            "which paper artifacts to regenerate; 'fuzz' instead runs the "
            "deterministic scenario fuzzer under the invariant monitor; "
            "'chaos' runs a seeded fault-injection soak campaign graded "
            "against availability SLOs; 'contention' sweeps second-tenant "
            "memory load × DRAM page policy on the bank-aware memory "
            "system; 'fleet' drives a multi-board fleet "
            "with open-loop request traffic and reports request-level "
            "SLOs; 'report' aggregates a 56-point "
            "campaign into a telemetry rollup; 'bench --check' diffs "
            "fresh benchmark probes against the committed baselines"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        help=(
            "fuzz/chaos: base RNG seed (same seed => byte-identical "
            "campaign)"
        ),
    )
    parser.add_argument(
        "--cases",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fuzz/chaos: number of generated cases "
            "(default 50 for fuzz, 10 for chaos)"
        ),
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="fuzz: report violating scenarios without shrinking them",
    )
    parser.add_argument(
        "--oracle",
        type=int,
        default=0,
        metavar="N",
        help=(
            "fuzz: replay the first N scenarios through the differential "
            "oracle (replay identity + serial-vs-parallel equivalence)"
        ),
    )
    parser.add_argument(
        "--replay",
        metavar="JSON",
        default=None,
        help=(
            "fuzz/chaos: run exactly one case from its JSON mapping (the "
            "format printed by a minimal reproducer / soak finding)"
        ),
    )
    parser.add_argument(
        "--fail-on-unhandled",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "fuzz/chaos: exit 1 (naming the dead processes) when any "
            "simulation process died with an unhandled exception "
            "(default: on)"
        ),
    )
    parser.add_argument(
        "--min-availability",
        type=float,
        default=0.70,
        metavar="FRAC",
        help=(
            "chaos: SLO floor on campaign-mean availability; "
            "fleet --chaos: SLO floor on request availability "
            "(default 0.70)"
        ),
    )
    parser.add_argument(
        "--min-recovery",
        type=float,
        default=0.95,
        metavar="FRAC",
        help=(
            "chaos: SLO floor on the fraction of injected faults fully "
            "recovered (default 0.95)"
        ),
    )
    parser.add_argument(
        "--max-mttr-p99-us",
        type=float,
        default=60_000.0,
        metavar="US",
        help="chaos: SLO ceiling on p99 repair latency (default 60000 us)",
    )
    parser.add_argument(
        "--boards",
        type=int,
        default=4,
        metavar="N",
        help="fleet: number of simulated boards (default 4)",
    )
    parser.add_argument(
        "--duration-ms",
        type=float,
        default=20.0,
        metavar="MS",
        help="fleet: workload duration in milliseconds (default 20)",
    )
    parser.add_argument(
        "--arrival",
        choices=["poisson", "bursty"],
        default="poisson",
        help="fleet: arrival process (default poisson)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=2.0,
        metavar="PER_MS",
        help="fleet: offered load in requests per millisecond (default 2.0)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=6,
        metavar="N",
        help=(
            "fleet: bounded per-board queue; arrivals beyond it are "
            "rejected (default 6)"
        ),
    )
    parser.add_argument(
        "--no-batching",
        action="store_true",
        help=(
            "fleet: disable same-bitstream coalescing and scatter-gather "
            "dispatch grouping"
        ),
    )
    parser.add_argument(
        "--max-p99-latency-us",
        type=float,
        default=None,
        metavar="US",
        help="fleet: SLO ceiling on p99 request latency (exit 1 on breach)",
    )
    parser.add_argument(
        "--max-rejected-rate",
        type=float,
        default=None,
        metavar="FRAC",
        help="fleet: SLO ceiling on the rejected-request rate (exit 1 on breach)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "fleet: arm a seed-deterministic fault storm under every "
            "board and execute through the resilience layer (health "
            "state machine + request failover)"
        ),
    )
    parser.add_argument(
        "--chaos-intensity",
        type=int,
        default=4,
        metavar="N",
        help="fleet: environmental faults per board in the storm (default 4)",
    )
    parser.add_argument(
        "--kill-boards",
        type=int,
        default=0,
        metavar="N",
        help=(
            "fleet: boards killed permanently mid-run "
            "(deterministic schedule; requires --chaos)"
        ),
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help=(
            "fleet: attach the invariant monitor to every board system "
            "and report checks/violations (exit 1 on any violation)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for sweep execution (default 1 = serial, "
            "0 = one per CPU); reports are identical regardless of N"
        ),
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "reuse sweep-point results across runs (content-addressed "
            "on-disk cache; default location "
            "~/.cache/repro-pdr/sweeps or $REPRO_SWEEP_CACHE)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "write the telemetry of every simulated system to PATH "
            "(see --format)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=["json", "openmetrics", "chrome-trace"],
        default="json",
        dest="metrics_format",
        help=(
            "--metrics-out serialisation: merged JSON document (default), "
            "OpenMetrics text exposition, or Chrome trace-event JSON "
            "(load in Perfetto; spans as B/E pairs, series as counters)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print a sim-time flame table (hierarchical self/total span "
            "attribution) for every system that recorded spans"
        ),
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="report: also write the rollup as canonical JSON to PATH",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="bench: diff fresh probes against committed BENCH_*.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        metavar="FRAC",
        help=(
            "bench: fractional tolerance for deterministic simulation "
            "metrics (default 0.02)"
        ),
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help=(
            "bench: gate wall-clock at this fractional tolerance "
            "(default: wall-clock is advisory only — CI containers are "
            "too noisy to gate on)"
        ),
    )
    parser.add_argument(
        "--inject-scale",
        type=float,
        default=1.0,
        metavar="F",
        help=(
            "bench: multiply fresh measurements by F in their "
            "worse-direction before comparison (self-test hook: "
            "--inject-scale 2.0 must exit 1)"
        ),
    )
    parser.add_argument(
        "--suite",
        action="append",
        choices=["sweeps", "chaos", "fleet", "dram"],
        default=None,
        help="bench: check only this suite (repeatable; default all four)",
    )
    parser.add_argument(
        "--baseline-dir",
        metavar="DIR",
        default=None,
        help="bench: directory holding BENCH_*.json (default repo root)",
    )
    parser.add_argument(
        "--trace-dump",
        nargs="?",
        const=50,
        type=int,
        default=None,
        metavar="N",
        help="print the last N trace records of each system (default 50)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error("--jobs must be >= 0 (0 = one worker per CPU)")
    if args.cases is not None and args.cases < 1:
        parser.error("--cases must be >= 1")

    if "fuzz" in args.experiments:
        if len(args.experiments) != 1:
            parser.error("'fuzz' cannot be combined with other experiments")
        if args.cases is None:
            args.cases = 50
        return _run_fuzz_command(args)

    if "chaos" in args.experiments:
        if len(args.experiments) != 1:
            parser.error("'chaos' cannot be combined with other experiments")
        if args.cases is None:
            args.cases = 10
        return _run_chaos_command(args)

    if "bench" in args.experiments:
        if len(args.experiments) != 1:
            parser.error("'bench' cannot be combined with other experiments")
        return _run_bench_command(args)

    cache = None
    if args.cache is not None:
        cache = ResultCache(args.cache or default_cache_dir())
    runner = SweepRunner(jobs=args.jobs, cache=cache)

    if "fleet" in args.experiments:
        if len(args.experiments) != 1:
            parser.error("'fleet' cannot be combined with other experiments")
        return _run_fleet_command(args, runner)

    if "report" in args.experiments:
        if len(args.experiments) != 1:
            parser.error("'report' cannot be combined with other experiments")
        return _run_report_command(args, runner)

    if "contention" in args.experiments:
        if len(args.experiments) != 1:
            parser.error(
                "'contention' cannot be combined with other experiments"
            )
        return _run_contention_command(args, runner)

    names = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    with TELEMETRY_BOOK.capture() as book:
        for name in names:
            print(EXPERIMENTS[name](runner))
    simulated = sum(result.simulated for result in runner.history)
    hits = sum(result.cache_hits for result in runner.history)
    if hits:
        print(
            f"[sweeps] {simulated} point(s) simulated, "
            f"{hits} served from cache ({runner.cache.root})",
            file=sys.stderr,
        )
    if args.trace_dump is not None:
        for line in book.tail_traces(args.trace_dump):
            print(line)
    if args.profile:
        for table in book.flame_tables():
            print(table)
    if args.metrics_out:
        book.dump(args.metrics_out, format=args.metrics_format, experiments=names)
        print(
            f"wrote metrics for {len(book.registries)} system(s) "
            f"to {args.metrics_out}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
