"""AXI4-Stream link model.

Data moves as *bursts* of 32-bit words (a burst is the unit of DMA
scheduling; beat-level timing is charged by the producer/consumer clocks,
not per-event, to keep the discrete-event load tractable).  The stream has
a bounded FIFO — exactly the DMA's internal stream buffer — so
backpressure propagates: a slow consumer (the ICAP at low clock) stalls
the producer (the memory-side read engine), and vice versa.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from ..obs import MetricsRegistry
from ..sim import Channel, Event, Simulator

__all__ = ["StreamBurst", "AxiStream"]


@dataclass
class StreamBurst:
    """One TLAST-delimited group of words on the stream."""

    words: List[int]
    last: bool = False
    meta: dict = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        return len(self.words) * 4


class AxiStream:
    """A 32-bit AXI4-Stream channel with a bounded word FIFO."""

    WORD_BYTES = 4

    def __init__(
        self,
        sim: Simulator,
        fifo_words: int = 1024,
        name: str = "axis",
        metrics: Optional[MetricsRegistry] = None,
    ):
        if fifo_words < 1:
            raise ValueError("stream FIFO must hold at least one word")
        self.sim = sim
        self.name = name
        self.fifo_words = fifo_words
        self._bursts: Channel = Channel(sim, name=f"{name}.bursts")
        self._free_words = fifo_words
        # FIFO of blocked producers; popleft() keeps the drain O(1) per
        # waiter (a plain list.pop(0) made long stalls quadratic).
        self._space_waiters: Deque[Tuple[int, Event, float]] = deque()
        self._reserve_event_name = f"{name}.reserve"
        self.total_words = 0
        #: Optional :class:`~repro.verify.InvariantMonitor`; ``None`` costs a
        #: single identity check per stream operation.
        self.monitor = None
        #: Conservation ledgers for the invariant monitor.  ``granted`` /
        #: ``released`` track FIFO space reservations; ``queued`` /
        #: ``consumed`` track words pushed onto vs popped off the stream.
        self.stat_granted_words = 0
        self.stat_released_words = 0
        self.stat_queued_words = 0
        self.stat_consumed_words = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry(now_fn=lambda: sim.now)
        self._m_occupancy = self.metrics.gauge(f"{name}.occupancy_words")
        self._m_depth = self.metrics.histogram(f"{name}.fifo_depth_words")
        self._m_stalls = self.metrics.counter(f"{name}.backpressure_stalls")
        self._m_stall_ns = self.metrics.counter(f"{name}.backpressure_ns")
        self._m_words = self.metrics.counter(f"{name}.words_total")
        self._m_occupancy.set(0.0)

    # -- producer side ---------------------------------------------------------
    def reserve(self, words: int) -> Event:
        """Wait until the FIFO has room for ``words`` more words."""
        if words > self.fifo_words:
            raise ValueError(
                f"burst of {words} words exceeds FIFO depth {self.fifo_words}"
            )
        event = self.sim.event(name=self._reserve_event_name)
        if self._free_words >= words and not self._space_waiters:
            self._free_words -= words
            self.stat_granted_words += words
            self._m_occupancy.set(self.fifo_words - self._free_words)
            event.succeed()
        else:
            self._m_stalls.inc()
            self._space_waiters.append((words, event, self.sim.now))
        if self.monitor is not None:
            self.monitor.on_stream_op(self)
        return event

    def cancel_reserve(self, event: Event, words: int) -> None:
        """Undo a :meth:`reserve` whose producer is being torn down.

        If the reservation was already granted, its words return to the
        pool; if it is still queued, the waiter entry is removed so the
        space is never handed to a producer that no longer exists.
        Granted-and-pushed reservations are the consumer's to release and
        must not be cancelled.
        """
        if event.triggered:
            self.release(words)
            return
        for index, (_need, waiter, _since) in enumerate(self._space_waiters):
            if waiter is event:
                del self._space_waiters[index]
                break
        if self.monitor is not None:
            self.monitor.on_stream_op(self)

    def push(self, burst: StreamBurst) -> None:
        """Enqueue a burst whose space was previously reserved."""
        self.total_words += len(burst.words)
        self.stat_queued_words += len(burst.words)
        self._m_words.inc(len(burst.words))
        self._m_depth.observe(self.fifo_words - self._free_words)
        self._bursts.try_put(burst)
        if self.monitor is not None:
            self.monitor.on_stream_op(self)

    # -- consumer side ---------------------------------------------------------
    def pop(self) -> Event:
        """Wait for the next burst; value is the :class:`StreamBurst`."""
        event = self._bursts.get()
        if event.callbacks is not None:
            event.callbacks.append(self._on_popped)
        return event

    def _on_popped(self, event: Event) -> None:
        # Move the delivered burst's words from the queued to the consumed
        # ledger the instant the consumer receives them.
        if event._exc is None:
            words = len(event._value.words)
            self.stat_queued_words -= words
            self.stat_consumed_words += words

    def release(self, words: int) -> None:
        """Return consumed words to the FIFO space pool."""
        self._free_words += words
        self.stat_released_words += words
        if self._free_words > self.fifo_words:
            raise AssertionError(f"{self.name}: released more words than consumed")
        while self._space_waiters:
            need, event, waited_since_ns = self._space_waiters[0]
            if self._free_words < need:
                break
            self._space_waiters.popleft()
            self._free_words -= need
            self.stat_granted_words += need
            self._m_stall_ns.inc(self.sim.now - waited_since_ns)
            event.succeed()
        self._m_occupancy.set(self.fifo_words - self._free_words)
        if self.monitor is not None:
            self.monitor.on_stream_op(self)

    # -- inspection ---------------------------------------------------------------
    @property
    def backpressure_ns(self) -> float:
        """Total sim time producers spent stalled on a full FIFO.

        Reads the ``<name>.backpressure_ns`` counter (0.0 under a
        compiled-out registry); the critical-path extractor diffs this
        around the DMA transfer window to attribute consumer-bound time.
        """
        return self._m_stall_ns.value

    @property
    def queued_bursts(self) -> int:
        return self._bursts.level

    @property
    def free_words(self) -> int:
        return self._free_words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AxiStream {self.name}: {self.fifo_words - self._free_words}"
            f"/{self.fifo_words} words queued>"
        )
