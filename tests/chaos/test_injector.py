"""Per-kind delivery tests for the chaos injector.

Each test builds a hand-written :class:`FaultPlan` (one fault, known
magnitude) so the delivery mechanics are exercised in isolation from the
seeded plan generator.
"""

import pytest

from repro.axi import AxiSlaveError
from repro.chaos import ChaosInjector, Fault, FaultPlan
from repro.core import PdrSystem
from repro.fabric import FirFilterAsp
from repro.resilience import ResilientReconfigurator

WORKLOAD = FirFilterAsp([3, 1, 4])


def plan_of(*faults):
    return FaultPlan(fault_seed=0, horizon_us=1e6, faults=tuple(faults))


def drain_to(system, at_ns):
    if system.sim.now < at_ns:
        system.sim.run(until=at_ns)


# ------------------------------------------------------------------ lifecycle
def test_arm_installs_and_disarm_removes_hooks(system):
    injector = ChaosInjector(system, plan_of())
    assert system.dram_controller.fault_latency_ns is None
    injector.arm()
    assert system.dram_controller.fault_latency_ns is not None
    assert system.dram_controller.fault_read_tamper is not None
    assert system.interconnect.fault_stall_ns is not None
    assert system.interconnect.fault_error is not None
    assert system.icap.fault_lockup_cycles is not None
    injector.disarm()
    assert system.dram_controller.fault_latency_ns is None
    assert system.interconnect.fault_error is None
    assert system.icap.fault_lockup_cycles is None


def test_double_arm_rejected(system):
    injector = ChaosInjector(system, plan_of())
    injector.arm()
    with pytest.raises(RuntimeError):
        injector.arm()
    with pytest.raises(RuntimeError):
        ChaosInjector(system, plan_of()).arm()  # hooks already taken


# ------------------------------------------------------------------ transients
def test_dram_bitflip_tampers_exactly_count_reads(system):
    fault = Fault(
        "dram_bitflip", 1.0, (("count", 1), ("flip_mask", 1 << 7))
    )
    injector = ChaosInjector(system, plan_of(fault))
    injector.arm()
    system.dram.store(0x100, bytes(16))
    drain_to(system, 10_000.0)

    tampered = system.sim.run_until(system.interconnect.read(0x100, 16))
    word0 = int.from_bytes(tampered[:4], "big")
    assert word0 == 1 << 7
    assert tampered[4:] == bytes(12)

    # The budget (count=1) is consumed: the next read is clean.
    clean = system.sim.run_until(system.interconnect.read(0x100, 16))
    assert clean == bytes(16)
    event = injector.events[0]
    assert event["applications"] == 1
    assert event["recovered_ns"] is not None
    assert system.metrics.get("chaos.injected.dram_bitflip").value == 1


def test_dram_latency_window_slows_reads(system):
    fault = Fault(
        "dram_latency",
        1.0,
        (("extra_ns", 5_000.0), ("window_us", 100.0)),
    )
    injector = ChaosInjector(system, plan_of(fault))
    injector.arm()
    system.dram.store(0x100, bytes(16))
    drain_to(system, 10_000.0)

    start = system.sim.now
    system.sim.run_until(system.interconnect.read(0x100, 16))
    slow_ns = system.sim.now - start

    drain_to(system, 200_000.0)  # window expired
    start = system.sim.now
    system.sim.run_until(system.interconnect.read(0x100, 16))
    fast_ns = system.sim.now - start
    assert slow_ns >= fast_ns + 5_000.0
    assert injector.events[0]["recovered_ns"] == pytest.approx(101_000.0)


def test_axi_slverr_recovered_by_retry_ladder(system):
    fault = Fault("axi_slverr", 1.0, (("count", 1),))
    injector = ChaosInjector(system, plan_of(fault))
    injector.arm()
    drain_to(system, 10_000.0)

    recoverer = ResilientReconfigurator(system)
    outcome = recoverer.reconfigure("RP1", WORKLOAD, 100.0)
    # First attempt eats the SLVERR (DMA halts, IRQ timeout), retry wins.
    assert outcome.injected_failure
    assert outcome.recovered
    assert system.dma.axi_errors == 1
    assert system.dma.idle and not system.icap.busy.value
    assert injector.events[0]["applications"] == 1


def test_icap_lockup_stretches_but_completes(system):
    fault = Fault(
        "icap_lockup", 1.0, (("bursts", 1), ("cycles", 100_000))
    )
    injector = ChaosInjector(system, plan_of(fault))
    injector.arm()
    drain_to(system, 10_000.0)

    result = system.reconfigure("RP1", WORKLOAD, 100.0)
    assert result.succeeded  # backpressure, not data loss
    assert system.metrics.get("icap.lockup_cycles").value == 100_000
    assert injector.events[0]["applications"] == 1


# ------------------------------------------------------------ clocking / power
def test_clock_loss_of_lock_recovers(system):
    assert system.reconfigure("RP1", WORKLOAD, 200.0).succeeded
    fault = Fault("clock_loss_of_lock", system.sim.now / 1e3 + 1.0, ())
    injector = ChaosInjector(system, plan_of(fault))
    injector.arm()
    drain_to(system, system.sim.now + 2_000.0)

    assert system.clock_wizard.lock_losses == 1
    assert not system.clock_wizard.locked
    # MMCM re-acquires after lock_time; the domain frequency comes back.
    drain_to(
        system,
        system.sim.now + system.clock_wizard.constraints.lock_time_us * 1e3 + 1e3,
    )
    assert system.clock_wizard.locked
    assert system.overclock.freq_mhz == pytest.approx(200.0)
    assert injector.events[0]["recovered_ns"] is not None


def test_brownout_clamps_firmware_requests(system):
    fault = Fault(
        "brownout",
        1.0,
        (("ceiling_mhz", 120.0), ("duration_us", 50_000.0)),
    )
    injector = ChaosInjector(system, plan_of(fault))
    injector.arm()
    drain_to(system, 10_000.0)

    assert system.supply.browned_out
    result = system.reconfigure("RP1", WORKLOAD, 300.0)
    assert result.freq_mhz <= 120.0 + 1e-9
    assert system.metrics.get("power.brownout_clamps").value == 1

    drain_to(system, 51_000.0 * 1e3)  # droop expired (50 ms window)
    assert not system.supply.browned_out
    assert injector.events[0]["recovered_ns"] is not None


# ------------------------------------------------------------------------ SEU
def test_seu_waits_for_golden_content_then_corrupts(system):
    fault = Fault(
        "seu",
        1.0,
        (("flip_mask", 1 << 3), ("offset_words", 2_222), ("region", "RP2")),
    )
    injector = ChaosInjector(system, plan_of(fault))
    injector.arm()
    # No golden CRC for RP2 yet: the delivery stays gated.
    drain_to(system, 500_000.0)
    assert injector.events[0]["injected_ns"] is None

    assert system.reconfigure("RP2", WORKLOAD, 100.0).succeeded
    drain_to(system, system.sim.now + 200_000.0)
    event = injector.events[0]
    assert event["injected_ns"] is not None
    assert event["region"] == "RP2"

    # The flip is real: a scrub pass over RP2 now fails CRC.
    scrub = system.sim.run_until(
        system.sim.process(system.scrubber.scrub_region_once("RP2"))
    )
    assert not scrub.ok
    assert system.metrics.get("chaos.injected.seu").value == 1


def test_injected_count_summary(system):
    faults = (
        Fault("axi_slverr", 1.0, (("count", 1),)),
        Fault("brownout", 2.0, (("ceiling_mhz", 120.0), ("duration_us", 10.0))),
    )
    injector = ChaosInjector(system, plan_of(*faults))
    injector.arm()
    drain_to(system, 10_000.0)
    assert injector.injected_count == 2
    assert injector.injected_by_kind() == {"axi_slverr": 1, "brownout": 1}
    assert system.metrics.get("chaos.faults_injected").value == 2
