"""HP-2011: Hoffman & Pattichis' multiport-memory-controller design.

Published behaviour ([11], as summarised in the paper's §V):

* ICAP fed by DMA through a multi-port memory controller on Virtex-5;
* ~420 MB/s maximum at 133 MHz (the MPMC path costs some efficiency:
  419/133 ≈ 3.15 B/cycle);
* over-clocking with **active feedback**: on-chip voltage/temperature
  monitors keep the device within nominal ranges — requests beyond the
  feedback ceiling are *clamped*, not allowed to fail.  Robust, but it
  leaves the head-room the paper's approach exploits.
"""

from __future__ import annotations

from .base import BaselineResult, ReconfigController, TransferOutcome

__all__ = ["Hp2011Controller"]


class Hp2011Controller(ReconfigController):
    design = "HP-2011"
    platform = "Virtex-5"
    year = 2011
    has_crc_check = False
    nominal_mhz = 100.0

    #: 419 MB/s at 133 MHz through the multi-port memory controller.
    BYTES_PER_CYCLE = 419.0 / 133.0
    #: Active feedback ceiling: the monitors clamp the clock here.
    FEEDBACK_LIMIT_MHZ = 133.0
    SETUP_US = 2.0

    def transfer(self, bitstream_bytes: int, freq_mhz: float) -> BaselineResult:
        if bitstream_bytes <= 0 or freq_mhz <= 0:
            raise ValueError("bitstream size and frequency must be positive")
        effective = min(freq_mhz, self.FEEDBACK_LIMIT_MHZ)
        clamped = effective < freq_mhz
        throughput = self.BYTES_PER_CYCLE * effective  # MB/s
        latency_us = self.SETUP_US + bitstream_bytes / throughput
        notes = []
        if clamped:
            notes.append(
                f"active feedback clamped {freq_mhz:g} MHz to "
                f"{effective:g} MHz (device kept within nominal ranges)"
            )
        return self._result(
            requested_mhz=freq_mhz,
            effective_mhz=effective,
            bitstream_bytes=bitstream_bytes,
            outcome=TransferOutcome.CLAMPED if clamped else TransferOutcome.OK,
            latency_us=latency_us,
            notes=notes,
        )

    def max_working_mhz(self) -> float:
        return self.FEEDBACK_LIMIT_MHZ

    def table3_operating_point(self) -> float:
        return 133.0
