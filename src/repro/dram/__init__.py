"""DDR3 DRAM device + controller models (the PS memory system).

Two controllers share one device model and one master-facing API:

* :class:`BankDramController` (default) — bank machines with an
  open-/closed-page policy, a deterministic refresh engine, and a
  round-robin command multiplexer over per-master queues.
* :class:`DramController` (legacy) — the flat-latency FIFO server,
  kept as the ``REPRO_DRAM=flat`` / ``dram_model="flat"`` kill switch
  and differential baseline.
"""

from .bank import (
    PAGE_POLICIES,
    REFRESH_MODES,
    BankDramController,
    BankTiming,
)
from .controller import DramController, MasterLedger, MemoryRequest
from .device import DdrTiming, DramDevice

__all__ = [
    "BankDramController",
    "BankTiming",
    "DdrTiming",
    "DramController",
    "DramDevice",
    "MasterLedger",
    "MemoryRequest",
    "PAGE_POLICIES",
    "REFRESH_MODES",
]
